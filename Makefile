# Developer/CI entry points. Everything runs from a plain checkout with
# no install step: src/ goes on PYTHONPATH.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke bench cache-check check

# Tier-1 suite (the acceptance gate).
test:
	$(PYTHON) -m pytest -x -q

# Alias used by CI: fail fast, quiet.
smoke: test

# Experiments E1-E7 (prints the reproduced tables).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# On-disk compilation-cache roundtrip: miss -> store -> hit -> corrupt
# -> rebuild (see docs/caching.md).
cache-check:
	$(PYTHON) scripts/cache_check.py

# What CI runs.
check: smoke cache-check
