# Developer/CI entry points. Everything runs from a plain checkout with
# no install step: src/ goes on PYTHONPATH.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke bench bench-record cache-check check fuzz fuzz-smoke prof-smoke serve-smoke python-corpus-smoke vm-smoke incremental-smoke

# Tier-1 suite (the acceptance gate).
test:
	$(PYTHON) -m pytest -x -q

# Alias used by CI: fail fast, quiet.
smoke: test

# Experiments E1-E7 (prints the reproduced tables).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Append a timestamped E5/E3 measurement record to BENCH_5.json so perf
# changes can be compared against a stored baseline; see docs/testing.md.
# Override the label: make bench-record LABEL=my-change
LABEL ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo manual)
bench-record:
	$(PYTHON) scripts/bench_record.py --label $(LABEL)

# Bounded differential-fuzz run (also executes inside `make test` via the
# `fuzz` marker); see docs/testing.md.  Also profiles the example corpora
# so every fuzz smoke leaves a grammar-coverage artifact behind
# (build/coverage-<grammar>.json; see docs/profiling.md).
fuzz-smoke:
	$(PYTHON) -m pytest -q -m fuzz
	@mkdir -p build
	@for g in calc json jay xc ml; do \
		$(PYTHON) -m repro.tools.prof examples/$$g --backend interp --json \
			--output build/coverage-$$g.json || exit 1; \
		echo "coverage artifact: build/coverage-$$g.json"; \
	done

# Profiler/observability tests (collector semantics, backend parity,
# corpus-coverage floors); see docs/profiling.md.
prof-smoke:
	$(PYTHON) -m pytest -q -m prof

# Parse-service smoke: the serve test subset, then a real NDJSON batch
# through a 2-worker pool with one injected timeout (the exponential
# pathological request) and one injected oversized input; asserts the
# service reports ok/timeout/rejected outcomes and stays healthy.  See
# docs/serving.md.
serve-smoke:
	$(PYTHON) -m pytest -q -m serve
	$(PYTHON) scripts/serve_smoke.py

# Real-Python corpus smoke: parse the checked-in stdlib slice
# (examples/python/) end to end with the generated python.Python parser;
# fails on any non-allowlisted parse failure or stale allowlist entry.
# See docs/grammars-python.md.
python-corpus-smoke:
	$(PYTHON) -c "from repro.workloads.pycorpus import main; raise SystemExit(main())"

# Parsing-machine smoke: the VM test file, then an end-to-end cross-check
# of machine vs generated trees on the seeded jay/xC corpora and a real-
# Python corpus sample, plus a disassembly sanity pass.  See docs/vm.md.
vm-smoke:
	$(PYTHON) -m pytest -q tests/test_vm.py
	$(PYTHON) scripts/vm_smoke.py

# Incremental-reparsing smoke: the incremental test file (memo surgery,
# session semantics, streaming, the 200-script edit property), then a
# bounded differential edit-fuzz run — warm reparses after seeded edit
# scripts checked bit-identically against cold parses.  See
# docs/incremental.md.
incremental-smoke:
	$(PYTHON) -m pytest -q tests/test_incremental.py
	$(PYTHON) -m repro.tools.fuzz calc jay -n 60 --edits 4 --seed 20260807

# Full seeded differential fuzz: 500 generated + 500 mutated inputs per
# grammar through every backend, strict about generator health.
fuzz:
	$(PYTHON) -m repro.tools.fuzz calc json jay -n 500 --mutated 500 --seed 20260806 --strict

# On-disk compilation-cache roundtrip: miss -> store -> hit -> corrupt
# -> rebuild (see docs/caching.md).
cache-check:
	$(PYTHON) scripts/cache_check.py

# What CI runs.
check: smoke cache-check
