"""Setuptools shim.

Kept so the package can be installed in environments without the ``wheel``
package (offline boxes where PEP 660 editable builds are unavailable):
``python setup.py develop`` works with plain setuptools.
"""

from setuptools import setup

setup()
