"""End-to-end pipeline integration tests: every stage chained, on every
shipped language, plus cross-stage invariants not covered elsewhere."""

import pytest

import repro
from repro.analysis import grammar_stats, require_wellformed
from repro.codegen import generate_parser_source, load_parser
from repro.codegen.writer import CodeWriter
from repro.interp import ClosureParser, PackratInterpreter
from repro.meta import ModuleLoader
from repro.optim import Options, prepare
from repro.peg.pretty import format_grammar

ROOTS = [
    "calc.Calculator", "calc.Full", "json.Json",
    "jay.Jay", "jay.Extended", "xc.XC", "xc.Extended",
    "sql.Sql", "ml.ML", "ml.Extended", "meta.Module",
]

SAMPLES = {
    "calc.Calculator": "1 + 2 * (3 - 4)",
    "calc.Full": "2**3 <= 9",
    "json.Json": '{"k": [1, true, null]}',
    "jay.Jay": "class A { int f() { return 1; } }",
    "jay.Extended": "class A { void m() { assert ok; } }",
    "xc.XC": "int main(void) { return 0; }",
    "xc.Extended": "int f(void) { until (x) { x = x - 1; } return x; }",
    "sql.Sql": "select a from t",
    "ml.ML": "let rec f n = if n = 0 then 1 else n * f (n - 1) ;; f 5",
    "ml.Extended": "[1; 2] |> length",
    "meta.Module": 'module x.Y;\nA = "a" ;\n',
}


class TestEveryShippedLanguage:
    @pytest.mark.parametrize("root", ROOTS)
    def test_full_pipeline(self, root):
        # compose
        grammar = repro.load_grammar(root)
        # well-formed (warnings allowed, errors not)
        require_wellformed(grammar)
        # optimize both extremes
        fast = prepare(grammar, Options.all())
        slow = prepare(grammar, Options.none())
        # generate + load both
        fast_cls = load_parser(generate_parser_source(fast))
        slow_cls = load_parser(generate_parser_source(slow))
        # parse the sample with four backends and compare
        sample = SAMPLES[root]
        expected = PackratInterpreter(fast.grammar).parse(sample)
        assert fast_cls(sample).parse() == expected
        assert slow_cls(sample).parse() == expected
        assert ClosureParser(fast.grammar).parse(sample) == expected

    @pytest.mark.parametrize("root", ROOTS)
    def test_composed_grammar_prints_and_reparses(self, root):
        from repro.meta import parse_module

        grammar = repro.load_grammar(root)
        printed = format_grammar(grammar)
        module = parse_module(printed, f"<printed:{root}>")
        assert {p.name for p in module.productions} == set(grammar.names())

    @pytest.mark.parametrize("root", ROOTS)
    def test_stats_are_sane(self, root):
        grammar = repro.load_grammar(root)
        stats = grammar_stats(grammar)
        assert stats.productions == len(grammar)
        assert stats.alternatives >= stats.productions
        assert sum(stats.by_kind.values()) == stats.productions


class TestOptimizedGrammarsStayWellFormed:
    @pytest.mark.parametrize("root", ["jay.Extended", "xc.Extended", "ml.Extended"])
    def test_prepared_grammar_is_closed_and_clean(self, root):
        prepared = prepare(repro.load_grammar(root))
        prepared.grammar.validate()
        # the optimized grammar must have no *error-level* diagnostics
        # (unreachable-production warnings are fine: public entry points)
        from repro.analysis import check

        errors = [d for d in check(prepared.grammar) if d.severity == "error"]
        assert errors == []


class TestCodeWriter:
    def test_blocks_nest_and_unwind(self):
        writer = CodeWriter()
        writer.line("def f():")
        with writer.block("if x:"):
            writer.line("return 1")
        writer.line("return 0")
        assert writer.render() == "def f():\nif x:\n    return 1\nreturn 0\n"

    def test_dedent_guard(self):
        writer = CodeWriter()
        with pytest.raises(ValueError):
            writer.dedent()

    def test_blank_lines_carry_no_indent(self):
        writer = CodeWriter()
        writer.indent()
        writer.line()
        assert writer.render() == "\n"
