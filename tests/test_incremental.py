"""Tests for incremental reparsing: memo surgery, sessions, streaming.

Covers the :class:`~repro.runtime.memo.IncrementalMemoTable` column
surgery (drop/shift with the relative-span summaries), the
:class:`~repro.incremental.IncrementalSession` edit loop on both backends
(warm results identical to cold parses, locations relocated, failure
fidelity), the same-text memo retention of plain sessions, the
incremental profile counters and report round-trip, the
:class:`~repro.incremental.StreamFeeder` framing, and the differential
edit oracle with its script shrinker — including the ISSUE's acceptance
property: 200 seeded edit scripts per fuzz-matrix grammar with zero
warm/cold divergences.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.difftest import EditOracle, fuzz_edits, shrink_edit_script
from repro.difftest.oracle import Outcome
from repro.errors import ParseError
from repro.incremental import BACKENDS, StreamFeeder
from repro.profile import ParseProfile, ProfileReport, build_report, format_report
from repro.profile.report import REPORT_FORMAT
from repro.runtime.memo import _SPAN_CAP, IncrementalMemoTable
from repro.runtime.node import GNode
from repro.workloads.pyedits import Edit, apply_script, edit_script, rename_edits


@pytest.fixture(scope="module")
def calc():
    return repro.compile_grammar("calc.Calculator")


@pytest.fixture(scope="module")
def jay():
    return repro.compile_grammar("jay.Jay")


def entry(span: int, value, rel: int):
    """Build one relative memo entry the way the backends store them."""
    return ((span, value), rel)


class TestIncrementalMemoTable:
    def table(self, length=10, rules=("a", "b")):
        return IncrementalMemoTable(list(rules)).resize(length)

    def test_put_get_roundtrip(self):
        table = self.table()
        table.put(0, 3, entry(2, "v", 2))
        assert table.get(0, 3) == ((2, "v"), 2)
        assert table.get(1, 3) is None
        assert table.get(0, 4) is None
        assert table.entry_count() == 1

    def test_put_same_slot_counts_once(self):
        table = self.table()
        table.put(0, 3, entry(2, "v", 2))
        table.put(0, 3, entry(1, "w", 1))
        assert table.entry_count() == 1
        assert table.get(0, 3) == ((1, "w"), 1)

    def test_resize_clears(self):
        table = self.table()
        table.put(0, 3, entry(2, "v", 2))
        table.resize(5)
        assert table.entry_count() == 0
        assert table.get(0, 3) is None
        # Columns exist for every position including end-of-input.
        table.put(0, 5, entry(0, "eof", 0))
        assert table.get(0, 5) is not None

    def test_drop_range_interior(self):
        table = self.table()
        table.put(0, 5, entry(1, "damaged", 1))
        table.put(1, 6, entry(1, "damaged", 1))
        table.put(0, 2, entry(1, "left", 1))
        assert table.drop_range(5, 7) == 2
        assert table.get(0, 5) is None and table.get(1, 6) is None
        assert table.get(0, 2) is not None
        assert table.entry_count() == 1

    def test_drop_range_keeps_zero_width_at_lo(self):
        # A zero-width entry at the damage start never read damaged text.
        table = self.table()
        table.put(0, 5, entry(0, "zero", 0))
        assert table.drop_range(5, 6) == 0
        assert table.get(0, 5) is not None

    def test_drop_range_spine_by_examined_span(self):
        table = self.table()
        # Examined [2, 6) — crosses damage at 5: dropped.
        table.put(0, 2, entry(1, "crosses", 4))
        # Examined [2, 5) — stops exactly at the damage: retained.
        table.put(1, 2, entry(1, "stops", 3))
        assert table.drop_range(5, 6) == 1
        assert table.get(0, 2) is None
        assert table.get(1, 2) is not None

    def test_drop_range_long_span_entries(self):
        # Spans >= _SPAN_CAP are summarized at the cap and tracked exactly
        # in a side set, so damage far beyond the byte window still finds
        # the entry that examined across it.
        table = self.table(length=1000)
        table.put(0, 0, entry(600, "long", 600))
        table.put(1, 0, entry(300, "shorter-long", 300))
        assert 0 in table._long
        # Damage at 500: the 600-wide entry crosses, the 300-wide does not.
        assert table.drop_range(500, 501) == 1
        assert table.get(0, 0) is None
        assert table.get(1, 0) is not None
        # The 300-wide entry still reaches the cap, so 0 stays long and a
        # later closer damage still finds it.
        assert 0 in table._long
        assert table.drop_range(200, 201) == 1
        assert table.get(1, 0) is None

    def test_shift_from_insert(self):
        table = self.table()
        table.put(0, 2, entry(1, "left", 1))
        table.put(0, 7, entry(1, "right", 1))
        shifted = table.shift_from(5, 3)
        assert shifted == 1
        assert table.get(0, 2) == ((1, "left"), 1)
        assert table.get(0, 7) is None
        assert table.get(0, 10) == ((1, "right"), 1)
        assert table.entry_count() == 2

    def test_shift_from_delete_accounts_lost_entries(self):
        table = self.table()
        table.put(0, 2, entry(1, "left", 1))
        table.put(0, 4, entry(1, "spliced-away", 1))
        table.put(0, 7, entry(1, "right", 1))
        shifted = table.shift_from(5, -2)
        assert shifted == 1
        assert table.entry_count() == 2
        assert table.get(0, 2) is not None
        assert table.get(0, 5) == ((1, "right"), 1)

    def test_shift_from_zero_delta_shifts_nothing(self):
        table = self.table()
        table.put(0, 7, entry(1, "right", 1))
        assert table.shift_from(5, 0) == 0
        assert table.get(0, 7) is not None

    def test_shift_relocates_long_set(self):
        table = self.table(length=1000)
        table.put(0, 400, entry(300, "long", 300))
        assert 400 in table._long
        table.shift_from(100, 5)
        assert table._long == {405}
        assert table.get(0, 405) is not None

    def test_on_value_called_for_relocated_successes_only(self):
        table = self.table()
        table.put(0, 2, entry(1, "left", 1))
        table.put(0, 7, entry(1, "moved", 1))
        table.put(1, 7, ((-1, None), 2))  # failure entry: no value to patch
        seen = []
        table.shift_from(5, 1, on_value=seen.append)
        assert seen == ["moved"]


class TestIncrementalSession:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_edits_match_cold_parse(self, calc, backend):
        session = calc.incremental(backend=backend)
        session.set_text("1+2*(3-4)")
        assert repr(session.parse()) == repr(calc.parse("1+2*(3-4)"))
        for edit, expected in [
            ((2, 1, "7"), "1+7*(3-4)"),
            ((4, 0, "(8)+"), "1+7*(8)+(3-4)"),
            ((0, 2, ""), "7*(8)+(3-4)"),
        ]:
            session.apply_edit(*edit)
            assert session.text == expected
            assert repr(session.parse()) == repr(calc.parse(expected))
            assert not session.last_parse_recovered

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_edit_stats_accounting(self, calc, backend):
        session = calc.incremental(backend=backend)
        session.set_text("1+2*(3-4)")
        session.parse()
        before = session.memo_entry_count()
        assert before > 0
        stats = session.apply_edit(2, 1, "9")
        assert stats.offset == 2 and stats.removed == 1 and stats.inserted == 1
        assert stats.retained == session.memo_entry_count()
        assert stats.retained == before - stats.dropped

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_failure_identical_to_cold(self, calc, backend):
        warm = calc.incremental(backend=backend)
        warm.set_text("1+2*3")
        warm.parse()
        warm.apply_edit(4, 1, "+")  # "1+2*+" — dangling operator
        with pytest.raises(ParseError) as warm_err:
            warm.parse()
        cold = calc.incremental(backend=backend)
        cold.set_text(warm.text)
        with pytest.raises(ParseError) as cold_err:
            cold.parse()
        assert warm_err.value.offset == cold_err.value.offset
        assert set(warm_err.value.expected) == set(cold_err.value.expected)
        assert warm_err.value.line == cold_err.value.line
        assert warm_err.value.column == cold_err.value.column
        # Failure fidelity came from the documented cold rerun, which must
        # not have *changed* the verdict (that would be an invalidation bug).
        assert not warm.last_parse_recovered

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_random_edit_sequence_stays_consistent(self, calc, backend):
        rng = random.Random(17)
        session = calc.incremental(backend=backend)
        text = "1+2*(3-4)+(5*6)"
        session.set_text(text)
        for _ in range(40):
            [edit] = edit_script(session.text, rng, 1)
            session.apply_edit(edit.offset, edit.removed, edit.inserted)
            try:
                warm = repr(session.parse())
            except ParseError as error:
                with pytest.raises(ParseError) as cold_err:
                    calc.parse(session.text)
                assert cold_err.value.offset == error.offset
            else:
                assert warm == repr(calc.parse(session.text))
            assert not session.last_parse_recovered

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_feed_appends(self, calc, backend):
        session = calc.incremental(backend=backend)
        session.set_text("1")
        session.parse()
        session.feed("+2")
        assert session.text == "1+2"
        assert repr(session.parse()) == repr(calc.parse("1+2"))
        session.feed("*3")
        assert repr(session.parse()) == repr(calc.parse("1+2*3"))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_locations_relocated_across_newline_edit(self, jay, backend):
        from repro.workloads import generate_jay_program

        text = generate_jay_program(size=5, seed=1)
        session = jay.incremental(backend=backend)
        session.set_text(text)
        session.parse()
        # Insert a comment line near the front: every retained node behind
        # it moves down one line.
        session.apply_edit(0, 0, "// header\n")
        warm = session.parse()
        cold = jay.parse(session.text)

        def locations(value):
            out, stack = [], [value]
            while stack:
                node = stack.pop()
                if isinstance(node, GNode):
                    if node.location is not None:
                        out.append((node.name, node.location.line, node.location.column))
                    stack.extend(node.children)
                elif isinstance(node, (tuple, list)):
                    stack.extend(node)
            return sorted(out)

        assert locations(warm) == locations(cold)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_source_name_in_warm_errors(self, calc, backend):
        session = calc.incremental(backend=backend)
        session.set_text("1+2*3", source="expr.calc")
        session.parse()
        session.apply_edit(3, 1, "@")
        with pytest.raises(ParseError) as err:
            session.parse()
        assert err.value.source == "expr.calc"
        assert str(err.value).startswith("expr.calc:1:")

    def test_edit_validation(self, calc):
        session = calc.incremental()
        session.set_text("1+2")
        with pytest.raises(ValueError):
            session.apply_edit(4, 0, "x")
        with pytest.raises(ValueError):
            session.apply_edit(2, 5, "x")
        with pytest.raises(ValueError):
            session.apply_edit(0, -1, "x")

    def test_unknown_backend(self, calc):
        with pytest.raises(ValueError):
            calc.incremental(backend="generated")

    def test_context_manager_releases_entries(self, calc):
        with calc.incremental() as session:
            session.set_text("1+2*3")
            session.parse()
            assert session.memo_entry_count() > 0
        assert session.memo_entry_count() == 0


class TestSessionMemoRetention:
    """Regression: ``ParserBase.reset`` keeps the memo when the input is
    unchanged, so repeated ``session.parse(same_text)`` is memo-warm —
    except after a *failed* parse, which must stay cold and exact."""

    @pytest.mark.parametrize("backend", ("generated", "vm"))
    def test_same_text_keeps_memo(self, calc, backend):
        session = calc.session(backend=backend)
        session.parse("1+2*(3-4)")
        parser = session.parser
        count = parser.memo_entry_count()
        assert count > 0
        parser.reset("1+2*(3-4)")
        assert parser.memo_entry_count() == count
        parser.reset("1+2*(3-5)")
        assert parser.memo_entry_count() == 0

    @pytest.mark.parametrize("backend", ("generated", "vm"))
    def test_failed_parse_disables_retention(self, calc, backend):
        session = calc.session(backend=backend)
        with pytest.raises(ParseError):
            session.parse("1+2+*")
        parser = session.parser
        parser.reset("1+2+*")
        assert parser.memo_entry_count() == 0
        # The retried identical input reports the identical error.
        with pytest.raises(ParseError) as err:
            session.parse("1+2+*")
        with pytest.raises(ParseError) as cold:
            calc.parse("1+2+*")
        assert err.value.offset == cold.value.offset
        assert set(err.value.expected) == set(cold.value.expected)


class TestIncrementalProfile:
    def test_record_edit_accumulates(self):
        profile = ParseProfile()
        profile.record_edit(10, 2, 5)
        profile.record_edit(7, 1, 0)
        assert profile.edits == 2
        assert profile.memo_reused == 17
        assert profile.memo_dropped == 3
        assert profile.memo_shifted == 5

    def test_report_round_trip_with_incremental_block(self):
        profile = ParseProfile()
        profile.record_edit(10, 2, 5)
        profile.count_parse("x" * 40, accepted=True)
        report = build_report(profile, grammar="calc", backend="incremental-vm")
        data = report.to_json()
        assert data["format"] == REPORT_FORMAT == 3
        assert data["incremental"] == {
            "edits": 1, "memo_reused": 10, "memo_dropped": 2, "memo_shifted": 5,
        }
        assert ProfileReport.from_json(data) == report
        rendered = format_report(report)
        assert "incremental: 1 edits" in rendered
        assert "memo entries reused 10" in rendered

    def test_session_reports_into_profile(self, calc):
        profile = ParseProfile()
        session = calc.incremental(backend="closures", profile=profile)
        session.set_text("1+2*(3-4)")
        session.parse()
        session.apply_edit(2, 1, "9")
        session.parse()
        assert profile.edits == 1
        assert profile.memo_reused > 0
        assert profile.parses == 2

    def test_profile_edits_runner(self):
        from repro.profile import profile_edits

        report = profile_edits(
            "calc", ["1+2*3", "(4-5)"], backend="closures", edits=3, seed=1
        )
        assert report.backend == "incremental-closures"
        assert report.edits == 6  # 3 per input
        assert report.parses == 8  # (1 + 3) per input, rejected reparses included
        assert ProfileReport.from_json(report.to_json()) == report

    def test_profile_edits_rejects_unknown_backend(self):
        from repro.profile import profile_edits

        with pytest.raises(ValueError):
            profile_edits("calc", ["1"], backend="generated")


class TestStreamFeeder:
    def test_frames_across_chunk_boundaries(self):
        feeder = StreamFeeder()
        records = feeder.feed("alpha\nbe")
        assert [(r.index, r.text) for r in records] == [(1, "alpha")]
        assert feeder.pending == "be"
        records = feeder.feed("ta\ngamma\n")
        assert [(r.index, r.text) for r in records] == [(2, "beta"), (3, "gamma")]
        assert feeder.count == 3

    def test_blank_lines_skipped_and_crlf_stripped(self):
        feeder = StreamFeeder()
        records = feeder.feed("one\r\n\r\n\ntwo\r\n")
        assert [(r.index, r.text) for r in records] == [(1, "one"), (2, "two")]

    def test_end_flushes_tail_and_seals(self):
        feeder = StreamFeeder()
        feeder.feed("complete\npartial")
        records = feeder.end()
        assert [(r.index, r.text) for r in records] == [(2, "partial")]
        assert feeder.end() == []
        with pytest.raises(ValueError):
            feeder.feed("more")

    def test_parse_mode_populates_values_and_errors(self, calc):
        feeder = StreamFeeder(calc.parse)
        ok, bad = feeder.feed("1+2\n1+\n")
        assert repr(ok.value) == repr(calc.parse("1+2")) and ok.error is None
        assert bad.value is None and isinstance(bad.error, ParseError)


class TestEditOracle:
    def test_clean_scripts_have_no_disagreements(self):
        oracle = EditOracle.for_root("calc.Calculator")
        rng = random.Random(11)
        for _ in range(10):
            text = "1+2*(3-4)"
            edits = edit_script(text, rng, 4)
            assert oracle.explain_script(text, edits) is None

    def test_invalid_script_raises(self):
        oracle = EditOracle.for_root("calc.Calculator")
        with pytest.raises(ValueError):
            oracle.check_script("1+2", [(99, 0, "x")])
        with pytest.raises(ValueError):
            oracle.check_script("1+2", [(0, 2, ""), (2, 0, "x")])

    def test_compare_step_semantics(self):
        compare = EditOracle._compare_step
        accept = Outcome(accepted=True, value=None)
        assert compare(accept, accept, same_program=True) is None
        assert "verdicts" in compare(
            accept, Outcome(accepted=False, offset=3), same_program=True
        )
        assert "offsets" in compare(
            Outcome(accepted=False, offset=3),
            Outcome(accepted=False, offset=4),
            same_program=True,
        )
        mismatch = (
            Outcome(accepted=False, offset=3, expected=("'a'",)),
            Outcome(accepted=False, offset=3, expected=("'b'",)),
        )
        # Expected sets compare within one program, never across programs.
        assert "expected sets" in compare(*mismatch, same_program=True)
        assert compare(*mismatch, same_program=False) is None
        # Resource limits are backend properties, not semantic verdicts.
        assert compare(
            Outcome(accepted=False, crash="RecursionError"), accept, same_program=True
        ) is None

    def test_shrink_edit_script_reduces_to_culprit(self):
        edits = [(0, 0, "aa"), (1, 1, "x"), (2, 0, "yy"), (0, 1, "")]
        shrunk = shrink_edit_script(edits, lambda s: any(e[2] == "x" for e in s))
        assert shrunk == [(1, 1, "x")]

    def test_shrink_edit_script_requires_interesting(self):
        with pytest.raises(ValueError):
            shrink_edit_script([(0, 0, "a")], lambda s: False)

    def test_fuzz_edits_packages_and_shrinks_counterexamples(self, calc):
        class StubOracle:
            """Real grammar (for the sentence generator), fake comparison:
            any script containing a pure deletion "disagrees"."""

            grammar = calc.grammar
            backends = ("vm", "closures")

            def check_script(self, text, edits):
                from repro.difftest.oracle import Disagreement

                if any(e[1] > 0 and e[2] == "" for e in edits):
                    return [Disagreement(text, "cold-vm", "warm-vm",
                                         Outcome(True), Outcome(False, offset=0),
                                         "stub")]
                return []

            def explain_script(self, text, edits):
                found = self.check_script(text, edits)
                return found[0].describe() if found else None

        report = fuzz_edits(
            "calc.Calculator", seed=5, scripts=30, edits_per_script=4,
            oracle=StubOracle(),
        )
        assert not report.ok
        example = report.counterexamples[0]
        assert len(example.shrunk) <= len(example.original)
        assert len(example.shrunk) == 1  # one deletion suffices
        assert "EditOracle" in example.regression_test
        assert "test_edit_regression_" in example.regression_test


# -- the acceptance property (ISSUE): 200 seeded scripts per matrix grammar ------


@pytest.mark.fuzz
@pytest.mark.parametrize(
    "root", ["calc.Calculator", "json.Json", "jay.Jay", "xc.XC", "ml.ML"]
)
def test_edits_property_zero_divergences(root):
    report = fuzz_edits(root, seed=3, scripts=200, edits_per_script=3)
    assert report.scripts == 200
    assert report.ok, "\n".join(
        c.disagreement.describe() for c in report.counterexamples
    )


class TestWorkloadEditScripts:
    def test_edit_script_deterministic(self):
        text = "def f(x):\n    return x + 1\n"
        first = edit_script(text, random.Random(9), 6)
        second = edit_script(text, random.Random(9), 6)
        assert first == second
        assert len(first) == 6

    def test_apply_script_matches_sequential_apply(self):
        text = "value = alpha + beta\n"
        edits = edit_script(text, random.Random(2), 5)
        current = text
        for edit in edits:
            current = edit.apply(current)
        assert apply_script(text, edits) == current

    def test_rename_edits_are_length_preserving_non_keyword(self):
        import keyword

        text = "def compute(total):\n    return total if total else None\n"
        current = text
        for edit in rename_edits(text, random.Random(4), 8):
            assert edit.removed == len(edit.inserted)
            assert not keyword.iskeyword(edit.inserted)
            current = edit.apply(current)
        assert len(current) == len(text)

    def test_edit_dataclass_apply(self):
        assert Edit(1, 2, "XY").apply("abcd") == "aXYd"
        assert Edit(0, 0, "z").apply("") == "z"
