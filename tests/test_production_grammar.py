"""Unit tests for productions and flat grammars."""

import pytest

from repro.errors import AnalysisError
from repro.peg.builder import GrammarBuilder, lit, ref
from repro.peg.expr import Literal, Nonterminal
from repro.peg.grammar import Grammar
from repro.peg.production import Alternative, Production, ValueKind


def prod(name, *refs, kind=ValueKind.OBJECT, attrs=()):
    alternatives = tuple(Alternative(Nonterminal(r)) for r in refs) or (
        Alternative(Literal(name.lower())),
    )
    return Production(name, kind, alternatives, frozenset(attrs))


class TestProduction:
    def test_unknown_attribute_rejected(self):
        with pytest.raises(ValueError):
            Production("P", attributes=frozenset({"bogus"}))

    def test_conflicting_attributes(self):
        with pytest.raises(ValueError):
            Production("P", attributes=frozenset({"inline", "noinline"}))
        with pytest.raises(ValueError):
            Production("P", attributes=frozenset({"transient", "memo"}))

    def test_flags(self):
        production = prod("P", attrs=("public", "transient"))
        assert production.is_public
        assert production.is_transient
        assert production.has("public")
        assert not production.has("memo")

    def test_referenced_names(self):
        production = prod("P", "A", "B")
        assert production.referenced_names() == {"A", "B"}

    def test_label_names(self):
        production = Production(
            "P",
            alternatives=(
                Alternative(Literal("a"), "First"),
                Alternative(Literal("b")),
                Alternative(Literal("c"), "Third"),
            ),
        )
        assert production.label_names() == ["First", "Third"]

    def test_with_helpers_return_new(self):
        production = prod("P")
        updated = production.with_attributes(frozenset({"memo"}))
        assert updated.has("memo") and not production.has("memo")


class TestGrammar:
    def make(self):
        return Grammar((prod("S", "A"), prod("A", "B"), prod("B")), start="S")

    def test_duplicate_production_rejected(self):
        with pytest.raises(AnalysisError):
            Grammar((prod("S"), prod("S")), start="S")

    def test_missing_start_rejected(self):
        with pytest.raises(AnalysisError):
            Grammar((prod("A"),), start="S")

    def test_mapping_protocol(self):
        grammar = self.make()
        assert "A" in grammar and "Z" not in grammar
        assert grammar["A"].name == "A"
        assert grammar.get("Z") is None
        assert len(grammar) == 3
        assert grammar.names() == ["S", "A", "B"]
        with pytest.raises(KeyError):
            grammar["Z"]

    def test_replace_production(self):
        grammar = self.make()
        updated = grammar.replace_production(prod("A", "B", attrs=("transient",)))
        assert updated["A"].is_transient
        assert not grammar["A"].is_transient
        with pytest.raises(KeyError):
            grammar.replace_production(prod("Z"))

    def test_add_remove(self):
        grammar = self.make().add_production(prod("C"))
        assert "C" in grammar
        with pytest.raises(AnalysisError):
            grammar.add_production(prod("C"))
        trimmed = grammar.remove_productions(["C"])
        assert "C" not in trimmed
        with pytest.raises(AnalysisError):
            grammar.remove_productions(["S"])  # can't remove the start

    def test_undefined_references(self):
        grammar = Grammar((prod("S", "Ghost"),), start="S")
        assert grammar.undefined_references() == {"S": {"Ghost"}}
        with pytest.raises(AnalysisError):
            grammar.validate()

    def test_validate_clean(self):
        self.make().validate()

    def test_with_start(self):
        grammar = self.make().with_start("A")
        assert grammar.start == "A"


class TestBuilder:
    def test_duplicate_rule_rejected(self):
        builder = GrammarBuilder("g", start="A")
        builder.object("A", [lit("a")])
        with pytest.raises(AnalysisError):
            builder.object("A", [lit("b")])

    def test_kinds(self):
        builder = GrammarBuilder("g", start="A")
        builder.generic("A", [ref("B")])
        builder.text("B", [lit("b")])
        builder.void("C", [lit("c")])
        builder.object("D", [lit("d")])
        grammar = builder.build(validate=False)
        assert grammar["A"].kind is ValueKind.GENERIC
        assert grammar["B"].kind is ValueKind.TEXT
        assert grammar["C"].kind is ValueKind.VOID
        assert grammar["D"].kind is ValueKind.OBJECT

    def test_validation_on_build(self):
        builder = GrammarBuilder("g", start="A")
        builder.object("A", [ref("Missing")])
        with pytest.raises(AnalysisError):
            builder.build()

    def test_with_location_marks_generics(self):
        builder = GrammarBuilder("g", start="A", with_location=True)
        builder.generic("A", [lit("a")])
        grammar = builder.build()
        assert grammar["A"].has("withLocation")
        assert "withLocation" in grammar.options
