"""Tests for the grammar interpreters (reference semantics)."""

import pytest

from repro.errors import AnalysisError, ParseError
from repro.interp import BacktrackInterpreter, PackratInterpreter
from repro.peg.builder import (
    GrammarBuilder,
    act,
    alt,
    amp,
    any_,
    bang,
    bind,
    cc,
    lit,
    opt,
    plus,
    ref,
    star,
    text,
    void,
)
from repro.runtime.node import GNode


def interp(build, start="S", **kwargs):
    builder = GrammarBuilder("t", start=start)
    build(builder)
    return PackratInterpreter(builder.build(), **kwargs)


class TestMatchingSemantics:
    def test_literal(self):
        p = interp(lambda b: b.void("S", [lit("abc")]))
        assert p.recognize("abc")
        assert not p.recognize("ab")
        assert not p.recognize("abcd")  # whole input required

    def test_literal_ignore_case(self):
        p = interp(lambda b: b.object("S", [text(lit("select", ignore_case=True))]))
        assert p.parse("SeLeCt") == "SeLeCt"

    def test_char_class_and_any(self):
        p = interp(lambda b: b.object("S", [text(cc("a-c"), any_())]))
        assert p.parse("bz") == "bz"
        assert not p.recognize("dz")
        assert not p.recognize("b")  # any char fails at EOF

    def test_negated_class(self):
        p = interp(lambda b: b.object("S", [text(cc("^0-9"))]))
        assert p.parse("x") == "x"
        assert not p.recognize("5")

    def test_ordered_choice_commits_to_first(self):
        p = interp(lambda b: b.object("S", [text(lit("ab") if False else lit("a")), lit("b")]))
        assert p.recognize("ab")

    def test_prefix_capture_vs_full(self):
        p = interp(lambda b: b.void("S", [lit("aa")], [lit("a")]))
        consumed, _ = p.match_prefix("ab")
        assert consumed == 1

    def test_greedy_repetition(self):
        p = interp(lambda b: b.object("S", [text(star(cc("a")))]))
        assert p.parse("aaaa") == "aaaa"
        assert p.parse("") == ""

    def test_plus_requires_one(self):
        p = interp(lambda b: b.object("S", [text(plus(cc("a")))]))
        assert p.recognize("a")
        assert not p.recognize("")

    def test_zero_width_repetition_terminates(self):
        # The item matches without consuming; the loop must stop.
        p = interp(lambda b: b.void("S", [star(amp(lit("a"))), lit("a")]))
        assert p.recognize("a")

    def test_option(self):
        p = interp(lambda b: b.void("S", [opt(lit("-")), lit("1")]))
        assert p.recognize("-1") and p.recognize("1")

    def test_and_predicate(self):
        p = interp(lambda b: b.object("S", [amp(lit("ab")), text(cc("a"))]))
        consumed, value = p.match_prefix("ab")
        assert consumed == 1 and value == "a"
        assert p.match_prefix("ax")[0] == -1

    def test_not_predicate(self):
        p = interp(lambda b: b.object("S", [bang(lit("0")), text(cc("0-9"))]))
        assert p.parse("5") == "5"
        assert not p.recognize("0")

    def test_not_not_is_and(self):
        p = interp(lambda b: b.object("S", [bang(bang(lit("a"))), text(any_())]))
        assert p.parse("a") == "a"
        assert not p.recognize("b")


class TestValueSemantics:
    def test_void_production_value_none(self):
        p = interp(lambda b: b.void("S", [lit("x")]))
        assert p.parse("x") is None

    def test_text_production(self):
        p = interp(
            lambda b: b.text("S", [cc("a-z"), cc("a-z")]),
        )
        assert p.parse("hi") == "hi"

    def test_object_pass_through_single(self):
        p = interp(lambda b: (b.object("S", [void(lit("(")), ref("T"), void(lit(")"))]), b.text("T", [cc("0-9")])))
        assert p.parse("(5)") == "5"

    def test_object_pass_through_none(self):
        p = interp(lambda b: b.object("S", [lit("x")]))
        assert p.parse("x") is None

    def test_object_pass_through_tuple(self):
        p = interp(lambda b: b.object("S", [text(cc("a")), text(cc("b"))]))
        assert p.parse("ab") == ("a", "b")

    def test_generic_labeled(self):
        p = interp(lambda b: b.generic("S", alt("Pair", text(cc("a")), text(cc("b")))))
        assert p.parse("ab") == GNode("Pair", ("a", "b"))

    def test_generic_unlabeled_single_passes_through(self):
        p = interp(
            lambda b: (
                b.generic("S", alt("Wrap", ref("T"), lit("!")), alt(None, ref("T"))),
                b.text("T", [cc("0-9")]),
            )
        )
        assert p.parse("5") == "5"
        assert p.parse("5!") == GNode("Wrap", ("5",))

    def test_generic_unlabeled_multi_uses_production_name(self):
        p = interp(lambda b: b.generic("S", [text(cc("a")), text(cc("b"))]))
        assert p.parse("ab") == GNode("S", ("a", "b"))

    def test_literals_do_not_contribute(self):
        p = interp(lambda b: b.generic("S", alt("N", lit("k"), text(cc("0-9")))))
        assert p.parse("k7") == GNode("N", ("7",))

    def test_repetition_value_list(self):
        p = interp(lambda b: b.object("S", [star(text(cc("0-9")))]))
        assert p.parse("123") == ["1", "2", "3"]

    def test_repetition_of_void_is_none(self):
        p = interp(lambda b: b.object("S", [bind("x", star(lit("a"))), act("x")]))
        assert p.parse("aaa") is None

    def test_option_value(self):
        p = interp(lambda b: b.object("S", [opt(text(lit("x"))), lit("y")]))
        assert p.parse("xy") == "x"
        assert p.parse("y") is None

    def test_bindings_and_actions(self):
        p = interp(
            lambda b: b.object(
                "S", [bind("a", text(cc("0-9"))), bind("b", text(cc("0-9"))), act("int(a) + int(b)")]
            )
        )
        assert p.parse("34") == 7

    def test_action_helpers_available(self):
        p = interp(
            lambda b: b.object(
                "S", [bind("h", text(cc("a-z"))), bind("t", star(text(cc("a-z")))), act("cons(h, t)")]
            )
        )
        assert p.parse("abc") == ["a", "b", "c"]

    def test_action_cannot_reach_builtins(self):
        p = interp(lambda b: b.object("S", [act("open('/etc/passwd')")]))
        with pytest.raises(Exception):
            p.parse("")

    def test_voided_subexpression(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [void(ref("T")), text(cc("!"))])
        builder.text("T", [cc("a-z")])
        p = PackratInterpreter(builder.build())
        assert p.parse("x!") == "!"

    def test_nested_choice_value(self):
        from repro.peg.expr import Choice

        builder = GrammarBuilder("t", start="S")
        builder.object("S", [bind("v", Choice((text(lit("x")), lit("y")))), act("v")])
        p = PackratInterpreter(builder.build())
        assert p.parse("x") == "x"
        # a choice's dynamic value is the matched branch's raw value, so
        # binding a literal branch captures its text
        assert p.parse("y") == "y"


class TestErrors:
    def test_farthest_failure_position(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [lit("let "), cc("a-z"), lit(" = "), cc("0-9")])
        p = PackratInterpreter(builder.build())
        with pytest.raises(ParseError) as err:
            p.parse("let x = y")
        assert err.value.offset == 8
        assert err.value.line == 1 and err.value.column == 9

    def test_error_mentions_expectations(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [lit("a")], [lit("b")])
        with pytest.raises(ParseError) as err:
            PackratInterpreter(builder.build()).parse("c")
        message = str(err.value)
        assert "'a'" in message and "'b'" in message

    def test_multiline_position(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [lit("a\n"), lit("bb\n"), lit("cc"), lit("c")])
        with pytest.raises(ParseError) as err:
            PackratInterpreter(builder.build()).parse("a\nbb\nccX")
        assert err.value.line == 3 and err.value.column == 3

    def test_undefined_start(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [lit("a")])
        p = PackratInterpreter(builder.build())
        with pytest.raises(AnalysisError):
            p.parse("a", start="Nope")

    def test_untransformed_left_recursion_detected(self):
        builder = GrammarBuilder("t", start="E")
        builder.generic("E", alt("Add", ref("E"), lit("+"), lit("1")), alt(None, lit("1")))
        p = PackratInterpreter(builder.build())
        with pytest.raises(AnalysisError, match="left recursion"):
            p.parse("1+1")


class TestMemoization:
    def grammar(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [ref("A"), lit("x")], [ref("A"), lit("y")])
        builder.void("A", [plus(lit("a"))])
        return builder.build()

    def test_packrat_and_backtrack_agree(self):
        g = self.grammar()
        for sample in ["aaax", "ay", "a", "x"]:
            assert PackratInterpreter(g).recognize(sample) == BacktrackInterpreter(g).recognize(sample)

    def test_memo_entries_recorded(self):
        p = PackratInterpreter(self.grammar())
        p.recognize("aaay")
        assert p.memo_entry_count() > 0
        assert p.memo_size_bytes() > 0

    def test_backtracker_stores_nothing(self):
        p = BacktrackInterpreter(self.grammar())
        p.recognize("aaay")
        assert p.memo_entry_count() == 0

    def test_transient_not_memoized(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [ref("A"), lit("x")], [ref("A"), lit("y")])
        builder.void("A", [plus(lit("a"))], transient=True)
        p = PackratInterpreter(builder.build())
        p.recognize("ay")
        # Only S itself could be memoized; A is transient.
        baseline = PackratInterpreter(self.grammar())
        baseline.recognize("ay")
        assert p.memo_entry_count() < baseline.memo_entry_count()

    def test_chunked_flag(self):
        g = self.grammar()
        chunked = PackratInterpreter(g, chunked=True)
        flat = PackratInterpreter(g, chunked=False)
        assert chunked.recognize("aax") and flat.recognize("aax")
        assert chunked.memo_entry_count() == flat.memo_entry_count()
