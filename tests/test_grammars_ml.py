"""Feature tests for the mini-ML grammar and its example interpreter."""

import sys
from pathlib import Path

import pytest

import repro
from repro.runtime.node import GNode

sys.path.insert(0, str(Path(__file__).parent.parent / "examples"))


@pytest.fixture(scope="module")
def ml():
    return repro.compile_grammar("ml.ML")


class TestSyntax:
    @pytest.mark.parametrize(
        "program",
        [
            "42",
            "x",
            "f x y z",
            "let x = 1 in x + 2",
            "let rec f n = f (n - 1) in f 9",
            "fun x y -> x * y",
            "if a then b else c",
            "match xs with | [] -> 0 | h :: t -> h",
            "match x with | 0 -> a | 1 -> b | _ -> c",
            "[1; 2; 3]",
            "[]",
            "1 :: 2 :: []",
            '"string with \\" escape"',
            "()",
            "(* comment *) 1",
            "(* nested (* comments *) too *) 1",
            "a || b && c",
            "a <> b",
            "x mod 2 = 0",
            '"a" ^ "b"',
            "let f (x :: t) = x in f [1]",  # pattern parameter
            "let main = 1 ;; main",
            "let a = 1 ;; let b = 2 ;; a + b",
        ],
    )
    def test_accepts(self, ml, program):
        assert ml.recognize(program), program

    @pytest.mark.parametrize(
        "program",
        [
            "",
            "let = 3",
            "let x 1",
            "fun -> x",
            "match x with",          # no arms
            "if a then b",           # no else
            "let in x",
            "1 +",
            "[1; ]",
            "(* unterminated",
            "let let = 2 in 3",      # keyword as name
            "mod",                   # keyword alone
        ],
    )
    def test_rejects(self, ml, program):
        assert not ml.recognize(program), program

    def test_application_left_associative(self, ml):
        tree = ml.parse("f a b")
        assert tree[1] == GNode(
            "Apply", (GNode("Apply", (GNode("Var", ("f",)), GNode("Var", ("a",)))), GNode("Var", ("b",)))
        )

    def test_application_binds_tighter_than_operators(self, ml):
        tree = ml.parse("f x + g y")
        assert tree[1].name == "Add"
        assert tree[1][0].name == "Apply"

    def test_cons_right_associative(self, ml):
        tree = ml.parse("1 :: 2 :: []")
        cons = tree[1]
        assert cons.name == "Cons"
        assert cons[1].name == "Cons"

    def test_subtraction_vs_arrow(self, ml):
        assert ml.recognize("fun x -> x - 1")
        tree = ml.parse("a - b - c")
        assert tree[1] == GNode(
            "Sub", (GNode("Sub", (GNode("Var", ("a",)), GNode("Var", ("b",)))), GNode("Var", ("c",)))
        )

    def test_match_arms_attach_to_inner_match(self, ml):
        tree = ml.parse("match x with | [] -> 0 | h :: t -> h + 1")
        arms = tree[1][1]
        assert len(arms) == 2

    def test_backends_agree(self, ml):
        program = "let rec f n = if n = 0 then [] else n :: f (n - 1) ;; f 5"
        assert ml.parse(program) == ml.interpreter().parse(program)

    def test_keywords_not_names(self, ml):
        assert not ml.recognize("let rec = 1 in rec")
        assert ml.recognize("let record = 1 in record")  # prefix is fine


class TestInterpreter:
    @pytest.fixture(scope="class")
    def run(self):
        from miniml_interpreter import run

        return run

    def test_arithmetic(self, run):
        assert run("1 + 2 * 3 - 4") == 3
        assert run("7 / 2") == 3
        assert run("7 mod 2") == 1

    def test_let_and_shadowing(self, run):
        assert run("let x = 1 in let x = x + 1 in x") == 2

    def test_closures_capture(self, run):
        assert run("let make = fun n -> fun x -> x + n in let add5 = make 5 in add5 37") == 42

    def test_currying(self, run):
        assert run("let add a b c = a + b + c ;; add 1 2 3") == 6
        assert run("let add a b = a + b ;; let inc = add 1 ;; inc 41") == 42

    def test_recursion(self, run):
        assert run("let rec fact n = if n <= 1 then 1 else n * fact (n - 1) ;; fact 10") == 3628800

    def test_lists_and_matching(self, run):
        assert run("match [1; 2] with | [] -> 0 | h :: t -> h") == 1
        assert run("match [] with | [] -> 99 | h :: t -> h") == 99
        assert run("1 :: 2 :: []") == [1, 2]

    def test_wildcard_and_literal_patterns(self, run):
        assert run("match 3 with | 0 -> 10 | _ -> 20") == 20
        assert run("match true with | false -> 0 | true -> 1") == 1

    def test_quicksort_program(self, run):
        from miniml_interpreter import QUICKSORT

        assert run(QUICKSORT) == [1, 1, 2, 3, 3, 4, 5, 5, 6, 9]

    def test_higher_order(self, run):
        from miniml_interpreter import CHURCH

        assert run(CHURCH) == 12

    def test_strings(self, run):
        assert run('"a" ^ "bc"') == "abc"

    def test_unbound_variable(self, run):
        with pytest.raises(NameError):
            run("nope")

    def test_match_failure(self, run):
        from miniml_interpreter import MatchFailure

        with pytest.raises(MatchFailure):
            run("match 5 with | 0 -> 1")

    def test_recursive_partial_application(self, run):
        # Regression: a curried recursive function must not shadow itself
        # with its own partial application.
        program = """
        let rec filter p xs =
          match xs with
          | [] -> []
          | h :: t -> if p h then h :: filter p t else filter p t ;;
        filter (fun x -> x mod 2 = 0) [1; 2; 3; 4; 5; 6]
        """
        assert run(program) == [2, 4, 6]


class TestPipelineExtension:
    @pytest.fixture(scope="class")
    def ext(self):
        return repro.compile_grammar("ml.Extended")

    def test_pipe_left_associative(self, ext):
        tree = ext.parse("x |> f |> g")
        pipe = tree[1]
        assert pipe.name == "Pipe" and pipe[0].name == "Pipe"

    def test_base_rejects_pipe(self, ml):
        assert not ml.recognize("x |> f")

    def test_precedence_between_bool_and_compare(self, ext):
        tree = ext.parse("a |> f = 1 && b")
        # && is loosest, |> looser than =, so: (a |> (f... wait:
        # compare layer is the pipe's operand: (a |> (f = 1)) && b
        and_node = tree[1]
        assert and_node.name == "And"
        assert and_node[0].name == "Pipe"

    def test_conservative_over_base(self, ml, ext):
        program = "let rec len xs = match xs with | [] -> 0 | _ :: t -> 1 + len t ;; len [1; 2]"
        assert ml.parse(program) == ext.parse(program)

    def test_interpreter_supports_pipe(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).parent.parent / "examples"))
        from miniml_interpreter import evaluate, BUILTINS

        ext = repro.compile_grammar("ml.Extended")
        tree = ext.parse("let double x = x * 2 ;; [1; 2; 3] |> length |> double")
        # Evaluate through the example interpreter extended inline:
        from miniml_interpreter import run as base_run, make_binding
        from repro.runtime.node import GNode

        # Desugar (Pipe a f) to (Apply f a) with a tiny Transformer.
        from repro.runtime.visitor import Transformer

        class Desugar(Transformer):
            def transform_Pipe(self, node):
                return GNode("Apply", (node[1], node[0]))

        program = Desugar().transform(tree)
        env = dict(BUILTINS)
        for binding in program[0]:
            rec, name, params, value_expr = binding.children
            env[name] = make_binding(rec, name, params, value_expr, env)
        assert evaluate(program[1], env) == 6
