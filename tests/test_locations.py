"""Tests for source locations and failure reporting plumbing."""

import pytest

from repro.errors import ParseError
from repro.locations import LineIndex, Location, line_column
from repro.runtime.base import ParserBase, sizeof_deep


class TestLineColumn:
    def test_start(self):
        assert line_column("abc", 0) == (1, 1)

    def test_middle(self):
        assert line_column("ab\ncd\nef", 4) == (2, 2)

    def test_at_newline(self):
        assert line_column("ab\ncd", 2) == (1, 3)

    def test_after_newline(self):
        assert line_column("ab\ncd", 3) == (2, 1)

    def test_end_of_text(self):
        assert line_column("ab\ncd", 5) == (2, 3)

    def test_beyond_end_clamped(self):
        assert line_column("ab", 99) == (1, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            line_column("ab", -1)

    def test_empty_text(self):
        assert line_column("", 0) == (1, 1)


class TestLineIndexMixedEndings:
    """Regression tests for the corpus-scale line index: mixed terminators,
    form feeds, and tab-heavy lines on large inputs."""

    def test_crlf_is_one_terminator(self):
        index = LineIndex("ab\r\ncd\r\nef")
        assert index.line_count == 3
        assert index.line_column(4) == (2, 1)
        # Offsets pointing *inside* "\r\n" belong to the line it terminates.
        assert index.line_column(2) == (1, 3)
        assert index.line_column(3) == (1, 4)

    def test_lone_cr_is_a_terminator(self):
        index = LineIndex("ab\rcd\ref")
        assert index.line_count == 3
        assert index.line_column(3) == (2, 1)

    def test_mixed_terminators_in_one_text(self):
        index = LineIndex("a\nb\r\nc\rd")
        assert index.line_count == 4
        assert index.line_column(2) == (2, 1)  # after "\n"
        assert index.line_column(5) == (3, 1)  # after "\r\n"
        assert index.line_column(7) == (4, 1)  # after lone "\r"

    def test_cr_then_lf_across_lines_not_merged(self):
        # "\n\r\n" is a "\n" break then a "\r\n" break — two lines, not one.
        index = LineIndex("a\n\r\nb")
        assert index.line_count == 3
        assert index.line_column(4) == (3, 1)

    def test_form_feed_is_not_a_line_break(self):
        index = LineIndex("ab\fcd\nef\x0bgh")
        assert index.line_count == 2
        assert index.line_column(4) == (1, 5)
        assert index.line_column(9) == (2, 4)

    def test_tab_heavy_line_columns_are_character_offsets(self):
        index = LineIndex("\t\tx = 1\n\ty\n")
        assert index.line_column(2) == (1, 3)  # tabs count one column each
        assert index.line_column(9) == (2, 2)

    def test_line_span_carries_crlf_terminator(self):
        text = "ab\r\ncd"
        index = LineIndex(text)
        assert text[slice(*index.line_span(1))] == "ab\r\n"
        assert text[slice(*index.line_span(2))] == "cd"

    def test_multi_megabyte_mixed_input(self):
        """The index stays correct (and is queried many times cheaply) on a
        multi-MB text mixing all three terminators and form feeds."""
        block = "x = 1\n\ty\r\nzzzz\rlast\f line\n"
        repeats = 90_000  # ~2.3 MB, 360k lines
        text = block * repeats
        index = LineIndex(text)
        lines_per_block = 4  # "\f" does not break a line
        assert index.line_count == lines_per_block * repeats + 1
        for k in (0, 1, repeats // 2, repeats - 1):
            offset = k * len(block)
            assert index.line_column(offset) == (k * lines_per_block + 1, 1)
            # Inside the "\rlast..." physical line of block k.
            assert index.line_column(offset + 15) == (k * lines_per_block + 4, 1)
        assert index.line_column(len(text)) == (index.line_count, 1)

    def test_index_queries_are_logarithmic_not_linear(self):
        """Querying a later offset must not scan the text: many queries over
        a huge index complete in time comparable to few queries."""
        import time

        text = "line\n" * 400_000
        index = LineIndex(text)
        offsets = [i * 5 for i in range(0, 400_000, 40)]
        start = time.perf_counter()
        for offset in offsets:
            index.line_column(offset)
        elapsed = time.perf_counter() - start
        # 10k binary searches over 400k lines: generous ceiling that a
        # linear-scan implementation (O(lines) per query) cannot meet.
        assert elapsed < 1.0


class TestParserBaseLocation:
    def test_location_index_matches_line_column(self):
        text = "one\ntwo\nthree\n"
        parser = ParserBase(text)
        for offset in range(len(text) + 1):
            location = parser._location(offset)
            assert (location.line, location.column) == line_column(text, offset)

    def test_location_source(self):
        parser = ParserBase("x")
        parser._source = "file.jay"
        assert parser._location(0).source == "file.jay"


class TestFailureTracking:
    def test_farthest_wins(self):
        parser = ParserBase("abcdef")
        parser._expected(2, "'x'")
        parser._expected(5, "'y'")
        parser._expected(3, "'z'")
        error = parser.parse_error()
        assert error.offset == 5
        assert "'y'" in str(error) and "'z'" not in str(error)

    def test_same_position_accumulates(self):
        parser = ParserBase("ab")
        parser._expected(1, "'x'")
        parser._expected(1, "'y'")
        error = parser.parse_error()
        assert "'x'" in str(error) and "'y'" in str(error)

    def test_eof_failure_described(self):
        parser = ParserBase("ab")
        parser._expected(2, "'c'")
        assert "end of input" in str(parser.parse_error())

    def test_check_complete(self):
        parser = ParserBase("ab")
        assert parser.check_complete(2, "value") == "value"
        parser._expected(1, "'x'")
        with pytest.raises(ParseError):
            parser.check_complete(1, "value")

    def test_same_position_dedupes(self):
        parser = ParserBase("ab")
        for _ in range(12):
            parser._expected(1, "'x'")
        parser._expected(1, "'y'")
        error = parser.parse_error()
        assert error.expected == ("'x'", "'y'")

    def test_dedupe_preserves_first_seen_order(self):
        parser = ParserBase("ab")
        for what in ("'b'", "'a'", "'b'", "'c'", "'a'"):
            parser._expected(1, what)
        assert parser.parse_error().expected == ("'b'", "'a'", "'c'")

    def test_error_names_the_source(self):
        parser = ParserBase("a\nbc")
        parser._source = "file.jay"
        parser._expected(3, "'x'")
        error = parser.parse_error()
        assert error.source == "file.jay"
        assert str(error).startswith("file.jay:2:2:")

    def test_error_uses_cached_line_index(self):
        parser = ParserBase("a\nb\nc")
        parser._expected(4, "'x'")
        error = parser.parse_error()
        # parse_error populated (and used) the _location line index.
        assert parser._line_index is not None
        assert parser._line_index._starts == [0, 2, 4]
        assert (error.line, error.column) == (3, 1)

    def test_reset_clears_failure_state(self):
        parser = ParserBase("first\ninput")
        parser._location(8)  # populate the line index
        parser._expected(3, "'x'")
        parser.reset("second", source="other.mg")
        assert parser._fail_pos == -1
        assert parser._fail_expected == []
        assert parser._line_index is None
        assert parser._length == 6
        parser._expected(0, "'y'")
        assert parser.parse_error().source == "other.mg"


class TestLocationValue:
    def test_str(self):
        assert str(Location("f.mg", 3, 9)) == "f.mg:3:9"

    def test_frozen(self):
        location = Location("f", 1, 1)
        with pytest.raises(AttributeError):
            location.line = 2  # type: ignore[misc]


def test_sizeof_deep_counts_nested():
    flat = sizeof_deep({})
    nested = sizeof_deep({"k": [1, 2, 3], "j": {"x": (4, 5)}})
    assert nested > flat


def test_sizeof_deep_handles_shared_objects():
    shared = [1, 2, 3]
    assert sizeof_deep([shared, shared]) < 2 * sizeof_deep([shared, list(shared)])


def test_sizeof_deep_survives_deep_nesting():
    # Deeper than the default recursion limit: the traversal must be
    # iterative, not recursive (it measures large memo tables in E3/E5).
    import sys

    deep = []
    for _ in range(sys.getrecursionlimit() + 1000):
        deep = [deep]
    assert sizeof_deep(deep) > 0


def test_sizeof_deep_handles_slots_objects():
    class Slotted:
        __slots__ = ("a", "b")

        def __init__(self):
            self.a = [1, 2, 3]
            self.b = {"k": "v"}

    assert sizeof_deep(Slotted()) > sizeof_deep(object())
