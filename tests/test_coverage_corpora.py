"""Grammar-coverage floors for the in-tree example corpora.

Every grammar that ships an ``examples/<name>/`` corpus must keep
succeeded-alternative coverage at or above 90%.  The corpora double as
profiler demo inputs (``repro-prof examples/<name>``), so a regression
here means the observability docs and smoke targets degrade too.

Alternatives that are *genuinely* unreachable from the base composition
are listed per grammar in ``ALLOWED_UNCOVERED`` — each entry must name a
real alternative (the test fails if an allowlisted key disappears from
the grammar, so stale entries are flagged) and must actually be
uncovered (so the allowlist cannot mask later coverage wins).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.profile import ParseProfile, profile_corpus

pytestmark = pytest.mark.prof

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

COVERAGE_FLOOR = 0.90

# (production name, zero-based alternative index) -> reason it cannot be
# reached from the base composition.
ALLOWED_UNCOVERED: dict[str, dict[tuple[str, int], str]] = {
    "calc": {},
    "json": {},
    "jay": {
        # jay.Symbols defines COLON for extensions (the SwitchStmt module
        # consumes it); the base jay.Jay composition never references it.
        ("COLON", 0): "token reserved for grammar extensions",
    },
    "xc": {},
    "ml": {},
}

GRAMMARS = sorted(ALLOWED_UNCOVERED)


def corpus_texts(name: str) -> list[str]:
    directory = EXAMPLES / name
    files = sorted(p for p in directory.iterdir() if p.is_file())
    assert files, f"no corpus files in {directory}"
    return [p.read_text() for p in files]


@pytest.fixture(scope="module", params=GRAMMARS)
def corpus_report(request):
    name = request.param
    profile = ParseProfile()
    report = profile_corpus(
        name,
        corpus_texts(name),
        backend="interp",
        profile=profile,
        grammar_name=name,
    )
    return name, profile, report


class TestCorpusCoverage:
    def test_meets_floor(self, corpus_report):
        name, profile, report = corpus_report
        allowed = ALLOWED_UNCOVERED[name]
        uncovered = set(profile.coverage.uncovered())
        unexpected = sorted(uncovered - set(allowed))
        labels = [profile.coverage.describe(key) for key in unexpected]
        assert not unexpected, (
            f"{name}: uncovered alternatives not in allowlist: {labels}"
        )
        total = profile.coverage.total()
        covered = total - len(uncovered)
        assert total > 0
        assert covered / total >= COVERAGE_FLOOR, (
            f"{name}: coverage {covered}/{total} below {COVERAGE_FLOOR:.0%}"
        )

    def test_allowlist_entries_are_real_and_needed(self, corpus_report):
        name, profile, _ = corpus_report
        keys = set(profile.coverage.keys())
        uncovered = set(profile.coverage.uncovered())
        for key, reason in ALLOWED_UNCOVERED[name].items():
            assert key in keys, (
                f"{name}: allowlisted alternative {key} no longer exists "
                f"({reason})"
            )
            assert key in uncovered, (
                f"{name}: allowlisted alternative {key} is now covered — "
                f"remove it from ALLOWED_UNCOVERED ({reason})"
            )

    def test_corpus_mostly_accepted(self, corpus_report):
        # At most one file per corpus may be intentionally invalid (used
        # to drive reserved-word reject paths); everything else must parse.
        name, _, report = corpus_report
        assert report.parses >= 1
        assert report.rejected <= 1, (
            f"{name}: {report.rejected} corpus files rejected"
        )


def test_report_lists_grammar_and_backend():
    report = profile_corpus("calc", corpus_texts("calc"), grammar_name="calc")
    assert report.grammar == "calc"
    assert report.backend == "interp"
    assert report.coverage_ratio() >= COVERAGE_FLOOR
