"""Property tests over the printer/reader chain.

Random well-formed grammars are pretty-printed to ``.mg`` text; the text
is then read back with BOTH readers (hand-written and self-hosted) and the
resulting productions must equal the originals:

    grammar --format_grammar--> text --parse_module-----------> g1 == grammar
                                    --parse_module_selfhosted--> g2 == grammar

This simultaneously exercises the printer (precedence, escaping), both
readers (one of which is itself a product of the whole pipeline), and the
structural-equality model.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.meta.parser import parse_module
from repro.meta.selfhost import parse_module_selfhosted
from repro.peg.expr import (
    And,
    AnyChar,
    Binding,
    CharClass,
    Choice,
    Literal,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.grammar import Grammar
from repro.peg.pretty import format_grammar
from repro.peg.production import Alternative, Production, ValueKind

_NAMES = ["R0", "R1", "R2"]
_LITERAL_TEXTS = ["a", "ab", "+", "\\", '"', "\n", "\t", "x y", "0", "ü"]
_CLASS_SPECS = ["a-z", "0-9_", "^a-c", "\\]\\-", "A", " \\t"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 3:
        kind = draw(st.sampled_from(["lit", "class", "any", "ref"]))
    else:
        kind = draw(
            st.sampled_from(
                ["lit", "class", "any", "ref", "seq", "choice",
                 "star", "plus", "opt", "and", "not", "void", "text", "bind"]
            )
        )
    if kind == "lit":
        return Literal(draw(st.sampled_from(_LITERAL_TEXTS)), draw(st.booleans()))
    if kind == "class":
        from repro.peg.expr import char_class

        return char_class(draw(st.sampled_from(_CLASS_SPECS)))
    if kind == "any":
        return AnyChar()
    if kind == "ref":
        return Nonterminal(draw(st.sampled_from(_NAMES)))
    if kind == "seq":
        # Use the normalizing constructor: the printer/reader round-trip is
        # specified over *normalized* IR (nested sequences splice — that IS
        # the grouping semantics of the surface language).
        from repro.peg.expr import seq

        return seq(
            *(draw(expressions(depth=depth + 1)) for _ in range(draw(st.integers(2, 3))))
        )
    if kind == "choice":
        from repro.peg.expr import choice

        return choice(
            *(draw(expressions(depth=depth + 1)) for _ in range(draw(st.integers(2, 3))))
        )
    inner = draw(expressions(depth=depth + 1))
    if kind == "star":
        return Repetition(inner, 0)
    if kind == "plus":
        return Repetition(inner, 1)
    if kind == "opt":
        return Option(inner)
    if kind == "and":
        return And(inner)
    if kind == "not":
        return Not(inner)
    if kind == "void":
        return Voided(inner)
    if kind == "text":
        return Text(inner)
    return Binding(draw(st.sampled_from(["x", "y", "val"])), inner)


@st.composite
def grammars(draw) -> Grammar:
    kinds = st.sampled_from(list(ValueKind))
    attribute_sets = st.sets(st.sampled_from(["public", "transient", "withLocation"]))
    productions = []
    for name in _NAMES:
        n_alts = draw(st.integers(1, 3))
        alternatives = []
        for index in range(n_alts):
            label = draw(st.one_of(st.none(), st.sampled_from(["A", "B", "Lbl"])))
            # labels must be unique within a production
            if label is not None and label in [a.label for a in alternatives]:
                label = None
            alternatives.append(Alternative(draw(expressions()), label))
        productions.append(
            Production(
                name,
                draw(kinds),
                tuple(alternatives),
                frozenset(draw(attribute_sets)),
            )
        )
    return Grammar(tuple(productions), start="R0", name="rand.G")


@given(grammars())
@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_print_then_read_is_identity_for_both_readers(grammar):
    printed = format_grammar(grammar)

    for reader in (parse_module, parse_module_selfhosted):
        module = reader(printed, "roundtrip.mg")
        assert module.name == "rand.G"
        reparsed = {p.name: p for p in module.productions}
        assert set(reparsed) == set(grammar.names())
        for production in grammar:
            got = reparsed[production.name]
            assert got.kind == production.kind, (reader.__name__, production.name)
            assert got.attributes == production.attributes
            assert list(got.alternatives) == list(production.alternatives), (
                reader.__name__,
                production.name,
                format_grammar(grammar),
            )


@given(grammars())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_both_readers_always_agree_on_printed_grammars(grammar):
    printed = format_grammar(grammar)
    assert parse_module(printed) == parse_module_selfhosted(printed)


# ---------------------------------------------------------------------------
# Reader agreement on arbitrary (mostly invalid) token soup: whatever one
# reader accepts, the other must accept too, with the same result.
# ---------------------------------------------------------------------------

from repro.errors import GrammarSyntaxError  # noqa: E402

_TOKENS = [
    "module", "import", "modify", "instantiate", "option", "as",
    "public", "transient", "void", "String", "generic", "Object",
    "Name", "a.B", "x", ";", "=", "+=", ":=", "-=", "/", "<", ">",
    "(", ")", "*", "+", "?", "&", "!", ":", ",", "_", "...",
    '"lit"', "[a-z]", "{ x }", "<L>", "text:", "void:",
]


@given(st.lists(st.sampled_from(_TOKENS), max_size=14))
@settings(max_examples=300, deadline=None)
def test_readers_agree_on_token_soup(tokens):
    source = "module t.M;\n" + " ".join(tokens)
    try:
        hand = parse_module(source)
        hand_error = None
    except GrammarSyntaxError:
        hand = None
        hand_error = True
    try:
        hosted = parse_module_selfhosted(source)
        hosted_error = None
    except GrammarSyntaxError:
        hosted = None
        hosted_error = True
    assert (hand_error is None) == (hosted_error is None), source
    if hand is not None:
        assert hand == hosted, source
