"""Unit tests for the profiling collector, reports, and runners.

The hand-computed cases pin the exact event counts a tiny grammar must
produce — if an instrumentation seam drifts (an extra memo probe, a missed
backtrack), these numbers move.
"""

import json

import pytest

from repro.errors import ParseError
from repro.interp import ClosureParser, PackratInterpreter
from repro.peg.builder import GrammarBuilder, cc, lit, ref, text
from repro.profile import (
    CoverageMatrix,
    MemoEvents,
    ParseProfile,
    ProfileReport,
    build_report,
    format_report,
    profile_corpus,
)

pytestmark = pytest.mark.prof


def tiny_grammar():
    """S <- A B / A 'c';  A <- 'a';  B <- 'b'  (all void)."""
    b = GrammarBuilder("t", start="S")
    b.void("S", [ref("A"), ref("B")], [ref("A"), lit("c")])
    b.void("A", [lit("a")])
    b.void("B", [lit("b")])
    return b.build()


@pytest.fixture(params=[True, False], ids=["chunked", "dict"])
def chunked(request):
    return request.param


class TestHandComputedCounts:
    """Parse "ac" with S <- A B / A 'c':

    - S applied once (miss); alternative 1 enters, A succeeds (miss),
      B fails (miss) -> backtrack with 1 wasted char;
    - alternative 2 enters, A is served from the memo (hit), 'c' matches.
    """

    def run(self, chunked, backend="interp"):
        profile = ParseProfile()
        grammar = tiny_grammar()
        if backend == "interp":
            parser = PackratInterpreter(grammar, chunked=chunked, profile=profile)
        else:
            parser = ClosureParser(grammar, chunked=chunked, profile=profile)
        parser.parse("ac")
        return profile

    @pytest.mark.parametrize("backend", ["interp", "closures"])
    def test_counts(self, chunked, backend):
        profile = self.run(chunked, backend)
        assert profile.invocations == {"S": 1, "A": 2, "B": 1}
        assert profile.memo_misses == {"S": 1, "A": 1, "B": 1}
        assert profile.memo_hits == {"A": 1}
        assert profile.successes == {"S": 1, "A": 2}
        assert profile.failures == {"B": 1}
        # Every failed alternative attempt is one backtrack — including the
        # failure of B's only alternative, not just S's rewind.
        assert profile.backtracks == {"S": 1, "B": 1}
        assert profile.wasted_chars == {"S": 1}

    def test_coverage_entered_vs_succeeded(self, chunked):
        matrix = self.run(chunked).coverage
        assert matrix.entered == {("S", 0): 1, ("S", 1): 1, ("A", 0): 1, ("B", 0): 1}
        assert matrix.succeeded == {("S", 1): 1, ("A", 0): 1}

    def test_totals(self, chunked):
        profile = self.run(chunked)
        assert profile.total_invocations() == 4
        assert profile.total_memo_hits() == 1
        assert profile.total_memo_misses() == 3
        assert profile.total_backtracks() == 2
        assert profile.total_wasted_chars() == 1
        assert profile.memo_hit_rate() == pytest.approx(0.25)


class TestBacktrackAccounting:
    def test_ordered_choice_backtracks(self):
        # S <- 'aaa' / 'aa' / 'a' on "a": two failed attempts, then success.
        b = GrammarBuilder("t", start="S")
        b.void("S", [lit("aaa")], [lit("aa")], [lit("a")])
        profile = ParseProfile()
        PackratInterpreter(b.build(), profile=profile).parse("a")
        assert profile.backtracks == {"S": 2}
        assert profile.coverage.entered == {("S", 0): 1, ("S", 1): 1, ("S", 2): 1}
        assert profile.coverage.succeeded == {("S", 2): 1}

    def test_wasted_chars_count_matched_prefix(self):
        # First alternative matches "ab" then dies on 'x': 2 wasted chars.
        b = GrammarBuilder("t", start="S")
        b.void("S", [lit("a"), lit("b"), lit("x")], [lit("a"), lit("b"), lit("c")])
        profile = ParseProfile()
        PackratInterpreter(b.build(), profile=profile).parse("abc")
        assert profile.wasted_chars == {"S": 2}

    def test_failed_parse_records_farthest(self):
        b = GrammarBuilder("t", start="S")
        b.void("S", [ref("A"), lit("b")])
        b.void("A", [lit("a")])
        profile = ParseProfile()
        with pytest.raises(ParseError):
            PackratInterpreter(b.build(), profile=profile).parse("ax")
        assert sum(profile.farthest.values()) >= 1


class TestCoverageMatrix:
    def test_register_exposes_unentered_alternatives(self):
        matrix = CoverageMatrix()
        matrix.register(tiny_grammar())
        assert matrix.total() == 4
        assert matrix.ratio() == 0.0
        assert ("S", 1) in matrix.uncovered()

    def test_ratio_and_uncovered(self):
        matrix = CoverageMatrix()
        matrix.register(tiny_grammar())
        matrix.enter("S", 0)
        matrix.succeed("S", 0)
        matrix.enter("S", 1)
        assert matrix.entered_count() == 2
        assert matrix.succeeded_count() == 1
        assert matrix.ratio() == pytest.approx(0.25)
        assert matrix.ratio(succeeded=False) == pytest.approx(0.5)
        assert ("S", 1) in matrix.uncovered()
        assert ("S", 1) not in matrix.uncovered(succeeded=False)

    def test_merge(self):
        a, b = CoverageMatrix(), CoverageMatrix()
        a.enter("S", 0)
        b.enter("S", 0)
        b.succeed("S", 1)
        a.merge(b)
        assert a.entered[("S", 0)] == 2
        assert a.succeeded[("S", 1)] == 1

    def test_describe_uses_labels(self):
        b = GrammarBuilder("t", start="S")
        b.object("S", [text(lit("a"))], [text(cc("0-9"))])
        grammar = b.build()
        # Give the alternatives labels if the builder recorded none.
        matrix = CoverageMatrix()
        matrix.register(grammar)
        label = matrix.label(("S", 0))
        described = matrix.describe(("S", 0))
        assert described.startswith("S/1")
        if label:
            assert f"<{label}>" in described


class TestReports:
    def make_report(self):
        report = profile_corpus(tiny_grammar(), ["ac", "ab", "zz"], "interp",
                                grammar_name="tiny")
        assert report.parses == 3
        assert report.rejected == 1
        return report

    def test_json_round_trip(self):
        report = self.make_report()
        wire = json.dumps(report.to_json())
        assert ProfileReport.from_json(json.loads(wire)) == report

    def test_json_contents(self):
        data = self.make_report().to_json()
        assert data["grammar"] == "tiny"
        assert data["backend"] == "interp"
        assert data["totals"]["invocations"] > 0
        assert 0.0 <= data["totals"]["memo_hit_rate"] <= 1.0
        assert data["coverage"]["total"] == 4
        by_name = {p["name"]: p for p in data["productions"]}
        assert {"S", "A", "B"} <= set(by_name)
        assert by_name["S"]["backtracks"] >= 1

    def test_uncovered_listing(self):
        report = profile_corpus(tiny_grammar(), ["ac"], "interp")
        uncovered = {(a.production, a.index) for a in report.uncovered_alternatives()}
        assert ("S", 0) in uncovered
        assert ("B", 0) in uncovered  # entered but never succeeded

    def test_format_report_mentions_hotspots_and_coverage(self):
        rendered = format_report(self.make_report())
        assert "memo hit rate" in rendered
        assert "alternative coverage" in rendered
        # A partially covered corpus lists what's missing.
        partial = format_report(profile_corpus(tiny_grammar(), ["ac"], "interp"))
        assert "uncovered" in partial

    def test_build_report_snapshots_collector(self):
        profile = ParseProfile()
        profile.invoke("X")
        profile.memo_miss("X")
        report = build_report(profile, grammar="g", backend="b")
        assert report.invocations == 1
        assert report.memo_misses == 1
        assert report.productions[0].name == "X"


class TestMemoEvents:
    def test_maps_indices_to_names(self):
        profile = ParseProfile()
        events = MemoEvents(profile, ["Alpha", "Beta"])
        events.miss(0, 0)
        events.hit(1, 0, (1, None))
        events.store(0, 0, (1, None))  # stores are not separately counted
        assert profile.memo_misses == {"Alpha": 1}
        assert profile.memo_hits == {"Beta": 1}


class TestRunner:
    def test_profile_corpus_counts_rejections(self):
        report = profile_corpus(tiny_grammar(), ["ab", "ac", "nope"], "interp")
        assert report.parses == 3
        assert report.chars == len("ab") + len("ac") + len("nope")
        assert report.rejected == 1

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            profile_corpus(tiny_grammar(), ["ab"], "warp-drive")

    def test_backends_agree_on_counts(self):
        texts = ["ab", "ac", "zz"]
        reports = {
            backend: profile_corpus(tiny_grammar(), texts, backend)
            for backend in ("interp", "closures", "generated")
        }
        baseline = reports["interp"]
        for report in reports.values():
            assert report.invocations == baseline.invocations
            assert report.memo_hits == baseline.memo_hits
            assert report.memo_misses == baseline.memo_misses
            assert report.backtracks == baseline.backtracks
            assert report.coverage_ratio() == baseline.coverage_ratio()
            assert report.rejected == baseline.rejected

    def test_shared_profile_aggregates(self):
        profile = ParseProfile()
        profile_corpus(tiny_grammar(), ["ac"], "interp", profile=profile)
        profile_corpus(tiny_grammar(), ["ac"], "closures", profile=profile)
        assert profile.parses == 2
        assert profile.invocations["S"] == 2


class TestLanguageHooks:
    def test_parse_profile_hook(self, calc_lang):
        profile = ParseProfile()
        tree = calc_lang.parse("1+2*3", profile=profile)
        assert tree is not None
        assert profile.parses == 1
        assert profile.total_invocations() > 0
        assert profile.total_memo_misses() > 0

    def test_session_profile_accumulates(self, calc_lang):
        profile = ParseProfile()
        session = calc_lang.session(profile=profile)
        session.parse("1+2")
        session.parse("2*3")
        with pytest.raises(ParseError):
            session.parse("1+")
        assert profile.parses == 3
        assert profile.rejected == 1

    def test_profiled_twin_cached(self, calc_lang):
        assert calc_lang.profiled_parser_class is calc_lang.profiled_parser_class
        assert calc_lang.profiled_parser_class is not calc_lang.parser_class

    def test_interpreter_profile_hook(self, calc_lang):
        profile = ParseProfile()
        calc_lang.interpreter(profile=profile).parse("1+2")
        assert profile.total_invocations() > 0

    def test_default_paths_uninstrumented(self, calc_lang):
        # Pay-for-what-you-use: no profile -> no profiling hooks anywhere.
        assert "_profile" not in vars(calc_lang.parser(""))
        assert "prof" not in calc_lang.parser_source
        interp = calc_lang.interpreter()
        assert interp.profile is None
