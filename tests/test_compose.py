"""Integration tests for module composition (the paper's core mechanism)."""

import pytest

from repro.errors import CompositionError
from repro.meta import ModuleLoader
from repro.modules import Composer, compose
from repro.peg.production import ValueKind


def loader_with(**sources):
    loader = ModuleLoader(include_builtin=False)
    for name, text in sources.items():
        loader.register_source(name.replace("_", "."), text)
    return loader


class TestBasicComposition:
    def test_import_merges_namespaces(self):
        loader = loader_with(
            a_A='module a.A; import a.B; S = T "x" ;',
            a_B='module a.B; T = "t" ;',
        )
        grammar = compose("a.A", loader)
        assert grammar.names() == ["T", "S"]  # dependency first
        assert grammar.start == "S"

    def test_duplicate_production_rejected(self):
        loader = loader_with(
            a_A='module a.A; import a.B; S = "s" ;',
            a_B='module a.B; S = "other" ;',
        )
        with pytest.raises(CompositionError, match="defined in both"):
            compose("a.A", loader)

    def test_missing_module(self):
        loader = loader_with(a_A="module a.A; import a.Gone; S = \"s\" ;")
        with pytest.raises(CompositionError, match="cannot find"):
            compose("a.A", loader)

    def test_name_mismatch_rejected(self):
        loader = loader_with(a_A="module a.WRONG; S = \"s\" ;")
        with pytest.raises(CompositionError, match="declares itself"):
            compose("a.A", loader)

    def test_circular_import_rejected(self):
        loader = loader_with(
            a_A='module a.A; import a.B; S = "s" ;',
            a_B='module a.B; import a.A; T = "t" ;',
        )
        with pytest.raises(CompositionError, match="circular"):
            compose("a.A", loader)

    def test_diamond_import_ok(self):
        loader = loader_with(
            a_Top='module a.Top; import a.L; import a.R; S = L R ;',
            a_L='module a.L; import a.Base; L = Base "l" ;',
            a_R='module a.R; import a.Base; R = Base "r" ;',
            a_Base='module a.Base; Base = "b" ;',
        )
        grammar = compose("a.Top", loader)
        assert set(grammar.names()) == {"S", "L", "R", "Base"}

    def test_options_united(self):
        loader = loader_with(
            a_A='module a.A; import a.B; option withLocation; S = T ;',
            a_B='module a.B; option verbose; T = "t" ;',
        )
        grammar = compose("a.A", loader)
        assert grammar.options == frozenset({"withLocation", "verbose"})

    def test_explicit_start_override(self):
        loader = loader_with(a_A='module a.A; S = T ; T = "t" ;')
        grammar = compose("a.A", loader, start="T")
        assert grammar.start == "T"

    def test_start_prefers_public(self):
        loader = loader_with(a_A='module a.A; Helper = "h" ; public S = Helper ;')
        assert compose("a.A", loader).start == "S"

    def test_dangling_reference_rejected_at_composition(self):
        loader = loader_with(a_A='module a.A; S = Ghost ;')
        with pytest.raises(Exception, match="undefined references"):
            compose("a.A", loader)


class TestModifications:
    BASE = """
    module b.Base;
    generic S = <One> "1" / <Two> "2" ;
    """

    def test_addition_prepend_and_append(self):
        loader = loader_with(
            b_Base=self.BASE,
            b_Ext="""
            module b.Ext;
            modify b.Base;
            S += <Zero> "0" / ... / <Three> "3" ;
            """,
        )
        grammar = compose("b.Ext", loader)
        assert grammar["S"].label_names() == ["Zero", "One", "Two", "Three"]

    def test_addition_duplicate_label_rejected(self):
        loader = loader_with(
            b_Base=self.BASE,
            b_Ext='module b.Ext; modify b.Base; S += <One> "x" / ... ;',
        )
        with pytest.raises(CompositionError, match="already has an alternative"):
            compose("b.Ext", loader)

    def test_removal(self):
        loader = loader_with(
            b_Base=self.BASE,
            b_Ext="module b.Ext; modify b.Base; S -= <One> ;",
        )
        grammar = compose("b.Ext", loader)
        assert grammar["S"].label_names() == ["Two"]

    def test_removal_of_missing_label_rejected(self):
        loader = loader_with(
            b_Base=self.BASE,
            b_Ext="module b.Ext; modify b.Base; S -= <Nine> ;",
        )
        with pytest.raises(CompositionError, match="no alternative"):
            compose("b.Ext", loader)

    def test_removal_of_everything_rejected(self):
        loader = loader_with(
            b_Base=self.BASE,
            b_Ext="module b.Ext; modify b.Base; S -= <One>, <Two> ;",
        )
        with pytest.raises(CompositionError, match="without alternatives"):
            compose("b.Ext", loader)

    def test_override_keeps_kind_by_default(self):
        loader = loader_with(
            b_Base=self.BASE,
            b_Ext='module b.Ext; modify b.Base; S := <Only> "x" ;',
        )
        grammar = compose("b.Ext", loader)
        assert grammar["S"].kind is ValueKind.GENERIC
        assert grammar["S"].label_names() == ["Only"]

    def test_override_changes_kind_when_stated(self):
        loader = loader_with(
            b_Base=self.BASE,
            b_Ext='module b.Ext; modify b.Base; void S := "x" ;',
        )
        assert compose("b.Ext", loader)["S"].kind is ValueKind.VOID

    def test_modification_without_modify_clause_rejected(self):
        loader = loader_with(
            b_Base=self.BASE,
            b_Ext='module b.Ext; import b.Base; S += <X> "x" ;',
        )
        with pytest.raises(CompositionError, match="no 'modify'"):
            compose("b.Ext", loader)

    def test_modification_of_unknown_production_rejected(self):
        loader = loader_with(
            b_Base=self.BASE,
            b_Ext='module b.Ext; modify b.Base; Ghost += <X> "x" ;',
        )
        with pytest.raises(CompositionError, match="undefined production"):
            compose("b.Ext", loader)

    def test_two_independent_modifiers_compose(self):
        loader = loader_with(
            b_Base=self.BASE,
            b_E1='module b.E1; modify b.Base; S += ... / <Three> "3" ;',
            b_E2='module b.E2; modify b.Base; S += ... / <Four> "4" ;',
            b_All="module b.All; import b.E1; import b.E2; public Top = S ;",
        )
        grammar = compose("b.All", loader)
        assert set(grammar["S"].label_names()) == {"One", "Two", "Three", "Four"}


class TestParameterizedModules:
    LIST = """
    module util.List(Element);
    import Element;
    Object List = head:Item tail:( "," Item )* { cons(head, tail) } ;
    """

    def test_instantiate(self):
        loader = loader_with(
            util_List=self.LIST,
            m_Num='module m.Num; Item = text:( [0-9]+ ) ;',
            m_Top="""
            module m.Top;
            import m.Num;
            instantiate util.List(m.Num) as m.NumList;
            public S = List ;
            """,
        )
        grammar = compose("m.Top", loader)
        assert "List" in grammar and "Item" in grammar

    def test_parameterized_requires_instantiation(self):
        loader = loader_with(
            util_List=self.LIST,
            m_Top="module m.Top; import util.List; public S = List ;",
        )
        with pytest.raises(CompositionError, match="parameterized"):
            compose("m.Top", loader)

    def test_wrong_arity(self):
        loader = loader_with(
            util_List=self.LIST,
            m_Num="module m.Num; Item = [0-9] ;",
            m_Top="""
            module m.Top;
            import m.Num;
            instantiate util.List(m.Num, m.Num) as m.L;
            public S = List ;
            """,
        )
        with pytest.raises(CompositionError, match="argument"):
            compose("m.Top", loader)

    def test_parameter_forwarding(self):
        loader = loader_with(
            util_Wrap="""
            module util.Wrap(Inner);
            instantiate util.List(Inner) as util.WrapList;
            Wrapped = "[" List "]" ;
            """,
            util_List=self.LIST,
            m_Num='module m.Num; Item = text:( [0-9]+ ) ;',
            m_Top="""
            module m.Top;
            import m.Num;
            instantiate util.Wrap(m.Num) as m.W;
            public S = Wrapped ;
            """,
        )
        grammar = compose("m.Top", loader)
        assert {"Wrapped", "List", "Item"} <= set(grammar.names())

    def test_conflicting_instances_rejected(self):
        loader = loader_with(
            util_List=self.LIST,
            m_A="module m.A; Item = [0-9] ;",
            m_B="module m.B; Item2 = [a-z] ;",
            m_Top="""
            module m.Top;
            import m.A;
            import m.B;
            instantiate util.List(m.A) as m.L;
            instantiate util.List(m.B) as m.L;
            public S = List ;
            """,
        )
        with pytest.raises(CompositionError, match="conflicting"):
            compose("m.Top", loader)


class TestComposerIntrospection:
    def test_instance_listing(self):
        loader = loader_with(
            a_A='module a.A; import a.B; S = T ;',
            a_B='module a.B; T = "t" ;',
        )
        composer = Composer(loader)
        composer.compose("a.A")
        assert set(composer.instance_names()) == {"a.A", "a.B"}
        assert dict(composer.instance_modules())["a.B"].name == "a.B"
