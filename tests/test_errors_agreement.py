"""The ``errors`` optimization must not change what errors are reported.

With the flag on, generated parsers track farthest failures through
precomputed constant expected-tables; with it off, they call
``_expected()`` per failure.  Both paths must report the *same* failure
offset and the *same* expected set for any malformed input — the
optimization is about the cost of error bookkeeping, never its content.

The corpus mixes hand-written malformed inputs with mutated workload
output, so both shallow failures (wrong first token) and deep ones
(failure after a long valid prefix) are covered.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.difftest import mutate
from repro.errors import ParseError
from repro.optim import Options
from repro.workloads import generate_jay_program, generate_json_document

HANDWRITTEN = {
    "calc.Calculator": ["", "1 +", "(1 + 2", "1 ** 2", "a", "1 + (2 *"],
    "json.Json": ["", "{", '{"a": }', "[1,]", '"\\a"', '{"a": 1,, "b": 2}'],
    "jay.Jay": ["", "class", "class A { int f(", "class A { int x = ; }"],
}

MUTATION_SOURCES = {
    "calc.Calculator": lambda: ["(1 + 2) * 3 - 4 / 5"] * 6,
    "json.Json": lambda: [generate_json_document(size=4, seed=s) for s in range(6)],
    "jay.Jay": lambda: [generate_jay_program(size=4, seed=s) for s in range(4)],
}


def _malformed_corpus(root: str, reference) -> list[str]:
    corpus = list(HANDWRITTEN[root])
    rng = random.Random(13)
    for text in MUTATION_SOURCES[root]():
        mutant = mutate(text, rng, edits=rng.randint(1, 3))
        if not reference.recognize(mutant):
            corpus.append(mutant)
    return corpus


@pytest.mark.parametrize("root", sorted(HANDWRITTEN), ids=lambda r: r.split(".")[0])
def test_errors_flag_reports_identical_failures(root):
    grammar = repro.load_grammar(root)
    with_errors = repro.compile_grammar(grammar, Options.all(), cache=False)
    without_errors = repro.compile_grammar(
        grammar, Options.all().without("errors"), cache=False
    )
    assert with_errors.options.errors and not without_errors.options.errors

    checked = 0
    for text in _malformed_corpus(root, with_errors):
        with pytest.raises(ParseError) as on_info:
            with_errors.parse(text)
        with pytest.raises(ParseError) as off_info:
            without_errors.parse(text)
        on, off = on_info.value, off_info.value
        assert on.offset == off.offset, f"offsets differ on {text!r}"
        assert set(on.expected) == set(off.expected), f"expected sets differ on {text!r}"
        checked += 1
    assert checked >= len(HANDWRITTEN[root])
