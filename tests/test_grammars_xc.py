"""Feature tests for the xC grammar family."""

import pytest

from repro.errors import ParseError


def wrap(statements):
    return f"int main(void) {{ {statements} }}"


class TestBaseXC:
    @pytest.mark.parametrize(
        "program",
        [
            "int main(void) { return 0; }",
            "int x = 1;",
            "unsigned long big = 0xffffffff;",
            "struct point { int x; int y; };",
            "int add(int a, int b) { return a + b; }",
            "int deref(int *p) { return *p; }",
            "#include <stdio.h>\nint main(void) { return 0; }",
            wrap("int *p; int **pp; p = &x; pp = &p;"),
            wrap("x = a << 2 | b & 0x0f ^ c;"),
            wrap("s.field = t->field;"),
            wrap("x++; ++x; y--; --y;"),
            wrap("if (a) b = 1; else b = 2;"),
            wrap("while (n) n = n - 1;"),
            wrap("do { n--; } while (n > 0);"),
            wrap("for (i = 0; i < 10; i++) continue;"),
            wrap("for (int i = 0; i < 10; i++) { }"),
            wrap("switch (c) { case 1: break; default: break; }"),
            wrap("goto done; done: return 1;"),
            wrap("int arr[10]; arr[0] = '\\n';"),
            wrap("float f = 1.5f; double d = .25;"),
            wrap('char *s = "hello\\n";'),
            wrap("x = a, b, c;"),
            wrap("y = cond ? a : b;"),
        ],
    )
    def test_accepts(self, xc_lang, program):
        assert xc_lang.recognize(program), program

    @pytest.mark.parametrize(
        "program",
        [
            "",
            "int main( { }",
            wrap("int = 3;"),
            wrap("x = ;"),
            wrap("until (x) { }"),  # extension-only
            "struct { int x; };",  # anonymous structs unsupported in subset
        ],
    )
    def test_rejects(self, xc_lang, program):
        assert not xc_lang.recognize(program), program

    def test_shift_vs_relational(self, xc_lang):
        tree = xc_lang.parse(wrap("x = a < b << 2;"))
        less = tree.find_all("Less")[0]
        assert less[1].name == "ShiftLeft"

    def test_pointer_declarator_nests(self, xc_lang):
        tree = xc_lang.parse("int **pp = 0;")
        pointer = tree.find_all("Pointer")[0]
        assert pointer[0].name == "Pointer"

    def test_array_declarator_left_recursion(self, xc_lang):
        tree = xc_lang.parse("int grid[3][4];")
        arrays = tree.find_all("ArrayDecl")
        assert len(arrays) == 2
        assert arrays[0][0].name == "ArrayDecl"  # outer wraps inner


class TestUntilExtension:
    def test_until_statement(self, xc_extended_lang):
        tree = xc_extended_lang.parse(wrap("until (n == 0) { n = n - 1; }"))
        until = tree.find_all("Until")[0]
        assert until[0].name == "Equal"

    def test_until_reserved(self, xc_extended_lang):
        assert not xc_extended_lang.recognize(wrap("int until = 3;"))

    def test_base_programs_still_parse(self, xc_lang, xc_extended_lang):
        program = "int f(int n) { while (n) n--; return n; }"
        assert xc_lang.parse(program) == xc_extended_lang.parse(program)


class TestInterpreterAgreement:
    def test_generated_matches_interpreter(self, xc_lang):
        program = wrap("x = a + b * c - d[2]; if (x) return x;")
        assert xc_lang.parse(program) == xc_lang.interpreter().parse(program)
