"""Shared fixtures.

Compiled languages are session-scoped: composing + optimizing + generating
a parser for Jay takes real time, and the grammar objects are immutable, so
sharing them across tests is safe.
"""

from __future__ import annotations

import pytest

import repro
from repro.meta import ModuleLoader

CALC_CORE = """
module t.Core;
import t.Spacing;
public generic Expr =
    <Add> Expr void:"+" Spacing Term
  / <Sub> Expr void:"-" Spacing Term
  / Term
  ;
generic Term =
    <Mul> Term void:"*" Spacing Atom
  / Atom
  ;
Object Atom =
    void:"(" Spacing Expr void:")" Spacing
  / Number
  ;
Object Number = text:( [0-9]+ ) Spacing ;
"""

CALC_SPACING = """
module t.Spacing;
transient void Spacing = ( " " / "\\t" / "\\n" )* ;
"""


@pytest.fixture()
def tiny_loader() -> ModuleLoader:
    """A loader with a small self-contained calculator grammar."""
    loader = ModuleLoader(include_builtin=False)
    loader.register_source("t.Core", CALC_CORE)
    loader.register_source("t.Spacing", CALC_SPACING)
    return loader


@pytest.fixture()
def tiny_grammar(tiny_loader):
    return repro.load_grammar("t.Core", loader=tiny_loader)


@pytest.fixture(scope="session")
def calc_lang():
    return repro.compile_grammar("calc.Calculator")


@pytest.fixture(scope="session")
def json_lang():
    return repro.compile_grammar("json.Json")


@pytest.fixture(scope="session")
def jay_lang():
    return repro.compile_grammar("jay.Jay")


@pytest.fixture(scope="session")
def jay_extended_lang():
    return repro.compile_grammar("jay.Extended")


@pytest.fixture(scope="session")
def xc_lang():
    return repro.compile_grammar("xc.XC")


@pytest.fixture(scope="session")
def xc_extended_lang():
    return repro.compile_grammar("xc.Extended")
