"""Pretty-printer tests, including the print→parse round-trip."""

import pytest

from repro.meta import ModuleLoader, parse_module
from repro.modules import compose
from repro.peg.builder import (
    GrammarBuilder,
    act,
    alt,
    amp,
    any_,
    bang,
    bind,
    cc,
    lit,
    opt,
    plus,
    ref,
    star,
    text,
    void,
)
from repro.peg.expr import Choice, Literal, Sequence
from repro.peg.pretty import format_expression, format_grammar, format_production, quote_literal


class TestExpressionFormatting:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            (lit("abc"), '"abc"'),
            (lit("se", ignore_case=True), '"se"i'),
            (lit('q"\n'), '"q\\"\\n"'),
            (cc("a-z0"), "[0a-z]"),
            (cc("^a"), "[^a]"),
            (any_(), "_"),
            (ref("Name"), "Name"),
            (star(lit("a")), '"a"*'),
            (plus(ref("A")), "A+"),
            (opt(ref("A")), "A?"),
            (amp(ref("A")), "&A"),
            (bang(ref("A")), "!A"),
            (bind("x", ref("A")), "x:A"),
            (void(ref("A")), "void:A"),
            (text(ref("A")), "text:A"),
            (act("cons(a, b)"), "{ cons(a, b) }"),
        ],
    )
    def test_atoms(self, expr, expected):
        assert format_expression(expr) == expected

    def test_sequence_spacing(self):
        assert format_expression(Sequence((lit("a"), ref("B")))) == '"a" B'

    def test_choice_parenthesized_in_sequence(self):
        expr = Sequence((Choice((lit("a"), lit("b"))), lit("c")))
        assert format_expression(expr) == '("a" / "b") "c"'

    def test_suffix_on_group(self):
        assert format_expression(star(lit("a"), lit("b"))) == '("a" "b")*'

    def test_class_escapes(self):
        # ranges are normalized into sorted order, '-' < ']'
        assert format_expression(cc("\\]\\-")) == "[\\-\\]]"

    def test_quote_literal_control_chars(self):
        assert quote_literal("\t") == '"\\t"'


class TestRoundTrip:
    def grammar(self):
        builder = GrammarBuilder("demo", start="S")
        builder.generic(
            "S",
            alt("Pair", ref("T"), void(lit(",")), ref("T")),
            alt(None, ref("T")),
            public=True,
        )
        builder.object("T", [bind("d", text(plus(cc("0-9")))), act("d")])
        builder.void("Sp", [star(Choice((lit(" "), lit("\t"))))], transient=True)
        builder.text("Word", [cc("a-z"), star(cc("a-z0-9"))])
        return builder.build(validate=False)

    def test_print_then_parse_is_identity(self):
        grammar = self.grammar()
        printed = format_grammar(grammar)
        module = parse_module(printed)
        assert module.name == "demo"
        reparsed = {p.name: p for p in module.productions}
        for production in grammar:
            original = production
            parsed = reparsed[production.name]
            assert parsed.kind == original.kind
            assert parsed.attributes == original.attributes
            assert [a.label for a in parsed.alternatives] == [
                a.label for a in original.alternatives
            ]
            assert [a.expr for a in parsed.alternatives] == [
                a.expr for a in original.alternatives
            ]

    def test_shipped_grammars_round_trip(self):
        for root in ("calc.Calculator", "json.Json"):
            grammar = compose(root, ModuleLoader())
            printed = format_grammar(grammar)
            module = parse_module(printed)
            reparsed = {p.name: p for p in module.productions}
            for production in grammar:
                assert reparsed[production.name].alternatives == tuple(
                    a.with_expr(a.expr) for a in production.alternatives
                ) or [a.expr for a in reparsed[production.name].alternatives] == [
                    a.expr for a in production.alternatives
                ]

    def test_production_format_shape(self):
        production = self.grammar()["S"]
        rendered = format_production(production)
        lines = rendered.splitlines()
        assert lines[0] == "public generic S ="
        assert lines[1].startswith("    <Pair>")
        assert lines[2].startswith("  / ")
        assert lines[-1] == "  ;"
