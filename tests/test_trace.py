"""Tests for the parse tracer."""

import pytest

import repro
from repro.interp import (
    BacktrackInterpreter,
    PackratInterpreter,
    format_trace,
    trace_parse,
    trace_statistics,
)
from repro.peg.builder import GrammarBuilder, cc, lit, plus, ref, text


def grammar():
    builder = GrammarBuilder("t", start="S")
    builder.void("S", [ref("A"), lit("x")], [ref("A"), lit("y")])
    builder.void("A", [plus(lit("a"))], memo=True)
    return builder.build()


class TestTraceParse:
    def test_successful_parse(self):
        interp = PackratInterpreter(grammar())
        value, events, error = trace_parse(interp, "aay")
        assert error is None
        names = [e.production for e in events]
        assert names.count("S") == 1
        assert names.count("A") == 2  # once per S alternative

    def test_memo_hit_recorded(self):
        interp = PackratInterpreter(grammar())
        _, events, _ = trace_parse(interp, "aay")
        a_events = [e for e in events if e.production == "A"]
        assert [e.from_memo for e in a_events] == [False, True]

    def test_no_memo_hits_without_memoization(self):
        interp = BacktrackInterpreter(grammar())
        _, events, _ = trace_parse(interp, "aay")
        assert not any(e.from_memo for e in events)

    def test_failure_returns_error(self):
        interp = PackratInterpreter(grammar())
        value, events, error = trace_parse(interp, "aaz")
        assert value is None and error is not None
        assert any(not e.matched for e in events)

    def test_spans(self):
        interp = PackratInterpreter(grammar())
        _, events, _ = trace_parse(interp, "ax")
        a_event = next(e for e in events if e.production == "A" and e.matched)
        assert (a_event.position, a_event.end) == (0, 1)

    def test_event_limit(self):
        interp = PackratInterpreter(repro.load_grammar("calc.Calculator"))
        from repro.optim import prepare

        interp = PackratInterpreter(prepare(repro.load_grammar("calc.Calculator")).grammar)
        _, events, _ = trace_parse(interp, "1+2*3", limit=5)
        assert len(events) == 5


class TestFormatting:
    def test_format_contains_positions_and_outcomes(self):
        interp = PackratInterpreter(grammar())
        _, events, _ = trace_parse(interp, "ax")
        rendered = format_trace(events)
        assert "S @0" in rendered
        assert "= 0:1" in rendered or "= 0:2" in rendered

    def test_format_truncates(self):
        interp = PackratInterpreter(grammar())
        _, events, _ = trace_parse(interp, "aaaaaay")
        rendered = format_trace(events, max_events=2)
        assert "more events" in rendered

    def test_memo_marker_shown(self):
        interp = PackratInterpreter(grammar())
        _, events, _ = trace_parse(interp, "aay")
        assert "(memo)" in format_trace(events)


class TestStatistics:
    def test_counts(self):
        interp = PackratInterpreter(grammar())
        _, events, _ = trace_parse(interp, "aay")
        stats = trace_statistics(events)
        assert stats["applications"] == len(events)
        assert stats["memo_hits"] == 1
        assert stats["reasked_questions"] == 1  # A at 0, asked twice

    def test_backtracker_reasks_without_memo(self):
        g = grammar()
        _, packrat_events, _ = trace_parse(PackratInterpreter(g), "aaay")
        _, naive_events, _ = trace_parse(BacktrackInterpreter(g), "aaay")
        assert trace_statistics(naive_events)["memo_hits"] == 0
        assert (
            trace_statistics(naive_events)["reasked_questions"]
            >= trace_statistics(packrat_events)["reasked_questions"]
        )
