"""Unit tests for the PEG expression IR (repro.peg.expr)."""

import pytest

from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Sequence,
    Text,
    Voided,
    char_class,
    children,
    choice,
    literal,
    rebuild,
    referenced_names,
    seq,
    transform,
    walk,
)


class TestLiteral:
    def test_basic(self):
        lit = Literal("abc")
        assert lit.text == "abc"
        assert not lit.ignore_case

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Literal("")

    def test_literal_helper_maps_empty_to_epsilon(self):
        assert literal("") == Epsilon()
        assert literal("x") == Literal("x")

    def test_equality_and_hash(self):
        assert Literal("a") == Literal("a")
        assert Literal("a") != Literal("a", ignore_case=True)
        assert hash(Literal("a")) == hash(Literal("a"))


class TestCharClass:
    def test_matches_ranges(self):
        cls = CharClass((("a", "z"), ("0", "9")))
        assert cls.matches("m")
        assert cls.matches("5")
        assert not cls.matches("A")

    def test_negated(self):
        cls = CharClass((("a", "z"),), negated=True)
        assert cls.matches("A")
        assert not cls.matches("q")

    def test_ranges_normalized_sorted(self):
        a = CharClass((("x", "z"), ("a", "c")))
        b = CharClass((("a", "c"), ("x", "z")))
        assert a == b

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            CharClass((("z", "a"),))
        with pytest.raises(ValueError):
            CharClass((("ab", "c"),))

    def test_first_chars(self):
        assert char_class("ab").first_chars() == frozenset("ab")
        assert char_class("^a").first_chars() is None

    def test_parse_spec_ranges_and_escapes(self):
        cls = char_class("a-c_\\n")
        assert cls.matches("b")
        assert cls.matches("_")
        assert cls.matches("\n")
        assert not cls.matches("d")

    def test_parse_spec_negation(self):
        cls = char_class("^0-9")
        assert cls.negated
        assert cls.matches("x")
        assert not cls.matches("3")

    def test_dangling_backslash(self):
        with pytest.raises(ValueError):
            char_class("ab\\")


class TestNormalizingConstructors:
    def test_seq_flattens(self):
        inner = seq(Literal("a"), Literal("b"))
        outer = seq(inner, Literal("c"))
        assert isinstance(outer, Sequence)
        assert len(outer.items) == 3

    def test_seq_drops_epsilon(self):
        assert seq(Epsilon(), Literal("a"), Epsilon()) == Literal("a")

    def test_seq_empty_is_epsilon(self):
        assert seq() == Epsilon()

    def test_choice_flattens(self):
        inner = choice(Literal("a"), Literal("b"))
        outer = choice(inner, Literal("c"))
        assert isinstance(outer, Choice)
        assert len(outer.alternatives) == 3

    def test_choice_drops_fail(self):
        assert choice(Fail(), Literal("a")) == Literal("a")

    def test_choice_empty_is_fail(self):
        assert choice() == Fail()

    def test_choice_prunes_after_epsilon(self):
        pruned = choice(Literal("a"), Epsilon(), Literal("b"))
        assert isinstance(pruned, Choice)
        assert pruned.alternatives == (Literal("a"), Epsilon())


class TestRepetition:
    def test_min_validation(self):
        Repetition(Literal("a"), 0)
        Repetition(Literal("a"), 1)
        with pytest.raises(ValueError):
            Repetition(Literal("a"), 2)


class TestTraversal:
    def setup_method(self):
        self.expr = seq(
            Binding("x", Nonterminal("A")),
            choice(Literal("b"), Voided(Nonterminal("C"))),
            Repetition(Text(Nonterminal("D")), 1),
        )

    def test_children_roundtrip(self):
        kids = children(self.expr)
        assert rebuild(self.expr, kids) == self.expr

    def test_rebuild_arity_checked(self):
        with pytest.raises(ValueError):
            rebuild(self.expr, ())

    def test_rebuild_leaf_unchanged(self):
        assert rebuild(Literal("a"), ()) == Literal("a")

    def test_walk_visits_everything(self):
        names = {type(node).__name__ for node in walk(self.expr)}
        assert {"Sequence", "Binding", "Nonterminal", "Choice", "Literal",
                "Voided", "Repetition", "Text"} <= names

    def test_referenced_names(self):
        assert referenced_names(self.expr) == {"A", "C", "D"}

    def test_transform_bottom_up(self):
        def rename(node):
            if isinstance(node, Nonterminal):
                return Nonterminal(node.name.lower())
            return node

        renamed = transform(self.expr, rename)
        assert referenced_names(renamed) == {"a", "c", "d"}
        # original untouched (immutability)
        assert referenced_names(self.expr) == {"A", "C", "D"}

    def test_transform_identity_preserves_structure(self):
        assert transform(self.expr, lambda e: e) == self.expr


class TestCharSwitch:
    def test_children_and_rebuild(self):
        switch = CharSwitch(
            ((frozenset("a"), Literal("a")), (frozenset("b"), Literal("b"))),
            Fail("x"),
        )
        kids = children(switch)
        assert len(kids) == 3
        rebuilt = rebuild(switch, kids)
        assert rebuilt == switch
