"""Tests for the differential-testing harness itself.

Three layers:

- unit tests for the pieces (sentence generation, mutation, shrinking,
  oracle comparison);
- a sanity check that a *deliberately broken* optimization pass injected as
  an extra backend is caught by the oracle and shrunk to a tiny, ready-to-
  paste counterexample — the harness's whole reason to exist;
- a bounded fuzz smoke run (marked ``fuzz``) that executes inside tier-1,
  with the full-size run left to ``make fuzz``.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.difftest import (
    Backend,
    DifferentialOracle,
    SentenceGenerator,
    fuzz_grammar,
    min_costs,
    mutate,
    regression_test_source,
    shrink,
)
from repro.interp import PackratInterpreter
from repro.optim import Options, prepare


# -- sentence generation --------------------------------------------------------------


class TestSentenceGenerator:
    def test_min_costs_tiny_grammar(self, tiny_grammar):
        costs = min_costs(tiny_grammar)
        assert costs["Number"] == 1
        assert costs["Expr"] == 1  # via the plain Term alternative
        assert costs["Spacing"] == 0

    def test_deterministic_for_equal_seeds(self, tiny_grammar):
        first = SentenceGenerator(tiny_grammar, random.Random(3))
        second = SentenceGenerator(tiny_grammar, random.Random(3))
        assert [first.generate() for _ in range(20)] == [
            second.generate() for _ in range(20)
        ]

    def test_sentences_parse_with_reference(self, tiny_grammar):
        reference = PackratInterpreter(
            prepare(tiny_grammar, Options.none(), check=False).grammar, chunked=False
        )
        generator = SentenceGenerator(tiny_grammar, random.Random(5))
        for _ in range(50):
            sentence = generator.generate()
            reference.parse(sentence)  # raises on rejection

    def test_length_budget_bounds_output(self, tiny_grammar):
        generator = SentenceGenerator(
            tiny_grammar, random.Random(5), max_length=50
        )
        # The budget collapses derivation to cheapest choices once crossed;
        # output may overshoot only by the cheapest completion's length.
        assert all(len(generator.generate()) < 200 for _ in range(30))

    def test_respects_start_override(self, tiny_grammar):
        generator = SentenceGenerator(tiny_grammar, random.Random(5))
        number = generator.generate(start="Number")
        assert number.strip().isdigit()


class TestMutate:
    def test_deterministic_and_changing(self):
        text = "(1 + 2) * 34"
        assert mutate(text, random.Random(9)) == mutate(text, random.Random(9))
        changed = sum(
            mutate(text, random.Random(seed)) != text for seed in range(20)
        )
        assert changed >= 18  # a mutation may occasionally be a no-op

    def test_empty_input_grows(self):
        assert mutate("", random.Random(1)) != "" or mutate("", random.Random(2)) != ""


class TestShrink:
    def test_reduces_to_minimal_core(self):
        result = shrink("aaaa-Xq-bbbb", lambda t: "X" in t)
        assert result == "X"

    def test_canonicalizes_characters(self):
        # Interesting = "has at least 3 characters": content is free, so
        # every character should settle on the first canonical letter.
        result = shrink("zzz!?", lambda t: len(t) >= 3)
        assert result == "aaa"

    def test_never_returns_uninteresting(self):
        predicate = lambda t: t.count("(") == t.count(")") and "()" in t
        result = shrink("x(()y)z()", predicate)
        assert predicate(result)
        assert len(result) <= 4


# -- the oracle catches injected bugs --------------------------------------------------


def _break_first_multi_alternative(grammar):
    """A deliberately broken 'optimization': drop one top-level alternative.

    Mimics an unsound pass that discards an alternative it wrongly proves
    unreachable — exactly the class of bug the oracle exists to catch.
    """
    for production in grammar.productions:
        if len(production.alternatives) > 1:
            broken = production.with_alternatives(production.alternatives[1:])
            return grammar.replace_production(broken), production.name
    raise AssertionError("grammar has no multi-alternative production")


class TestOracleCatchesBrokenPass:
    def test_broken_pass_is_caught_and_shrunk(self, tiny_grammar):
        oracle = DifferentialOracle(tiny_grammar)
        assert oracle.reference.name == "interp-plain"

        broken_grammar, broken_name = _break_first_multi_alternative(
            prepare(tiny_grammar, Options.none(), check=False).grammar
        )
        interp = PackratInterpreter(broken_grammar, chunked=False)
        oracle.add_backend(Backend("broken-pass", interp.parse, exact_errors=False))

        generator = SentenceGenerator(tiny_grammar, random.Random(2))
        counterexample = None
        for _ in range(200):
            sentence = generator.generate()
            if oracle.explain(sentence) is not None:
                counterexample = sentence
                break
        assert counterexample is not None, (
            f"broken {broken_name} survived 200 generated sentences"
        )

        shrunk = shrink(counterexample, lambda t: oracle.explain(t) is not None)
        assert oracle.explain(shrunk) is not None
        assert len(shrunk) <= 40

        detail = oracle.explain(shrunk)
        source = regression_test_source("t.Core", shrunk, detail)
        assert repr(shrunk) in source
        assert "def test_difftest_regression_" in source
        assert "DifferentialOracle" in source

    def test_clean_grammar_has_no_disagreements(self, tiny_grammar):
        oracle = DifferentialOracle(tiny_grammar)
        generator = SentenceGenerator(tiny_grammar, random.Random(4))
        rng = random.Random(4)
        for _ in range(25):
            sentence = generator.generate()
            assert oracle.explain(sentence) is None
            assert oracle.explain(mutate(sentence, rng)) is None


# -- bounded smoke run (full-size run via `make fuzz`) ---------------------------------


@pytest.mark.fuzz
def test_fuzz_smoke_calc():
    report = fuzz_grammar("calc.Calculator", seed=7, generated=120, mutated=80)
    assert report.ok, "\n".join(
        c.disagreement.describe() for c in report.counterexamples
    )
    assert report.checked == 200
    assert report.backend_count >= 14
    assert report.valid_ratio >= 0.6
