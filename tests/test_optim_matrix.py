"""Every single-optimization-off configuration against the all-on reference.

The paper's optimizations are meant to be *semantics-preserving*: disabling
any one of them may change speed and memo pressure but never the language
recognized, the AST produced, or (for backends with farthest-failure
semantics) the reported failure offset.  This matrix pins that down for
every tier-1 grammar x every ``Options.single_off()`` variant, on both a
valid and a malformed corpus.

Grammars are composed once per module and passed to ``compile_grammar`` as
objects, so the matrix pays for recomposition neither per variant nor per
test.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.errors import ParseError
from repro.optim import Options
from repro.runtime.node import structural_diff
from repro.workloads import generate_c_program, generate_jay_program, generate_json_document

VARIANTS = Options.single_off()
VARIANT_IDS = [label for label, _ in VARIANTS]


def _calc_corpus():
    rng = random.Random(11)
    valid = ["1", "(2 + 3) * 4", "10 - 2 - 3", "1 + 2 * (3 - 4) / 5"]
    valid += ["%d %s %d" % (rng.randint(0, 99), rng.choice("+-*/"), rng.randint(1, 99))
              for _ in range(6)]
    malformed = ["", "1 +", "(1", "1 ** 2", ")", "1 2"]
    return valid, malformed

def _json_corpus():
    valid = ['{"a": [1, 2.5e-1, true, null]}', "[]", '"\\u00e9"', "-0.5",
             generate_json_document(size=4, seed=11)]
    malformed = ["", "{", '{"a" 1}', "[1,]", '"\\a"', "tru"]
    return valid, malformed

def _jay_corpus():
    valid = ["class A { }",
             "import a.b; class A extends B { int f(int x) { return x + 1; } }",
             generate_jay_program(size=6, seed=11)]
    malformed = ["", "class", "class A {", "class A { int f( }", "klass A {}"]
    return valid, malformed

def _xc_corpus():
    valid = ["int main(void) { return 0; }",
             "struct point { int x; int y; };",
             generate_c_program(size=3, seed=11)]
    malformed = ["", "int main(", "struct { int", "int x = ;"]
    return valid, malformed

def _ml_corpus():
    valid = ["let x = 1 in x + 2",
             "let rec f n = if n = 0 then 1 else n * f (n - 1) in f 5",
             "match xs with | [] -> 0 | h :: t -> h",
             "(* comment *) [1; 2; 3]"]
    malformed = ["", "let = 3", "fun -> x", "if a then b", "match x with"]
    return valid, malformed


CORPORA = {
    "calc.Calculator": _calc_corpus,
    "json.Json": _json_corpus,
    "jay.Jay": _jay_corpus,
    "xc.XC": _xc_corpus,
    "ml.ML": _ml_corpus,
}


@pytest.fixture(scope="module", params=sorted(CORPORA), ids=lambda r: r.split(".")[0])
def matrix_case(request):
    """(composed grammar, all-on reference language, valid corpus, malformed corpus)."""
    root = request.param
    grammar = repro.load_grammar(root)
    reference = repro.compile_grammar(grammar, Options.all(), cache=False)
    valid, malformed = CORPORA[root]()
    return grammar, reference, valid, malformed


def test_fuse_is_a_first_class_ablation_flag():
    """``fuse`` must ride the same ablation machinery as the paper's
    original flags: present in ``flag_names``, single-off, and as the last
    rung of the cumulative ladder (which therefore equals all-on)."""
    assert "fuse" in Options.flag_names()
    assert "no-fuse" in VARIANT_IDS
    label, options = Options.cumulative()[-1]
    assert label == "+fuse"
    assert options == Options.all()


@pytest.mark.fuzz
@pytest.mark.parametrize("root", sorted(CORPORA), ids=lambda r: r.split(".")[0])
def test_fuzz_fused_vs_unfused(root):
    """Property: on seeded generated sentences (and a mutant of each), the
    fused and unfused configurations agree on verdict, AST, and
    farthest-failure offset.  This is the fused-scan analogue of the
    differential fuzz harness, pinned to the one flag this comparison is
    about rather than the whole backend matrix."""
    from repro.difftest.generator import SentenceGenerator
    from repro.difftest.mutate import mutate
    from repro.difftest.oracle import Backend
    from repro.optim import prepare

    grammar = repro.load_grammar(root)
    fused = Backend("fused", repro.compile_grammar(grammar, Options.all(), cache=False).parse)
    unfused = Backend(
        "unfused",
        repro.compile_grammar(grammar, Options.all().without("fuse"), cache=False).parse,
    )
    plain = prepare(grammar, Options.none(), check=False).grammar
    generator = SentenceGenerator(plain, random.Random(20260806))
    rng = random.Random(99)
    for _ in range(200):
        sentence = generator.generate()
        for text in (sentence, mutate(sentence, rng)):
            a = fused.run(text)
            b = unfused.run(text)
            assert a.crash is None, f"fused crashed on {text!r}: {a.crash}"
            assert b.crash is None, f"unfused crashed on {text!r}: {b.crash}"
            assert a.verdict == b.verdict, f"verdicts differ on {text!r}"
            if a.accepted:
                diff = structural_diff(a.value, b.value)
                assert diff is None, f"ASTs differ on {text!r} at {diff}"


@pytest.mark.fuzz
@pytest.mark.parametrize("root", sorted(CORPORA), ids=lambda r: r.split(".")[0])
def test_fuzz_fused_vm_vs_generated(root):
    """Property: on 500 seeded sentences (and a mutant of each), the parsing
    machine and the generated parser — both over the fused, fully optimized
    grammar — agree on verdict, AST, farthest-failure offset, and expected
    set.  The expected-set clause is strictly stronger than the backend
    matrix's offset check: the VM compiles the same guard/first-set failure
    messages codegen emits, so the sets must be identical, not just
    same-position."""
    from repro.difftest.generator import SentenceGenerator
    from repro.difftest.mutate import mutate
    from repro.difftest.oracle import Backend
    from repro.optim import prepare
    from repro.vm import VMParser, compile_program

    grammar = repro.load_grammar(root)
    language = repro.compile_grammar(grammar, Options.all(), cache=False)
    vm_parser = VMParser(compile_program(language.prepared))
    generated = Backend("generated", language.parse)
    vm = Backend("vm", lambda text: vm_parser.reset(text).parse())
    plain = prepare(grammar, Options.none(), check=False).grammar
    generator = SentenceGenerator(plain, random.Random(20260806))
    rng = random.Random(99)
    for _ in range(500):
        sentence = generator.generate()
        for text in (sentence, mutate(sentence, rng)):
            a = generated.run(text)
            b = vm.run(text)
            assert a.crash is None, f"generated crashed on {text!r}: {a.crash}"
            assert b.crash is None, f"vm crashed on {text!r}: {b.crash}"
            assert a.verdict == b.verdict, f"verdicts differ on {text!r}"
            if a.accepted:
                diff = structural_diff(a.value, b.value)
                assert diff is None, f"ASTs differ on {text!r} at {diff}"
            else:
                assert a.offset == b.offset, f"offsets differ on {text!r}"
                assert set(a.expected) == set(b.expected), (
                    f"expected sets differ on {text!r}"
                )


@pytest.mark.parametrize(("label", "options"), VARIANTS, ids=VARIANT_IDS)
class TestSingleOffMatrix:
    def test_variant_agrees_with_reference(self, matrix_case, label, options):
        grammar, reference, valid, malformed = matrix_case
        variant = repro.compile_grammar(grammar, options, cache=False)
        assert not getattr(variant.options, label.removeprefix("no-"))

        for text in valid:
            expected = reference.parse(text)
            actual = variant.parse(text)
            diff = structural_diff(expected, actual)
            assert diff is None, f"{label} on {text!r}: ASTs differ at {diff}"

        for text in malformed:
            with pytest.raises(ParseError) as ref_error:
                reference.parse(text)
            with pytest.raises(ParseError) as var_error:
                variant.parse(text)
            assert var_error.value.offset == ref_error.value.offset, (
                f"{label} on {text!r}: farthest-failure offsets differ"
            )
