"""Smoke tests that the shipped examples run and their claims hold.

Examples are documentation that must not rot; each is executed (or its
core asserted) here.  The Jay unparser gets its own round-trip tests.
"""

import runpy
import sys
from pathlib import Path

import pytest

import repro
from repro.workloads import generate_jay_program

EXAMPLES = Path(__file__).parent.parent / "examples"

sys.path.insert(0, str(EXAMPLES))


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "extend_language.py", "compose_languages.py", "selfhosted_meta.py",
     "parse_service.py"],
)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    # They print progress; no exception == pass.
    assert capsys.readouterr().out


def test_json_pipeline_core(capsys):
    # The pipeline example includes benchmarking; run it fully but don't
    # assert timing, only that the correctness section passed.
    runpy.run_path(str(EXAMPLES / "json_pipeline.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "decode identically to json.loads" in out


class TestJayUnparser:
    @pytest.fixture(scope="class")
    def unparser(self):
        from unparse_jay import JayUnparser

        return JayUnparser()

    @pytest.fixture(scope="class")
    def jay(self):
        return repro.compile_grammar("jay.Jay")

    @pytest.mark.parametrize("seed", range(8))
    def test_roundtrip_generated(self, unparser, jay, seed):
        source = generate_jay_program(size=4, seed=seed)
        tree = jay.parse(source)
        assert jay.parse(unparser.render(tree)) == tree

    @pytest.mark.parametrize(
        "source",
        [
            "package a.b; import c.d; class A extends B { }",
            "class A { static int[] xs; void m(); }",
            "class A { int f(int n) { return n > 0 ? f(n - 1) : 0; } }",
            "class A { void m() { do { x = x + 1; } while (x < 9); for (;;) break; } }",
            "class A { void m() { this.go(new A(), new int[3])[1].field = 'c'; } }",
        ],
    )
    def test_roundtrip_targeted(self, unparser, jay, source):
        tree = jay.parse(source)
        assert jay.parse(unparser.render(tree)) == tree

    def test_output_is_plain_text(self, unparser, jay):
        rendered = unparser.render(jay.parse("class A { int x = 1; }"))
        assert "class A {" in rendered
        assert rendered.endswith("}\n")
