"""Tests for the optimization passes and the prepare pipeline."""

import pytest

from repro.interp import PackratInterpreter
from repro.optim import (
    Options,
    fold_grammar,
    fold_prefixes,
    infer_transient,
    inline_cheap_productions,
    prepare,
    specialize_terminals,
    strip_transient,
)
from repro.peg.builder import (
    GrammarBuilder,
    alt,
    bang,
    cc,
    lit,
    opt,
    plus,
    ref,
    star,
    text,
    void,
)
from repro.peg.expr import CharSwitch, Choice, Literal, Nonterminal, Sequence, walk
from repro.runtime.node import GNode


class TestOptions:
    def test_all_and_none(self):
        assert Options.all().enabled() == Options.flag_names()
        assert Options.none().enabled() == []

    def test_without(self):
        options = Options.all().without("chunks", "inline")
        assert not options.chunks and not options.inline
        assert options.terminals

    def test_cumulative_ladder(self):
        ladder = Options.cumulative()
        assert ladder[0][0] == "none"
        assert len(ladder) == len(Options.flag_names()) + 1
        assert ladder[-1][1].enabled() == Options.flag_names()
        # each rung enables exactly one more flag
        for (_, before), (_, after) in zip(ladder, ladder[1:]):
            assert len(after.enabled()) == len(before.enabled()) + 1

    def test_threshold_not_a_flag(self):
        assert "inline_threshold" not in Options.flag_names()


class TestGrammarFolding:
    def test_duplicate_productions_merged(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("A"), ref("B")])
        builder.void("A", [star(lit(" "))])
        builder.void("B", [star(lit(" "))])
        folded = fold_grammar(builder.build())
        assert len(folded) == 2
        refs = folded["S"].referenced_names()
        assert len(refs) == 1

    def test_pinned_productions_survive(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("A"), ref("B")])
        builder.void("A", [lit("x")])
        builder.void("B", [lit("x")], public=True)
        folded = fold_grammar(builder.build())
        assert "B" in folded  # public duplicate kept as representative

    def test_generic_with_unlabeled_alternatives_not_merged(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("A"), ref("B")])
        builder.generic("A", [text(lit("x")), text(lit("y"))])
        builder.generic("B", [text(lit("x")), text(lit("y"))])
        folded = fold_grammar(builder.build())
        assert len(folded) == 3  # node names depend on production names

    def test_duplicate_alternatives_dropped(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [lit("a")], [lit("b")], [lit("a")])
        folded = fold_grammar(builder.build())
        assert len(folded["S"].alternatives) == 2

    def test_semantics_preserved(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("A"), text(plus(cc("0-9"))), ref("B")])
        builder.void("A", [star(lit(" "))])
        builder.void("B", [star(lit(" "))])
        grammar = builder.build()
        folded = fold_grammar(grammar)
        for sample in [" 42 ", "7"]:
            assert PackratInterpreter(folded).parse(sample) == PackratInterpreter(grammar).parse(sample)


class TestPrefixFolding:
    def test_keyword_choice_folded(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [lit("interface")], [lit("int")], [lit("if")])
        folded = fold_prefixes(builder.build())
        # All three share "i"; the top level should now be a single alternative.
        assert len(folded["S"].alternatives) == 1

    def test_language_preserved(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [lit("interface")], [lit("int")], [lit("if")], [lit("in")])
        grammar = builder.build()
        folded = fold_prefixes(grammar)
        a, b = PackratInterpreter(grammar), PackratInterpreter(folded)
        for word in ["interface", "int", "if", "in"]:
            assert a.recognize(word) and b.recognize(word)
        for bad in ["i", "inter", "interfac", "x", ""]:
            assert a.recognize(bad) == b.recognize(bad)

    def test_value_bearing_alternatives_untouched(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("A"), text(lit("x"))], [ref("A"), text(lit("y"))])
        builder.void("A", [lit("a")])
        folded = fold_prefixes(builder.build())
        # Alternatives contribute values, so no top-level folding happened.
        assert len(folded["S"].alternatives) == 2

    def test_nested_choice_with_value_free_prefix(self):
        builder = GrammarBuilder("t", start="S")
        inner = Choice((Sequence((Literal("ab"), Literal("c"))), Sequence((Literal("ab"), Literal("d")))))
        builder.void("S", [inner])
        folded = fold_prefixes(builder.build())
        interp = PackratInterpreter(folded)
        assert interp.recognize("abc") and interp.recognize("abd")
        assert not interp.recognize("ab")


class TestTerminalSpecialization:
    def test_char_switch_built(self):
        builder = GrammarBuilder("t", start="S")
        inner = Choice((Literal("alpha"), Literal("beta"), Literal("gamma")))
        builder.void("S", [inner])
        specialized = specialize_terminals(builder.build())
        switches = [
            node
            for production in specialized
            for a in production.alternatives
            for node in walk(a.expr)
            if isinstance(node, CharSwitch)
        ]
        assert switches, "expected a CharSwitch"

    def test_shared_first_chars_keep_order(self):
        builder = GrammarBuilder("t", start="S")
        inner = Choice((Literal("ab"), Literal("ac"), Literal("x")))
        builder.object("S", [text(inner)])
        grammar = builder.build()
        specialized = specialize_terminals(grammar)
        for sample in ["ab", "ac", "x"]:
            assert PackratInterpreter(specialized).parse(sample) == PackratInterpreter(grammar).parse(sample)

    def test_nullable_alternative_blocks_dispatch(self):
        builder = GrammarBuilder("t", start="S")
        inner = Choice((Literal("a"), Literal("b"), opt(lit("c"))))
        builder.void("S", [inner, lit("!")])
        specialized = specialize_terminals(builder.build())
        switches = [
            node
            for production in specialized
            for a in production.alternatives
            for node in walk(a.expr)
            if isinstance(node, CharSwitch)
        ]
        assert not switches

    def test_small_choices_skipped(self):
        # Multi-character literals: no single-char merging applies, and two
        # alternatives are below the dispatch threshold.
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [Choice((Literal("aa"), Literal("bb")))])
        specialized = specialize_terminals(builder.build())
        assert specialized == builder.build()


class TestTransient:
    def test_single_call_site_inferred(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("Once"), ref("Twice"), ref("Twice")])
        builder.void("Once", [lit("1")])
        builder.void("Twice", [lit("2")])
        inferred = infer_transient(builder.build())
        assert inferred["Once"].is_transient
        assert not inferred["Twice"].is_transient

    def test_memo_attribute_wins(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("Once")])
        builder.void("Once", [lit("1")], memo=True)
        inferred = infer_transient(builder.build())
        assert not inferred["Once"].is_transient

    def test_strip(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("A")])
        builder.void("A", [lit("a")], transient=True)
        stripped = strip_transient(builder.build())
        assert not stripped["A"].is_transient


class TestInlining:
    def test_void_token_inlined(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("SEMI"), text(lit("x"))])
        builder.void("SEMI", [lit(";"), star(lit(" "))])
        inlined = inline_cheap_productions(builder.build())
        assert "SEMI" not in inlined
        assert PackratInterpreter(inlined).parse(";  x") == "x"

    def test_text_production_inlined(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("Digit")])
        builder.text("Digit", [cc("0-9")])
        inlined = inline_cheap_productions(builder.build())
        assert "Digit" not in inlined
        assert PackratInterpreter(inlined).parse("7") == "7"

    def test_object_single_contribution_inlined(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("Num"), lit("!")])
        builder.object("Num", [text(cc("0-9")), void(star(lit(" ")))])
        inlined = inline_cheap_productions(builder.build())
        assert "Num" not in inlined
        assert PackratInterpreter(inlined).parse("7 !") == "7"

    def test_generic_never_inlined(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("G")])
        builder.generic("G", alt("X", lit("g")))
        inlined = inline_cheap_productions(builder.build())
        assert "G" in inlined

    def test_noinline_respected(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("A")])
        builder.void("A", [lit("a")], noinline=True)
        assert "A" in inline_cheap_productions(builder.build())

    def test_inline_attribute_forces(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("Big")])
        # Expensive body, but explicitly marked inline.
        builder.void("Big", [lit("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")], inline=True)
        assert "Big" not in inline_cheap_productions(builder.build(), threshold=1)

    def test_recursive_not_inlined(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("R")])
        builder.void("R", [lit("("), opt(ref("R")), lit(")")])
        assert "R" in inline_cheap_productions(builder.build())

    def test_bodies_with_actions_not_inlined(self):
        builder = GrammarBuilder("t", start="S")
        from repro.peg.builder import act, bind

        builder.object("S", [ref("A")])
        builder.object("A", [bind("x", text(lit("a"))), act("x")])
        assert "A" in inline_cheap_productions(builder.build())

    def test_public_inlinee_kept(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("Tok")])
        builder.void("Tok", [lit("t")], public=True)
        inlined = inline_cheap_productions(builder.build())
        assert "Tok" in inlined  # inlined at call site but kept as entry point


class TestPipeline:
    @pytest.fixture()
    def grammar(self, tiny_grammar):
        return tiny_grammar

    @pytest.mark.parametrize("flag", Options.flag_names())
    def test_single_flag_off_preserves_values(self, grammar, flag):
        reference = PackratInterpreter(prepare(grammar).grammar).parse("1+2*(3-4)")
        prepared = prepare(grammar, Options.all().without(flag))
        value = PackratInterpreter(prepared.grammar, chunked=prepared.chunked_memo).parse("1+2*(3-4)")
        assert value == reference

    def test_none_preserves_values(self, grammar):
        reference = PackratInterpreter(prepare(grammar).grammar).parse("1+2*(3-4)")
        prepared = prepare(grammar, Options.none())
        assert PackratInterpreter(prepared.grammar, chunked=False).parse("1+2*(3-4)") == reference

    def test_warnings_propagated(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [lit("s")])
        builder.object("Dead", [lit("d")])
        prepared = prepare(builder.build())
        assert any("unreachable" in str(w) for w in prepared.warnings)

    def test_runtime_flags_exposed(self, grammar):
        prepared = prepare(grammar, Options.all().without("chunks", "errors"))
        assert not prepared.chunked_memo
        assert not prepared.fast_errors


class TestSingleCharMerging:
    def _switches_and_classes(self, grammar):
        from repro.optim import specialize_terminals

        specialized = specialize_terminals(grammar)
        nodes = [
            node
            for production in specialized
            for a in production.alternatives
            for node in walk(a.expr)
        ]
        return specialized, nodes

    def test_adjacent_single_chars_merged(self):
        from repro.peg.expr import CharClass

        builder = GrammarBuilder("t", start="S")
        builder.void("S", [Choice((Literal("+"), Literal("-"), cc("0-9")))])
        specialized, nodes = self._switches_and_classes(builder.build())
        classes = [n for n in nodes if isinstance(n, CharClass)]
        assert len(classes) == 1
        assert classes[0].matches("+") and classes[0].matches("-") and classes[0].matches("5")

    def test_merge_stops_at_multichar_literal(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [Choice((Literal("a"), Literal("xy"), Literal("b")))])
        specialized, nodes = self._switches_and_classes(builder.build())
        # "a" cannot merge across "xy" with "b" — order must be preserved.
        interp = PackratInterpreter(specialized)
        for sample in ["a", "xy", "b"]:
            assert interp.recognize(sample)
        assert not interp.recognize("x")

    def test_ignore_case_chars_expand(self):
        from repro.optim.terminals import merge_single_char_alternatives
        from repro.peg.expr import CharClass, Choice as ChoiceExpr

        merged = merge_single_char_alternatives(
            ChoiceExpr((Literal("k", ignore_case=True), Literal("j")))
        )
        assert isinstance(merged, CharClass)
        for ch in "kKj":
            assert merged.matches(ch)
        assert not merged.matches("J")

    def test_values_preserved(self):
        from repro.peg.builder import act, bind

        builder = GrammarBuilder("t", start="S")
        builder.object("S", [bind("op", Choice((lit("+"), lit("-")))), act("op")])
        grammar = builder.build()
        from repro.optim import specialize_terminals

        specialized = specialize_terminals(grammar)
        for sample in ["+", "-"]:
            assert (
                PackratInterpreter(specialized).parse(sample)
                == PackratInterpreter(grammar).parse(sample)
            )
