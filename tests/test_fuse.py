"""Scanner fusion: translation, value discipline, error replay, ablation.

The fuse pass (:mod:`repro.optim.fuse` + :mod:`repro.analysis.fusable`)
rewrites value-free terminal regions into single :class:`~repro.peg.expr.Regex`
scans.  These tests pin the three contracts the pass rests on:

- *translation exactness* — PEG committed choice / possessive repetition
  map onto ``re`` atomic groups / possessive quantifiers;
- *value discipline* — fused regions only ever produce the value the
  unfused expression would have produced (None or the matched span);
- *error parity* — failure offsets and expected sets survive fusion via
  the deferred replay machinery in ``ParserBase``.
"""

from __future__ import annotations

import re

import pytest

import repro
from repro.analysis import fusable
from repro.analysis.first import FirstAnalysis
from repro.analysis.fusable import (
    MIN_FUSED_TERMINALS,
    FusionAnalysis,
    compiled_pattern,
    fusion_coverage,
    fusion_supported,
)
from repro.codegen import generate_parser_source, load_parser
from repro.errors import ParseError
from repro.interp import PackratInterpreter
from repro.interp.closures import ClosureParser
from repro.optim import Options, prepare
from repro.optim.fuse import fuse_scanners, useless_nofuse
from repro.peg.builder import (
    GrammarBuilder,
    alt,
    amp,
    any_,
    bang,
    bind,
    cc,
    lit,
    opt,
    plus,
    ref,
    star,
    text,
    void,
)
from repro.peg.expr import Literal, Regex, choice, walk
from repro.profile import ParseProfile

pytestmark = pytest.mark.skipif(
    not fusion_supported(), reason="fusion requires Python >= 3.11 regex syntax"
)


def _regexes(grammar):
    return [
        node
        for production in grammar
        for alternative in production.alternatives
        for node in walk(alternative.expr)
        if isinstance(node, Regex)
    ]


def _tiny_grammar(**space_flags):
    """number / identifier tokens over skippable whitespace."""
    builder = GrammarBuilder("t", start="S")
    builder.object(
        "S", [ref("Space"), plus(ref("Token"))],
    )
    builder.generic(
        "Token",
        alt("num", ref("Number"), ref("Space")),
        alt("id", ref("Ident"), ref("Space")),
    )
    builder.text("Number", [plus(cc("0-9"))])
    builder.text("Ident", [cc("a-z"), star(cc("a-z0-9"))])
    builder.void("Space", [star(cc(" \t\n"))], **space_flags)
    return builder.build()


class TestTranslation:
    def _analysis(self, grammar=None):
        return FusionAnalysis(grammar if grammar is not None else _tiny_grammar())

    def test_literal_and_class(self):
        a = self._analysis()
        assert a.translate(lit("if(")) == "if\\("
        assert a.translate(cc("a-z0-9_")) == "[0-9_a-z]"  # ranges are sorted
        assert a.translate(cc("^\"\\\\")) == '[^"\\\\]'

    def test_control_characters_stay_readable(self):
        a = self._analysis()
        assert a.translate(lit("\n\t")) == "\\n\\t"
        assert a.translate(cc(" \t\n")) == "[\\t\\n\\ ]"

    def test_choice_is_atomic_group(self):
        a = self._analysis()
        pattern = a.translate(choice(lit("ab"), lit("a")))
        assert pattern == "(?>ab|a)"
        # Atomic: once "ab" matched, "a" is never retried — exactly PEG
        # committed choice, where ("ab"/"a")"bc" rejects "abc".
        assert re.compile(pattern + "bc").match("abc") is None
        assert re.compile("(?:ab|a)bc").match("abc") is not None  # uncommitted

    def test_repetition_is_possessive(self):
        a = self._analysis()
        assert a.translate(star(cc("0-9"))) == "[0-9]*+"
        assert a.translate(plus(cc("0-9"))) == "[0-9]++"
        assert a.translate(opt(lit("-"))) == "\\-?+"
        # Possessive: the quantifier never gives characters back.
        assert re.compile(a.translate(star(cc("0-9"))) + "1").match("11") is None

    def test_predicates_are_lookarounds(self):
        a = self._analysis()
        assert a.translate(bang(lit("*/"))) == "(?!\\*/)"
        assert a.translate(amp(cc("a-z"))) == "(?=[a-z])"

    def test_any_char_dotall(self):
        a = self._analysis()
        assert a.translate(any_()) == "."
        assert compiled_pattern(".").match("\n") is not None

    def test_compound_quantified_region(self):
        a = self._analysis()
        pattern = a.translate(star(lit("//"), star(cc("^\n"))))
        assert pattern == "(?://[^\\n]*+)*+"


class TestFusability:
    def test_case_insensitive_literal_not_fusable(self):
        a = FusionAnalysis(_tiny_grammar())
        assert a.fusable(lit("select", ignore_case=True)) is False
        assert a.fusable(lit("select")) is True

    def test_nullable_plus_not_fusable(self):
        # PEG rejects `e+` over a nullable e (zero-width iterations don't
        # count); `(?:e)++` would accept, so the region must not fuse.
        a = FusionAnalysis(_tiny_grammar())
        assert a.fusable(plus(star(cc("0-9")))) is False

    def test_bindings_and_recursion_not_fusable(self):
        builder = GrammarBuilder("r", start="A")
        builder.void("A", [lit("("), ref("A"), lit(")")], [lit("x")])
        grammar = builder.build()
        a = FusionAnalysis(grammar)
        assert a.fusable(ref("A")) is False  # recursive
        assert a.fusable(bind("n", cc("0-9"))) is False

    def test_benefit_threshold(self):
        a = FusionAnalysis(_tiny_grammar())
        small = choice(lit("a"), lit("b"))
        assert a.build_regex(small, capture=False, label="t") is None
        looped = star(cc(" "))
        assert a.build_regex(looped, capture=False, label="t") is not None
        wide = choice(lit("abc"), lit("def"), lit("ghi"))
        assert MIN_FUSED_TERMINALS == 3
        assert a.build_regex(wide, capture=False, label="t") is not None


class TestValueDiscipline:
    def test_text_production_value_survives_fusion(self):
        grammar = _tiny_grammar()
        fused = prepare(grammar, Options.all())
        unfused = prepare(grammar, Options.all().without("fuse"))
        assert _regexes(fused.grammar), "expected fused regions"
        assert not _regexes(unfused.grammar)
        for source in ["abc 12 x9", "7", "ab 12 cd 34"]:
            a = PackratInterpreter(fused.grammar, chunked=fused.chunked_memo).parse(source)
            b = PackratInterpreter(unfused.grammar, chunked=unfused.chunked_memo).parse(source)
            assert repr(a) == repr(b)

    def test_capture_modes(self):
        grammar = _tiny_grammar()
        fused = prepare(grammar, Options.all()).grammar
        captures = {node.capture for node in _regexes(fused)}
        # Both modes occur: Space regions discard, Number/Ident spans capture.
        assert captures == {True, False}

    def test_all_backends_agree(self):
        grammar = _tiny_grammar()
        prepared = prepare(grammar, Options.all())
        interp = PackratInterpreter(prepared.grammar, chunked=prepared.chunked_memo)
        closures = ClosureParser(prepared.grammar, chunked=prepared.chunked_memo)
        generated = load_parser(generate_parser_source(prepared))
        for source in ["abc 12 x9", " 1 a ", "zz"]:
            values = [
                interp.parse(source),
                closures.parse(source),
                generated(source).parse(),
            ]
            assert len({repr(v) for v in values}) == 1, f"backends differ on {source!r}"


class TestErrorParity:
    @pytest.mark.parametrize(
        "source",
        ["", "ab 12 !", "12 ab (", "abc  12  ?x", "9a$"],
    )
    def test_offsets_and_expected_sets_match(self, source):
        grammar = _tiny_grammar()
        fused = prepare(grammar, Options.all())
        unfused = prepare(grammar, Options.all().without("fuse"))
        errors = []
        for prepared in (fused, unfused):
            interp = PackratInterpreter(prepared.grammar, chunked=prepared.chunked_memo)
            with pytest.raises(ParseError) as info:
                interp.parse(source)
            errors.append(info.value)
        assert errors[0].offset == errors[1].offset
        assert set(errors[0].expected) == set(errors[1].expected)

    def test_real_grammar_offsets(self):
        grammar = repro.load_grammar("jay.Jay")
        fused = repro.compile_grammar(grammar, Options.all(), cache=False)
        unfused = repro.compile_grammar(
            grammar, Options.all().without("fuse"), cache=False
        )
        for source in ["class A {", "class A { int f( }", "klass"]:
            with pytest.raises(ParseError) as a:
                fused.parse(source)
            with pytest.raises(ParseError) as b:
                unfused.parse(source)
            assert a.value.offset == b.value.offset, source


class TestSilence:
    def test_pure_concatenation_is_silent(self):
        a = FusionAnalysis(_tiny_grammar())
        assert a.silent_on_success(lit("abc")) is True
        node = a.build_regex(lit("abcdef"), capture=False, label="t")
        assert node is None or node.silent  # below threshold or silent

    def test_choice_and_repetition_are_not_silent(self):
        # Their successful match can step over recordable failures (a
        # rejected earlier alternative, the failing final iteration).
        a = FusionAnalysis(_tiny_grammar())
        assert a.silent_on_success(star(cc(" "))) is False
        assert a.silent_on_success(choice(lit("ab"), lit("cd"))) is False


class TestNofuse:
    def test_nofuse_production_is_not_fused_or_inlined(self):
        grammar = _tiny_grammar(nofuse=True)  # Space carries nofuse
        fused = fuse_scanners(grammar)
        for node in _regexes(fused):
            assert "Space" not in node.pattern  # patterns have no names...
        # ...so check structurally: Space's body is regex-free and every
        # fused pattern came from Number/Ident, not from inlining Space.
        space = fused.get("Space")
        assert not any(isinstance(n, Regex) for a in space.alternatives for n in walk(a.expr))
        analysis = FusionAnalysis(grammar)
        assert analysis.region("Space") is None

    def test_useless_nofuse_lint(self):
        builder = GrammarBuilder("u", start="S")
        builder.object("S", [ref("Sep"), ref("Act")])
        builder.void("Sep", [plus(cc(" "))], nofuse=True)  # would fuse: useful
        builder.object("Act", [bind("n", cc("0-9")), lit("!")], nofuse=True)  # never fusable
        grammar = builder.build()
        assert useless_nofuse(grammar) == ["Act"]


class TestGate:
    def test_pass_is_noop_without_regex_support(self, monkeypatch):
        monkeypatch.setattr(fusable, "FUSION_SUPPORTED", False)
        grammar = _tiny_grammar()
        assert fuse_scanners(grammar) is grammar
        assert useless_nofuse(_tiny_grammar(nofuse=True)) == []

    def test_options_flag_disables_pass(self):
        prepared = prepare(_tiny_grammar(), Options.all().without("fuse"))
        assert not _regexes(prepared.grammar)


class TestCoverageAndProfile:
    def test_fusion_coverage_counts(self):
        prepared = prepare(_tiny_grammar(), Options.all())
        coverage = fusion_coverage(prepared.grammar)
        assert coverage.regions > 0
        assert coverage.patterns > 0
        assert coverage.fused_terminals > 0
        assert 0.0 < coverage.ratio <= 1.0

    def test_profiler_counts_fused_scans(self):
        prepared = prepare(_tiny_grammar(), Options.all())
        profile = ParseProfile()
        interp = PackratInterpreter(
            prepared.grammar, chunked=prepared.chunked_memo, profile=profile
        )
        interp.parse("abc 12 x9")
        assert profile.total_fused_scans() > 0

    def test_closure_profiler_counts_fused_scans(self):
        prepared = prepare(_tiny_grammar(), Options.all())
        profile = ParseProfile()
        ClosureParser(
            prepared.grammar, chunked=prepared.chunked_memo, profile=profile
        ).parse("abc 12 x9")
        assert profile.total_fused_scans() > 0

    def test_generated_profiled_twin_counts_fused_scans(self):
        prepared = prepare(_tiny_grammar(), Options.all())
        parser_cls = load_parser(generate_parser_source(prepared, profiled=True))
        profile = ParseProfile()
        parser_cls("abc 12 x9", profile=profile).parse()
        assert profile.total_fused_scans() > 0

    def test_prof_cli_optimized_reports_fused_scans(self, tmp_path):
        import json

        from repro.tools import prof

        out = tmp_path / "report.json"
        assert prof.main([
            "calc", "--backend", "generated", "--optimized",
            "--generate", "5", "--json", "--output", str(out),
        ]) == 0
        report = json.loads(out.read_text())["reports"][0]
        assert report["totals"]["fused_scans"] > 0


class TestDispatchSafety:
    """Regression tests for FIRST-set predicate handling + dispatch_safe."""

    def _grammar(self):
        builder = GrammarBuilder("d", start="S")
        builder.object(
            "S",
            alt("kw", ref("Keyword")),
            alt("id", ref("Identifier")),
            alt("num", ref("Number")),
        )
        builder.text("Keyword", [lit("if"), bang(cc("a-z"))])
        builder.text("Identifier", [bang(ref("Keyword")), plus(cc("a-z"))])
        builder.text("Number", [plus(cc("0-9"))])
        return builder.build()

    def test_not_led_sequence_has_known_first(self):
        first = FirstAnalysis(self._grammar())
        fs = first.first(self._grammar().get("Identifier").alternatives[0].expr)
        assert fs.known
        assert fs.chars == frozenset("abcdefghijklmnopqrstuvwxyz")

    def test_wrapped_predicates_are_transparent(self):
        first = FirstAnalysis(self._grammar())
        wrapped = [void(bang(lit("x"))), cc("0-9")]
        fs = first.first(alt(None, *wrapped).expr)
        assert fs.known and fs.chars == frozenset("0123456789")

    def test_and_head_narrows_first(self):
        first = FirstAnalysis(self._grammar())
        guarded = alt(None, amp(cc("ab")), cc("a-z")).expr
        fs = first.first(guarded)
        assert fs.known and fs.chars == frozenset("ab")

    def test_and_head_is_dispatch_unsafe(self):
        # Evaluating `&("abc") x` on a skipped character can record failures
        # beyond the current position (inside the predicate's operand), so
        # dispatch must not skip it.
        first = FirstAnalysis(self._grammar())
        guarded = alt(None, amp(lit("abc")), cc("a-z")).expr
        assert first.dispatch_safe(guarded) is False

    def test_not_keyword_identifier_is_dispatch_safe(self):
        grammar = self._grammar()
        first = FirstAnalysis(grammar)
        identifier = grammar.get("Identifier").alternatives[0].expr
        assert first.dispatch_safe(identifier) is True

    def test_terminal_led_sequences_are_safe(self):
        first = FirstAnalysis(self._grammar())
        assert first.dispatch_safe(alt(None, lit("if"), cc("a-z")).expr) is True


def test_pattern_cache_is_shared():
    a = compiled_pattern("[0-9]++")
    b = compiled_pattern("[0-9]++")
    assert a is b


def test_regex_nodes_survive_pickling():
    import pickle

    prepared = prepare(_tiny_grammar(), Options.all())
    regions = _regexes(prepared.grammar)
    assert regions
    restored = pickle.loads(pickle.dumps(prepared.grammar))
    assert _regexes(restored) == regions
