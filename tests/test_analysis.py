"""Unit tests for the static analyses."""

import pytest

from repro.analysis import (
    FirstAnalysis,
    check,
    directly_left_recursive,
    expr_cost,
    expr_nullable,
    grammar_loc,
    grammar_stats,
    indirect_left_recursion_cycles,
    left_call_graph,
    left_calls,
    nullable_productions,
    prune_unreachable,
    reachable,
    reference_counts,
    require_wellformed,
    unreachable,
)
from repro.errors import AnalysisError
from repro.peg.builder import (
    GrammarBuilder,
    act,
    alt,
    amp,
    any_,
    bang,
    bind,
    cc,
    lit,
    opt,
    plus,
    ref,
    star,
    text,
    void,
)
from repro.peg.expr import Epsilon


def grammar(**rules):
    """Build a quick grammar: rules map name -> list of alternatives."""
    builder = GrammarBuilder("t", start=next(iter(rules)))
    for name, alternatives in rules.items():
        builder.object(name, *alternatives)
    return builder.build(validate=False)


class TestNullability:
    def test_literals_not_nullable(self):
        assert not expr_nullable(lit("a"), set())
        assert not expr_nullable(cc("a-z"), set())
        assert not expr_nullable(any_(), set())

    def test_trivially_nullable(self):
        assert expr_nullable(Epsilon(), set())
        assert expr_nullable(opt(lit("a")), set())
        assert expr_nullable(star(lit("a")), set())
        assert expr_nullable(amp(lit("a")), set())
        assert expr_nullable(bang(lit("a")), set())
        assert expr_nullable(act("1"), set())

    def test_plus_nullable_iff_item(self):
        assert not expr_nullable(plus(lit("a")), set())
        assert expr_nullable(plus(opt(lit("a"))), set())

    def test_fixpoint_through_productions(self):
        g = grammar(
            S=[[ref("A"), ref("B")]],
            A=[[opt(lit("a"))]],
            B=[[star(lit("b"))]],
        )
        assert nullable_productions(g) == {"S", "A", "B"}

    def test_non_nullable_production(self):
        g = grammar(S=[[ref("A")]], A=[[lit("a")]])
        assert nullable_productions(g) == set()

    def test_mutual_recursion_terminates(self):
        g = grammar(S=[[ref("A")], [lit("s")]], A=[[ref("S"), lit("a")]])
        assert nullable_productions(g) == set()


class TestLeftRecursion:
    def test_direct(self):
        g = grammar(E=[[ref("E"), lit("+"), ref("T")], [ref("T")]], T=[[lit("t")]])
        assert directly_left_recursive(g) == {"E"}

    def test_through_nullable_prefix(self):
        g = grammar(
            E=[[ref("Sp"), ref("E"), lit("x")], [lit("e")]],
            Sp=[[star(lit(" "))]],
        )
        assert "E" in directly_left_recursive(g)

    def test_predicates_are_transparent(self):
        g = grammar(E=[[bang(lit("!")), ref("E"), lit("x")], [lit("e")]])
        assert "E" in directly_left_recursive(g)

    def test_indirect_cycle_found(self):
        g = grammar(A=[[ref("B"), lit("a")]], B=[[ref("A"), lit("b")], [lit("b")]])
        cycles = indirect_left_recursion_cycles(g)
        assert cycles == [["A", "B"]]

    def test_no_false_positives(self):
        g = grammar(E=[[ref("T"), lit("+"), ref("E")], [ref("T")]], T=[[lit("t")]])
        assert directly_left_recursive(g) == set()
        assert indirect_left_recursion_cycles(g) == []

    def test_left_call_graph(self):
        g = grammar(E=[[ref("T"), ref("E")]], T=[[opt(lit("t")), ref("U")]], U=[[lit("u")]])
        graph = left_call_graph(g)
        assert graph["E"] == {"T"}
        assert graph["T"] == {"U"}


class TestReachability:
    def test_reachable_closure(self):
        g = grammar(S=[[ref("A")]], A=[[ref("B")]], B=[[lit("b")]], Dead=[[lit("d")]])
        assert reachable(g) == {"S", "A", "B"}
        assert unreachable(g) == {"Dead"}

    def test_public_counts_as_root(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [lit("s")])
        builder.object("Exported", [lit("e")], public=True)
        g = builder.build()
        assert unreachable(g) == set()

    def test_prune(self):
        g = grammar(S=[[lit("s")]], Dead=[[lit("d")]])
        assert prune_unreachable(g).names() == ["S"]


class TestFirstSets:
    def analysis(self, **rules):
        return FirstAnalysis(grammar(**rules))

    def test_literal_and_class(self):
        first = self.analysis(S=[[lit("abc")]])
        assert first.first(lit("abc")).chars == frozenset("a")
        assert first.first(cc("0-9")).chars == frozenset("0123456789")

    def test_ignore_case_literal(self):
        first = self.analysis(S=[[lit("k", ignore_case=True)]])
        assert first.first(lit("k", ignore_case=True)).chars == frozenset("kK")

    def test_sequence_skips_nullable_heads(self):
        first = self.analysis(S=[[opt(lit("a")), lit("b")]])
        fs = first.first(grammar(S=[[opt(lit("a")), lit("b")]])["S"].alternatives[0].expr)
        assert fs.chars == frozenset("ab")
        assert not fs.nullable

    def test_production_fixpoint(self):
        first = self.analysis(S=[[ref("A")], [lit("z")]], A=[[lit("a")]])
        assert first.production_first("S").chars == frozenset("az")

    def test_negated_class_is_unknown(self):
        first = self.analysis(S=[[cc("^a")]])
        assert first.first(cc("^a")).chars is None

    def test_any_char_unknown(self):
        first = self.analysis(S=[[any_()]])
        assert first.first(any_()).chars is None


class TestCost:
    def test_monotone_structure(self):
        assert expr_cost(lit("a")) < expr_cost(ref("A"))
        assert expr_cost(star(ref("A"))) > expr_cost(ref("A"))

    def test_reference_counts(self):
        g = grammar(S=[[ref("A"), ref("A"), ref("B")]], A=[[lit("a")]], B=[[lit("b")]])
        counts = reference_counts(g)
        assert counts == {"S": 0, "A": 2, "B": 1}


class TestWellFormedness:
    def test_clean_grammar(self):
        g = grammar(S=[[lit("s")]])
        assert require_wellformed(g) == []

    def test_nullable_repetition_rejected(self):
        g = grammar(S=[[star(opt(lit("a")))]])
        with pytest.raises(AnalysisError, match="repetition over a nullable"):
            require_wellformed(g)

    def test_indirect_left_recursion_rejected(self):
        g = grammar(A=[[ref("B"), lit("a")], [lit("x")]], B=[[ref("A"), lit("b")], [lit("y")]])
        with pytest.raises(AnalysisError, match="indirect left recursion"):
            require_wellformed(g)

    def test_non_generic_left_recursion_rejected(self):
        g = grammar(E=[[ref("E"), lit("+")], [lit("e")]])
        with pytest.raises(AnalysisError, match="not.*generic|generic"):
            require_wellformed(g)

    def test_left_recursion_without_base_rejected(self):
        builder = GrammarBuilder("t", start="E")
        builder.generic("E", alt("X", ref("E"), lit("+")))
        g = builder.build()
        with pytest.raises(AnalysisError, match="base alternative"):
            require_wellformed(g)

    def test_unreachable_is_warning_not_error(self):
        g = grammar(S=[[lit("s")]], Dead=[[lit("d")]])
        warnings = require_wellformed(g)
        assert any("unreachable" in w.message for w in warnings)

    def test_shadowed_alternative_warning(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [Epsilon()], [lit("never")])
        g = builder.build()
        diagnostics = check(g)
        assert any("unreachable" in d.message and d.severity == "warning" for d in diagnostics)


class TestStats:
    def test_grammar_loc_strips_comments(self):
        source = """
        // comment
        module m.M;
        /* block
           comment */
        A = "a" ;  // trailing
        """
        assert grammar_loc(source) == 2

    def test_grammar_stats_counts(self):
        builder = GrammarBuilder("t", start="S")
        builder.generic("S", alt("X", ref("T")), public=True)
        builder.text("T", [lit("t")], transient=True)
        stats = grammar_stats(builder.build())
        assert stats.productions == 2
        assert stats.by_kind["generic"] == 1
        assert stats.by_kind["text"] == 1
        assert stats.transient == 1
        assert stats.public == 1
