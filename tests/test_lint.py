"""Tests for the grammar linter and the repro-lint CLI."""

import pytest

from repro.analysis.fusable import fusion_supported
from repro.analysis.lint import (
    lint,
    lint_alternatives_of_production,
    lint_useless_nofuse,
)
from repro.peg.builder import (
    GrammarBuilder,
    act,
    bind,
    cc,
    lit,
    opt,
    plus,
    ref,
    star,
    text,
)
from repro.peg.expr import Choice, Literal
from repro.tools import lint as lint_cli


def rules_of(findings):
    return {f.rule for f in findings}


class TestBindingRules:
    def test_unused_binding(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [bind("x", text(cc("0-9"))), act("1 + 1")])
        findings = lint(builder.build())
        assert rules_of(findings) == {"unused-binding"}
        assert "x" in findings[0].message

    def test_used_binding_clean(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [bind("x", text(cc("0-9"))), act("int(x)")])
        assert lint(builder.build()) == []

    def test_unknown_action_name(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [act("mystery(42)")])
        findings = lint(builder.build())
        assert rules_of(findings) == {"unknown-action-name"}

    def test_action_helpers_allowed(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [bind("h", text(cc("a"))), bind("t", star(text(cc("a")))), act("cons(h, t)")])
        assert lint(builder.build()) == []

    def test_invalid_python_action(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [act("1 +")])
        findings = lint(builder.build())
        assert rules_of(findings) == {"unknown-action-name"}
        assert "not a valid Python expression" in findings[0].message

    def test_binding_yields_none(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [bind("x", star(lit(";"))), act("x")])
        findings = lint(builder.build())
        assert "binding-yields-none" in rules_of(findings)

    def test_binding_of_contributing_repetition_clean(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [bind("x", star(text(cc("0-9")))), act("x")])
        assert lint(builder.build()) == []


class TestStructuralRules:
    def test_shadowed_literal_in_nested_choice(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [Choice((Literal("do"), Literal("double")))])
        findings = lint(builder.build())
        assert "shadowed-literal" in rules_of(findings)

    def test_longest_first_clean(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [Choice((Literal("double"), Literal("do")))])
        assert lint(builder.build()) == []

    def test_shadowed_literal_across_top_level_alternatives(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [lit("in")], [lit("int")])
        findings = lint_alternatives_of_production(builder.build())
        assert "shadowed-literal" in rules_of(findings)

    def test_nested_option(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [opt(opt(lit("x"))), lit("y")])
        findings = lint(builder.build())
        assert "nested-option" in rules_of(findings)

    def test_shipped_grammars_are_clean(self):
        import repro

        for root in ("jay.Extended", "xc.Extended", "calc.Full", "json.Json", "meta.Module"):
            grammar = repro.load_grammar(root)
            findings = lint(grammar) + lint_alternatives_of_production(grammar)
            assert findings == [], (root, findings)


@pytest.mark.skipif(not fusion_supported(), reason="scanner fusion needs Python >= 3.11")
class TestUselessNofuse:
    def test_never_fusable_production_flagged(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [ref("Act"), lit("!")])
        builder.object("Act", [bind("x", text(cc("0-9"))), act("int(x)")], nofuse=True)
        findings = lint_useless_nofuse(builder.build())
        assert [f.rule for f in findings] == ["useless-nofuse"]
        assert findings[0].production == "Act"

    def test_effective_nofuse_not_flagged(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [ref("Space"), lit("x")])
        builder.void("Space", [star(cc(" \t"))], nofuse=True)
        assert lint_useless_nofuse(builder.build()) == []

    def test_no_annotations_clean(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [star(cc("0-9")), lit("x")])
        assert lint_useless_nofuse(builder.build()) == []


class TestCli:
    def test_clean_grammar(self, capsys):
        assert lint_cli.main(["json.Json"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_printed_not_fatal(self, tmp_path, capsys):
        (tmp_path / "bad").mkdir()
        (tmp_path / "bad" / "G.mg").write_text(
            'module bad.G;\npublic S = x:( [0-9] ) "u" ;\n'
        )
        assert lint_cli.main(["bad.G", "--path", str(tmp_path)]) == 0
        assert "unused-binding" in capsys.readouterr().out

    def test_strict_mode_fails_on_findings(self, tmp_path):
        (tmp_path / "bad").mkdir()
        (tmp_path / "bad" / "G.mg").write_text(
            'module bad.G;\npublic S = x:( [0-9] ) "u" ;\n'
        )
        assert lint_cli.main(["bad.G", "--path", str(tmp_path), "--strict"]) == 1

    def test_missing_module(self, capsys):
        assert lint_cli.main(["nope.G"]) == 1
