"""Profiling must be observationally invisible.

For every backend, a profiled parse and an unprofiled parse of the same
input must produce structurally identical ASTs on accepts and identical
farthest-failure offsets on rejects.  Corpora are seeded mixes of
grammar-derived sentences (mostly accepted) and mutants (mostly rejected),
so both result paths are exercised on every grammar.
"""

from __future__ import annotations

import random
from functools import lru_cache

import pytest

import repro
from repro.difftest.generator import SentenceGenerator
from repro.difftest.mutate import mutate
from repro.errors import ParseError
from repro.interp import ClosureParser
from repro.profile import ParseProfile
from repro.runtime.node import structurally_equal

pytestmark = pytest.mark.prof

GRAMMARS = ["calc.Calculator", "json.Json", "jay.Jay", "xc.XC", "ml.ML"]


@lru_cache(maxsize=None)
def language(root: str) -> repro.Language:
    return repro.compile_grammar(root)


@lru_cache(maxsize=None)
def corpus(root: str) -> tuple[str, ...]:
    rng = random.Random(20260806)
    generator = SentenceGenerator(language(root).grammar, rng, max_depth=20)
    texts = [generator.generate() for _ in range(25)]
    texts += [mutate(text, rng, edits=rng.randint(1, 3)) for text in texts[:12]]
    return tuple(texts)


def outcome(parse, text):
    """(accepted, value, farthest-failure offset) of one parse call."""
    try:
        return True, parse(text), -1
    except ParseError as error:
        return False, None, error.offset
    except RecursionError:
        return None, None, -1  # input too deep for this backend; skip


def assert_same_outcomes(plain_parse, profiled_parse, texts, backend):
    checked = 0
    for text in texts:
        plain = outcome(plain_parse, text)
        profiled = outcome(profiled_parse, text)
        if plain[0] is None or profiled[0] is None:
            continue
        checked += 1
        assert plain[0] == profiled[0], (
            f"{backend}: accept/reject changed under profiling for {text!r}"
        )
        if plain[0]:
            assert structurally_equal(plain[1], profiled[1]), (
                f"{backend}: AST changed under profiling for {text!r}"
            )
        else:
            assert plain[2] == profiled[2], (
                f"{backend}: error offset changed under profiling for {text!r}"
            )
    assert checked, "corpus entirely skipped"


@pytest.mark.parametrize("root", GRAMMARS)
class TestProfiledParityAcrossBackends:
    def test_generated(self, root):
        lang = language(root)
        profile = ParseProfile()
        assert_same_outcomes(
            lang.parse,
            lambda text: lang.parse(text, profile=profile),
            corpus(root),
            "generated",
        )
        assert profile.total_invocations() > 0

    def test_interpreter(self, root):
        lang = language(root)
        profile = ParseProfile()
        plain = lang.interpreter()
        profiled = lang.interpreter(profile=profile)
        assert_same_outcomes(plain.parse, profiled.parse, corpus(root), "interp")
        assert profile.total_invocations() > 0

    def test_closures(self, root):
        lang = language(root)
        profile = ParseProfile()
        grammar = lang.prepared.grammar
        chunked = lang.prepared.chunked_memo
        plain = ClosureParser(grammar, chunked=chunked)
        profiled = ClosureParser(grammar, chunked=chunked, profile=profile)
        assert_same_outcomes(plain.parse, profiled.parse, corpus(root), "closures")
        assert profile.total_invocations() > 0


def test_session_parity(calc_lang):
    texts = ["1+2*3", "(4-5)", "1+", "", "7*(8+9)"]
    profile = ParseProfile()
    plain, profiled = calc_lang.session(), calc_lang.session(profile=profile)
    for text in texts:
        a = outcome(plain.parse, text)
        b = outcome(profiled.parse, text)
        assert a[0] == b[0]
        if a[0]:
            assert structurally_equal(a[1], b[1])
        else:
            assert a[2] == b[2]
    assert profile.parses == len(texts)
