"""Tests for the GNode visitor/transformer/dump/JSON utilities."""

import json

import pytest

import repro
from repro.locations import Location
from repro.runtime.node import GNode
from repro.runtime.visitor import Transformer, Visitor, dump_tree, node_from_json, node_to_json


def calc_tree(source="1+2*3"):
    return repro.compile_grammar("calc.Calculator").parse(source)


class TestVisitor:
    def test_named_dispatch(self):
        seen = []

        class IntCollector(Visitor):
            def visit_Int(self, node):
                seen.append(node[0])

        IntCollector().visit(calc_tree("1+2*3"))
        assert seen == ["1", "2", "3"]

    def test_default_recurses(self):
        class CountAll(Visitor):
            count = 0

            def visit_default(self, node):
                self.count += 1
                self.visit_children(node)

        counter = CountAll()
        counter.visit(calc_tree("1+2*3"))
        assert counter.count == 5  # Add, Mul, 3x Int

    def test_handled_nodes_stop_recursion_unless_asked(self):
        class StopAtMul(Visitor):
            ints = 0

            def visit_Int(self, node):
                self.ints += 1

            def visit_Mul(self, node):
                pass  # don't descend

        visitor = StopAtMul()
        visitor.visit(calc_tree("1+2*3"))
        assert visitor.ints == 1  # only the '1' outside the Mul

    def test_lists_are_traversed(self):
        class Names(Visitor):
            names = ()

            def visit_default(self, node):
                self.names += (node.name,)
                self.visit_children(node)

        visitor = Names()
        visitor.visit([GNode("A"), (GNode("B"),)])
        assert visitor.names == ("A", "B")


class TestTransformer:
    def test_constant_folding(self):
        class Fold(Transformer):
            def transform_Int(self, node):
                return int(node[0])

            def transform_Add(self, node):
                return node[0] + node[1]

            def transform_Mul(self, node):
                return node[0] * node[1]

        assert Fold().transform(calc_tree("1+2*3")) == 7

    def test_default_rebuilds_identical(self):
        tree = calc_tree("(1-2)/3")
        assert Transformer().transform(tree) == tree

    def test_rename_pass(self):
        class Rename(Transformer):
            def transform_Int(self, node):
                return GNode("Number", node.children)

        renamed = Rename().transform(calc_tree("1+2"))
        assert renamed == GNode("Add", (GNode("Number", ("1",)), GNode("Number", ("2",))))


class TestDump:
    def test_indented_output(self):
        text = dump_tree(calc_tree("1+2"))
        lines = text.splitlines()
        assert lines[0] == "Add"
        assert lines[1] == "  Int"
        assert lines[2] == "    '1'"

    def test_max_depth(self):
        text = dump_tree(calc_tree("1+2"), max_depth=1)
        assert "..." in text and "'1'" not in text

    def test_lists_and_scalars(self):
        assert dump_tree(["x", None]) == "[\n  'x'\n  None\n]"
        assert dump_tree([]) == "[]"

    def test_location_shown(self):
        node = GNode("N", (), Location("f.jay", 3, 1))
        assert "@f.jay:3:1" in dump_tree(node)


class TestJson:
    def test_roundtrip(self):
        tree = repro.compile_grammar("json.Json").parse('{"a": [1, null, true]}')
        encoded = json.dumps(node_to_json(tree))
        assert node_from_json(json.loads(encoded)) == tree

    def test_roundtrip_with_locations(self):
        tree = repro.compile_grammar("jay.Jay").parse("class A { }")
        restored = node_from_json(node_to_json(tree))
        assert restored == tree
        assert restored.location == tree.location

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            node_to_json(object())
        with pytest.raises(ValueError):
            node_from_json({"children": []})
