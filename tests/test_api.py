"""Tests for the high-level API (repro.api) and the package surface."""

import pytest

import repro
from repro.errors import ParseError
from repro.interp import BacktrackInterpreter, PackratInterpreter
from repro.optim import Options


class TestCompileGrammar:
    def test_from_builtin_name(self):
        lang = repro.compile_grammar("calc.Calculator")
        assert lang.parse("1+1") is not None

    def test_from_grammar_object(self, tiny_grammar):
        lang = repro.compile_grammar(tiny_grammar)
        assert lang.parse("1+2") is not None

    def test_start_override_on_object(self, tiny_grammar):
        lang = repro.compile_grammar(tiny_grammar, start="Number")
        assert lang.parse("42") == "42"

    def test_from_files_on_disk(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "Top.mg").write_text(
            'module pkg.Top;\npublic Object S = text:( [a-z]+ ) ;\n'
        )
        lang = repro.compile_grammar("pkg.Top", paths=[tmp_path])
        assert lang.parse("abc") == "abc"

    def test_options_respected(self, tiny_grammar):
        lang = repro.compile_grammar(tiny_grammar, options=Options.none())
        assert lang.options == Options.none()
        assert lang.parse("1+2") is not None

    def test_parse_convenience(self):
        assert repro.parse("calc.Calculator", "2*3") is not None


class TestLanguage:
    @pytest.fixture(scope="class")
    def lang(self):
        return repro.compile_grammar("calc.Calculator")

    def test_recognize(self, lang):
        assert lang.recognize("1+1")
        assert not lang.recognize("1+")

    def test_parser_instance(self, lang):
        parser = lang.parser("1+1")
        assert parser.parse() is not None

    def test_interpreters(self, lang):
        assert isinstance(lang.interpreter(), PackratInterpreter)
        assert isinstance(lang.interpreter(memoize=False), BacktrackInterpreter)
        assert lang.interpreter().parse("1+2") == lang.parse("1+2")

    def test_write_parser(self, lang, tmp_path):
        path = lang.write_parser(tmp_path / "calc_parser.py")
        from repro.codegen import load_parser_file

        parser_cls = load_parser_file(path)
        assert parser_cls("3*4").parse() == lang.parse("3*4")

    def test_source_mentions_grammar(self, lang):
        assert "calc.Calculator" in lang.parser_source

    def test_parse_error_type(self, lang):
        with pytest.raises(ParseError):
            lang.parse("((")


class TestParseSession:
    @pytest.fixture(scope="class")
    def lang(self):
        return repro.compile_grammar("calc.Calculator")

    def test_session_parses_many_inputs(self, lang):
        session = lang.session()
        for text in ("1+1", "2*3", "(4-1)*2"):
            assert session.parse(text) == lang.parse(text)
        assert session.parses == 3

    def test_session_reuses_parser_and_memo(self, lang):
        session = lang.session()
        session.parse("1+1")
        parser = session.parser
        memo = parser._columns if hasattr(parser, "_columns") else parser._memo
        session.parse("2*(3+4)")
        session.parse("5-5")
        # Same parser object, same memo container — reset, not reallocated.
        assert session.parser is parser
        current = parser._columns if hasattr(parser, "_columns") else parser._memo
        assert current is memo

    def test_session_memo_cleared_between_inputs(self, lang):
        session = lang.session()
        session.parse("1+2+3+4")
        session.parse("7")
        assert session.parser.memo_entry_count() <= 4  # only the short input's

    def test_session_failure_then_success(self, lang):
        session = lang.session()
        with pytest.raises(ParseError) as err:
            session.parse("1+*", source="bad.calc")
        assert err.value.source == "bad.calc"
        assert session.parse("1+2") == lang.parse("1+2")

    def test_session_memo_reset_on_failed_parse(self, lang):
        # Regression: a failed parse must not park its (possibly huge) memo
        # table on the session until the next request — a long-lived session
        # (e.g. a serve worker) would hold that memory while idle.
        session = lang.session()
        with pytest.raises(ParseError):
            session.parse("1+2+3+*")
        assert session.parser.memo_entry_count() == 0
        assert session.parse("4*5") == lang.parse("4*5")

    def test_session_memo_reset_on_failed_parse_dict_memo(self):
        lang = repro.compile_grammar(
            "calc.Calculator", options=Options.all().without("chunks")
        )
        session = lang.session()
        with pytest.raises(ParseError):
            session.parse("(1+(2*(3+")
        assert session.parser.memo_entry_count() == 0
        assert session.parse("1") is not None

    def test_session_recognize(self, lang):
        session = lang.session()
        assert session.recognize("1+1")
        assert not session.recognize("1+")
        assert session.recognize("2*2")

    def test_session_with_dict_memo(self):
        lang = repro.compile_grammar(
            "calc.Calculator", options=Options.all().without("chunks")
        )
        session = lang.session()
        assert session.parse("1+1") == session.parse("1+1")
        assert session.parser._memo is not None

    def test_session_start_override(self):
        lang = repro.compile_grammar("calc.Calculator")
        session = lang.session(start="Number")
        assert session.parse("42") is not None

    def test_error_includes_source_and_deduped_expected(self, lang):
        with pytest.raises(ParseError) as err:
            lang.parse("((((", source="deep.calc")
        error = err.value
        assert error.source == "deep.calc"
        assert str(error).startswith("deep.calc:")
        assert len(error.expected) == len(set(error.expected))


class TestPackageSurface:
    def test_exports(self):
        for name in ("compile_grammar", "load_grammar", "parse", "Options",
                     "GNode", "Grammar", "ModuleLoader", "ParseError"):
            assert hasattr(repro, name)

    def test_version(self):
        assert repro.__version__


class TestLanguageExtras:
    @pytest.fixture(scope="class")
    def lang(self):
        return repro.compile_grammar("calc.Calculator")

    def test_parse_file(self, lang, tmp_path):
        path = tmp_path / "input.calc"
        path.write_text("2*(3+4)")
        assert lang.parse_file(path) == lang.parse("2*(3+4)")

    def test_parse_file_source_in_locations(self, tmp_path):
        jay = repro.compile_grammar("jay.Jay")
        path = tmp_path / "prog.jay"
        path.write_text("class A { }")
        tree = jay.parse_file(path)
        assert tree.find_all("Class")[0].location.source == str(path)

    def test_trace_success(self, lang):
        value, events, error = lang.trace("1+2")
        assert error is None and value is not None
        assert events

    def test_trace_failure(self, lang):
        value, events, error = lang.trace("1+")
        assert value is None and error is not None


class TestLanguageLRUThreadSafety:
    """The in-process Language LRU is shared by every thread that calls
    compile_grammar — the parse service's handler threads do so concurrently
    with user threads, so get/put/evict must be lock-guarded."""

    def test_concurrent_compile_grammar(self):
        import threading

        repro.clear_language_cache()
        # Alternate roots so the workers mix hits, misses, and (with the
        # small LRU) evictions rather than all racing on one key.
        roots = ["calc.Calculator", "json.Json"]
        results: list = []
        errors: list = []
        barrier = threading.Barrier(8)

        def hammer(index: int) -> None:
            barrier.wait()
            try:
                for step in range(12):
                    language = repro.compile_grammar(roots[(index + step) % len(roots)])
                    results.append(language)
                    if step % 5 == 0:
                        repro.language_cache_info()
            except Exception as error:  # noqa: BLE001 - recorded for the assert
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not errors, errors
        assert len(results) == 8 * 12
        # Hits must share the cached object per root (no torn entries).
        calc = repro.compile_grammar("calc.Calculator")
        assert calc.parse("1+1") is not None
        info = repro.language_cache_info()
        assert 0 < info["size"] <= info["max"]

    def test_concurrent_clear_while_compiling(self):
        import threading

        repro.clear_language_cache()
        stop = threading.Event()
        errors: list = []

        def clearer() -> None:
            while not stop.is_set():
                repro.clear_language_cache()

        def compiler() -> None:
            try:
                for _ in range(10):
                    assert repro.compile_grammar("calc.Calculator").parse("2*3") is not None
            except Exception as error:  # noqa: BLE001
                errors.append(error)
            finally:
                stop.set()

        threads = [threading.Thread(target=clearer), threading.Thread(target=compiler)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not errors, errors
