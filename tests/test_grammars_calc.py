"""Feature tests for the shipped calculator grammar family."""

import pytest

import repro
from repro.errors import ParseError
from repro.runtime.node import GNode


def node(name, *children):
    return GNode(name, children)


def i(text):
    return node("Int", text)


class TestBaseCalculator:
    def test_single_number(self, calc_lang):
        assert calc_lang.parse("42") == i("42")

    def test_float(self, calc_lang):
        assert calc_lang.parse("3.14") == node("Float", "3.14")

    def test_left_associativity(self, calc_lang):
        assert calc_lang.parse("1-2-3") == node("Sub", node("Sub", i("1"), i("2")), i("3"))

    def test_precedence(self, calc_lang):
        assert calc_lang.parse("1+2*3") == node("Add", i("1"), node("Mul", i("2"), i("3")))

    def test_parentheses(self, calc_lang):
        assert calc_lang.parse("(1+2)*3") == node("Mul", node("Add", i("1"), i("2")), i("3"))

    def test_unary_minus_nests(self, calc_lang):
        assert calc_lang.parse("- - 5") == node("Neg", node("Neg", i("5")))

    def test_whitespace_everywhere(self, calc_lang):
        assert calc_lang.parse("  1 +\n\t2  ") == node("Add", i("1"), i("2"))

    def test_div_mul_left_assoc(self, calc_lang):
        assert calc_lang.parse("8/4/2") == node("Div", node("Div", i("8"), i("4")), i("2"))

    @pytest.mark.parametrize("bad", ["", "1+", "*3", "(1", "1 2", "a"])
    def test_rejections(self, calc_lang, bad):
        with pytest.raises(ParseError):
            calc_lang.parse(bad)


class TestPowerExtension:
    @pytest.fixture(scope="class")
    def lang(self):
        loader = repro.ModuleLoader()
        loader.register_source(
            "t.PowerCalc",
            """
            module t.PowerCalc;
            import calc.Power;
            import calc.Spacing;
            public Object Top = Spacing Expression EndOfInput ;
            """,
        )
        return repro.compile_grammar("t.PowerCalc", loader=loader)

    def test_right_associative(self, lang):
        assert lang.parse("2**3**2") == node("Pow", i("2"), node("Pow", i("3"), i("2")))

    def test_binds_tighter_than_mul(self, lang):
        assert lang.parse("2**3*4") == node("Mul", node("Pow", i("2"), i("3")), i("4"))

    def test_base_language_unchanged(self, lang):
        assert lang.parse("1+2") == node("Add", i("1"), i("2"))


class TestComparisonExtension:
    @pytest.fixture(scope="class")
    def lang(self):
        return repro.compile_grammar("calc.Comparison")

    def test_comparison_above_arithmetic(self, lang):
        assert lang.parse("1+2<4") == node("Lt", node("Add", i("1"), i("2")), i("4"))

    def test_le_not_split(self, lang):
        assert lang.parse("1<=2") == node("Le", i("1"), i("2"))

    def test_chained_left_assoc(self, lang):
        assert lang.parse("1<2==3") == node("Eq", node("Lt", i("1"), i("2")), i("3"))


class TestFullComposition:
    @pytest.fixture(scope="class")
    def lang(self):
        return repro.compile_grammar("calc.Full")

    def test_both_extensions_active(self, lang):
        value = lang.parse("2**2 <= 4 * 1")
        assert value == node("Le", node("Pow", i("2"), i("2")), node("Mul", i("4"), i("1")))

    def test_grammar_counts(self, lang):
        # Full = Core + Number + Spacing + Power delta + Comparison
        assert "Comparison" in lang.grammar.names()
        labels = lang.grammar["Factor"].label_names()
        assert "Pow" in labels and "Neg" in labels
