"""The bootstrap: the ``.mg`` language defined in ``.mg``.

``meta.Module`` (plus its imports) is a modular PEG describing the grammar
definition language itself; :mod:`repro.meta.selfhost` compiles it with the
library's own pipeline and rebuilds :class:`ModuleAst` values from the
trees.  These tests close the loop:

- the self-hosted reader agrees with the hand-written reader on every
  shipped grammar module — *including the meta modules themselves* (the
  bootstrap fixpoint);
- it agrees on targeted feature-by-feature inputs;
- it rejects what the hand-written reader rejects.
"""

import importlib.resources

import pytest

from repro.errors import GrammarSyntaxError
from repro.meta.parser import parse_module
from repro.meta.selfhost import meta_language, parse_module_selfhosted


def shipped_module_sources():
    root = importlib.resources.files("repro.grammars")
    out = []
    for family in sorted(p.name for p in root.iterdir() if p.is_dir()):
        directory = root / family
        for entry in sorted(p.name for p in directory.iterdir()):
            if entry.endswith(".mg"):
                out.append((f"{family}/{entry}", (directory / entry).read_text()))
    return out


SHIPPED = shipped_module_sources()


class TestBootstrapFixpoint:
    @pytest.mark.parametrize("name,source", SHIPPED, ids=[n for n, _ in SHIPPED])
    def test_agrees_on_shipped_module(self, name, source):
        assert parse_module_selfhosted(source, name) == parse_module(source, name)

    def test_meta_modules_covered(self):
        names = [name for name, _ in SHIPPED]
        assert any(name.startswith("meta/") for name in names), (
            "the bootstrap test must include the meta grammar itself"
        )

    def test_language_compiles_once(self):
        assert meta_language() is meta_language()


FEATURES = [
    "module t.M;\nA = \"x\" ;",
    "module t.M(P, Q);\nimport P;\nmodify Q;\nA = P1 ;\nP1 = \"p\" ;",
    'module t.M;\ninstantiate u.L(a.B) as t.L;\nA = "x" ;',
    "module t.M;\noption withLocation, verbose;\nA = \"x\" ;",
    'module t.M;\npublic transient generic A = <X> "x" / <Y> "y" / "z" ;',
    'module t.M;\nA = &"a" !"b" x:C void:D text:E F* G+ H? _ ;',
    'module t.M;\nA = ( "a" / "b" "c" )+ ;',
    'module t.M;\nA = [a-z\\]] [^0-9] ;',
    'module t.M;\nA = "tab\\t" "uni\\u0041"i ;',
    "module t.M;\nA = x:B { {'k': x}['k'] } ;",
    'module t.M;\nB += <N> "n" / ... ;',
    'module t.M;\nB += ... / <N> "n" ;',
    'module t.M;\nB += <N> "n" ;',
    "module t.M;\nB -= <X>, <Y> ;",
    'module t.M;\nvoid B := "replacement" ;',
    'module t.M;\ninline = "a" ;\ngeneric = "b" ;',  # attr/kind words as names
    "module t.M;\n// comment\nA = \"x\" ; /* block */",
    'module t.M;\nimport a.B;\nimport c.D;\nA = "x" ;',
]


class TestFeatureAgreement:
    @pytest.mark.parametrize("source", FEATURES)
    def test_feature(self, source):
        assert parse_module_selfhosted(source) == parse_module(source)


class TestRejections:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "module t.M",           # missing semicolon
            "module t.M;\nA = ;x",  # trailing garbage
            'module t.M;\nA = "x"', # missing production semicolon
            "module t.M;\nA -= ;",  # removal without labels
            'module t.M;\nA += ... / "x" / ... ;',  # double ellipsis
            'module t.M;\nA = "" ;',  # empty literal
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(GrammarSyntaxError):
            parse_module_selfhosted(source)
        with pytest.raises(GrammarSyntaxError):
            parse_module(source)

    def test_error_carries_position(self):
        with pytest.raises(GrammarSyntaxError) as err:
            parse_module_selfhosted("module t.M;\nA = $ ;")
        assert err.value.line == 2
