"""Feature tests for the shipped JSON grammar, cross-checked against the
standard library on generated documents."""

import json

import pytest

from repro.errors import ParseError
from repro.runtime.node import GNode
from repro.workloads import generate_json_document

from repro.baselines.json_rd import JsonParser  # tree-shape reference


def decode(node):
    """Minimal GNode -> Python decoder (escapes left raw on purpose)."""
    if node.name == "Object":
        return {m[0]: decode(m[1]) for m in (node[0] or [])}
    if node.name == "Array":
        return [decode(v) for v in (node[0] or [])]
    if node.name == "String":
        return node[0]
    if node.name == "Number":
        text = node[0]
        return int(text) if text.lstrip("-").isdigit() else float(text)
    return {"True": True, "False": False, "Null": None}[node.name]


class TestValues:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("true", GNode("True")),
            ("false", GNode("False")),
            ("null", GNode("Null")),
            ("0", GNode("Number", ("0",))),
            ("-12.5e+3", GNode("Number", ("-12.5e+3",))),
            ('"hi"', GNode("String", ("hi",))),
            ("[]", GNode("Array", (None,))),
            ("{}", GNode("Object", (None,))),
        ],
    )
    def test_scalars(self, json_lang, text, expected):
        assert json_lang.parse(text) == expected

    def test_nested(self, json_lang):
        tree = json_lang.parse('{"k": [1, {"n": null}]}')
        assert decode(tree) == {"k": [1, {"n": None}]}

    def test_string_escapes_kept_raw(self, json_lang):
        tree = json_lang.parse(r'"a\nbA"')
        assert tree[0] == r"a\nbA"

    def test_whitespace(self, json_lang):
        assert decode(json_lang.parse(' { "a" : 1 , "b" : [ 2 ] } ')) == {"a": 1, "b": [2]}

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "{",
            "[1,]",
            '{"a":}',
            '{"a" 1}',
            "01",          # leading zero
            "+1",          # plus sign
            "'single'",    # wrong quotes
            '{"a":1,}',
            "[1 2]",
            "tru",
            '"unterminated',
        ],
    )
    def test_rejections(self, json_lang, bad):
        with pytest.raises(ParseError):
            json_lang.parse(bad)


class TestAgainstStdlib:
    @pytest.mark.parametrize("seed", range(10))
    def test_generated_documents(self, json_lang, seed):
        document = generate_json_document(size=6, seed=seed)
        ours = json_lang.parse(document)
        # structure must match the hand-written parser's tree exactly
        assert ours == JsonParser(document).parse()
        # and the decoded numbers/strings structure must match json.loads
        # for documents without escapes (generator emits none)
        assert decode(ours) == json.loads(document)
