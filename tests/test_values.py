"""Direct unit tests for the static value model (repro.peg.values) and the
error hierarchy — the contracts every backend builds on."""

import pytest

import repro
from repro.errors import (
    AnalysisError,
    CodegenError,
    CompositionError,
    GrammarSyntaxError,
    ParseError,
    ReproError,
)
from repro.peg.builder import (
    GrammarBuilder,
    act,
    amp,
    any_,
    bang,
    bind,
    cc,
    lit,
    opt,
    plus,
    ref,
    star,
    text,
    void,
)
from repro.peg.expr import Choice, Epsilon, Fail, Sequence
from repro.peg.values import binding_names, contributes, kind_lookup, node_name, pass_through
from repro.peg.production import ValueKind


def kind_of_void(name):
    return ValueKind.VOID


def kind_of_object(name):
    return ValueKind.OBJECT


class TestContributes:
    @pytest.mark.parametrize(
        "expr",
        [lit("a"), cc("a-z"), any_(), void(ref("X")), amp(lit("a")), bang(lit("a")), Epsilon(), Fail()],
    )
    def test_never_contribute(self, expr):
        assert not contributes(expr, kind_of_object)

    @pytest.mark.parametrize("expr", [text(lit("a")), act("1")])
    def test_always_contribute(self, expr):
        assert contributes(expr, kind_of_object)

    def test_nonterminal_depends_on_kind(self):
        assert contributes(ref("X"), kind_of_object)
        assert not contributes(ref("X"), kind_of_void)

    def test_wrappers_follow_inner(self):
        assert contributes(bind("x", ref("X")), kind_of_object)
        assert not contributes(bind("x", lit("a")), kind_of_object)
        assert contributes(star(ref("X")), kind_of_object)
        assert not contributes(star(lit("a")), kind_of_object)
        assert contributes(opt(text(lit("a"))), kind_of_object)

    def test_sequence_any(self):
        assert contributes(Sequence((lit("a"), ref("X"))), kind_of_object)
        assert not contributes(Sequence((lit("a"), lit("b"))), kind_of_object)

    def test_choice_any(self):
        assert contributes(Choice((lit("a"), ref("X"))), kind_of_object)
        assert not contributes(Choice((lit("a"), lit("b"))), kind_of_object)


class TestHelpers:
    def test_pass_through(self):
        assert pass_through([]) is None
        assert pass_through(["v"]) == "v"
        assert pass_through(["a", "b"]) == ("a", "b")

    def test_binding_names_in_order_no_dupes(self):
        expr = Sequence((bind("b", lit("x")), star(bind("a", cc("0-9"))), bind("b", lit("y"))))
        assert binding_names(expr) == ["b", "a"]

    def test_node_name(self):
        assert node_name("Expr", "Add") == "Add"
        assert node_name("Expr", None) == "Expr"
        assert node_name("pkg.mod.Expr", None) == "Expr"

    def test_kind_lookup_defaults_to_object(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [lit("s")])
        kind_of = kind_lookup(builder.build())
        assert kind_of("S") is ValueKind.VOID
        assert kind_of("Unknown") is ValueKind.OBJECT


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (GrammarSyntaxError, CompositionError, AnalysisError, CodegenError, ParseError):
            assert issubclass(cls, ReproError)

    def test_grammar_syntax_error_format(self):
        error = GrammarSyntaxError("bad token", "file.mg", 3, 9)
        assert str(error) == "file.mg:3:9: bad token"
        assert (error.line, error.column) == (3, 9)

    def test_parse_error_fields(self):
        error = ParseError("syntax error", offset=5, line=1, column=6, expected=("'a'", "'b'"))
        assert "expected 'a', 'b'" in str(error)
        assert error.message == "syntax error"

    def test_parse_error_dedupes_expected(self):
        error = ParseError("x", 0, 1, 1, expected=("'a'", "'a'", "'b'"))
        assert str(error).count("'a'") == 1

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            repro.load_grammar("no.Such")
        with pytest.raises(ReproError):
            repro.parse("calc.Calculator", "((")
