"""Tests for the command-line tools."""

import pytest

from repro.codegen import load_parser_file
from repro.tools import pgen, stats


class TestPgen:
    def test_generate_to_file(self, tmp_path, capsys):
        output = tmp_path / "parser.py"
        code = pgen.main(["calc.Calculator", "-o", str(output)])
        assert code == 0
        parser_cls = load_parser_file(output)
        assert parser_cls("1+2").parse() is not None

    def test_generate_to_stdout(self, capsys):
        assert pgen.main(["calc.Calculator"]) == 0
        out = capsys.readouterr().out
        assert "class Parser(ParserBase)" in out

    def test_disable_flags(self, capsys):
        assert pgen.main(["calc.Calculator", "-Ono-chunks", "-Ono-errors"]) == 0
        out = capsys.readouterr().out
        assert "chunks" not in out.splitlines()[3]

    def test_print_grammar(self, capsys):
        assert pgen.main(["calc.Calculator", "--print-grammar"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("module calc.Calculator;")

    def test_start_override(self, tmp_path):
        output = tmp_path / "parser.py"
        assert pgen.main(["calc.Calculator", "--start", "Number", "-o", str(output)]) == 0
        parser_cls = load_parser_file(output)
        from repro.runtime import GNode

        assert parser_cls("42").parse() == GNode("Int", ("42",))

    def test_unknown_module_fails(self, capsys):
        assert pgen.main(["nope.Nothing"]) == 1
        assert "error" in capsys.readouterr().err

    def test_paths_option(self, tmp_path):
        (tmp_path / "x").mkdir()
        (tmp_path / "x" / "G.mg").write_text("module x.G;\npublic S = \"ok\" ;\n")
        out = tmp_path / "p.py"
        assert pgen.main(["x.G", "--path", str(tmp_path), "-o", str(out)]) == 0


class TestStats:
    def test_builtin_grammar(self, capsys):
        assert stats.main(["jay.Jay"]) == 0
        out = capsys.readouterr().out
        assert "jay.Expressions" in out
        assert "TOTAL" in out
        assert "Composed grammar" in out

    def test_error_path(self, capsys):
        assert stats.main(["nope.Nothing"]) == 1

    def test_collect_shape(self):
        gstats, modules = stats.collect("calc.Full")
        assert gstats.productions > 5
        names = {m.name for m in modules}
        assert "calc.Power" in names and "calc.Comparison" in names
        power = next(m for m in modules if m.name == "calc.Power")
        assert power.modifications == 1


class TestModuleGraph:
    def test_dot_output(self, capsys):
        assert stats.main(["jay.Extended", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "jay.Extended"')
        assert '"jay.Extended" [style=bold];' in out
        assert '"jay.ForEach" -> "jay.Statements" [style=dashed, label="modify"];' in out
        assert out.rstrip().endswith("}")

    def test_graph_structure(self):
        from repro.modules.graph import module_graph

        graph = module_graph("calc.Full")
        assert graph.root == "calc.Full"
        assert ("calc.Power", "calc.Core") in graph.modifies
        assert ("calc.Core", "calc.Spacing") in graph.imports
        assert graph.edge_count() >= 6
        assert set(graph.nodes) >= {"calc.Full", "calc.Power", "calc.Comparison", "calc.Core"}


class TestTrace:
    def test_good_input(self, tmp_path, capsys):
        from repro.tools import trace as trace_cli

        source = tmp_path / "good.calc"
        source.write_text("1 + 2")
        assert trace_cli.main(["calc.Calculator", str(source)]) == 0
        out = capsys.readouterr().out
        assert "applications" in out and "parse OK" in out

    def test_bad_input_shows_caret(self, tmp_path, capsys):
        from repro.tools import trace as trace_cli

        source = tmp_path / "bad.calc"
        source.write_text("1 + * 2")
        assert trace_cli.main(["calc.Calculator", str(source)]) == 1
        out = capsys.readouterr().out
        assert "error: syntax error" in out
        assert "^" in out
        # the expected-list must not be duplicated
        assert out.count("(expected") == 1

    def test_events_flag(self, tmp_path, capsys):
        from repro.tools import trace as trace_cli

        source = tmp_path / "x.calc"
        source.write_text("1*2")
        assert trace_cli.main(["calc.Calculator", str(source), "--events"]) == 0
        assert "@0" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        from repro.tools import trace as trace_cli

        assert trace_cli.main(["calc.Calculator", "/no/such/file"]) == 1

    def test_unknown_grammar(self, capsys):
        from repro.tools import trace as trace_cli

        assert trace_cli.main(["nope.G", "/dev/null"]) == 1


class TestParseErrorShow:
    def test_caret_points_at_offset(self):
        import repro

        calc = repro.compile_grammar("calc.Calculator")
        text = "1 +\n2 + * 3"
        try:
            calc.parse(text)
        except repro.ParseError as error:
            rendered = error.show(text, "demo.calc")
        else:
            raise AssertionError("expected failure")
        lines = rendered.splitlines()
        assert lines[0].startswith("demo.calc:2:")
        assert lines[1] == "  2 + * 3"
        assert lines[2].index("^") == 2 + text.splitlines()[1].index("*")
