"""Property-based tests (hypothesis).

Three families of invariants:

1. **Backend equivalence** — for fixed grammars, the generated parser, the
   packrat interpreter, and the backtracking interpreter must agree on both
   acceptance and semantic values for arbitrary inputs.
2. **Optimization soundness** — random optimization-flag subsets must not
   change parse results.
3. **Random-grammar differential testing** — random well-formed PEGs over a
   tiny alphabet are run through all backends on random strings; acceptance
   and consumed-prefix length must agree everywhere.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.codegen import generate_parser_source, load_parser
from repro.errors import ParseError
from repro.interp import BacktrackInterpreter, PackratInterpreter
from repro.optim import Options, prepare
from repro.peg.builder import GrammarBuilder, alt, cc, lit, opt, plus, ref, star, text, void
from repro.peg.expr import (
    And,
    Choice,
    Expression,
    Literal,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Sequence,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Alternative, Production, ValueKind

# ---------------------------------------------------------------------------
# 1. Backend equivalence on the calculator language
# ---------------------------------------------------------------------------

_calc = repro.compile_grammar("calc.Calculator")
_calc_packrat = _calc.interpreter()
_calc_naive = _calc.interpreter(memoize=False)


@st.composite
def calc_expressions(draw, depth=0):
    """Random well-formed calculator source text."""
    if depth >= 4 or draw(st.booleans()):
        number = draw(st.integers(0, 999))
        if draw(st.booleans()):
            return f"{number}.{draw(st.integers(0, 99))}"
        return str(number)
    kind = draw(st.sampled_from(["bin", "neg", "paren"]))
    if kind == "bin":
        op = draw(st.sampled_from(["+", "-", "*", "/"]))
        left = draw(calc_expressions(depth=depth + 1))
        right = draw(calc_expressions(depth=depth + 1))
        space = draw(st.sampled_from(["", " ", "  "]))
        return f"{left}{space}{op}{space}{right}"
    if kind == "neg":
        inner = draw(calc_expressions(depth=depth + 1))
        return f"- {inner}"
    return f"({draw(calc_expressions(depth=depth + 1))})"


@given(calc_expressions())
@settings(max_examples=150, deadline=None)
def test_calc_backends_agree_on_valid_input(source):
    expected = _calc_packrat.parse(source)
    assert _calc.parse(source) == expected
    assert _calc_naive.parse(source) == expected


@given(st.text(alphabet="0123456789+-*/() .", max_size=24))
@settings(max_examples=200, deadline=None)
def test_calc_backends_agree_on_arbitrary_input(source):
    outcomes = []
    for parse in (_calc.parse, _calc_packrat.parse, _calc_naive.parse):
        try:
            outcomes.append(("ok", parse(source)))
        except ParseError:
            outcomes.append(("fail", None))
    assert outcomes[0] == outcomes[1] == outcomes[2]


# ---------------------------------------------------------------------------
# 2. Optimization soundness under random flag subsets
# ---------------------------------------------------------------------------

_flag_sets = st.sets(st.sampled_from(Options.flag_names()))
_tiny_grammar = repro.load_grammar("calc.Calculator")
_reference_inputs = ["1", "1+2*3", "(1-2)/3", "- 4 * (5 + 6)", "7.5-0.5"]
_reference_values = [_calc.parse(s) for s in _reference_inputs]


@given(_flag_sets)
@settings(max_examples=40, deadline=None)
def test_any_flag_subset_preserves_values(disabled):
    options = Options.all().without(*disabled)
    prepared = prepare(_tiny_grammar, options)
    parser_cls = load_parser(generate_parser_source(prepared))
    for source, expected in zip(_reference_inputs, _reference_values):
        assert parser_cls(source).parse() == expected


# ---------------------------------------------------------------------------
# 3. Random-grammar differential testing
# ---------------------------------------------------------------------------

_RULE_NAMES = ["R0", "R1", "R2", "R3"]


@st.composite
def random_expression(draw, names, depth=0) -> Expression:
    if depth >= 3:
        return Literal(draw(st.sampled_from(["a", "b", "ab", "c"])))
    kind = draw(
        st.sampled_from(
            ["lit", "lit", "ref", "seq", "choice", "star", "plus_", "option", "and_", "not_"]
        )
    )
    if kind == "lit":
        return Literal(draw(st.sampled_from(["a", "b", "ab", "c"])))
    if kind == "ref":
        return Sequence(
            (Literal(draw(st.sampled_from(["a", "b"]))), Nonterminal(draw(st.sampled_from(names))))
        )
    if kind == "seq":
        return Sequence(
            tuple(draw(random_expression(names, depth + 1)) for _ in range(draw(st.integers(2, 3))))
        )
    if kind == "choice":
        return Choice(
            tuple(draw(random_expression(names, depth + 1)) for _ in range(draw(st.integers(2, 3))))
        )
    inner = draw(random_expression(names, depth + 1))
    if kind == "star":
        return Repetition(Sequence((Literal("a"), inner)), 0)
    if kind == "plus_":
        return Repetition(Sequence((Literal("b"), inner)), 1)
    if kind == "option":
        return Option(inner)
    if kind == "and_":
        return And(inner)
    return Not(inner)


@st.composite
def random_grammars(draw) -> Grammar:
    productions = []
    for index, name in enumerate(_RULE_NAMES):
        # Only allow references to later rules: guarantees no left recursion
        # and no infinite recursion anywhere.
        later = _RULE_NAMES[index + 1 :] or None
        if later:
            expr = draw(random_expression(later))
        else:
            expr = draw(random_expression(["R3"], depth=3))
        productions.append(
            Production(name, ValueKind.VOID, (Alternative(expr),), frozenset())
        )
    return Grammar(tuple(productions), start="R0", name="random")


@given(random_grammars(), st.text(alphabet="abc", max_size=10))
@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_grammar_backends_agree(grammar, source):
    from repro.interp import ClosureParser

    packrat = PackratInterpreter(grammar)
    naive = BacktrackInterpreter(grammar)
    prepared = prepare(grammar, check=False)
    generated = load_parser(generate_parser_source(prepared))
    closures = ClosureParser(prepared.grammar)

    reference = packrat.match_prefix(source)[0]
    assert naive.match_prefix(source)[0] == reference
    assert generated(source).match_prefix()[0] == reference
    assert closures.match_prefix(source)[0] == reference

    # The unoptimized pipeline agrees too.
    unoptimized = prepare(grammar, Options.none(), check=False)
    generated_slow = load_parser(generate_parser_source(unoptimized))
    assert generated_slow(source).match_prefix()[0] == reference


# ---------------------------------------------------------------------------
# 4. JSON: generated-vs-baseline on hypothesis-built JSON values
# ---------------------------------------------------------------------------

_json = repro.compile_grammar("json.Json")

json_values = st.recursive(
    st.one_of(
        st.booleans(),
        st.none(),
        st.integers(-10**6, 10**6),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(alphabet="abcdefghij XYZ_", max_size=8),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(alphabet="abc", max_size=4), children, max_size=4),
    ),
    max_leaves=12,
)


@given(json_values)
@settings(max_examples=150, deadline=None)
def test_json_grammar_accepts_everything_stdlib_emits(value):
    import json as stdlib_json

    from repro.baselines import JsonParser

    document = stdlib_json.dumps(value)
    tree = _json.parse(document)
    assert tree == JsonParser(document).parse()
