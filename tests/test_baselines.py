"""Cross-checks: hand-written baselines must produce exactly the trees of
the corresponding grammars, on targeted cases and generated corpora."""

import pytest

from repro.baselines import CalcParser, JayParser, JsonParser, XcParser
from repro.errors import ParseError
from repro.workloads import generate_c_program, generate_jay_program, generate_json_document


class TestCalcBaseline:
    @pytest.mark.parametrize(
        "text",
        ["1", "1+2", "1-2-3", "2*3+4", "8/2/2", "-5", "- -5", "(1+2)*3",
         "1.5*2", " 1 + 2 ", "((((7))))", "3*-2"],
    )
    def test_matches_grammar(self, calc_lang, text):
        assert CalcParser(text).parse() == calc_lang.parse(text)

    @pytest.mark.parametrize("bad", ["", "1+", "(", "1 2", "abc"])
    def test_rejects_like_grammar(self, calc_lang, bad):
        with pytest.raises(ParseError):
            CalcParser(bad).parse()
        assert not calc_lang.recognize(bad)


class TestJsonBaseline:
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_corpus(self, json_lang, seed):
        document = generate_json_document(size=5, seed=seed)
        assert JsonParser(document).parse() == json_lang.parse(document)

    @pytest.mark.parametrize(
        "text",
        ['{"a": "b\\nc"}', "[[[[1]]]]", '{"empty": {}, "list": []}', "-0.5e-7"],
    )
    def test_targeted(self, json_lang, text):
        assert JsonParser(text).parse() == json_lang.parse(text)


class TestJayBaseline:
    @pytest.mark.parametrize("seed", range(6))
    def test_generated_corpus(self, jay_lang, seed):
        program = generate_jay_program(size=5, seed=seed)
        assert JayParser(program).parse() == jay_lang.parse(program)

    @pytest.mark.parametrize(
        "program",
        [
            "class A { int x = 1 + 2 * 3; }",
            "package p; import q.r; class A extends B { void m(int a) { a = a ? 1 : 2; } }",
            "class A { void m() { x.y(1,2)[3] = new T[n]; } }",
            "class A { void m() { for (int i = 0; i < 3; i = i + 1) do ; while (false); } }",
        ],
    )
    def test_targeted(self, jay_lang, program):
        assert JayParser(program).parse() == jay_lang.parse(program)

    def test_error_raised_on_garbage(self):
        with pytest.raises(ParseError):
            JayParser("class {").parse()


class TestXcBaseline:
    @pytest.mark.parametrize("seed", range(6))
    def test_generated_corpus(self, xc_lang, seed):
        program = generate_c_program(size=5, seed=seed)
        assert XcParser(program).parse() == xc_lang.parse(program)

    @pytest.mark.parametrize(
        "program",
        [
            "int x = 1;",
            "struct point { int x; int y; };",
            "unsigned long big = 0x1fUL;",
            "int main(void) { return 0; }",
            "int f(int *p, char **q) { return *p + q[0][1]; }",
            "int f(void) { g = a << 2 | b & ~c ^ d; return g >> 1; }",
            "int f(void) { loop: for (int i = 0; i < 9; i++) goto loop; return 0; }",
            "int f(void) { switch (x) { case 1: break; default: ; } return 0; }",
            "int f(void) { x = a ? b, c : d; return x++ + --y; }",
            "float g0 = .5f;",
            "int f(void) { s.m = t->n; return 'q' + \"str\"[0]; }",
        ],
    )
    def test_targeted(self, xc_lang, program):
        assert XcParser(program).parse() == xc_lang.parse(program)

    def test_error_on_garbage(self):
        with pytest.raises(ParseError):
            XcParser("int {").parse()
