"""Unit tests for the .mg tokenizer."""

import pytest

from repro.errors import GrammarSyntaxError
from repro.meta.lexer import Lexer


def lex(text):
    return Lexer(text, "test.mg").tokens()


def kinds(text):
    return [t.kind for t in lex(text)]


def values(text):
    return [t.value for t in lex(text)[:-1]]  # drop eof


class TestBasics:
    def test_empty(self):
        tokens = lex("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_idents_and_punct(self):
        assert values("module a.B ;") == ["module", "a.B", ";"]

    def test_qualified_names_lex_as_one_token(self):
        tokens = lex("jay.Expressions")
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "jay.Expressions"

    def test_trailing_dot_is_error(self):
        # The identifier stops before the dangling dot, and a lone '.'
        # is not a legal token in the surface language.
        with pytest.raises(GrammarSyntaxError):
            lex("a.b.")

    def test_multi_char_punct(self):
        assert values("+= := -= ...") == ["+=", ":=", "-=", "..."]

    def test_single_char_punct(self):
        assert values("; = / < > ( ) * + ? & ! : , _") == list(
            "; = / < > ( ) * + ? & ! : , _".split()
        )

    def test_positions(self):
        tokens = lex("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestComments:
    def test_line_comment(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block(self):
        with pytest.raises(GrammarSyntaxError):
            lex("/* never ends")


class TestStrings:
    def test_plain(self):
        token = lex('"hello"')[0]
        assert token.kind == "literal" and token.value == "hello"

    def test_escapes(self):
        token = lex(r'"a\n\t\\\""')[0]
        assert token.value == 'a\n\t\\"'

    def test_unicode_escape(self):
        assert lex(r'"A"')[0].value == "A"

    def test_ignore_case_flag(self):
        token = lex('"select"i')[0]
        assert token.flag == "i"

    def test_i_followed_by_ident_is_not_flag(self):
        tokens = lex('"x"iffy')
        assert tokens[0].flag == ""
        assert tokens[1].value == "iffy"

    def test_unterminated(self):
        with pytest.raises(GrammarSyntaxError):
            lex('"abc')

    def test_newline_in_string(self):
        with pytest.raises(GrammarSyntaxError):
            lex('"ab\ncd"')

    def test_unknown_escape(self):
        with pytest.raises(GrammarSyntaxError):
            lex(r'"\q"')


class TestCharClasses:
    def test_body_raw(self):
        token = lex(r"[a-z0-9\]]")[0]
        assert token.kind == "class"
        assert token.value == r"a-z0-9\]"

    def test_unterminated(self):
        with pytest.raises(GrammarSyntaxError):
            lex("[abc")


class TestActions:
    def test_simple(self):
        token = lex("{ cons(a, b) }")[0]
        assert token.kind == "action"
        assert token.value == "cons(a, b)"

    def test_nested_braces(self):
        token = lex("{ {'k': v}['k'] }")[0]
        assert token.value == "{'k': v}['k']"

    def test_braces_in_strings_ignored(self):
        token = lex("{ '}' + \"{\" }")[0]
        assert token.value == "'}' + \"{\""

    def test_unterminated(self):
        with pytest.raises(GrammarSyntaxError):
            lex("{ oops")


def test_unexpected_character():
    with pytest.raises(GrammarSyntaxError) as err:
        lex("a @ b")
    assert "@" in str(err.value)


def test_error_carries_location():
    with pytest.raises(GrammarSyntaxError) as err:
        lex('a\n  "unterminated')
    assert err.value.line == 2
