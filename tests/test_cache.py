"""The compilation cache: disk entries, the in-process LRU, and CLI wiring.

Covers the invalidation rules from docs/caching.md: content fingerprints
(.mg edits), version mismatches, and corruption (discard and rebuild,
never trust).
"""

from __future__ import annotations

import pickle

import pytest

import repro
from repro.api import clear_language_cache, language_cache_info
from repro.cache import CACHE_VERSION, CompilationCache, module_fingerprint
from repro.meta import ModuleLoader


@pytest.fixture(autouse=True)
def _fresh_lru():
    clear_language_cache()
    yield
    clear_language_cache()


@pytest.fixture()
def grammar_dir(tmp_path):
    root = tmp_path / "grammars"
    (root / "toy").mkdir(parents=True)
    (root / "toy" / "Lang.mg").write_text(
        'module toy.Lang;\n\nimport toy.Digits;\n\npublic String Number = Digit+ ;\n'
    )
    (root / "toy" / "Digits.mg").write_text(
        "module toy.Digits;\n\nString Digit = [0-9] ;\n"
    )
    return root


@pytest.fixture()
def cache(tmp_path):
    return CompilationCache(tmp_path / "cache")


def compile_toy(grammar_dir, **kwargs):
    return repro.compile_grammar("toy.Lang", paths=[grammar_dir], **kwargs)


class TestDiskCache:
    def test_miss_then_store_then_hit(self, grammar_dir, cache):
        lang = compile_toy(grammar_dir, cache=cache)
        assert cache.stats.misses == 1 and cache.stats.stores == 1
        assert lang.parse("123") == "123"

        clear_language_cache()
        warm = CompilationCache(cache.directory)
        lang2 = compile_toy(grammar_dir, cache=warm)
        assert warm.stats.hits == 1 and warm.stats.misses == 0
        assert lang2.parse("77") == "77"
        assert lang2.parser_source == lang.parser_source

    def test_hit_preserves_grammar_and_options(self, grammar_dir, cache):
        lang = compile_toy(grammar_dir, cache=cache)
        clear_language_cache()
        lang2 = compile_toy(grammar_dir, cache=CompilationCache(cache.directory))
        assert lang2.grammar.names() == lang.grammar.names()
        assert lang2.options == lang.options

    def test_mg_edit_invalidates(self, grammar_dir, cache):
        compile_toy(grammar_dir, cache=cache)
        (grammar_dir / "toy" / "Digits.mg").write_text(
            "module toy.Digits;\n\nString Digit = [0-9a-f] ;\n"
        )
        clear_language_cache()
        stale = CompilationCache(cache.directory)
        lang = compile_toy(grammar_dir, cache=stale)
        assert stale.stats.invalidations == 1 and stale.stats.hits == 0
        assert lang.parse("beef") == "beef"  # rebuilt against the new text

    def test_options_get_distinct_entries(self, grammar_dir, cache):
        compile_toy(grammar_dir, cache=cache)
        compile_toy(grammar_dir, cache=cache, options=repro.Options.none())
        assert cache.stats.stores == 2
        assert len(cache.entries()) == 2

    def test_corrupt_entry_discarded_and_rebuilt(self, grammar_dir, cache):
        compile_toy(grammar_dir, cache=cache)
        entry = next(cache.directory.glob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        clear_language_cache()
        recovered = CompilationCache(cache.directory)
        lang = compile_toy(grammar_dir, cache=recovered)
        assert recovered.stats.corrupt == 1
        assert recovered.warnings and "corrupt" in recovered.warnings[0]
        # Discarded, rebuilt, and re-stored under the same key: the entry
        # file exists again and now round-trips cleanly.
        assert recovered.stats.stores == 1
        assert pickle.loads(entry.read_bytes())["root"] == "toy.Lang"
        assert lang.parse("5") == "5"

    def test_wrong_shape_entry_is_corrupt(self, grammar_dir, cache):
        compile_toy(grammar_dir, cache=cache)
        entry = next(cache.directory.glob("*.pkl"))
        entry.write_bytes(pickle.dumps({"cache_version": CACHE_VERSION}))
        clear_language_cache()
        recovered = CompilationCache(cache.directory)
        compile_toy(grammar_dir, cache=recovered)
        assert recovered.stats.corrupt == 1

    def test_version_mismatch_is_stale_not_corrupt(self, grammar_dir, cache):
        compile_toy(grammar_dir, cache=cache)
        entry = next(cache.directory.glob("*.pkl"))
        payload = pickle.loads(entry.read_bytes())
        payload["package_version"] = "0.0.0-older"
        entry.write_bytes(pickle.dumps(payload))
        clear_language_cache()
        stale = CompilationCache(cache.directory)
        compile_toy(grammar_dir, cache=stale)
        assert stale.stats.invalidations == 1
        assert stale.stats.corrupt == 0 and not stale.warnings

    def test_cache_false_bypasses_everything(self, grammar_dir, cache):
        compile_toy(grammar_dir, cache=cache)
        lang2 = compile_toy(grammar_dir, cache=False)
        assert language_cache_info()["size"] == 0 or lang2 is not None
        assert cache.stats.hits == 0

    def test_entries_listing(self, grammar_dir, cache):
        compile_toy(grammar_dir, cache=cache)
        rows = cache.entries()
        assert len(rows) == 1
        assert rows[0]["root"] == "toy.Lang"
        assert rows[0]["status"] == "ok"
        assert rows[0]["modules"] == 2

    def test_clear(self, grammar_dir, cache):
        compile_toy(grammar_dir, cache=cache)
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_builtin_grammar_roundtrip(self, tmp_path):
        cache = CompilationCache(tmp_path / "c")
        lang = repro.compile_grammar("calc.Calculator", cache=cache)
        clear_language_cache()
        warm = CompilationCache(tmp_path / "c")
        lang2 = repro.compile_grammar("calc.Calculator", cache=warm)
        assert warm.stats.hits == 1
        assert lang2.parse("1 + 2 * 3") == lang.parse("1 + 2 * 3")


class TestLanguageLRU:
    def test_repeat_compile_returns_same_object(self, grammar_dir):
        lang1 = compile_toy(grammar_dir)
        lang2 = compile_toy(grammar_dir)
        assert lang1 is lang2
        assert language_cache_info()["size"] == 1

    def test_lru_revalidates_on_mg_edit(self, grammar_dir):
        lang1 = compile_toy(grammar_dir)
        (grammar_dir / "toy" / "Digits.mg").write_text(
            "module toy.Digits;\n\nString Digit = [0-9x] ;\n"
        )
        lang2 = compile_toy(grammar_dir)
        assert lang2 is not lang1
        assert lang2.parse("1x2") == "1x2"

    def test_distinct_keys_distinct_entries(self, grammar_dir):
        lang1 = compile_toy(grammar_dir)
        lang2 = compile_toy(grammar_dir, options=repro.Options.none())
        assert lang1 is not lang2
        assert language_cache_info()["size"] == 2

    def test_custom_loader_skips_lru(self, grammar_dir):
        loader = ModuleLoader(paths=[grammar_dir])
        lang1 = repro.compile_grammar("toy.Lang", loader=loader)
        lang2 = repro.compile_grammar("toy.Lang", loader=loader)
        assert lang1 is not lang2

    def test_clear_language_cache(self, grammar_dir):
        compile_toy(grammar_dir)
        clear_language_cache()
        assert language_cache_info()["size"] == 0


class TestFingerprint:
    def test_fingerprint_tracks_text(self, grammar_dir):
        loader = ModuleLoader(paths=[grammar_dir])
        before = module_fingerprint(loader, ("toy.Lang", "toy.Digits"))
        (grammar_dir / "toy" / "Digits.mg").write_text(
            "module toy.Digits;\n\nString Digit = [2-3] ;\n"
        )
        after = module_fingerprint(loader, ("toy.Lang", "toy.Digits"))
        assert before["toy.Lang"] == after["toy.Lang"]
        assert before["toy.Digits"] != after["toy.Digits"]


class TestCliWiring:
    def test_pgen_cache_dir(self, grammar_dir, tmp_path, capsys):
        from repro.tools.pgen import main

        cache_dir = tmp_path / "cli-cache"
        out = tmp_path / "parser.py"
        assert main(["toy.Lang", "--path", str(grammar_dir),
                     "--cache-dir", str(cache_dir), "-o", str(out)]) == 0
        assert list(cache_dir.glob("*.pkl"))
        clear_language_cache()
        assert main(["toy.Lang", "--path", str(grammar_dir),
                     "--cache-dir", str(cache_dir), "-o", str(out)]) == 0
        assert "class Parser" in out.read_text()

    def test_pgen_no_cache(self, grammar_dir, tmp_path):
        from repro.tools.pgen import main

        out = tmp_path / "parser.py"
        assert main(["toy.Lang", "--path", str(grammar_dir), "--no-cache",
                     "-o", str(out)]) == 0
        assert "class Parser" in out.read_text()

    def test_stats_reports_cache(self, grammar_dir, tmp_path, capsys):
        from repro.tools.stats import main

        cache = CompilationCache(tmp_path / "c")
        compile_toy(grammar_dir, cache=cache)
        assert main(["toy.Lang", "--path", str(grammar_dir),
                     "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "Compilation cache" in out and "toy.Lang" in out

    def test_stats_strict_fails_on_corruption(self, grammar_dir, tmp_path, capsys):
        from repro.tools.stats import main

        cache = CompilationCache(tmp_path / "c")
        compile_toy(grammar_dir, cache=cache)
        next(cache.directory.glob("*.pkl")).write_bytes(b"junk")
        # Without --strict: warnings only, still exit 0.
        assert main(["toy.Lang", "--path", str(grammar_dir),
                     "--cache-dir", str(tmp_path / "c")]) == 0
        assert "corrupt" in capsys.readouterr().err
        # With --strict: non-zero.
        next(cache.directory.glob("*.tmp"), None)  # no leftovers expected
        cache2 = CompilationCache(tmp_path / "c")
        compile_toy(grammar_dir, cache=cache2)
        next(cache2.directory.glob("*.pkl")).write_bytes(b"junk")
        assert main(["toy.Lang", "--path", str(grammar_dir),
                     "--cache-dir", str(tmp_path / "c"), "--strict"]) == 2

    def test_trace_strict_fails_on_corruption(self, grammar_dir, tmp_path, capsys):
        from repro.tools.trace import main

        cache = CompilationCache(tmp_path / "c")
        compile_toy(grammar_dir, cache=cache)
        next(cache.directory.glob("*.pkl")).write_bytes(b"junk")
        clear_language_cache()
        source = tmp_path / "input.txt"
        source.write_text("123")
        code = main(["toy.Lang", str(source), "--path", str(grammar_dir),
                     "--cache-dir", str(tmp_path / "c"), "--strict"])
        assert code == 2
        assert "corrupt" in capsys.readouterr().err
        # Same run without --strict succeeds (entry was rebuilt).
        clear_language_cache()
        assert main(["toy.Lang", str(source), "--path", str(grammar_dir),
                     "--cache-dir", str(tmp_path / "c")]) == 0
