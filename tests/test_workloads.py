"""Tests for the synthetic workload generators."""

import pytest

from repro.interp import BacktrackInterpreter, PackratInterpreter
from repro.workloads import (
    backtracking_grammar,
    backtracking_input,
    generate_c_program,
    generate_jay_program,
    generate_json_document,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "generator", [generate_jay_program, generate_c_program, generate_json_document]
    )
    def test_same_seed_same_output(self, generator):
        assert generator(size=6, seed=3) == generator(size=6, seed=3)

    @pytest.mark.parametrize(
        "generator", [generate_jay_program, generate_c_program, generate_json_document]
    )
    def test_different_seeds_differ(self, generator):
        assert generator(size=6, seed=1) != generator(size=6, seed=2)

    def test_size_scales_output(self):
        small = len(generate_jay_program(size=3, seed=0))
        large = len(generate_jay_program(size=30, seed=0))
        assert large > 3 * small


class TestValidity:
    @pytest.mark.parametrize("seed", range(4))
    def test_jay_programs_parse(self, jay_lang, seed):
        assert jay_lang.recognize(generate_jay_program(size=6, seed=seed))

    @pytest.mark.parametrize("seed", range(4))
    def test_c_programs_parse(self, xc_lang, seed):
        assert xc_lang.recognize(generate_c_program(size=6, seed=seed))

    @pytest.mark.parametrize("seed", range(4))
    def test_json_documents_parse(self, json_lang, seed):
        assert json_lang.recognize(generate_json_document(size=6, seed=seed))


class TestPathological:
    def test_grammar_accepts_inputs(self):
        grammar = backtracking_grammar()
        packrat = PackratInterpreter(grammar)
        for depth in (0, 1, 5, 30):
            assert packrat.recognize(backtracking_input(depth))

    def test_rejects_mismatched(self):
        grammar = backtracking_grammar()
        assert not PackratInterpreter(grammar).recognize("((1)")

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            backtracking_input(-1)

    def test_naive_visibly_slower_than_packrat(self):
        import time

        grammar = backtracking_grammar()
        deep = backtracking_input(12)
        start = time.perf_counter()
        assert PackratInterpreter(grammar).recognize(deep)
        packrat_time = time.perf_counter() - start
        start = time.perf_counter()
        assert BacktrackInterpreter(grammar).recognize(deep)
        naive_time = time.perf_counter() - start
        assert naive_time > 20 * packrat_time
