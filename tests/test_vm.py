"""Tests for the parsing-machine backend (:mod:`repro.vm`).

The machine must be observationally identical to the generated parser it
sits beside: same ASTs, same farthest-failure offsets *and* expected sets,
same memo behavior across ``reset()``, same progress guard on nullable
repetitions — with one deliberate difference: ``depth_budget`` bounds the
machine's explicit stack (calls + live backtrack points), not Python
recursion, so deep inputs raise :class:`ParseDepthError` without ever
touching the interpreter recursion limit.
"""

from __future__ import annotations

import pickle

import pytest

import repro
from repro.errors import AnalysisError, ParseDepthError, ParseError
from repro.interp.closures import ClosureParser
from repro.optim import Options, prepare
from repro.peg.builder import GrammarBuilder, lit, seq
from repro.peg.expr import Literal, Option, Repetition
from repro.profile import ParseProfile
from repro.runtime.node import structural_diff
from repro.vm import VMParser, compile_program, disassemble, summarize

JAY_TEXT = "import a.b; class A extends B { int f(int x) { return x + 1; } }"
JAY_BAD = "class A { int f( }"


@pytest.fixture(scope="module")
def jay_lang():
    return repro.compile_grammar("jay.Jay")


@pytest.fixture(scope="module")
def jay_program(jay_lang):
    return compile_program(jay_lang.prepared)


# -- cross-backend parity -----------------------------------------------------


class TestParity:
    def test_ast_matches_generated(self, jay_lang, jay_program):
        expected = jay_lang.parse(JAY_TEXT)
        actual = VMParser(jay_program, JAY_TEXT).parse()
        assert structural_diff(expected, actual) is None

    def test_error_offset_and_expected_set_match_generated(self, jay_lang, jay_program):
        with pytest.raises(ParseError) as gen_info:
            jay_lang.parse(JAY_BAD)
        with pytest.raises(ParseError) as vm_info:
            VMParser(jay_program, JAY_BAD).parse()
        assert vm_info.value.offset == gen_info.value.offset
        assert set(vm_info.value.expected) == set(gen_info.value.expected)
        assert vm_info.value.line == gen_info.value.line
        assert vm_info.value.column == gen_info.value.column

    def test_profiled_twin_matches_plain_and_closures(self, jay_lang):
        profiled = compile_program(jay_lang.prepared, profiled=True)
        profile = ParseProfile()
        tree = VMParser(profiled, JAY_TEXT, profile=profile).parse()
        assert structural_diff(jay_lang.parse(JAY_TEXT), tree) is None

        reference = ParseProfile()
        ClosureParser(jay_lang.prepared.grammar, chunked=True, profile=reference).parse(JAY_TEXT)
        assert dict(profile.invocations) == dict(reference.invocations)
        assert dict(profile.memo_hits) == dict(reference.memo_hits)
        assert dict(profile.memo_misses) == dict(reference.memo_misses)
        assert dict(profile.backtracks) == dict(reference.backtracks)
        assert dict(profile.fused_scans) == dict(reference.fused_scans)

    def test_profile_requires_profiled_program(self, jay_program):
        with pytest.raises(AnalysisError):
            VMParser(jay_program, JAY_TEXT, profile=ParseProfile())


# -- api wiring ---------------------------------------------------------------


class TestApiBackend:
    def test_parse_backend_vm(self, jay_lang):
        assert structural_diff(
            jay_lang.parse(JAY_TEXT), jay_lang.parse(JAY_TEXT, backend="vm")
        ) is None

    def test_unknown_backend_rejected(self, jay_lang):
        with pytest.raises(ValueError, match="unknown backend"):
            jay_lang.parse(JAY_TEXT, backend="jit")
        with pytest.raises(ValueError, match="unknown backend"):
            jay_lang.session(backend="jit")

    def test_session_reuses_one_vm_parser(self, jay_lang):
        session = jay_lang.session(backend="vm")
        first = session.parse(JAY_TEXT)
        parser = session.parser
        assert isinstance(parser, VMParser)
        second = session.parse(JAY_TEXT)
        assert session.parser is parser
        assert structural_diff(first, second) is None

    def test_session_failure_clears_memo(self, jay_lang):
        session = jay_lang.session(backend="vm")
        with pytest.raises(ParseError):
            session.parse(JAY_BAD)
        assert session.parser.memo_entry_count() == 0

    def test_vm_program_cached_on_language(self, jay_lang):
        assert jay_lang.vm_program() is jay_lang.vm_program()
        assert jay_lang.vm_program(profiled=True) is jay_lang.vm_program(profiled=True)
        assert jay_lang.vm_program() is not jay_lang.vm_program(profiled=True)

    def test_profiled_parse_counts(self, jay_lang):
        profile = ParseProfile()
        jay_lang.parse(JAY_TEXT, backend="vm", profile=profile)
        assert profile.parses == 1


# -- memo behavior across reset() ---------------------------------------------


class TestMemoReset:
    def test_reset_clears_entries_and_preserves_results(self, jay_program):
        parser = VMParser(jay_program, JAY_TEXT)
        first = parser.parse()
        assert parser.memo_entry_count() > 0
        other = "class B { }"
        reused = parser.reset(other).parse()
        fresh = VMParser(jay_program, other).parse()
        assert structural_diff(reused, fresh) is None
        # Round-trip back to the first input: same tree again.
        assert structural_diff(parser.reset(JAY_TEXT).parse(), first) is None

    def test_reset_clears_failure_state(self, jay_program):
        parser = VMParser(jay_program, JAY_BAD)
        with pytest.raises(ParseError) as first:
            parser.parse()
        tree = parser.reset(JAY_TEXT).parse()
        assert tree is not None
        with pytest.raises(ParseError) as second:
            parser.reset(JAY_BAD).parse()
        assert second.value.offset == first.value.offset
        assert set(second.value.expected) == set(first.value.expected)


# -- depth budget -------------------------------------------------------------


class TestDepthBudget:
    def test_deep_right_nested_input_raises_at_small_budget(self, jay_lang):
        deep = "class A { int f() { return " + "(" * 2000 + "1" + ")" * 2000 + "; } }"
        with pytest.raises(ParseDepthError) as info:
            jay_lang.parse(deep, backend="vm", depth_budget=500)
        assert info.value.budget == 500
        # A roomy budget parses the same input fine — the input is valid.
        assert jay_lang.parse(deep, backend="vm") is not None

    def test_depth_error_is_a_parse_error(self, jay_lang):
        deep = "class A { int f() { return " + "(" * 2000 + "1" + ")" * 2000 + "; } }"
        with pytest.raises(ParseError):
            jay_lang.parse(deep, backend="vm", depth_budget=500)


# -- error pickling -----------------------------------------------------------


class TestErrorPickling:
    def test_parse_error_round_trips(self, jay_lang):
        with pytest.raises(ParseError) as info:
            jay_lang.parse(JAY_BAD, backend="vm")
        error = info.value
        clone = pickle.loads(pickle.dumps(error))
        assert clone.offset == error.offset
        assert clone.expected == error.expected
        assert (clone.line, clone.column) == (error.line, error.column)
        assert str(clone) == str(error)

    def test_depth_error_round_trips(self, jay_lang):
        deep = "class A { int f() { return " + "(" * 2000 + "1" + ")" * 2000 + "; } }"
        with pytest.raises(ParseDepthError) as info:
            jay_lang.parse(deep, backend="vm", depth_budget=500)
        clone = pickle.loads(pickle.dumps(info.value))
        assert isinstance(clone, ParseDepthError)
        assert clone.budget == 500


# -- nullable repetition progress guard ---------------------------------------


class TestNullableRepetition:
    def _grammar(self):
        builder = GrammarBuilder("Nul", "S")
        builder.text("S", seq(Repetition(Option(Literal("a")), 0), lit("b")))
        return builder.build()

    def test_prepare_rejects_nullable_repetition(self):
        # The analysis guard fires before any backend sees the grammar —
        # the VM inherits exactly the contract the other backends have.
        with pytest.raises(AnalysisError, match="nullable"):
            prepare(self._grammar(), Options.all())

    def test_runtime_progress_guard_matches_closures(self):
        # With the check bypassed, every backend falls back to a runtime
        # zero-progress break; the machine's must agree with closures',
        # verdicts and expected sets included.
        grammar = self._grammar()
        closures = ClosureParser(grammar)
        program = compile_program(grammar)
        for text in ("b", "aab", "aaab"):
            assert VMParser(program, text).parse() == closures.parse(text)
        for text in ("", "a", "aac"):
            with pytest.raises(ParseError) as cl_info:
                closures.parse(text)
            with pytest.raises(ParseError) as vm_info:
                VMParser(program, text).parse()
            assert vm_info.value.offset == cl_info.value.offset
            assert set(vm_info.value.expected) == set(cl_info.value.expected)


# -- disassembler -------------------------------------------------------------


class TestDisassembler:
    def test_listing_covers_every_production(self, jay_program):
        listing = disassemble(jay_program)
        for name, _, _ in jay_program.rule_spans:
            assert f"\n{name}:" in listing

    def test_single_production_listing(self, jay_program):
        listing = disassemble(jay_program, "Expression")
        assert "Expression:" in listing
        with pytest.raises(KeyError):
            disassemble(jay_program, "NoSuchProduction")

    def test_summary_accounts_for_all_instructions(self, jay_program):
        summary = summarize(jay_program)
        assert summary["instructions"] == len(jay_program.code)
        assert sum(summary["opcodes"].values()) == len(jay_program.code)
        assert summary["productions"] == len(jay_program.rule_spans)
        assert not summary["profiled"]
