"""Tests for the closure-compiled backend: full agreement with the
reference interpreter and the generated parser."""

import pytest

import repro
from repro.errors import ParseError
from repro.interp import ClosureParser, PackratInterpreter
from repro.optim import Options, prepare
from repro.peg.builder import (
    GrammarBuilder,
    act,
    alt,
    amp,
    any_,
    bang,
    bind,
    cc,
    lit,
    opt,
    plus,
    ref,
    star,
    text,
    void,
)
from repro.workloads import generate_c_program, generate_jay_program, generate_json_document


def closure_and_reference(builder_fn, options=None):
    builder = GrammarBuilder("t", start="S")
    builder_fn(builder)
    prepared = prepare(builder.build(), options, check=False)
    return ClosureParser(prepared.grammar), PackratInterpreter(prepared.grammar)


class TestExpressionAgreement:
    CASES = [
        (lambda b: b.void("S", [lit("abc")]), ["abc", "ab", "abcd"]),
        (lambda b: b.object("S", [text(lit("se", ignore_case=True))]), ["SE", "se", "sx"]),
        (lambda b: b.object("S", [text(star(cc("a-z")))]), ["", "xyz"]),
        (lambda b: b.object("S", [text(plus(cc("0-9"))), opt(text(lit("!")))]), ["1!", "22", "!"]),
        (lambda b: b.object("S", [bang(lit("0")), text(any_())]), ["5", "0"]),
        (lambda b: b.object("S", [amp(lit("ab")), text(any_()), text(any_())]), ["ab", "ax"]),
        (
            lambda b: b.object(
                "S", [bind("a", text(cc("0-9"))), bind("b", text(cc("0-9"))), act("int(a) - int(b)")]
            ),
            ["94", "9"],
        ),
        (
            lambda b: (
                b.generic("S", alt("Pair", ref("N"), void(lit(",")), ref("N")), alt(None, ref("N"))),
                b.object("N", [text(plus(cc("0-9")))]),
            ),
            ["1,2", "7", ","],
        ),
    ]

    @pytest.mark.parametrize("case_index", range(len(CASES)))
    def test_case(self, case_index):
        builder_fn, inputs = self.CASES[case_index]
        closure, reference = closure_and_reference(builder_fn)
        for sample in inputs:
            try:
                expected = reference.parse(sample)
                ok = True
            except ParseError:
                ok = False
            if ok:
                assert closure.parse(sample) == expected, sample
            else:
                with pytest.raises(ParseError):
                    closure.parse(sample)


class TestOnShippedLanguages:
    @pytest.mark.parametrize(
        "root,workload",
        [
            ("jay.Jay", lambda: generate_jay_program(size=5, seed=3)),
            ("xc.XC", lambda: generate_c_program(size=5, seed=3)),
            ("json.Json", lambda: generate_json_document(size=8, seed=3)),
        ],
    )
    def test_full_language(self, root, workload):
        lang = repro.compile_grammar(root)
        closure = ClosureParser(lang.prepared.grammar)
        source = workload()
        assert closure.parse(source) == lang.parse(source)

    def test_left_recursion_through_prepare(self):
        lang = repro.compile_grammar("calc.Calculator")
        closure = ClosureParser(lang.prepared.grammar)
        assert closure.parse("1-2-3") == lang.parse("1-2-3")

    def test_locations_tracked(self):
        lang = repro.compile_grammar("jay.Jay")
        closure = ClosureParser(lang.prepared.grammar)
        tree = closure.parse("class A {\n int f() { return 1; }\n}", source="d.jay")
        method = tree.find_all("Method")[0]
        assert method.location is not None and method.location.line == 2


class TestParserApi:
    def make(self):
        lang = repro.compile_grammar("calc.Calculator")
        return ClosureParser(lang.prepared.grammar), lang

    def test_match_prefix(self):
        closure, _ = self.make()
        # the Calculation start is EOF-anchored, so use the expression level
        consumed, _ = closure.match_prefix("1+2 trailing", start="Expression")
        assert consumed == 4  # includes the trailing-space run

    def test_recognize(self):
        closure, _ = self.make()
        assert closure.recognize("1*2")
        assert not closure.recognize("1*")

    def test_error_reporting(self):
        closure, _ = self.make()
        with pytest.raises(ParseError) as err:
            closure.parse("1 + * 2")
        assert err.value.offset == 4

    def test_memo_accounting(self):
        closure, _ = self.make()
        closure.parse("1+2*3")
        assert closure.memo_entry_count() > 0

    def test_unchunked_mode(self):
        lang = repro.compile_grammar("calc.Calculator")
        closure = ClosureParser(lang.prepared.grammar, chunked=False)
        assert closure.parse("1+2") == lang.parse("1+2")

    def test_undefined_start(self):
        closure, _ = self.make()
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            closure.parse("1", start="Nope")

    def test_transient_productions_not_memoized(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [ref("A"), lit("x")], [ref("A"), lit("y")])
        builder.void("A", [plus(lit("a"))], transient=True)
        prepared = prepare(builder.build(), Options.all().without("inline"), check=False)
        closure = ClosureParser(prepared.grammar)
        closure.recognize("aay")
        # only S can have entries; A is transient
        assert closure.memo_entry_count() <= 2
