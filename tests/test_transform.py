"""Tests for the left-recursion transformation and the desugarings."""

import pytest

from repro.errors import AnalysisError
from repro.interp import PackratInterpreter
from repro.peg.builder import GrammarBuilder, alt, bind, cc, lit, opt, plus, ref, star, text
from repro.peg.expr import Nonterminal, Option, Repetition, walk
from repro.peg.production import ValueKind
from repro.runtime.node import GNode
from repro.transform import desugar, transform_left_recursion


def arith_grammar():
    builder = GrammarBuilder("t", start="E")
    builder.generic(
        "E",
        alt("Add", ref("E"), lit("+"), ref("T")),
        alt("Sub", ref("E"), lit("-"), ref("T")),
        alt(None, ref("T")),
    )
    builder.object("T", [text(plus(cc("0-9")))])
    return builder.build()


class TestLeftRecursionTransform:
    def test_structure(self):
        transformed = transform_left_recursion(arith_grammar())
        assert set(transformed.names()) == {"E", "T", "E__Base", "E__Tail"}
        assert transformed["E"].kind is ValueKind.OBJECT
        assert transformed["E__Base"].kind is ValueKind.GENERIC
        assert transformed["E__Tail"].label_names() == ["Add", "Sub"]

    def test_helpers_transient_when_optimized(self):
        optimized = transform_left_recursion(arith_grammar(), optimize=True)
        baseline = transform_left_recursion(arith_grammar(), optimize=False)
        assert optimized["E__Tail"].is_transient
        assert not baseline["E__Tail"].is_transient

    def test_left_leaning_values(self):
        transformed = transform_left_recursion(arith_grammar())
        value = PackratInterpreter(transformed).parse("1-2-3")
        assert value == GNode("Sub", (GNode("Sub", ("1", "2")), "3"))

    def test_mixed_operators_fold_in_order(self):
        transformed = transform_left_recursion(arith_grammar())
        value = PackratInterpreter(transformed).parse("1+2-3+4")
        assert value == GNode(
            "Add", (GNode("Sub", (GNode("Add", ("1", "2")), "3")), "4")
        )

    def test_base_only_input(self):
        transformed = transform_left_recursion(arith_grammar())
        assert PackratInterpreter(transformed).parse("7") == "7"

    def test_no_left_recursion_is_identity(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [lit("s")])
        grammar = builder.build()
        assert transform_left_recursion(grammar) is grammar

    def test_non_generic_rejected(self):
        builder = GrammarBuilder("t", start="E")
        builder.object("E", [ref("E"), lit("+")], [lit("e")])
        with pytest.raises(AnalysisError, match="not generic"):
            transform_left_recursion(builder.build())

    def test_bound_head_rejected(self):
        builder = GrammarBuilder("t", start="E")
        builder.generic("E", alt("X", bind("l", ref("E")), lit("+")), alt(None, lit("e")))
        with pytest.raises(AnalysisError, match="bind"):
            transform_left_recursion(builder.build())

    def test_hidden_left_recursion_rejected(self):
        builder = GrammarBuilder("t", start="E")
        builder.generic(
            "E",
            alt("X", opt(lit("!")), ref("E"), lit("+")),
            alt(None, lit("e")),
        )
        with pytest.raises(AnalysisError, match="nullable prefix"):
            transform_left_recursion(builder.build())

    def test_no_base_alternative_rejected(self):
        builder = GrammarBuilder("t", start="E")
        builder.generic("E", alt("X", ref("E"), lit("+")))
        with pytest.raises(AnalysisError, match="base"):
            transform_left_recursion(builder.build())

    def test_helper_name_collision_rejected(self):
        builder = GrammarBuilder("t", start="E")
        builder.generic(
            "E", alt("Add", ref("E"), lit("+"), ref("E__Base")), alt(None, lit("e"))
        )
        builder.object("E__Base", [lit("x")])
        with pytest.raises(AnalysisError, match="helper name"):
            transform_left_recursion(builder.build())

    def test_postfix_tail_without_operand(self):
        builder = GrammarBuilder("t", start="E")
        builder.generic("E", alt("Bang", ref("E"), lit("!")), alt(None, lit("e")))
        transformed = transform_left_recursion(builder.build())
        value = PackratInterpreter(transformed).parse("e!!")
        # The unlabeled base alternative has zero contributions, so it builds
        # an empty node named after the original production — same as the
        # untransformed generic semantics would.
        assert value == GNode("Bang", (GNode("Bang", (GNode("E"),)),))


def list_grammar(expr_factory):
    """S = <expr around [0-9] and ','> anchored by 'end'."""
    builder = GrammarBuilder("t", start="S")
    builder.object("S", [bind("v", expr_factory()), lit("end"), ref("Done")])
    builder.void("Done", [lit("!")])
    return builder.build()


class TestDesugaring:
    def equivalent(self, grammar, inputs):
        native = PackratInterpreter(grammar)
        sugared = PackratInterpreter(desugar(grammar))
        for text_input in inputs:
            try:
                expected = native.parse(text_input)
                failed = False
            except Exception:
                failed = True
            if failed:
                with pytest.raises(Exception):
                    sugared.parse(text_input)
            else:
                assert sugared.parse(text_input) == expected, text_input

    def test_star_contributing(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [star(text(cc("0-9")))])
        self.equivalent(builder.build(), ["", "1", "123"])

    def test_plus_contributing(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [plus(text(cc("0-9")))])
        self.equivalent(builder.build(), ["1", "123", ""])

    def test_star_void(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [star(lit("a")), text(plus(cc("b")))])
        self.equivalent(builder.build(), ["b", "aaab", "abb"])

    def test_option_contributing(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [opt(text(lit("x"))), text(lit("y"))])
        self.equivalent(builder.build(), ["xy", "y"])

    def test_option_void(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [opt(lit("x")), text(lit("y"))])
        self.equivalent(builder.build(), ["xy", "y"])

    def test_helpers_shared_for_identical_items(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [star(cc("a")), lit("-"), star(cc("a"))])
        desugared = desugar(builder.build())
        helper_names = [n for n in desugared.names() if n.startswith("Rep__")]
        assert len(helper_names) == 1

    def test_no_repetitions_left_after_desugar(self):
        grammar = desugar(transform_left_recursion(arith_grammar()))
        for production in grammar:
            for alternative in production.alternatives:
                for node in walk(alternative.expr):
                    assert not isinstance(node, (Repetition, Option))

    def test_partial_desugar_options_only(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [opt(lit("x")), star(lit("y"))])
        desugared = desugar(builder.build(), repetitions=False, options=True)
        kinds = set()
        for production in desugared:
            for alternative in production.alternatives:
                kinds |= {type(n).__name__ for n in walk(alternative.expr)}
        assert "Option" not in kinds
        assert "Repetition" in kinds

    def test_identity_when_nothing_requested(self):
        grammar = arith_grammar()
        assert desugar(grammar, repetitions=False, options=False) is grammar

    def test_nested_repetitions(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [star(text(plus(cc("0-9"))), lit(","))])
        self.equivalent(builder.build(), ["1,22,333,", "", "9,"])
