"""Unit tests for the memo-table organizations."""

import pytest

from repro.runtime.memo import ChunkedMemoTable, DictMemoTable, make_memo_table

RULES = [f"R{i}" for i in range(20)]


@pytest.mark.parametrize("table_cls", [DictMemoTable, ChunkedMemoTable])
class TestCommonBehavior:
    def test_miss_then_hit(self, table_cls):
        table = table_cls(RULES)
        assert table.get(3, 100) is None
        table.put(3, 100, (105, "value"))
        assert table.get(3, 100) == (105, "value")

    def test_rules_independent(self, table_cls):
        table = table_cls(RULES)
        table.put(0, 5, (6, "a"))
        assert table.get(1, 5) is None
        assert table.get(0, 6) is None

    def test_failure_entries(self, table_cls):
        table = table_cls(RULES)
        table.put(2, 0, (-1, None))
        assert table.get(2, 0) == (-1, None)

    def test_entry_count(self, table_cls):
        table = table_cls(RULES)
        for rule in range(10):
            for pos in range(7):
                table.put(rule, pos, (pos + 1, None))
        assert table.entry_count() == 70

    def test_clear(self, table_cls):
        table = table_cls(RULES)
        table.put(1, 1, (2, "x"))
        table.clear()
        assert table.get(1, 1) is None
        assert table.entry_count() == 0

    def test_size_bytes_grows(self, table_cls):
        table = table_cls(RULES)
        empty = table.size_bytes()
        for pos in range(50):
            table.put(0, pos, (pos + 1, "payload"))
        assert table.size_bytes() > empty

    def test_overwrite(self, table_cls):
        table = table_cls(RULES)
        table.put(0, 0, (1, "a"))
        table.put(0, 0, (2, "b"))
        assert table.get(0, 0) == (2, "b")
        assert table.entry_count() == 1

    def test_reset_returns_same_table(self, table_cls):
        table = table_cls(RULES)
        table.put(1, 1, (2, "x"))
        assert table.reset() is table
        assert table.get(1, 1) is None
        assert table.entry_count() == 0

    def test_reset_then_reuse(self, table_cls):
        table = table_cls(RULES)
        for pos in range(10):
            table.put(0, pos, (pos + 1, "first"))
        table.reset()
        table.put(0, 3, (4, "second"))
        assert table.get(0, 3) == (4, "second")
        assert table.entry_count() == 1
        # stale entries from before the reset never resurface
        assert table.get(0, 4) is None


class TestChunkedSpecifics:
    def test_chunks_allocated_lazily(self):
        table = ChunkedMemoTable(RULES, chunk_size=8)
        table.put(0, 0, (1, None))  # chunk 0 at column 0
        assert table.chunk_count() == 1
        table.put(1, 0, (1, None))  # same chunk
        assert table.chunk_count() == 1
        table.put(8, 0, (1, None))  # chunk 1, same column
        assert table.chunk_count() == 2
        table.put(0, 9, (10, None))  # new column
        assert table.chunk_count() == 3
        assert table.column_count() == 2

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            ChunkedMemoTable(RULES, chunk_size=0)

    def test_single_rule_grammar(self):
        table = ChunkedMemoTable(["Only"])
        table.put(0, 0, (1, "v"))
        assert table.get(0, 0) == (1, "v")

    def test_chunk_size_larger_than_rule_count(self):
        # 3 rules, chunks of 64: one chunk per column, indices still correct.
        table = ChunkedMemoTable(["A", "B", "C"], chunk_size=64)
        for rule in range(3):
            table.put(rule, 7, (8, f"r{rule}"))
        assert [table.get(rule, 7) for rule in range(3)] == [
            (8, "r0"), (8, "r1"), (8, "r2")
        ]
        assert table.chunk_count() == 1
        assert table.column_count() == 1

    def test_reset_keeps_chunk_geometry(self):
        table = ChunkedMemoTable(RULES, chunk_size=4)
        table.put(13, 5, (6, "v"))
        table.reset()
        assert table.column_count() == 0
        table.put(13, 5, (6, "w"))
        assert table.get(13, 5) == (6, "w")
        assert table.chunk_count() == 1


def test_factory():
    assert isinstance(make_memo_table(RULES, chunked=True), ChunkedMemoTable)
    assert isinstance(make_memo_table(RULES, chunked=False), DictMemoTable)


@pytest.mark.parametrize("table_cls", [DictMemoTable, ChunkedMemoTable])
class TestSizeAccounting:
    """entry_count/size_bytes are incremental + cached, never stale."""

    def test_size_bytes_stable_between_mutations(self, table_cls):
        table = table_cls(RULES)
        for pos in range(20):
            table.put(2, pos, (pos + 1, "v"))
        assert table.size_bytes() == table.size_bytes()

    def test_size_bytes_not_stale_after_reset(self, table_cls):
        # Regression: the size cache must be invalidated by reset()/clear(),
        # not keep reporting the pre-reset footprint.
        table = table_cls(RULES)
        empty = table.size_bytes()
        for pos in range(50):
            table.put(0, pos, (pos + 1, "payload"))
        full = table.size_bytes()
        assert full > empty
        table.reset()
        assert table.entry_count() == 0
        assert table.size_bytes() < full

    def test_size_bytes_tracks_refill_after_reset(self, table_cls):
        table = table_cls(RULES)
        for pos in range(50):
            table.put(0, pos, (pos + 1, "payload"))
        full = table.size_bytes()
        table.reset()
        table.put(0, 0, (1, "payload"))
        assert table.entry_count() == 1
        assert table.size_bytes() < full

    def test_clear_resets_counts(self, table_cls):
        table = table_cls(RULES)
        for rule in range(5):
            table.put(rule, 3, (4, None))
        table.clear()
        assert table.entry_count() == 0
        table.put(1, 1, (2, None))
        assert table.entry_count() == 1


class TestChunkedIncrementalCounts:
    def test_counts_match_scan(self):
        # The incremental _entries/_chunks bookkeeping must agree with what a
        # full walk of the columns would find.
        table = ChunkedMemoTable(RULES, chunk_size=4)
        for rule in (0, 3, 4, 19):
            for pos in (0, 7, 7, 100):  # includes an overwrite
                table.put(rule, pos, (pos + 1, None))
        entries = chunks = 0
        for column in table._columns.values():
            for chunk in column.chunks:
                if chunk is not None:
                    chunks += 1
                    entries += sum(1 for slot in chunk if slot is not None)
        assert table.entry_count() == entries
        assert table.chunk_count() == chunks

    def test_chunk_count_not_stale_after_reset(self):
        table = ChunkedMemoTable(RULES, chunk_size=4)
        table.put(0, 0, (1, None))
        table.put(9, 0, (1, None))
        assert table.chunk_count() == 2
        table.reset()
        assert table.chunk_count() == 0
        table.put(0, 0, (1, None))
        assert table.chunk_count() == 1


class RecordingEvents:
    """Minimal sink capturing the raw event stream."""

    def __init__(self):
        self.events = []

    def hit(self, rule, pos, entry):
        self.events.append(("hit", rule, pos))

    def miss(self, rule, pos):
        self.events.append(("miss", rule, pos))

    def store(self, rule, pos, entry):
        self.events.append(("store", rule, pos))


@pytest.mark.parametrize("chunked", [True, False])
class TestEventsSink:
    def test_event_stream(self, chunked):
        sink = RecordingEvents()
        table = make_memo_table(RULES, chunked=chunked, events=sink)
        table.get(3, 7)
        table.put(3, 7, (8, "v"))
        table.get(3, 7)
        assert sink.events == [("miss", 3, 7), ("store", 3, 7), ("hit", 3, 7)]

    def test_instrumented_semantics_unchanged(self, chunked):
        plain = make_memo_table(RULES, chunked=chunked)
        wired = make_memo_table(RULES, chunked=chunked, events=RecordingEvents())
        for table in (plain, wired):
            table.put(1, 2, (3, "x"))
            table.put(5, 0, (-1, None))
        for rule, pos in [(1, 2), (5, 0), (0, 0)]:
            assert plain.get(rule, pos) == wired.get(rule, pos)
        assert plain.entry_count() == wired.entry_count()

    def test_no_sink_no_instance_overrides(self, chunked):
        # Pay-for-what-you-use: without a sink, get/put resolve to the plain
        # class methods — nothing instrumented sits on the instance.
        table = make_memo_table(RULES, chunked=chunked)
        assert "get" not in table.__dict__
        assert "put" not in table.__dict__
        wired = make_memo_table(RULES, chunked=chunked, events=RecordingEvents())
        assert "get" in wired.__dict__ and "put" in wired.__dict__
