"""Feature tests for the Jay grammar family (base + extensions)."""

import pytest

import repro
from repro.errors import ParseError


def wrap(statement_or_member):
    return f"class T {{ void m() {{ {statement_or_member} }} }}"


class TestBaseJay:
    @pytest.mark.parametrize(
        "program",
        [
            "class A { }",
            "package p.q; class A { }",
            "import a.b; import c.d; class A { } class B { }",
            "public final class A extends base.B { }",
            "class A { int x; }",
            "class A { static int[] data; }",
            "class A { int f(int a, boolean b) { return a; } }",
            "class A { void f() ; }",  # abstract-style body
            wrap("int x = 1, y = 2;"),
            wrap("x = y = 3;"),  # right-assoc assignment
            wrap("x += 1; x -= 2; x *= 3; x /= 4; x %= 5;"),
            wrap("if (a) b = 1; else { b = 2; }"),
            wrap("while (i < 10) i = i + 1;"),
            wrap("do { i = i + 1; } while (i < 10);"),
            wrap("for (;;) break;"),
            wrap("for (int i = 0, j = 9; i < j; i = i + 1, j = j - 1) continue;"),
            wrap("for (i = 0; ; ) { }"),
            wrap("return;"),
            wrap("return a ? b : c;"),
            wrap(";"),
            wrap("int c = 'x'; char d = '\\n';"),
            wrap('String s = "a\\"b";'),
            wrap("boolean t = true && false || !null;"),
            wrap("x = a.b.c(1)[2].d;"),
            wrap("obj.call(new T(), new int[3]);"),
            wrap("// comment\n x = 1; /* block */ y = 2;"),
            wrap("x = forty + iffy;"),  # keyword-prefixed identifiers
        ],
    )
    def test_accepts(self, jay_lang, program):
        assert jay_lang.recognize(program)

    @pytest.mark.parametrize(
        "program",
        [
            "",
            "class { }",
            "class A { ",
            "klass A { }",
            wrap("int = 5;"),        # keyword as identifier
            wrap("x = 1"),           # missing semicolon
            wrap("if a then b;"),
            wrap("for (int x : xs) { }"),  # extension syntax in base
            # note: "assert x;" is NOT rejected by base Jay — it parses as a
            # local declaration of type `assert`; only the extension reserves it
            wrap("x = /* unterminated"),
        ],
    )
    def test_rejects(self, jay_lang, program):
        assert not jay_lang.recognize(program)

    def test_associativity_of_field_chain(self, jay_lang):
        tree = jay_lang.parse(wrap("x = a.b.c;"))
        field = tree.find_all("Field")
        # (Field (Field (Var a) 'b') 'c') — left leaning
        assert field[0][1] == "c"
        assert field[0][0][1] == "b"

    def test_precedence_shape(self, jay_lang):
        tree = jay_lang.parse(wrap("x = 1 + 2 * 3 == 7 && flag;"))
        assert tree.find_all("LogicalAnd")
        and_node = tree.find_all("LogicalAnd")[0]
        assert and_node[0].name == "Equal"

    def test_locations_tracked(self, jay_lang):
        tree = jay_lang.parse("class A {\n  int f() { return 1; }\n}")
        method = tree.find_all("Method")[0]
        assert method.location is not None
        assert method.location.line == 2

    def test_error_points_into_program(self, jay_lang):
        with pytest.raises(ParseError) as err:
            jay_lang.parse("class A { void m() { x = ; } }")
        assert err.value.line == 1
        assert err.value.column >= 26


class TestExtensions:
    def test_foreach(self, jay_extended_lang):
        tree = jay_extended_lang.parse(wrap("for (int v : values) { use(v); }"))
        foreach = tree.find_all("ForEach")[0]
        assert foreach[0].name == "PrimitiveType"
        assert foreach[1] == "v"

    def test_assert_with_message(self, jay_extended_lang):
        tree = jay_extended_lang.parse(wrap('assert x > 0 : "bad";'))
        node = tree.find_all("Assert")[0]
        assert node[0].name == "Greater"
        assert node[1].name == "StringLit"

    def test_assert_without_message(self, jay_extended_lang):
        tree = jay_extended_lang.parse(wrap("assert ready;"))
        assert tree.find_all("Assert")[0][1] is None

    def test_assert_reserved_as_keyword(self, jay_extended_lang):
        # "assert" can no longer be a plain identifier/variable name.
        assert not jay_extended_lang.recognize(wrap("int assert = 1;"))

    def test_sql_embedding(self, jay_extended_lang):
        tree = jay_extended_lang.parse(wrap("rows = sql { select a from t };"))
        select = tree.find_all("Select")[0]
        assert select[0] == ["a"] and select[1] == "t"

    def test_sql_where_clause(self, jay_extended_lang):
        tree = jay_extended_lang.parse(
            wrap("rows = sql { select a, b from t where a >= 10 };")
        )
        where = tree.find_all("Where")[0]
        assert where[0].name == "SqlCompare"

    def test_sql_case_insensitive_keywords(self, jay_extended_lang):
        assert jay_extended_lang.recognize(wrap("rows = sql { SELECT * FROM t };"))

    def test_extensions_do_not_break_base(self, jay_lang, jay_extended_lang):
        program = "class A { int f() { for (int i = 0; i < 3; i = i + 1) { } return 0; } }"
        assert jay_lang.parse(program) == jay_extended_lang.parse(program)

    def test_malformed_sql_rejected(self, jay_extended_lang):
        assert not jay_extended_lang.recognize(wrap("rows = sql { select };"))


class TestSwitchAndIncrements:
    def test_switch_structure(self, jay_extended_lang):
        tree = jay_extended_lang.parse(
            wrap("switch (n) { case 1: a(); break; case 2: break; default: b(); }")
        )
        switch = tree.find_all("Switch")[0]
        assert len(switch[1]) == 2       # case groups
        assert switch[2] is not None     # default group
        assert len(switch[1][0][1]) == 2  # first case holds two statements

    def test_switch_without_default(self, jay_extended_lang):
        tree = jay_extended_lang.parse(wrap("switch (n) { case 1: break; }"))
        assert tree.find_all("Switch")[0][2] is None

    def test_case_expression_can_be_complex(self, jay_extended_lang):
        assert jay_extended_lang.recognize(wrap("switch (n) { case 2 + 1: break; }"))

    def test_switch_keyword_reserved(self, jay_extended_lang):
        assert not jay_extended_lang.recognize(wrap("int switch = 1;"))

    def test_increment_forms(self, jay_extended_lang):
        tree = jay_extended_lang.parse(wrap("i++; ++i; i--; --i;"))
        for name in ("PostIncrement", "PreIncrement", "PostDecrement", "PreDecrement"):
            assert tree.find_all(name), name

    def test_increment_in_expressions(self, jay_extended_lang):
        tree = jay_extended_lang.parse(wrap("x = i++ + --j;"))
        add = tree.find_all("Add")[0]
        assert add[0].name == "PostIncrement"
        assert add[1].name == "PreDecrement"

    def test_base_rejects_increments(self, jay_lang):
        assert not jay_lang.recognize(wrap("i++;"))

    def test_base_add_still_works_in_extended(self, jay_lang, jay_extended_lang):
        program = wrap("x = a + b - c;")
        assert jay_lang.parse(program) == jay_extended_lang.parse(program)
