"""Unit tests for the .mg module parser."""

import pytest

from repro.errors import GrammarSyntaxError
from repro.meta.ast import Addition, Override, Removal
from repro.meta.parser import parse_module
from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    Choice,
    Literal,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.production import ValueKind


class TestHeaderAndDependencies:
    def test_minimal_module(self):
        module = parse_module("module a.B;")
        assert module.name == "a.B"
        assert module.parameters == ()
        assert module.productions == ()

    def test_parameters(self):
        module = parse_module("module util.Pair(First, Second);")
        assert module.parameters == ("First", "Second")

    def test_dependencies(self):
        module = parse_module(
            """
            module m.M;
            import a.A;
            modify b.B;
            instantiate util.Pair(a.A, b.B) as m.P;
            """
        )
        kinds = [(d.kind, d.module, d.arguments, d.alias) for d in module.dependencies]
        assert kinds == [
            ("import", "a.A", (), None),
            ("modify", "b.B", (), None),
            ("instantiate", "util.Pair", ("a.A", "b.B"), "m.P"),
        ]
        assert module.is_modifier
        assert module.modified_targets() == ["b.B"]

    def test_import_with_arguments_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_module("module m.M; import a.A(b.B);")

    def test_import_with_alias_rejected(self):
        # Only instantiate takes `as` — the self-hosted meta grammar
        # (meta/Module.mg) puts MAlias on the Instantiate alternative alone.
        with pytest.raises(GrammarSyntaxError):
            parse_module("module m.M; import a.A as b.B;")
        with pytest.raises(GrammarSyntaxError):
            parse_module("module m.M; modify a.A as b.B;")

    def test_dependency_keywords_are_contextual(self):
        # `import` here cannot start a dependency (no module name follows),
        # so — PEG ordered choice, like the self-hosted reader — it is a
        # production *named* "import".
        module = parse_module("module m.M; import = x ;")
        assert module.dependencies == ()
        assert [p.name for p in module.productions] == ["import"]
        module = parse_module("module m.M; option = x ;")
        assert module.options == frozenset()
        assert [p.name for p in module.productions] == ["option"]

    def test_broken_dependency_keeps_its_diagnostic(self):
        # When neither the dependency nor the fallback definition parses,
        # the dependency's error (the likelier intent) is reported.
        with pytest.raises(GrammarSyntaxError, match="module name"):
            parse_module("module m.M; import ;")

    def test_options(self):
        module = parse_module("module m.M; option withLocation, verbose;")
        assert module.options == frozenset({"withLocation", "verbose"})

    def test_missing_module_keyword(self):
        with pytest.raises(GrammarSyntaxError):
            parse_module("modul m.M;")


class TestProductions:
    def parse_one(self, text):
        module = parse_module(f"module m.M;\n{text}")
        assert len(module.productions) == 1
        return module.productions[0]

    def test_kinds_and_default(self):
        assert self.parse_one('void A = "a" ;').kind is ValueKind.VOID
        assert self.parse_one('String A = "a" ;').kind is ValueKind.TEXT
        assert self.parse_one('generic A = "a" ;').kind is ValueKind.GENERIC
        assert self.parse_one('Object A = "a" ;').kind is ValueKind.OBJECT
        assert self.parse_one('A = "a" ;').kind is ValueKind.OBJECT

    def test_attributes(self):
        production = self.parse_one('public transient void A = "a" ;')
        assert production.attributes == frozenset({"public", "transient"})

    def test_production_named_like_attribute(self):
        production = self.parse_one('inline = "a" ;')
        assert production.name == "inline"
        assert production.attributes == frozenset()

    def test_production_named_like_kind(self):
        production = self.parse_one('generic = "a" ;')
        assert production.name == "generic"
        assert production.kind is ValueKind.OBJECT

    def test_labels(self):
        production = self.parse_one('generic A = <X> "x" / <Y> "y" / "z" ;')
        assert [a.label for a in production.alternatives] == ["X", "Y", None]

    def test_sequence_and_operators(self):
        production = self.parse_one('A = &"a" !"b" x:B void:C text:D E* F+ G? _ ;')
        items = production.alternatives[0].expr.items
        assert isinstance(items[0], And)
        assert isinstance(items[1], Not)
        assert isinstance(items[2], Binding) and items[2].name == "x"
        assert isinstance(items[3], Voided)
        assert isinstance(items[4], Text)
        assert isinstance(items[5], Repetition) and items[5].min == 0
        assert isinstance(items[6], Repetition) and items[6].min == 1
        assert isinstance(items[7], Option)
        assert isinstance(items[8], AnyChar)

    def test_nested_choice_groups(self):
        production = self.parse_one('A = ( "a" / "b" ) "c" ;')
        expr = production.alternatives[0].expr
        assert isinstance(expr, Sequence)
        assert isinstance(expr.items[0], Choice)

    def test_parenthesized_sequence_splices(self):
        production = self.parse_one('A = "a" ( "b" "c" ) "d" ;')
        expr = production.alternatives[0].expr
        # grouping of a pure sequence splices into the parent (documented)
        assert len(expr.items) == 4

    def test_action(self):
        production = self.parse_one("A = x:B { cons(x, []) } ;")
        action = production.alternatives[0].expr.items[-1]
        assert isinstance(action, Action) and "cons" in action.code

    def test_char_class_and_literals(self):
        production = self.parse_one('A = [a-z] "lit" "ci"i ;')
        items = production.alternatives[0].expr.items
        assert isinstance(items[0], CharClass)
        assert items[1] == Literal("lit")
        assert items[2] == Literal("ci", ignore_case=True)

    def test_empty_literal_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            self.parse_one('A = "" ;')

    def test_missing_semicolon(self):
        with pytest.raises(GrammarSyntaxError):
            parse_module('module m.M; A = "a"')

    def test_bad_char_class(self):
        with pytest.raises(GrammarSyntaxError):
            self.parse_one("A = [z-a] ;")


class TestModifications:
    def parse_mods(self, text):
        return parse_module(f"module m.M;\nmodify m.Base;\n{text}").modifications

    def test_addition_append_default(self):
        (mod,) = self.parse_mods('A += <X> "x" ;')
        assert isinstance(mod, Addition)
        assert mod.before == ()
        assert len(mod.after) == 1

    def test_addition_prepend(self):
        (mod,) = self.parse_mods('A += <X> "x" / ... ;')
        assert len(mod.before) == 1 and mod.after == ()

    def test_addition_both_sides(self):
        (mod,) = self.parse_mods('A += <X> "x" / ... / <Y> "y" ;')
        assert len(mod.before) == 1 and len(mod.after) == 1

    def test_double_ellipsis_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            self.parse_mods('A += ... / "x" / ... ;')

    def test_addition_cannot_change_kind(self):
        with pytest.raises(GrammarSyntaxError):
            self.parse_mods('void A += "x" ;')

    def test_override(self):
        (mod,) = self.parse_mods('A := "x" / "y" ;')
        assert isinstance(mod, Override)
        assert mod.kind is None and mod.attributes is None
        assert len(mod.alternatives) == 2

    def test_override_with_kind_and_attrs(self):
        (mod,) = self.parse_mods('transient String A := "x" ;')
        assert mod.kind is ValueKind.TEXT
        assert mod.attributes == frozenset({"transient"})

    def test_removal(self):
        (mod,) = self.parse_mods("A -= <X>, <Y> ;")
        assert isinstance(mod, Removal)
        assert mod.labels == ("X", "Y")

    def test_ellipsis_rejected_in_plain_production(self):
        with pytest.raises(GrammarSyntaxError):
            parse_module('module m.M; A = ... / "x" ;')


def test_source_text_retained():
    source = 'module m.M;\nA = "a" ;\n'
    assert parse_module(source).source_text == source


def test_location_reported():
    module = parse_module('module m.M;\n\nA = "a" ;')
    assert module.productions[0].location.line == 3
