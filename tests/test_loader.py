"""Tests for module loading: sources, paths, builtins, caching."""

import pytest

from repro.errors import CompositionError
from repro.meta import ModuleLoader, parse_module


class TestRegisteredSources:
    def test_register_and_load(self):
        loader = ModuleLoader(include_builtin=False)
        loader.register_source("a.B", 'module a.B; S = "s" ;')
        module = loader.load("a.B")
        assert module.name == "a.B"
        assert len(module.productions) == 1

    def test_cache_returns_same_object(self):
        loader = ModuleLoader(include_builtin=False)
        loader.register_source("a.B", 'module a.B; S = "s" ;')
        assert loader.load("a.B") is loader.load("a.B")

    def test_reregistering_invalidates_cache(self):
        loader = ModuleLoader(include_builtin=False)
        loader.register_source("a.B", 'module a.B; S = "s" ;')
        first = loader.load("a.B")
        loader.register_source("a.B", 'module a.B; S = "t" ;')
        second = loader.load("a.B")
        assert first is not second

    def test_register_parsed_module(self):
        loader = ModuleLoader(include_builtin=False)
        module = parse_module('module a.B; S = "s" ;')
        loader.register_module(module)
        assert loader.load("a.B") is module

    def test_declared_name_must_match(self):
        loader = ModuleLoader(include_builtin=False)
        loader.register_source("a.B", 'module a.WRONG; S = "s" ;')
        with pytest.raises(CompositionError, match="declares itself"):
            loader.load("a.B")


class TestPaths:
    def test_load_from_disk(self, tmp_path):
        package = tmp_path / "pkg" / "sub"
        package.mkdir(parents=True)
        (package / "Mod.mg").write_text('module pkg.sub.Mod; S = "s" ;')
        loader = ModuleLoader(paths=[tmp_path], include_builtin=False)
        assert loader.load("pkg.sub.Mod").name == "pkg.sub.Mod"

    def test_registered_source_wins_over_disk(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "a" / "B.mg").write_text('module a.B; Disk = "d" ;')
        loader = ModuleLoader(paths=[tmp_path], include_builtin=False)
        loader.register_source("a.B", 'module a.B; Mem = "m" ;')
        assert loader.load("a.B").productions[0].name == "Mem"

    def test_earlier_path_wins(self, tmp_path):
        for index in (1, 2):
            directory = tmp_path / str(index) / "a"
            directory.mkdir(parents=True)
            (directory / "B.mg").write_text(f'module a.B; P{index} = "x" ;')
        loader = ModuleLoader(paths=[tmp_path / "1", tmp_path / "2"], include_builtin=False)
        assert loader.load("a.B").productions[0].name == "P1"

    def test_add_path(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "a" / "B.mg").write_text('module a.B; S = "s" ;')
        loader = ModuleLoader(include_builtin=False)
        with pytest.raises(CompositionError):
            loader.load("a.B")
        loader.add_path(tmp_path)
        assert loader.load("a.B").name == "a.B"

    def test_user_path_wins_over_builtin(self, tmp_path):
        (tmp_path / "calc").mkdir()
        (tmp_path / "calc" / "Spacing.mg").write_text(
            "module calc.Spacing; transient void Spacing = \"~\"* ;\n"
            "transient void EndOfInput = !_ ;"
        )
        loader = ModuleLoader(paths=[tmp_path])
        module = loader.load("calc.Spacing")
        # the override defines Spacing over '~' instead of blanks
        from repro.peg.expr import Literal, walk

        literals = [
            n.text
            for p in module.productions
            for a in p.alternatives
            for n in walk(a.expr)
            if isinstance(n, Literal)
        ]
        assert literals == ["~"]


class TestBuiltins:
    def test_builtin_grammars_found(self):
        loader = ModuleLoader()
        assert loader.load("jay.Expressions").name == "jay.Expressions"
        assert loader.load("meta.Module").name == "meta.Module"

    def test_builtin_disabled(self):
        loader = ModuleLoader(include_builtin=False)
        with pytest.raises(CompositionError, match="cannot find"):
            loader.load("jay.Expressions")

    def test_missing_module_message_counts_paths(self):
        loader = ModuleLoader(paths=["/nonexistent"], include_builtin=False)
        with pytest.raises(CompositionError, match="searched 1 paths"):
            loader.load("no.Such")
