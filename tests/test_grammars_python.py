"""The real-Python stress workload: layout pre-pass, grammar round-trips,
PEP 263 corpus loading, cross-backend parity, depth budgets, and session
memo hygiene.

The `python.*` grammar modules target 3.8-level Python; files using newer
constructs are declared in :data:`repro.workloads.pycorpus.ALLOWLIST` with
the reason.  See docs/grammars-python.md.
"""

from __future__ import annotations

import io
import tokenize as std_tokenize

import pytest

import repro
from repro.errors import ParseDepthError, ParseError
from repro.interp import PackratInterpreter
from repro.interp.closures import ClosureParser
from repro.optim import Options, prepare
from repro.runtime.base import recursion_budget
from repro.runtime.node import GNode
from repro.workloads import (
    ALLOWLIST,
    CORPUS_DIR,
    CorpusDecodeError,
    LayoutError,
    decode_python_source,
    load_corpus,
    python_layout,
    run_corpus,
    source_encoding,
)
from repro.workloads.pylayout import DEDENT, INDENT, NEWLINE

#: Frames ample for every corpus file on every backend (the unoptimized
#: interpreter spends the most stack per grammar level).
BUDGET = 100_000


@pytest.fixture(scope="module")
def python_lang():
    return repro.compile_grammar("python.Python")


@pytest.fixture(scope="module")
def corpus():
    files, skipped = load_corpus()
    return files, skipped


def parse_source(lang, source: str):
    """Layout pre-pass + parse, the way every corpus driver composes them."""
    return lang.parse(python_layout(source), depth_budget=BUDGET)


# -- layout pre-pass ----------------------------------------------------------


class TestLayoutPrePass:
    def test_sentinels_are_control_characters(self):
        assert (INDENT, DEDENT, NEWLINE) == ("\x01", "\x02", "\x03")

    def test_simple_block(self):
        out = python_layout("if x:\n    y\n")
        assert out == f"if x:{NEWLINE}\n{INDENT}    y{NEWLINE}\n{DEDENT}"

    def test_stripping_sentinels_restores_text(self):
        source = "def f():\n\tif x:\n\t\treturn [1,\n 2]\n# done\n"
        out = python_layout(source)
        for sentinel in (INDENT, DEDENT, NEWLINE):
            out = out.replace(sentinel, "")
        assert out == source

    def test_indent_dedent_balance(self):
        source = "class C:\n    def m(self):\n        if x:\n            y\n"
        out = python_layout(source)
        assert out.count(INDENT) == out.count(DEDENT) == 3

    def test_blank_and_comment_lines_get_no_sentinels(self):
        out = python_layout("x\n\n# comment\n    \ny\n")
        lines = out.split("\n")
        assert lines[1] == "" and lines[2] == "# comment"
        assert out.count(NEWLINE) == 2  # only the two code lines

    def test_brackets_suppress_newline(self):
        out = python_layout("x = [1,\n     2]\n")
        # One logical line: the embedded "\n" stays but carries no NEWLINE.
        assert out.count(NEWLINE) == 1
        assert out.index(NEWLINE) > out.index("2]")

    def test_backslash_continuation(self):
        out = python_layout("x = 1 + \\\n    2\n")
        assert out.count(NEWLINE) == 1 and out.count(INDENT) == 0

    def test_triple_quoted_string_spans_lines(self):
        source = 'x = """\nnot: indented\n  # not a comment\n"""\n'
        out = python_layout(source)
        assert out.count(NEWLINE) == 1 and out.count(INDENT) == 0

    def test_tabs_advance_to_multiple_of_8(self):
        # "\t" (width 8) vs "        " (8 spaces) are the same level.
        out = python_layout("if x:\n\ty\n        z\n")
        assert out.count(INDENT) == 1 and out.count(DEDENT) == 1

    def test_inconsistent_dedent_raises(self):
        with pytest.raises(LayoutError) as exc_info:
            python_layout("if x:\n        y\n    z\n")
        assert exc_info.value.line == 3

    def test_raw_sentinel_in_input_rejected(self):
        with pytest.raises(LayoutError):
            python_layout("x = '\x01'\n")

    def test_crlf_source(self):
        out = python_layout("if x:\r\n    y\r\n")
        assert out.count(INDENT) == 1 and out.count(DEDENT) == 1
        assert out.count(NEWLINE) == 2

    def test_dedents_after_final_comment(self):
        out = python_layout("if x:\n    y\n# trailing")
        assert out.endswith(DEDENT)

    def test_matches_cpython_tokenize_on_corpus(self, corpus):
        """INDENT/DEDENT/logical-NEWLINE counts agree with ``tokenize``."""
        files, _ = corpus
        checked = 0
        for cf in files:
            if cf.name.startswith("encoded_"):
                continue
            try:
                tokens = list(
                    std_tokenize.generate_tokens(io.StringIO(cf.text).readline)
                )
            except Exception:  # tokenize chokes -> nothing to compare
                continue
            expected = {
                std_tokenize.INDENT: 0,
                std_tokenize.DEDENT: 0,
                std_tokenize.NEWLINE: 0,
            }
            for token in tokens:
                if token.type in expected:
                    expected[token.type] += 1
            out = python_layout(cf.text)
            assert out.count(INDENT) == expected[std_tokenize.INDENT], cf.name
            assert out.count(DEDENT) == expected[std_tokenize.DEDENT], cf.name
            assert out.count(NEWLINE) == expected[std_tokenize.NEWLINE], cf.name
            checked += 1
        assert checked >= 20


# -- grammar round-trips ------------------------------------------------------


SNIPPETS = [
    "x = 1\n",
    "x, y = y, x\n",
    "x += f(a, *b, **c)\n",
    "del d[k]\n",
    "assert x, 'msg'\n",
    "from os import (path, sep)\n",
    "from . import sibling\n",
    "import os.path as p, sys\n",
    "lambda a, b=1, *args, **kw: a\n",
    "x = a if b else c\n",
    "x = {k: v for k, v in items}\n",
    "x = {1, 2, 3} | {i for i in y}\n",
    "def g():\n    x = yield\n    yield from range(3)\n",
    "x[1:2, ::3] = y\n",
    "x = not a < b <= c != d\n",
    "x = a @ b // c ** -d\n",
    "x = f'' if 0 else rb'bytes'\n",
    "@deco(arg)\nclass C:\n    '''doc'''\n",
    "try:\n    pass\nexcept (A, B) as e:\n    raise X from e\nfinally:\n    pass\n",
    "while x:\n    break\nelse:\n    continue_ = 1\n",
    "for i, in pairs:\n    global g\n",
    "with (open(a) as f, open(b) as g):\n    pass\n",
    "with (a, b) as pair:\n    pass\n",
    "async def f():\n    return [x async for x in aiter()]\n",
    "if (n := len(s)) > 10:\n    pass\n",
    "def f(a, /, b, *, c):\n    nonlocal_ = 0\n",
    "x = 0x_FF + 0b10_01 + 1_000.5e-3 + 4j + .5\n",
    "x = ...\n",
]

REJECTS = [
    "x = \n",
    "def f(:\n    pass\n",
    "if x\n    pass\n",
    "x = 1 +\n",
    "x = lambda y:\n",
    "import\n",
]


class TestRoundTrips:
    @pytest.mark.parametrize("source", SNIPPETS)
    def test_accepts(self, python_lang, source):
        value = parse_source(python_lang, source)
        assert isinstance(value, list) and value

    @pytest.mark.parametrize("source", REJECTS)
    def test_rejects(self, python_lang, source):
        with pytest.raises(ParseError):
            parse_source(python_lang, source)

    def test_assign_shape(self, python_lang):
        (stmt,) = parse_source(python_lang, "x = 1\n")
        assert isinstance(stmt, GNode) and stmt.name == "Assign"
        ((target,),), (value,) = stmt.children
        assert target == "x" and value.name == "Num" and value[0] == "1"

    def test_funcdef_shape(self, python_lang):
        (stmt,) = parse_source(python_lang, "def f(a, b=2):\n    return a\n")
        assert stmt.name == "FuncDef" and stmt[0] == "f"
        params = stmt[1]
        assert [p.name for p in params] == ["Param", "Param"]
        assert params[1][1].name == "Num"
        (ret,) = stmt[3]
        assert ret.name == "Return"

    def test_comprehension_shape(self, python_lang):
        (stmt,) = parse_source(python_lang, "y = [i for i in xs if i]\n")
        comp = stmt[1][0]
        assert comp.name == "ListComp"
        clauses = comp[1]
        assert [c.name for c in clauses] == ["CompFor", "CompIf"]

    def test_statements_not_spliced(self, python_lang):
        """A bare tuple expression must stay one statement, not splat into
        the statement list (the ``<Expr>`` wrapper regression)."""
        stmts = parse_source(python_lang, "a, b\nc\n")
        assert len(stmts) == 2
        assert stmts[0].name == "Expr" and len(stmts[0][0]) == 2

    def test_group_is_not_tuple(self, python_lang):
        (grouped,) = parse_source(python_lang, "(x)\n")
        (tupled,) = parse_source(python_lang, "(x,)\n")
        assert grouped[0][0] == "x"
        assert tupled[0][0].name == "TupleLit"

    def test_empty_braces_are_dict(self, python_lang):
        (stmt,) = parse_source(python_lang, "x = {}\n")
        assert stmt[1][0].name == "DictLit"


# -- PEP 263 corpus loading ---------------------------------------------------


class TestEncoding:
    def test_default_is_utf8(self):
        assert source_encoding(b"x = 1\n") == "utf-8"

    def test_bom_wins(self):
        data = b"\xef\xbb\xbf# -*- coding: latin-1 -*-\nx\n"
        assert source_encoding(data) == "utf-8-sig"
        assert decode_python_source(data).startswith("#")

    def test_coding_on_first_line(self):
        assert source_encoding(b"# coding: latin-1\n") == "latin-1"

    def test_coding_on_second_line(self):
        assert source_encoding(b"#!/usr/bin/env python\n# coding=cp1252\n") == "cp1252"

    def test_code_line_closes_window(self):
        # A declaration on line 2 only counts when line 1 is blank/comment.
        assert source_encoding(b"import x\n# coding: latin-1\n") == "utf-8"

    def test_third_line_declaration_ignored(self):
        assert source_encoding(b"#\n#\n# coding: latin-1\n") == "utf-8"

    def test_unknown_codec_raises(self):
        with pytest.raises(CorpusDecodeError):
            decode_python_source(b"# coding: no-such-codec\nx\n")

    def test_undecodable_bytes_raise(self):
        with pytest.raises(CorpusDecodeError):
            decode_python_source(b"# coding: utf-8\nx = '\xff\xfe'\n")

    def test_latin1_declaration_honored(self):
        text = decode_python_source(b"# coding: latin-1\ns = '\xe9'\n")
        assert "\u00e9" in text

    def test_loader_skips_and_reports(self, corpus):
        files, skipped = corpus
        assert [s.name for s in skipped] == ["encoded_undecodable.py"]
        assert "cannot decode" in skipped[0].reason
        loaded = {cf.name for cf in files}
        assert "encoded_latin1.py" in loaded
        assert "encoded_undecodable.py" not in loaded


# -- the corpus, end to end ---------------------------------------------------


class TestCorpus:
    def test_corpus_is_substantial(self, corpus):
        files, _ = corpus
        assert len(files) >= 20
        assert sum(cf.nbytes for cf in files) >= 300_000

    def test_generated_backend_parses_everything(self, python_lang, corpus):
        with python_lang.session(depth_budget=BUDGET) as session:
            report = run_corpus(session.parse)
        assert report.failed == [], report.summary()
        assert report.stale_allowlist == [], report.summary()
        assert report.parse_rate == 1.0
        assert {o.name for o in report.allowlisted} == {
            "dataclasses.py",
            "traceback.py",
        }
        assert [s.name for s in report.skipped] == ["encoded_undecodable.py"]
        assert report.parsed_bytes >= 300_000

    def test_latin1_file_parses(self, python_lang, corpus):
        files, _ = corpus
        (latin1,) = [cf for cf in files if cf.name == "encoded_latin1.py"]
        assert parse_source(python_lang, latin1.text)

    def test_allowlist_reasons_are_non_empty(self):
        assert all(reason.strip() for reason in ALLOWLIST.values())

    def test_corpus_dir_is_checked_in(self):
        assert CORPUS_DIR.is_dir()
        assert (CORPUS_DIR / "README.md").is_file()


# -- cross-backend parity -----------------------------------------------------


@pytest.fixture(scope="module")
def python_oracle():
    from repro.difftest import DifferentialOracle

    return DifferentialOracle.for_root("python.Python")


PARITY_FILES = ["abc.py", "bisect.py", "heapq.py", "linecache.py", "types.py"]


@pytest.mark.fuzz
class TestBackendParity:
    def test_oracle_covers_all_backend_families(self, python_oracle):
        names = [backend.name for backend in python_oracle.backends]
        assert names[0] == "interp-plain"  # textbook semantics is reference
        assert "closures" in names
        assert "codegen-all" in names
        assert sum(1 for n in names if n.startswith("codegen-no-")) == 11

    @pytest.mark.parametrize("source", SNIPPETS + REJECTS)
    def test_snippet_parity(self, python_oracle, source):
        with recursion_budget(BUDGET):
            disagreements = python_oracle.check(python_layout(source))
        assert disagreements == [], disagreements[0].describe()

    @pytest.mark.parametrize("name", PARITY_FILES)
    def test_corpus_file_parity(self, python_oracle, corpus, name):
        files, _ = corpus
        (cf,) = [f for f in files if f.name == name]
        text = python_layout(cf.text)
        with recursion_budget(BUDGET):
            outcomes = python_oracle.run_all(text)
        assert outcomes["interp-plain"].accepted, cf.name
        with recursion_budget(BUDGET):
            disagreements = python_oracle.check(text)
        assert disagreements == [], disagreements[0].describe()


# -- depth budgets: no raw RecursionError reaches callers ---------------------


def deep_source(depth: int = 3000) -> str:
    return "x = " + "(" * depth + "1" + ")" * depth + "\n"


class TestDepthBudget:
    def test_generated_backend_degrades_structurally(self, python_lang):
        with pytest.raises(ParseDepthError) as exc_info:
            python_lang.parse(python_layout(deep_source()), depth_budget=500)
        error = exc_info.value
        assert isinstance(error, ParseError)  # one except clause serves both
        assert error.offset > 0  # farthest offset reached, not 0

    def test_session_budget_applies_to_every_parse(self, python_lang):
        with python_lang.session(depth_budget=500) as session:
            for _ in range(2):
                with pytest.raises(ParseDepthError):
                    session.parse(python_layout(deep_source()))
            # The session stays healthy for reasonable inputs.
            assert session.parse(python_layout("x = (1)\n"))

    @pytest.mark.parametrize("backend_cls", [PackratInterpreter, ClosureParser])
    def test_interpreting_backends_degrade_structurally(self, backend_cls):
        grammar = repro.load_grammar("python.Python")
        prepared = prepare(grammar, Options.all(), check=False)
        backend = backend_cls(prepared.grammar, chunked=True)
        with recursion_budget(500):
            with pytest.raises(ParseDepthError):
                backend.parse(python_layout(deep_source()))

    def test_budget_restores_recursion_limit(self, python_lang):
        import sys

        before = sys.getrecursionlimit()
        with pytest.raises(ParseDepthError):
            python_lang.parse(python_layout(deep_source()), depth_budget=500)
        assert sys.getrecursionlimit() == before


# -- session memo hygiene across corpus files ---------------------------------


class TestSessionMemoRelease:
    def test_reset_drops_previous_files_columns(self, python_lang, corpus):
        """Memo size tracks the *current* file, not the session high-water
        mark: parsing a small file after a large one must shrink the table."""
        files, _ = corpus
        big = python_layout(next(f.text for f in files if f.name == "calendar.py"))
        small = python_layout(next(f.text for f in files if f.name == "bisect.py"))
        with python_lang.session(depth_budget=BUDGET) as session:
            session.parse(big)
            after_big = session.parser.memo_entry_count()
            assert after_big > 0
            session.parse(small)
            after_small = session.parser.memo_entry_count()
            assert 0 < after_small < after_big / 2
            session.parse(big)
            assert session.parser.memo_entry_count() <= after_big

    def test_failed_parse_leaves_no_memo_behind(self, python_lang):
        with python_lang.session(depth_budget=BUDGET) as session:
            with pytest.raises(ParseError):
                session.parse(python_layout("def f(:\n    pass\n"))
            assert session.parser.memo_entry_count() == 0
            assert session.parser.memo_size_bytes() < 10_000

    def test_close_releases_the_parser(self, python_lang):
        session = python_lang.session(depth_budget=BUDGET)
        session.parse(python_layout("x = 1\n"))
        assert session.parser is not None
        session.close()
        assert session.parser is None
        # Closed sessions stay usable; the next parse re-allocates.
        assert session.parse(python_layout("y = 2\n"))

    def test_context_manager_closes(self, python_lang):
        with python_lang.session() as session:
            session.parse(python_layout("x = 1\n"))
        assert session.parser is None

    def test_interpreter_table_reset_releases_columns(self):
        from repro.runtime.memo import ChunkedMemoTable

        table = ChunkedMemoTable(["A", "B", "C"])
        for pos in range(1000):
            table.put(0, pos, (pos + 1, None))
        assert table.column_count() == 1000
        big = table.size_bytes()
        assert table.reset() is table
        assert table.entry_count() == 0
        assert table.chunk_count() == 0
        assert table.column_count() == 0
        assert table.size_bytes() < big / 100
