"""Unit tests for generic AST nodes and the fold-left fix-up."""

from repro.locations import Location
from repro.runtime.node import GNode, fold_left, structural_diff, structurally_equal


class TestGNode:
    def test_container_protocol(self):
        node = GNode("N", ("a", "b", "c"))
        assert len(node) == 3
        assert node[1] == "b"
        assert list(node) == ["a", "b", "c"]

    def test_repr(self):
        assert repr(GNode("Leaf")) == "(Leaf)"
        assert repr(GNode("N", ("x", GNode("M")))) == "(N 'x' (M))"
        assert repr(GNode("N", (["a", "b"],))) == "(N ['a' 'b'])"

    def test_equality_ignores_location(self):
        a = GNode("N", ("x",), Location("f", 1, 1))
        b = GNode("N", ("x",), Location("g", 9, 9))
        c = GNode("N", ("x",), None)
        assert a == b == c
        assert hash(a) == hash(b) == hash(c)

    def test_inequality(self):
        assert GNode("N", ("x",)) != GNode("M", ("x",))
        assert GNode("N", ("x",)) != GNode("N", ("y",))
        assert GNode("N") != "N"

    def test_nested_list_children_equality(self):
        a = GNode("N", ([GNode("A"), GNode("B")],))
        b = GNode("N", ([GNode("A"), GNode("B")],))
        assert a == b
        assert hash(a) == hash(b)

    def test_size(self):
        tree = GNode("R", (GNode("A"), [GNode("B"), GNode("C", (GNode("D"),))]))
        assert tree.size() == 5

    def test_find_all(self):
        tree = GNode("Add", (GNode("Add", (GNode("Int", ("1",)), GNode("Int", ("2",)))), GNode("Int", ("3",))))
        assert len(tree.find_all("Int")) == 3
        assert len(tree.find_all("Add")) == 2
        assert tree.find_all("Mul") == []

    def test_find_all_preorder_source_order(self):
        tree = GNode("R", (GNode("Int", ("1",)), GNode("Int", ("2",))))
        assert [n[0] for n in tree.find_all("Int")] == ["1", "2"]


class TestFoldLeft:
    def test_empty_suffixes(self):
        seed = GNode("Int", ("1",))
        assert fold_left(seed, []) is seed

    def test_left_leaning(self):
        seed = GNode("Int", ("1",))
        suffixes = [GNode("Sub", (GNode("Int", ("2",)),)), GNode("Sub", (GNode("Int", ("3",)),))]
        result = fold_left(seed, suffixes)
        assert result == GNode(
            "Sub",
            (GNode("Sub", (GNode("Int", ("1",)), GNode("Int", ("2",)))), GNode("Int", ("3",))),
        )

    def test_location_propagates_from_seed(self):
        loc = Location("f", 3, 7)
        seed = GNode("Int", ("1",), loc)
        result = fold_left(seed, [GNode("Neg", ())])
        assert result.location == loc

    def test_mixed_suffix_arity(self):
        seed = GNode("X")
        result = fold_left(seed, [GNode("Call", (["a"],))])
        assert result == GNode("Call", (GNode("X"), ["a"]))


class TestStructuralEquality:
    """The comparison the differential oracle and the matrix tests share."""

    def test_ignores_location_identity(self):
        a = GNode("N", (GNode("M", ("x",)),), Location("a.jay", 1, 1))
        b = GNode("N", (GNode("M", ("x",)),), Location("b.jay", 9, 9))
        assert structurally_equal(a, b)
        assert structural_diff(a, b) is None

    def test_list_and_tuple_children_interchangeable(self):
        assert structurally_equal(GNode("N", (["a", "b"],)), GNode("N", (("a", "b"),)))

    def test_diff_reports_first_divergent_path(self):
        a = GNode("N", (GNode("M", ("x", "y")), "z"))
        b = GNode("N", (GNode("M", ("x", "q")), "z"))
        diff = structural_diff(a, b)
        assert diff is not None and "$.0.1" in diff

    def test_name_mismatch(self):
        assert not structurally_equal(GNode("N"), GNode("M"))
        assert "N" in structural_diff(GNode("N"), GNode("M"))

    def test_arity_mismatch(self):
        diff = structural_diff(GNode("N", ("a",)), GNode("N", ("a", "b")))
        assert diff is not None

    def test_non_node_leaves_compare_by_equality(self):
        assert structurally_equal(("a", 1, None), ("a", 1, None))
        assert not structurally_equal(("a", 1), ("a", 2))
