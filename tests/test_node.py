"""Unit tests for generic AST nodes and the fold-left fix-up."""

from repro.locations import Location
from repro.runtime.node import GNode, fold_left


class TestGNode:
    def test_container_protocol(self):
        node = GNode("N", ("a", "b", "c"))
        assert len(node) == 3
        assert node[1] == "b"
        assert list(node) == ["a", "b", "c"]

    def test_repr(self):
        assert repr(GNode("Leaf")) == "(Leaf)"
        assert repr(GNode("N", ("x", GNode("M")))) == "(N 'x' (M))"
        assert repr(GNode("N", (["a", "b"],))) == "(N ['a' 'b'])"

    def test_equality_ignores_location(self):
        a = GNode("N", ("x",), Location("f", 1, 1))
        b = GNode("N", ("x",), Location("g", 9, 9))
        c = GNode("N", ("x",), None)
        assert a == b == c
        assert hash(a) == hash(b) == hash(c)

    def test_inequality(self):
        assert GNode("N", ("x",)) != GNode("M", ("x",))
        assert GNode("N", ("x",)) != GNode("N", ("y",))
        assert GNode("N") != "N"

    def test_nested_list_children_equality(self):
        a = GNode("N", ([GNode("A"), GNode("B")],))
        b = GNode("N", ([GNode("A"), GNode("B")],))
        assert a == b
        assert hash(a) == hash(b)

    def test_size(self):
        tree = GNode("R", (GNode("A"), [GNode("B"), GNode("C", (GNode("D"),))]))
        assert tree.size() == 5

    def test_find_all(self):
        tree = GNode("Add", (GNode("Add", (GNode("Int", ("1",)), GNode("Int", ("2",)))), GNode("Int", ("3",))))
        assert len(tree.find_all("Int")) == 3
        assert len(tree.find_all("Add")) == 2
        assert tree.find_all("Mul") == []

    def test_find_all_preorder_source_order(self):
        tree = GNode("R", (GNode("Int", ("1",)), GNode("Int", ("2",))))
        assert [n[0] for n in tree.find_all("Int")] == ["1", "2"]


class TestFoldLeft:
    def test_empty_suffixes(self):
        seed = GNode("Int", ("1",))
        assert fold_left(seed, []) is seed

    def test_left_leaning(self):
        seed = GNode("Int", ("1",))
        suffixes = [GNode("Sub", (GNode("Int", ("2",)),)), GNode("Sub", (GNode("Int", ("3",)),))]
        result = fold_left(seed, suffixes)
        assert result == GNode(
            "Sub",
            (GNode("Sub", (GNode("Int", ("1",)), GNode("Int", ("2",)))), GNode("Int", ("3",))),
        )

    def test_location_propagates_from_seed(self):
        loc = Location("f", 3, 7)
        seed = GNode("Int", ("1",), loc)
        result = fold_left(seed, [GNode("Neg", ())])
        assert result.location == loc

    def test_mixed_suffix_arity(self):
        seed = GNode("X")
        result = fold_left(seed, [GNode("Call", (["a"],))])
        assert result == GNode("Call", (GNode("X"), ["a"]))
