"""Tests for the repro.serve parse-service subsystem.

Covers the full robustness envelope: outcome taxonomy, backpressure
policies, the timeout watchdog (driven by the canonical exponential
pathological workload, not sleeps), bounded worker-crash retries, graceful
degradation, stats snapshots, the NDJSON wire layer, and the repro-serve
CLI.  Everything here runs real worker processes, so tests keep pools small
(1-2 workers) and batches short.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.serve import (
    GrammarSpec,
    ParseService,
    ParseResult,
    ServiceStats,
    encode_result,
    format_stats,
    parse_request_line,
    serve_lines,
)
from repro.serve import messages
from repro.serve.stats import LatencyStats, StatsRecorder, percentile
from repro.workloads import slow_request_input

pytestmark = pytest.mark.serve

CALC = {"calc": "calc.Calculator"}
CALC_AND_SLOW = {
    "calc": GrammarSpec(root="calc.Calculator"),
    "slow": GrammarSpec(factory="repro.workloads.pathological:exponential_setup"),
}


def wait_for_worker(service, slot=0, timeout=10.0):
    """Block until the slot's worker process is up (spawn is async)."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        pids = service.worker_pids()
        if len(pids) > slot and pids[slot]:
            return pids[slot]
        time.sleep(0.01)
    raise AssertionError("worker never came up")


class TestOutcomes:
    def test_ok_result_carries_value_and_latency(self):
        with ParseService(CALC, workers=1, timeout=10.0) as service:
            result = service.submit("1+2*3").result(30)
        assert result.ok and result.outcome == messages.OK
        assert repr(result.value) == "(Add (Int '1') (Mul (Int '2') (Int '3')))"
        assert result.latency_s > 0 and result.parse_s > 0
        assert result.attempts == 1 and result.worker == 0
        assert result.grammar == "calc"

    def test_parse_error_carries_source_offsets(self):
        with ParseService(CALC, workers=1, timeout=10.0) as service:
            result = service.submit("1+\n2*", source="req.calc").result(30)
        assert result.outcome == messages.PARSE_ERROR
        assert result.error is not None
        assert result.error.source == "req.calc"
        assert result.error.offset == 5 and result.error.line == 2
        error = result.error.to_error()
        assert str(error).startswith("req.calc:2:")

    def test_unknown_grammar_rejected(self):
        with ParseService(CALC, workers=0) as service:
            result = service.submit("1+1", grammar="nope").result(30)
        assert result.outcome == messages.REJECTED
        assert "unknown grammar" in result.detail

    def test_oversized_input_rejected_before_queueing(self):
        with ParseService(CALC, workers=0, max_input_chars=10) as service:
            result = service.submit("1" * 11).result(30)
            ok = service.submit("1+1").result(30)
        assert result.outcome == messages.REJECTED
        assert "input too large" in result.detail
        assert ok.ok

    def test_non_string_text_rejected(self):
        with ParseService(CALC, workers=0) as service:
            result = service.submit(b"1+1").result(30)
        assert result.outcome == messages.REJECTED

    def test_map_preserves_submission_order(self):
        texts = [f"{n}+{n}" for n in range(10)] + ["bad*("]
        with ParseService(CALC, workers=2, timeout=10.0) as service:
            results = service.map(texts)
        assert [r.outcome for r in results[:-1]] == [messages.OK] * 10
        assert results[-1].outcome == messages.PARSE_ERROR
        assert [repr(r.value) for r in results[:2]] == ["(Add (Int '0') (Int '0'))",
                                                        "(Add (Int '1') (Int '1'))"]

    def test_multiple_grammars_routed_by_key(self):
        specs = {"calc": "calc.Calculator", "json": "json.Json"}
        with ParseService(specs, workers=1, timeout=10.0) as service:
            calc = service.submit("1+1", grammar="calc").result(30)
            doc = service.submit('{"a": [1, 2]}', grammar="json").result(30)
        assert calc.ok and doc.ok

    def test_submit_after_shutdown_raises(self):
        service = ParseService(CALC, workers=0)
        service.shutdown()
        with pytest.raises(RuntimeError):
            service.submit("1+1")
        service.shutdown()  # idempotent

    def test_start_override_per_request(self):
        with ParseService(CALC, workers=1, timeout=10.0) as service:
            result = service.submit("42", start="Number").result(30)
        assert result.ok


class TestBackpressure:
    def test_reject_policy_resolves_overflow_as_rejected(self):
        with ParseService(
            CALC_AND_SLOW, workers=1, queue_size=1, backpressure="reject", timeout=1.0
        ) as service:
            futures = [
                service.submit(slow_request_input(), grammar="slow") for _ in range(5)
            ]
            outcomes = [f.result(60).outcome for f in futures]
        assert messages.REJECTED in outcomes
        rejected = [o for o in outcomes if o == messages.REJECTED]
        assert len(rejected) >= 2  # queue of 1 cannot absorb a burst of 5
        assert all(o in (messages.TIMEOUT, messages.REJECTED) for o in outcomes)

    def test_block_policy_completes_everything(self):
        with ParseService(CALC, workers=1, queue_size=2, backpressure="block",
                          timeout=10.0) as service:
            results = service.map([f"{n}*2" for n in range(12)])
        assert all(r.ok for r in results)

    def test_invalid_policy_rejected_at_construction(self):
        with pytest.raises(ValueError):
            ParseService(CALC, workers=0, backpressure="drop")


class TestTimeoutWatchdog:
    def test_timeout_then_recycled_worker_still_serves(self):
        """The acceptance fault-injection scenario: a hung request resolves
        ``timeout``, the worker is recycled, and later requests are ``ok``."""
        with ParseService(CALC_AND_SLOW, workers=1, timeout=0.5) as service:
            first_pid = wait_for_worker(service)
            hung = service.submit(slow_request_input(), grammar="slow").result(60)
            after = [service.submit(text, grammar="calc").result(60)
                     for text in ("1+2", "3*4", "(5-6)")]
            stats = service.stats()
            second_pid = wait_for_worker(service)
        assert hung.outcome == messages.TIMEOUT
        assert "budget" in hung.detail
        assert hung.latency_s >= 0.5
        assert [r.outcome for r in after] == [messages.OK] * 3
        assert second_pid != first_pid  # genuinely a new process
        assert stats.recycles >= 1 and stats.respawns >= 1
        assert stats.outcomes.get(messages.TIMEOUT) == 1

    def test_per_request_timeout_override(self):
        with ParseService(CALC_AND_SLOW, workers=1, timeout=None) as service:
            hung = service.submit(
                slow_request_input(), grammar="slow", timeout=0.3
            ).result(60)
            ok = service.submit("7*7", grammar="calc").result(60)
        assert hung.outcome == messages.TIMEOUT
        assert ok.ok

    def test_fast_requests_unaffected_by_budget(self):
        with ParseService(CALC, workers=1, timeout=5.0) as service:
            results = service.map(["1+1"] * 5)
        assert all(r.ok and r.latency_s < 5.0 for r in results)


class TestWorkerCrash:
    def _kill_worker_mid_request(self, service, future_request_grammar="slow"):
        future = service.submit(slow_request_input(10), grammar=future_request_grammar)
        pid = wait_for_worker(service)
        time.sleep(0.05)  # let the request reach the worker
        os.kill(pid, signal.SIGKILL)
        return future

    def test_crash_is_retried_within_bounds(self):
        with ParseService(CALC_AND_SLOW, workers=1, timeout=30.0, retries=1) as service:
            future = self._kill_worker_mid_request(service)
            result = future.result(60)
            stats = service.stats()
        # Retried on a fresh worker: same request, eventual success.
        assert result.outcome == messages.OK
        assert result.attempts == 2
        assert stats.retries == 1 and stats.recycles >= 1

    def test_retries_zero_resolves_worker_lost(self):
        with ParseService(CALC_AND_SLOW, workers=1, timeout=30.0, retries=0) as service:
            future = self._kill_worker_mid_request(service)
            result = future.result(60)
            follow_up = service.submit("1+1", grammar="calc").result(60)
        assert result.outcome == messages.WORKER_LOST
        assert result.attempts == 1
        assert follow_up.ok  # the slot respawned regardless

    def test_parse_errors_are_never_retried(self):
        with ParseService(CALC, workers=1, timeout=10.0, retries=3) as service:
            result = service.submit("definitely not calc").result(30)
            stats = service.stats()
        assert result.outcome == messages.PARSE_ERROR
        assert result.attempts == 1
        assert stats.retries == 0


class TestFallback:
    def test_workers_zero_runs_inline(self):
        with ParseService(CALC, workers=0) as service:
            results = service.map(["1+1", "2*2", "bad("])
            stats = service.stats()
        assert [r.outcome for r in results] == [
            messages.OK, messages.OK, messages.PARSE_ERROR,
        ]
        assert all(r.fallback for r in results)
        assert stats.fallback_parses == 3
        assert service.healthy  # by design, not degradation

    def test_spawn_failure_degrades_to_inline(self, monkeypatch):
        import repro.serve.service as service_module

        def refuse(*args, **kwargs):
            raise OSError("no more processes")

        monkeypatch.setattr(service_module, "spawn_worker", refuse)
        with ParseService(CALC, workers=1, timeout=5.0) as service:
            results = service.map(["1+1", "2+2"])
            stats = service.stats()
            healthy = service.healthy
        assert [r.outcome for r in results] == [messages.OK, messages.OK]
        assert all(r.fallback for r in results)
        assert not healthy and stats.degraded
        assert stats.fallback_parses == 2

    def test_spawn_failure_without_fallback_fails_requests(self, monkeypatch):
        import repro.serve.service as service_module

        monkeypatch.setattr(
            service_module, "spawn_worker",
            lambda *a, **k: (_ for _ in ()).throw(OSError("nope")),
        )
        with ParseService(CALC, workers=1, timeout=5.0, fallback=False) as service:
            result = service.submit("1+1").result(30)
        assert result.outcome == messages.WORKER_LOST
        assert "unavailable" in result.detail


class TestStatsAndSnapshot:
    def test_counters_and_percentiles(self):
        with ParseService(CALC, workers=1, timeout=10.0, max_input_chars=100) as service:
            service.map(["1+1"] * 6 + ["(("])
            service.submit("9" * 200).result(30)
            stats = service.stats()
        assert stats.submitted == 8 and stats.completed == 8
        assert stats.outcomes[messages.OK] == 6
        assert stats.outcomes[messages.PARSE_ERROR] == 1
        assert stats.outcomes[messages.REJECTED] == 1
        assert stats.latency.count == 8
        assert 0 < stats.latency.p50 <= stats.latency.p95 <= stats.latency.p99 <= stats.latency.max
        assert stats.throughput_rps > 0
        assert stats.workers == 1 and stats.queue_capacity == 16

    def test_json_roundtrip_is_lossless(self):
        with ParseService(CALC, workers=1, timeout=10.0) as service:
            service.map(["1+1", "bad("])
            stats = service.stats()
        data = stats.to_json()
        assert data["format"] == 1 and data["kind"] == "repro.serve.stats"
        clone = ServiceStats.from_json(json.loads(json.dumps(data)))
        assert clone.to_json() == data

    def test_format_stats_mentions_every_outcome(self):
        rendered = format_stats(ServiceStats())
        for outcome in messages.OUTCOMES:
            assert outcome in rendered

    def test_percentile_nearest_rank(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile([], 0.5) == 0.0
        assert LatencyStats.over([]).count == 0

    def test_recorder_window_bounds_memory(self):
        recorder = StatsRecorder(workers=1, queue_capacity=4, window=8)
        for n in range(100):
            recorder.record_result(
                ParseResult(id=str(n), outcome=messages.OK, latency_s=float(n))
            )
        snapshot = recorder.snapshot()
        assert snapshot.completed == 100
        assert snapshot.latency.count == 8  # only the window
        assert snapshot.latency.max == 99.0


class TestWire:
    def test_blank_lines_skipped(self):
        assert parse_request_line("", 1, "calc") is None
        assert parse_request_line("   \n", 2, "calc") is None

    def test_bad_json_rejected_not_raised(self):
        result = parse_request_line("{oops", 3, "calc")
        assert isinstance(result, ParseResult)
        assert result.outcome == messages.REJECTED and result.id == "line-3"
        assert "invalid JSON" in result.detail

    def test_non_object_rejected(self):
        result = parse_request_line("[1,2]", 1, "calc")
        assert result.outcome == messages.REJECTED

    def test_missing_text_rejected(self):
        result = parse_request_line('{"id": "x"}', 1, "calc")
        assert result.outcome == messages.REJECTED
        assert "text" in result.detail

    def test_unreadable_file_rejected(self, tmp_path):
        line = json.dumps({"file": str(tmp_path / "gone.jay")})
        result = parse_request_line(line, 1, "calc")
        assert result.outcome == messages.REJECTED
        assert "cannot read" in result.detail

    def test_file_request_uses_path_as_source(self, tmp_path):
        path = tmp_path / "bad.calc"
        path.write_text("1+")
        request = parse_request_line(json.dumps({"file": str(path)}), 1, "calc")
        assert request.source == str(path)

    def test_serve_lines_orders_and_counts_rejections(self):
        lines = [
            json.dumps({"id": "a", "text": "1+1"}),
            "not json at all",
            "",
            json.dumps({"id": "b", "text": "2*2"}),
        ]
        with ParseService(CALC, workers=1, timeout=10.0) as service:
            results = list(serve_lines(service, lines))
            stats = service.stats()
        assert [r.id for r in results] == ["a", "line-2", "b"]
        assert [r.outcome for r in results] == [
            messages.OK, messages.REJECTED, messages.OK,
        ]
        assert stats.outcomes.get(messages.REJECTED) == 1  # wire reject counted

    def test_encode_result_value_gating(self):
        result = ParseResult(id="x", outcome=messages.OK, grammar="calc", value=123)
        assert "value" not in json.loads(encode_result(result))
        assert json.loads(encode_result(result, include_value=True))["value"] == "123"


class TestStreaming:
    def test_stream_chunk_decoding(self):
        from repro.serve import StreamChunk

        chunk = parse_request_line(
            json.dumps({"stream": "s", "chunk": "1+1\n", "grammar": "calc"}), 1, "calc"
        )
        assert isinstance(chunk, StreamChunk)
        assert chunk.stream == "s" and chunk.chunk == "1+1\n" and not chunk.end
        end = parse_request_line(json.dumps({"stream": "s", "end": True}), 2, "calc")
        assert end.chunk == "" and end.end

    def test_stream_request_validation(self):
        bad = parse_request_line(json.dumps({"stream": ""}), 1, "calc")
        assert bad.outcome == messages.REJECTED and "stream" in bad.detail
        bad = parse_request_line(json.dumps({"stream": "s", "chunk": 7}), 1, "calc")
        assert bad.outcome == messages.REJECTED and "chunk" in bad.detail

    def test_streaming_disabled_by_default(self):
        lines = [json.dumps({"stream": "s", "chunk": "1+1\n"})]
        with ParseService(CALC, workers=1, timeout=10.0) as service:
            results = list(serve_lines(service, lines))
        assert [r.outcome for r in results] == [messages.REJECTED]
        assert "repro-serve --streaming" in results[0].detail

    def test_streaming_frames_across_chunk_boundaries(self):
        # One document split over two chunks, one chunk completing two
        # documents, a blank line skipped, and an unterminated tail flushed
        # by end of input.
        lines = [
            json.dumps({"stream": "s", "chunk": "1+"}),
            json.dumps({"stream": "s", "chunk": "1\n2*2\n\n"}),
            json.dumps({"id": "plain", "text": "7"}),
            json.dumps({"stream": "s", "chunk": "(3)"}),
        ]
        with ParseService(CALC, workers=1, timeout=10.0) as service:
            results = list(serve_lines(service, lines, streaming=True))
        assert [r.id for r in results] == ["s:1", "s:2", "plain", "s:3"]
        assert [r.outcome for r in results] == [messages.OK] * 4

    def test_stream_end_flushes_and_closes(self):
        lines = [
            json.dumps({"stream": "s", "chunk": "1+1\n2*"}),
            json.dumps({"stream": "s", "end": True}),
            # A new stream under the same name starts a fresh framer.
            json.dumps({"stream": "s", "chunk": "5\n"}),
        ]
        with ParseService(CALC, workers=1, timeout=10.0) as service:
            results = list(serve_lines(service, lines, streaming=True))
        assert [r.id for r in results] == ["s:1", "s:2", "s:1"]
        # The tail "2*" became document s:2 and is a parse error.
        assert [r.outcome for r in results] == [
            messages.OK, messages.PARSE_ERROR, messages.OK,
        ]

    def test_cli_streaming_flag(self, capsys):
        from repro.tools.serve import main as serve_main

        lines = [
            json.dumps({"stream": "s", "chunk": "1+1\n", "grammar": "calc"}),
            json.dumps({"stream": "s", "end": True}),
        ]
        import io, sys as _sys

        old_stdin = _sys.stdin
        _sys.stdin = io.StringIO("\n".join(lines) + "\n")
        try:
            code = serve_main(["calc", "--streaming", "--workers", "1"])
        finally:
            _sys.stdin = old_stdin
        out = capsys.readouterr().out.strip().splitlines()
        assert code == 0
        assert [json.loads(line)["id"] for line in out] == ["s:1"]


class TestSpec:
    def test_coerce_short_key_and_root(self):
        assert GrammarSpec.coerce("jay").root == "jay.Jay"
        assert GrammarSpec.coerce("my.Module").root == "my.Module"
        assert GrammarSpec.coerce("factory:a.b:make").factory == "a.b:make"

    def test_spec_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            GrammarSpec()
        with pytest.raises(ValueError):
            GrammarSpec(root="a.B", factory="a.b:make")
        with pytest.raises(ValueError):
            GrammarSpec(factory="not-dotted")

    def test_grammar_object_refused_with_guidance(self):
        import repro

        grammar = repro.load_grammar("calc.Calculator")
        with pytest.raises(TypeError, match="factory"):
            GrammarSpec.coerce(grammar)

    def test_factory_compile_applies_factory_options(self):
        spec = GrammarSpec(factory="repro.workloads.pathological:exponential_setup")
        language = spec.compile()
        assert language.parser_class.MEMOIZED_RULES == []

    def test_bad_factory_fails_fast_at_service_construction(self):
        with pytest.raises(Exception):
            ParseService({"x": GrammarSpec(factory="repro.nope:missing")}, workers=0)


class TestCLI:
    def run_cli(self, args, capsys):
        from repro.tools import serve as tool

        code = tool.main(args)
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines() if line.strip()]
        return code, lines, captured.err

    def test_batch_from_file(self, tmp_path, capsys):
        requests = tmp_path / "batch.ndjson"
        requests.write_text(
            json.dumps({"id": "a", "text": "1+2"}) + "\n"
            + json.dumps({"id": "b", "text": "3*"}) + "\n"
        )
        code, lines, _ = self.run_cli(
            ["calc", "--workers", "1", "-r", str(requests), "--include-ast"], capsys
        )
        assert code == 2  # one parse_error in the batch
        assert [line["id"] for line in lines] == ["a", "b"]
        assert lines[0]["outcome"] == "ok"
        assert lines[0]["value"] == "(Add (Int '1') (Int '2'))"
        assert lines[1]["outcome"] == "parse_error"
        assert lines[1]["error"]["offset"] == 2

    def test_all_ok_exits_zero_and_writes_stats(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        code, lines, err = self.run_cli(
            ["calc", "--workers", "1", "--text", "1+1", "--text", "2*2",
             "--stats", "--stats-json", str(stats_path)],
            capsys,
        )
        assert code == 0
        assert [line["outcome"] for line in lines] == ["ok", "ok"]
        data = json.loads(stats_path.read_text())
        assert data["format"] == 1 and data["outcomes"]["ok"] == 2
        assert "throughput" in err

    def test_source_file_requests(self, tmp_path, capsys):
        source = tmp_path / "prog.calc"
        source.write_text("(1+2)*3")
        code, lines, _ = self.run_cli(
            ["calc", "--workers", "1", "--file", str(source)], capsys
        )
        assert code == 0
        assert lines[0]["id"] == str(source)

    def test_output_file(self, tmp_path, capsys):
        out = tmp_path / "results.ndjson"
        code, lines, _ = self.run_cli(
            ["calc", "--workers", "1", "--text", "1+1", "-o", str(out)], capsys
        )
        assert code == 0
        assert lines == []  # nothing on stdout
        assert json.loads(out.read_text().splitlines()[0])["outcome"] == "ok"

    def test_multi_grammar_and_default_routing(self, capsys):
        code, lines, _ = self.run_cli(
            ["--grammar", "calc=calc.Calculator", "--grammar", "json=json.Json",
             "--workers", "1", "--text", "1+1"],
            capsys,
        )
        assert code == 0
        assert lines[0]["grammar"] == "calc"  # first key is the default

    def test_config_errors_exit_one(self, capsys):
        from repro.tools import serve as tool

        assert tool.main([]) == 1  # no grammar at all
        assert tool.main(["--grammar", "broken"]) == 1  # not KEY=SPEC
        _ = capsys.readouterr()


class TestConcurrentSubmitters:
    def test_many_threads_share_one_service(self):
        with ParseService(CALC, workers=2, timeout=10.0) as service:
            results: dict[int, list] = {}

            def client(index: int) -> None:
                results[index] = service.map([f"{index}+{n}" for n in range(5)])

            threads = [threading.Thread(target=client, args=(i,)) for i in range(1, 5)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
        assert set(results) == {1, 2, 3, 4}
        for index, batch in results.items():
            assert all(r.ok for r in batch)
            assert repr(batch[0].value) == f"(Add (Int '{index}') (Int '0'))"
