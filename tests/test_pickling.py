"""Cross-process transport: errors, AST nodes, and serve messages must
round-trip through pickle unchanged.

The parse service ships :class:`ParseResult` values (carrying generic AST
nodes and flattened parse errors) over worker pipes, so pickling fidelity
is part of the wire contract, not an implementation detail.
"""

import pickle

import pytest

import repro
from repro.errors import GrammarSyntaxError, ParseError
from repro.locations import Location
from repro.runtime.node import GNode


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


class TestParseErrorPickle:
    def test_fields_survive(self):
        error = ParseError(
            "syntax error at 'x'", offset=17, line=2, column=5,
            expected=("'{'", "identifier"), source="prog.jay",
        )
        clone = roundtrip(error)
        assert type(clone) is ParseError
        assert clone.message == error.message
        assert clone.offset == 17
        assert clone.line == 2
        assert clone.column == 5
        assert clone.expected == ("'{'", "identifier")
        assert clone.source == "prog.jay"
        assert str(clone) == str(error)

    def test_show_matches_after_roundtrip(self):
        text = "class C {\n  int x = ;\n}"
        jay = repro.compile_grammar("jay.Jay")
        with pytest.raises(ParseError) as caught:
            jay.parse(text, source="broken.jay")
        assert roundtrip(caught.value).show(text) == caught.value.show(text)

    def test_real_error_from_parser(self):
        calc = repro.compile_grammar("calc.Calculator")
        with pytest.raises(ParseError) as caught:
            calc.parse("1+*", source="req-42")
        clone = roundtrip(caught.value)
        assert clone.offset == caught.value.offset
        assert clone.expected == caught.value.expected
        assert clone.source == "req-42"

    def test_default_arguments_roundtrip(self):
        clone = roundtrip(ParseError("m", 0, 1, 1))
        assert clone.expected == () and clone.source == "<input>"


class TestGrammarSyntaxErrorPickle:
    def test_fields_survive(self):
        error = GrammarSyntaxError("unterminated string", "G.mg", line=4, column=9)
        clone = roundtrip(error)
        assert type(clone) is GrammarSyntaxError
        assert (clone.message, clone.source, clone.line, clone.column) == (
            "unterminated string", "G.mg", 4, 9,
        )
        assert str(clone) == str(error)


class TestNodePickle:
    def test_leafless_node(self):
        node = GNode("Empty")
        clone = roundtrip(node)
        assert clone == node and clone.name == "Empty" and clone.children == ()

    def test_nested_children_and_location(self):
        node = GNode(
            "Add",
            (GNode("Int", ("1",)), [GNode("Int", ("2",)), None], "text"),
            location=Location("f.calc", 3, 7),
        )
        clone = roundtrip(node)
        assert clone == node  # structural equality
        assert clone.location == Location("f.calc", 3, 7)  # locations too
        assert clone.children[1][0].children == ("2",)

    def test_real_parse_tree(self):
        jay = repro.compile_grammar("jay.Jay")
        tree = jay.parse("class C { int f() { return 1 + 2 * 3; } }")
        clone = roundtrip(tree)
        assert clone == tree
        assert clone.size() == tree.size()
        # Spot-check that locations travelled where present.
        originals = tree.find_all("Class")
        clones = clone.find_all("Class")
        assert [n.location for n in originals] == [n.location for n in clones]


class TestServeMessagePickle:
    def test_request_roundtrip(self):
        from repro.serve import ParseRequest

        request = ParseRequest(id="r1", text="1+2", grammar="calc", start="Expr", source="s")
        assert roundtrip(request) == request

    def test_result_roundtrip_with_value_and_error(self):
        from repro.serve import ParseErrorInfo, ParseResult

        ok = ParseResult(
            id="r1", outcome="ok", grammar="calc",
            value=GNode("Int", ("1",)), latency_s=0.25, parse_s=0.01,
            attempts=2, worker=3,
        )
        assert roundtrip(ok) == ok
        failed = ParseResult(
            id="r2", outcome="parse_error", grammar="calc",
            error=ParseErrorInfo("syntax error", 2, 1, 3, ("'('",), "x"),
        )
        clone = roundtrip(failed)
        assert clone == failed
        assert clone.error.to_error().offset == 2

    def test_error_info_inverts_parse_error(self):
        from repro.serve import ParseErrorInfo

        error = ParseError("syntax error at end of input", 9, 1, 10, ("digit",), "inline")
        rebuilt = ParseErrorInfo.from_error(error).to_error()
        assert str(rebuilt) == str(error)
        assert rebuilt.offset == error.offset and rebuilt.expected == error.expected
