"""Corner-case differential tests: interpreter vs generated parser on
constructs that are easy to get subtly wrong in one backend."""

import pytest

from repro.codegen import generate_parser_source, load_parser
from repro.errors import ParseError
from repro.interp import PackratInterpreter
from repro.optim import Options, prepare
from repro.peg.builder import (
    GrammarBuilder,
    act,
    alt,
    amp,
    any_,
    bang,
    bind,
    cc,
    lit,
    opt,
    plus,
    ref,
    star,
    text,
    void,
)
from repro.peg.expr import CharSwitch, Choice, Fail, Literal
from repro.peg.grammar import Grammar
from repro.peg.production import Alternative, Production, ValueKind
from repro.runtime.node import GNode


def both(grammar, options=None):
    prepared = prepare(grammar, options, check=False)
    parser_cls = load_parser(generate_parser_source(prepared))
    interp = PackratInterpreter(prepared.grammar)
    return parser_cls, interp


def agree(grammar, inputs, options=None):
    parser_cls, interp = both(grammar, options)
    for sample in inputs:
        try:
            expected = interp.parse(sample)
            ok = True
        except ParseError:
            ok = False
        if ok:
            assert parser_cls(sample).parse() == expected, sample
        else:
            with pytest.raises(ParseError):
                parser_cls(sample).parse()


class TestUnicodeInput:
    def test_any_char_matches_unicode(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [text(plus(any_()))])
        agree(builder.build(), ["héllo wörld ☺", "日本語"])

    def test_negated_class_spans_unicode(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [text(plus(cc("^,")))])
        agree(builder.build(), ["αβγ", "a,b"])

    def test_unicode_literal(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [lit("π≈3")])
        agree(builder.build(), ["π≈3", "pi"])


class TestPredicatesAndBindings:
    def test_binding_inside_failed_predicate_is_harmless(self):
        # The Not rewinds; the binding may linger but must do so identically
        # in both backends (documented env-sharing semantics).
        builder = GrammarBuilder("t", start="S")
        builder.object(
            "S",
            [bang(bind("x", text(lit("no")))), bind("x", text(lit("yes"))), act("x")],
        )
        agree(builder.build(), ["yes", "no"])

    def test_binding_in_and_predicate(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [amp(bind("peek", text(cc("0-9")))), text(plus(cc("0-9"))), act("peek")])
        agree(builder.build(), ["123", "x"])

    def test_rebinding_in_repetition_keeps_last(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [star(bind("last", text(cc("0-9")))), act("last")])
        agree(builder.build(), ["123", ""])

    def test_action_sees_none_for_untaken_binding(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [opt(bind("x", text(lit("a")))), act("x")])
        agree(builder.build(), ["a", ""])


class TestCharSwitchFallThrough:
    def grammar(self, default):
        switch = CharSwitch(
            (
                (frozenset("a"), Literal("ax")),
                (frozenset("b"), Literal("b")),
            ),
            default,
        )
        return Grammar(
            (Production("S", ValueKind.TEXT, (Alternative(switch),)),),
            start="S",
            name="t",
        )

    def test_case_branch_failure_tries_default(self):
        # 'a' selects the "ax" branch; on "ay" it fails and the default
        # ("a") must be tried — both backends must agree.
        grammar = self.grammar(Literal("a"))
        parser_cls, interp = both(grammar, Options.none())
        assert interp.match_prefix("ay")[1] == "a"
        assert parser_cls("ay").match_prefix()[1] == "a"

    def test_fail_default(self):
        grammar = self.grammar(Fail("nope"))
        parser_cls, interp = both(grammar, Options.none())
        assert interp.match_prefix("zz")[0] == -1
        assert parser_cls("zz").match_prefix()[0] == -1

    def test_eof_goes_to_default(self):
        grammar = self.grammar(Literal("a"))
        parser_cls, interp = both(grammar, Options.none())
        assert interp.match_prefix("")[0] == -1
        assert parser_cls("").match_prefix()[0] == -1


class TestGreedyAndEmpty:
    def test_star_of_option_like_sequence(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [text(star(cc("a"), opt(cc("b"))))])
        agree(builder.build(), ["ababa", "aa", "b", ""])

    def test_plus_boundary(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [text(plus(lit("ab")))])
        agree(builder.build(), ["ab", "abab", "aba", ""])

    def test_choice_backtracks_across_sequence(self):
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [ref("A"), lit("c")])
        builder.void("A", [lit("ab")], [lit("a")])
        agree(builder.build(), ["ac", "abc"])

    def test_longest_literal_does_not_win_automatically(self):
        # PEG ordered choice: "a" first means "ab" never matches via S.
        builder = GrammarBuilder("t", start="S")
        builder.void("S", [Choice((Literal("a"), Literal("ab"))), lit("!")])
        agree(builder.build(), ["a!", "ab!"])


class TestActionsAcrossBackends:
    def test_tuple_and_list_results(self):
        builder = GrammarBuilder("t", start="S")
        builder.object(
            "S",
            [bind("a", text(cc("0-9"))), bind("b", star(text(cc("0-9")))), act("(a, b, len(b))")],
        )
        agree(builder.build(), ["1234", "5"])

    def test_make_node_helper(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [bind("x", text(cc("a-z"))), act("make_node('Custom', x, 42)")])
        parser_cls, interp = both(builder.build())
        assert parser_cls("q").parse() == GNode("Custom", ("q", 42))
        assert interp.parse("q") == parser_cls("q").parse()

    def test_action_error_surfaces_in_both(self):
        builder = GrammarBuilder("t", start="S")
        builder.object("S", [act("1 // 0")])
        parser_cls, interp = both(builder.build())
        with pytest.raises(ZeroDivisionError):
            interp.parse("")
        with pytest.raises(ZeroDivisionError):
            parser_cls("").parse()


class TestFuzzRobustness:
    """Random bytes must produce ParseError or a value — never crash."""

    @pytest.mark.parametrize("lang_fixture", ["calc_lang", "json_lang", "jay_lang", "xc_lang"])
    def test_garbage_inputs(self, request, lang_fixture):
        import random

        lang = request.getfixturevalue(lang_fixture)
        rng = random.Random(99)
        alphabet = "{}()[];=+-*/<>!&|\"' \n\tabcXYZ0123456789._,:%^~?#"
        for _ in range(60):
            junk = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 40)))
            try:
                lang.parse(junk)
            except ParseError:
                pass

    def test_null_bytes_and_controls(self, json_lang):
        for junk in ["\x00", "\x00[1]", "[1\x00]", "\x7f\x01"]:
            with pytest.raises(ParseError):
                json_lang.parse(junk)
