"""Tests for the parser generator: structure of emitted code and, above
all, behavioral agreement with the reference interpreter."""

import pytest

from repro.codegen import generate_parser_source, load_parser, load_parser_file
from repro.errors import ParseError
from repro.interp import PackratInterpreter
from repro.optim import Options, prepare
from repro.peg.builder import (
    GrammarBuilder,
    act,
    alt,
    amp,
    any_,
    bang,
    bind,
    cc,
    lit,
    opt,
    plus,
    ref,
    star,
    text,
    void,
)
from repro.runtime.node import GNode


def language(build, start="S", options=None):
    builder = GrammarBuilder("t", start=start)
    build(builder)
    grammar = builder.build()
    prepared = prepare(grammar, options)
    source = generate_parser_source(prepared)
    return load_parser(source), PackratInterpreter(prepared.grammar), source


class TestAgreementWithInterpreter:
    CASES = [
        # (builder function, inputs)
        (lambda b: b.void("S", [lit("abc")]), ["abc", "ab", "abcd", ""]),
        (lambda b: b.object("S", [text(star(cc("a-z")))]), ["", "abc", "ABC"]),
        (lambda b: b.object("S", [text(plus(cc("0-9"))), opt(text(lit("!")))]), ["1", "12!", "!"]),
        (lambda b: b.object("S", [bang(lit("0")), text(cc("0-9"))]), ["5", "0"]),
        (lambda b: b.object("S", [amp(lit("ab")), text(any_()), text(any_())]), ["ab", "ax"]),
        (
            lambda b: b.object(
                "S", [bind("a", text(cc("0-9"))), bind("b", text(cc("0-9"))), act("int(a) * int(b)")]
            ),
            ["34", "3"],
        ),
        (
            lambda b: (
                b.generic("S", alt("Pair", ref("T"), void(lit(",")), ref("T")), alt(None, ref("T"))),
                b.text("T", [plus(cc("0-9"))], memo=True),
            ),
            ["1,2", "42", ","],
        ),
        (
            lambda b: b.object("S", [opt(text(lit("x"))), text(lit("y"))]),
            ["xy", "y", "x"],
        ),
    ]

    @pytest.mark.parametrize("case_index", range(len(CASES)))
    @pytest.mark.parametrize("opts", [Options.all(), Options.none()])
    def test_case(self, case_index, opts):
        build, inputs = self.CASES[case_index]
        parser_cls, interp, _ = language(build, options=opts)
        for sample in inputs:
            try:
                expected = interp.parse(sample)
                ok = True
            except ParseError:
                ok = False
            if ok:
                assert parser_cls(sample).parse() == expected, sample
            else:
                with pytest.raises(ParseError):
                    parser_cls(sample).parse()


class TestLeftRecursionEndToEnd:
    def make(self, options=None):
        def build(builder):
            builder.generic(
                "E",
                alt("Add", ref("E"), void(lit("+")), ref("N")),
                alt(None, ref("N")),
            )
            builder.object("N", [text(plus(cc("0-9")))])

        return language(build, start="E", options=options)

    @pytest.mark.parametrize("opts", [Options.all(), Options.none(), Options.all().without("leftrec")])
    def test_left_leaning(self, opts):
        parser_cls, _, _ = self.make(opts)
        value = parser_cls("1+2+3").parse()
        assert value == GNode("Add", (GNode("Add", ("1", "2")), "3"))


class TestEmittedStructure:
    def test_chunked_memo_code(self):
        _, _, source = language(lambda b: (b.void("S", [ref("A"), ref("A")]), b.void("A", [lit("a")], memo=True)))
        assert "self._columns" in source

    def test_dict_memo_code(self):
        parser_cls, _, source = language(
            lambda b: (b.void("S", [ref("A"), ref("A")]), b.void("A", [lit("a")], memo=True)),
            options=Options.all().without("chunks"),
        )
        assert "self._memo" in source and "_columns" not in source
        parser = parser_cls("aa")
        parser.parse()
        assert parser.memo_entry_count() > 0

    def test_transient_produces_no_memo_method_code(self):
        _, _, source = language(
            lambda b: (b.void("S", [ref("A"), ref("A")]), b.void("A", [lit("a")], transient=True)),
            options=Options.all().without("inline"),  # keep A as a method
        )
        # A is transient: its method must not contain a memo store.
        method = source.split("def _p_A")[1].split("def ")[0]
        assert "chunk[" not in method and "_memo[" not in method

    def test_error_tables_when_fast_errors(self):
        _, _, source = language(lambda b: b.void("S", [lit("kw")]))
        assert "_E0" in source

    def test_expected_calls_when_slow_errors(self):
        _, _, source = language(
            lambda b: b.void("S", [lit("kw")]), options=Options.all().without("errors")
        )
        assert "self._expected(" in source

    def test_guards_emitted_with_terminals(self):
        def build(builder):
            builder.void("S", [lit("alpha")], [lit("beta")], [lit("gamma")])

        _, _, source = language(build)
        assert "text[pos] in _CS" in source

    def test_source_is_deterministic(self):
        def build(builder):
            builder.void("S", [lit("x")], [lit("y")], [lit("z")])

        _, _, a = language(build)
        _, _, b = language(build)
        assert a == b


class TestParserApi:
    def make(self):
        return language(
            lambda b: (
                b.object("S", [ref("N"), void(star(lit(" "))), opt(ref("N"))], public=True),
                b.object("N", [text(plus(cc("0-9")))], public=True),
            )
        )

    def test_parse_requires_full_input(self):
        parser_cls, _, _ = self.make()
        with pytest.raises(ParseError):
            parser_cls("12 !").parse()

    def test_match_prefix(self):
        parser_cls, _, _ = self.make()
        consumed, value = parser_cls("12 x").match_prefix()
        assert consumed == 3

    def test_start_override(self):
        parser_cls, _, _ = self.make()
        assert parser_cls("7").parse("N") == "7"

    def test_error_position(self):
        parser_cls, _, _ = self.make()
        with pytest.raises(ParseError) as err:
            parser_cls("x").parse()
        assert err.value.offset == 0

    def test_memo_accounting(self):
        parser_cls, _, _ = self.make()
        parser = parser_cls("12 12")
        parser.parse()
        assert parser.memo_entry_count() >= 0
        assert parser.memo_size_bytes() >= 0


class TestLoadParserFile:
    def test_roundtrip_through_file(self, tmp_path):
        parser_cls, _, source = language(lambda b: b.object("S", [text(plus(cc("a")))]))
        path = tmp_path / "gen_parser.py"
        path.write_text(source)
        loaded = load_parser_file(path)
        assert loaded("aaa").parse() == "aaa"

    def test_same_stem_does_not_clobber(self, tmp_path):
        _, _, source_a = language(lambda b: b.object("S", [text(plus(cc("a")))]))
        _, _, source_b = language(lambda b: b.object("S", [text(plus(cc("b")))]))
        (tmp_path / "one").mkdir()
        (tmp_path / "two").mkdir()
        path_a = tmp_path / "one" / "parser.py"
        path_b = tmp_path / "two" / "parser.py"
        path_a.write_text(source_a)
        path_b.write_text(source_b)
        loaded_a = load_parser_file(path_a)
        loaded_b = load_parser_file(path_b)
        # The second load must not have replaced the first one's module.
        assert loaded_a("aaa").parse() == "aaa"
        assert loaded_b("bb").parse() == "bb"
        assert loaded_a.__module__ != loaded_b.__module__

    def test_modules_registered_in_private_namespace(self, tmp_path):
        import sys

        _, _, source = language(lambda b: b.object("S", [text(plus(cc("a")))]))
        path = tmp_path / "json.py"  # a stem that shadows a stdlib module
        path.write_text(source)
        loaded = load_parser_file(path)
        assert loaded.__module__.startswith("repro._generated_parsers.")
        # The stdlib module is untouched.
        import json as stdlib_json

        assert sys.modules["json"] is stdlib_json
        assert hasattr(stdlib_json, "dumps")


class TestGeneratedWithLocation:
    def test_locations_attached(self):
        builder = GrammarBuilder("t", start="S", with_location=True)
        builder.generic("S", alt("Node", void(lit("\n\n")), text(cc("a-z"))))
        prepared = prepare(builder.build())
        parser_cls = load_parser(generate_parser_source(prepared))
        node = parser_cls("\n\nx", source="demo.src").parse()
        assert node.location is not None
        assert node.location.source == "demo.src"
        assert node.location.line == 1  # location of the alternative's start
