"""E12 — incremental reparsing: memo reuse vs. cold parse after an edit.

The incremental subsystem (``docs/incremental.md``) promises that an
editor-style token-level edit invalidates only the memo columns whose
examined spans overlap the damage, so a warm reparse costs work
proportional to the damage, not the buffer.  This experiment measures
that, per incremental backend (the parsing machine and the closure
compiler):

- **Jay**: a seeded generated program; the edit script is same-length
  identifier renames (:func:`repro.workloads.pyedits.rename_edits`), the
  canonical editor action.  Warm = ``apply_edit`` + ``parse`` on a live
  :class:`~repro.incremental.IncrementalSession`; cold = ``set_text`` +
  ``parse`` of the identical buffer on a second session of the same
  flavor (the same program, so the comparison isolates memo reuse).
- **Real Python**: a layout-preprocessed stdlib source from
  ``examples/python/`` under the modular ``python.Python`` grammar —
  the at-scale version of the same measurement.

The acceptance bar — warm reparse >= 10x faster than cold, both
backends, both corpora — is the floor; the measured ratios on the seeded
corpora are orders of magnitude above it (the warm parse re-derives only
the damaged spine).  Correctness is not re-proven here (the differential
edit oracle in ``repro.difftest`` owns that); the runs still assert the
warm session never needed the failure-fidelity cold rerun.
"""

from __future__ import annotations

import random
import time

import repro
from repro.workloads.pyedits import corpus_texts, rename_edits

from bench_util import print_table

#: Acceptance floor: warm edit reparse at least this much faster than cold.
MIN_SPEEDUP = 10.0

BACKENDS = ("vm", "closures")

#: Edits per measurement (each timed warm and cold; totals are compared).
EDITS = 8


def _measure(language, backend: str, text: str, edits) -> dict:
    """Total warm vs cold reparse seconds over one edit script."""
    warm = language.incremental(backend=backend)
    warm.set_text(text)
    warm.parse()  # populate the memo table
    cold = language.incremental(backend=backend)
    current = text
    warm_s = cold_s = 0.0
    count = 0
    for edit in edits:
        warm.apply_edit(edit.offset, edit.removed, edit.inserted)
        current = edit.apply(current)
        start = time.perf_counter()
        warm.parse()
        warm_s += time.perf_counter() - start
        assert not warm.last_parse_recovered
        cold.set_text(current)
        start = time.perf_counter()
        cold.parse()
        cold_s += time.perf_counter() - start
        count += 1
    assert count > 0, "edit script was empty"
    return {
        "backend": backend,
        "edits": count,
        "chars": len(text),
        "warm_s": warm_s,
        "cold_s": cold_s,
        "speedup": cold_s / warm_s,
    }


def _report(title: str, rows: list[dict]) -> None:
    print_table(
        title,
        [
            {
                "backend": r["backend"],
                "chars": r["chars"],
                "edits": r["edits"],
                "warm (ms/edit)": f"{r['warm_s'] / r['edits'] * 1000:.3f}",
                "cold (ms/edit)": f"{r['cold_s'] / r['edits'] * 1000:.3f}",
                "speedup": f"{r['speedup']:.1f}x",
            }
            for r in rows
        ],
        ["backend", "chars", "edits", "warm (ms/edit)", "cold (ms/edit)", "speedup"],
    )


def test_e12_jay_incremental_reparse(benchmark, jay_all):
    from repro.workloads import generate_jay_program

    text = generate_jay_program(size=14, seed=11)
    rows = []
    for backend in BACKENDS:
        edits = list(rename_edits(text, random.Random(5), EDITS))
        rows.append(_measure(jay_all, backend, text, edits))
    _report(f"E12 — Jay ({len(text)} chars), token rename, warm vs cold", rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in rows:
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{row['backend']}: warm reparse only {row['speedup']:.1f}x over cold "
            f"(floor {MIN_SPEEDUP}x)"
        )


def test_e12_python_corpus_incremental_reparse(benchmark):
    language = repro.compile_grammar("python.Python")
    [(name, text)] = corpus_texts(limit=1, max_chars=40_000)
    rows = []
    for backend in BACKENDS:
        edits = list(rename_edits(text, random.Random(5), EDITS))
        rows.append(_measure(language, backend, text, edits))
    _report(
        f"E12 — real Python ({name}, {len(text)} layouted chars), "
        "token rename, warm vs cold",
        rows,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in rows:
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{row['backend']}: warm reparse only {row['speedup']:.1f}x over cold "
            f"(floor {MIN_SPEEDUP}x)"
        )
