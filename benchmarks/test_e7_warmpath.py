"""E7 — warm-path performance: compilation caching and parser reuse.

The paper's optimizations attack the parse loop; this experiment attacks
everything *around* it:

- **Cold vs. warm compile.**  ``compile_grammar("jay.Jay")`` pays
  compose → analyze → optimize → codegen → ``exec`` every time.  With the
  on-disk :class:`repro.cache.CompilationCache` the second process
  deserializes the composed grammar and a pre-compiled code object instead.
  Expected shape: warm (disk) ≥ 5× faster than cold; warm (in-process LRU)
  faster still.

- **Per-parse state reuse.**  ``Language.session()`` parses N inputs with
  one parser instance, resetting (not reallocating) its memo table; the
  fresh-parser loop allocates a parser object and memo container per input.
  Reported: wall time and allocated bytes (tracemalloc) for both loops.
"""

from __future__ import annotations

import tracemalloc

import repro
from repro.api import clear_language_cache
from repro.cache import CompilationCache

from bench_util import print_table, time_best_of

ROOT = "jay.Jay"


def test_e7_cold_vs_warm_compile(benchmark, tmp_path):
    cache_dir = tmp_path / "e7-cache"

    cold = time_best_of(lambda: repro.compile_grammar(ROOT, cache=False), repeat=3)

    # Prime the disk cache once.
    clear_language_cache()
    primer = CompilationCache(cache_dir)
    reference = repro.compile_grammar(ROOT, cache=primer)
    assert primer.stats.stores == 1

    def warm_disk():
        # Dropping the LRU forces the on-disk path — what a new process pays.
        clear_language_cache()
        cache = CompilationCache(cache_dir)
        language = repro.compile_grammar(ROOT, cache=cache)
        assert cache.stats.hits == 1 and not cache.warnings
        return language

    warm = time_best_of(warm_disk, repeat=5)
    warmed = warm_disk()

    # With the LRU populated (warm_disk filled it), repeat compiles are
    # near-free: an LRU hit only re-hashes the participating .mg texts.
    lru = time_best_of(lambda: repro.compile_grammar(ROOT), repeat=5)

    program = "class C { int f(int x) { return x * (x + 1); } }"
    assert warmed.parse(program) == reference.parse(program)

    rows = [
        {"path": "cold compile", "time (ms)": f"{cold * 1000:.1f}", "speedup": "1.0x"},
        {"path": "warm (disk cache)", "time (ms)": f"{warm * 1000:.1f}",
         "speedup": f"{cold / warm:.1f}x"},
        {"path": "warm (in-process LRU)", "time (ms)": f"{lru * 1000:.2f}",
         "speedup": f"{cold / lru:.0f}x"},
    ]
    print_table(f"E7 — compile_grammar({ROOT!r}) cold vs. warm", rows,
                ["path", "time (ms)", "speedup"])

    # The acceptance bar: a disk hit beats a full compile by ≥ 5x.
    assert cold >= 5 * warm, f"warm compile only {cold / warm:.1f}x faster"
    assert lru <= warm

    benchmark.pedantic(warm_disk, rounds=3, iterations=1)


def test_e7_session_reuse(jay_all, jay_corpus):
    language = jay_all

    def fresh_loop():
        return [language.parse(program) for program in jay_corpus]

    session = language.session()

    def session_loop():
        return [session.parse(program) for program in jay_corpus]

    # Correctness: identical trees, and the session really reuses one parser
    # and one memo container across the whole corpus.
    fresh_trees = fresh_loop()
    session_trees = session_loop()
    assert fresh_trees == session_trees
    parser = session.parser
    memo = parser._columns if hasattr(parser, "_columns") else parser._memo
    session_loop()
    assert session.parser is parser
    assert (parser._columns if hasattr(parser, "_columns") else parser._memo) is memo

    fresh_time = time_best_of(fresh_loop, repeat=3)
    session_time = time_best_of(session_loop, repeat=3)

    # Peak traced bytes over one loop (trees dominate both equally; the
    # delta is the per-parse parser/memo-container churn the session saves).
    tracemalloc.start()
    fresh_loop()
    _, fresh_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    session_loop()
    _, session_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    n = len(jay_corpus)
    rows = [
        {"loop": "fresh parser per input", "time (ms)": f"{fresh_time * 1000:.1f}",
         "peak (KB)": fresh_peak // 1024, "parsers/memo tables": n},
        {"loop": "one session, reset()", "time (ms)": f"{session_time * 1000:.1f}",
         "peak (KB)": session_peak // 1024, "parsers/memo tables": 1},
    ]
    print_table(f"E7 — {n} Jay inputs, fresh vs. warm parsing", rows,
                ["loop", "time (ms)", "peak (KB)", "parsers/memo tables"])

    # Reuse must never cost more than a generous fudge over fresh parsers.
    assert session_time < 1.5 * fresh_time
