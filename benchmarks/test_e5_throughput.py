"""E5 — "Figure: throughput comparison with conventional parsers".

Parses the same Jay corpus with every backend in the repository:

- the hand-written recursive-descent parser (the conventional baseline a
  compiler engineer would write),
- the generated packrat parser, fully optimized,
- the generated packrat parser with no optimizations (textbook packrat),
- the memoizing grammar interpreter, and
- the non-memoizing grammar interpreter.

All five produce identical trees (asserted), so throughput is apples to
apples.  Expected shape — who wins, by roughly what factor (the paper
reports its generated parsers within a small factor of hand-written ones,
and far ahead of naive interpretation):

    hand-written RD  >  generated(optimized)  >  generated(none)  >  interpreter
"""

from __future__ import annotations

import pytest

from repro.baselines import JayParser
from repro.interp import BacktrackInterpreter, ClosureParser, PackratInterpreter
from repro.optim import Options

from bench_util import compile_with, print_table, time_best_of, usable_cpus


def test_e5_throughput_table(benchmark, jay_grammar, jay_corpus):
    total_kb = sum(len(p) for p in jay_corpus) / 1024

    optimized_cls, prepared_all = compile_with(jay_grammar, Options.all())
    textbook_cls, prepared_none = compile_with(jay_grammar, Options.none())
    closures = ClosureParser(prepared_all.grammar)
    interp = PackratInterpreter(prepared_all.grammar)
    naive = BacktrackInterpreter(prepared_all.grammar)

    # Correctness first: identical trees everywhere.
    for program in jay_corpus:
        reference = JayParser(program).parse()
        assert optimized_cls(program).parse() == reference
        assert textbook_cls(program).parse() == reference
        assert closures.parse(program) == reference
        assert interp.parse(program) == reference
        assert naive.parse(program) == reference

    backends = [
        ("hand-written RD", lambda: [JayParser(p).parse() for p in jay_corpus]),
        ("generated (all opts)", lambda: [optimized_cls(p).parse() for p in jay_corpus]),
        ("generated (no opts)", lambda: [textbook_cls(p).parse() for p in jay_corpus]),
        ("closure-compiled", lambda: [closures.parse(p) for p in jay_corpus]),
        ("packrat interpreter", lambda: [interp.parse(p) for p in jay_corpus]),
        ("backtrack interpreter", lambda: [naive.parse(p) for p in jay_corpus]),
    ]
    times = {}
    rows = []
    for label, run in backends:
        seconds = time_best_of(run, repeat=3)
        times[label] = seconds
        rows.append(
            {
                "backend": label,
                "time (ms)": f"{seconds * 1000:.1f}",
                "KB/s": f"{total_kb / seconds:.0f}",
                "vs hand-written": f"{seconds / times['hand-written RD']:.1f}x",
            }
        )
    print_table("E5 — throughput on the Jay corpus", rows,
                ["backend", "time (ms)", "KB/s", "vs hand-written"])

    # Ordering shapes from the paper (plus the classic implementation-
    # technique ladder: generated source > compiled closures > tree walk):
    assert times["hand-written RD"] < times["generated (all opts)"]
    assert times["generated (all opts)"] < times["generated (no opts)"]
    assert times["generated (all opts)"] < times["closure-compiled"]
    assert times["closure-compiled"] < times["packrat interpreter"]
    assert times["generated (no opts)"] < times["packrat interpreter"]
    # Generated+optimized stays within a small factor of hand-written
    # (the paper reports ~2-3x; we allow generous slack for the Python host).
    assert times["generated (all opts)"] < 12 * times["hand-written RD"]

    benchmark.pedantic(
        lambda: [optimized_cls(p).parse() for p in jay_corpus], rounds=3, iterations=1
    )


def test_e5_json_throughput(benchmark, json_corpus):
    """Same comparison on JSON (second workload, different token mix)."""
    import repro
    from repro.baselines import JsonParser

    lang = repro.compile_grammar("json.Json")
    interp = lang.interpreter()
    total_kb = sum(len(d) for d in json_corpus) / 1024

    for document in json_corpus:
        assert lang.parse(document) == JsonParser(document).parse()

    backends = [
        ("hand-written RD", lambda: [JsonParser(d).parse() for d in json_corpus]),
        ("generated (all opts)", lambda: [lang.parse(d) for d in json_corpus]),
        ("packrat interpreter", lambda: [interp.parse(d) for d in json_corpus]),
    ]
    rows = []
    times = {}
    for label, run in backends:
        seconds = time_best_of(run, repeat=3)
        times[label] = seconds
        rows.append(
            {
                "backend": label,
                "time (ms)": f"{seconds * 1000:.1f}",
                "KB/s": f"{total_kb / seconds:.0f}",
            }
        )
    print_table("E5b — throughput on JSON", rows, ["backend", "time (ms)", "KB/s"])
    assert times["hand-written RD"] < times["generated (all opts)"] < times["packrat interpreter"]

    benchmark.pedantic(lambda: [lang.parse(d) for d in json_corpus], rounds=3, iterations=1)


def test_e5_xc_throughput(benchmark, xc_corpus):
    """Same comparison on xC (the paper's other language family)."""
    import repro
    from repro.baselines import XcParser
    from repro.optim import Options

    grammar = repro.load_grammar("xc.XC")
    optimized_cls, prepared = compile_with(grammar, Options.all())
    interp = PackratInterpreter(prepared.grammar)
    total_kb = sum(len(p) for p in xc_corpus) / 1024

    for program in xc_corpus:
        reference = XcParser(program).parse()
        assert optimized_cls(program).parse() == reference
        assert interp.parse(program) == reference

    backends = [
        ("hand-written RD", lambda: [XcParser(p).parse() for p in xc_corpus]),
        ("generated (all opts)", lambda: [optimized_cls(p).parse() for p in xc_corpus]),
        ("packrat interpreter", lambda: [interp.parse(p) for p in xc_corpus]),
    ]
    rows = []
    times = {}
    for label, run in backends:
        seconds = time_best_of(run, repeat=3)
        times[label] = seconds
        rows.append(
            {
                "backend": label,
                "time (ms)": f"{seconds * 1000:.1f}",
                "KB/s": f"{total_kb / seconds:.0f}",
            }
        )
    print_table("E5c — throughput on xC", rows, ["backend", "time (ms)", "KB/s"])
    assert times["hand-written RD"] < times["generated (all opts)"] < times["packrat interpreter"]
    assert times["generated (all opts)"] < 12 * times["hand-written RD"]

    benchmark.pedantic(
        lambda: [optimized_cls(p).parse() for p in xc_corpus], rounds=3, iterations=1
    )


def test_e5_vm_vs_closures(benchmark, jay_grammar, jay_corpus, xc_corpus):
    """E5d — the parsing machine against closure compilation.

    Both backends run the identical fully-optimized grammar with the same
    chunked memo table and produce identical trees (asserted); the VM trades
    one compiled closure per expression for a flat bytecode program and a
    single dispatch loop.  The ≥2x speedup bar is gated on CPU count like
    E10's: on starved runners the measured ratio is printed for the record
    and the assertion is skipped.
    """
    import repro
    from repro.optim import prepare
    from repro.vm import VMParser, compile_program

    workloads = [
        ("jay", jay_grammar, jay_corpus),
        ("xc", repro.load_grammar("xc.XC"), xc_corpus),
    ]
    rows = []
    speedups = {}
    for label, grammar, corpus in workloads:
        prepared = prepare(grammar, Options.all())
        closures = ClosureParser(prepared.grammar)
        vm = VMParser(compile_program(prepared))
        total_kb = sum(len(p) for p in corpus) / 1024

        # Correctness first: identical trees on the whole corpus.
        for program in corpus:
            assert vm.reset(program).parse() == closures.parse(program)

        closures_time = time_best_of(lambda: [closures.parse(p) for p in corpus], repeat=3)
        vm_time = time_best_of(lambda: [vm.reset(p).parse() for p in corpus], repeat=3)
        speedups[label] = closures_time / vm_time
        rows.append(
            {
                "workload": label,
                "closures KB/s": f"{total_kb / closures_time:.0f}",
                "vm KB/s": f"{total_kb / vm_time:.0f}",
                "speedup": f"{speedups[label]:.2f}x",
            }
        )
    print_table(
        f"E5d — parsing machine vs closure compilation "
        f"({usable_cpus()} CPU(s) available)",
        rows,
        ["workload", "closures KB/s", "vm KB/s", "speedup"],
    )

    # The machine must never lose to the closures it replaces.
    assert speedups["jay"] > 1.0, f"vm slower than closures on jay: {speedups['jay']:.2f}x"
    assert speedups["xc"] > 1.0, f"vm slower than closures on xc: {speedups['xc']:.2f}x"

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    if usable_cpus() < 2:
        pytest.skip(
            f"2x bar needs >= 2 CPUs (have {usable_cpus()}): measured "
            f"jay {speedups['jay']:.2f}x, xc {speedups['xc']:.2f}x for the record"
        )
    assert speedups["jay"] >= 2.0, f"vm only {speedups['jay']:.2f}x over closures on jay"
    assert speedups["xc"] >= 2.0, f"vm only {speedups['xc']:.2f}x over closures on xc"
