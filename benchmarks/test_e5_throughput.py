"""E5 — "Figure: throughput comparison with conventional parsers".

Parses the same Jay corpus with every backend in the repository:

- the hand-written recursive-descent parser (the conventional baseline a
  compiler engineer would write),
- the generated packrat parser, fully optimized,
- the generated packrat parser with no optimizations (textbook packrat),
- the memoizing grammar interpreter, and
- the non-memoizing grammar interpreter.

All five produce identical trees (asserted), so throughput is apples to
apples.  Expected shape — who wins, by roughly what factor (the paper
reports its generated parsers within a small factor of hand-written ones,
and far ahead of naive interpretation):

    hand-written RD  >  generated(optimized)  >  generated(none)  >  interpreter
"""

from __future__ import annotations

import pytest

from repro.baselines import JayParser
from repro.interp import BacktrackInterpreter, ClosureParser, PackratInterpreter
from repro.optim import Options

from bench_util import compile_with, print_table, time_best_of


def test_e5_throughput_table(benchmark, jay_grammar, jay_corpus):
    total_kb = sum(len(p) for p in jay_corpus) / 1024

    optimized_cls, prepared_all = compile_with(jay_grammar, Options.all())
    textbook_cls, prepared_none = compile_with(jay_grammar, Options.none())
    closures = ClosureParser(prepared_all.grammar)
    interp = PackratInterpreter(prepared_all.grammar)
    naive = BacktrackInterpreter(prepared_all.grammar)

    # Correctness first: identical trees everywhere.
    for program in jay_corpus:
        reference = JayParser(program).parse()
        assert optimized_cls(program).parse() == reference
        assert textbook_cls(program).parse() == reference
        assert closures.parse(program) == reference
        assert interp.parse(program) == reference
        assert naive.parse(program) == reference

    backends = [
        ("hand-written RD", lambda: [JayParser(p).parse() for p in jay_corpus]),
        ("generated (all opts)", lambda: [optimized_cls(p).parse() for p in jay_corpus]),
        ("generated (no opts)", lambda: [textbook_cls(p).parse() for p in jay_corpus]),
        ("closure-compiled", lambda: [closures.parse(p) for p in jay_corpus]),
        ("packrat interpreter", lambda: [interp.parse(p) for p in jay_corpus]),
        ("backtrack interpreter", lambda: [naive.parse(p) for p in jay_corpus]),
    ]
    times = {}
    rows = []
    for label, run in backends:
        seconds = time_best_of(run, repeat=3)
        times[label] = seconds
        rows.append(
            {
                "backend": label,
                "time (ms)": f"{seconds * 1000:.1f}",
                "KB/s": f"{total_kb / seconds:.0f}",
                "vs hand-written": f"{seconds / times['hand-written RD']:.1f}x",
            }
        )
    print_table("E5 — throughput on the Jay corpus", rows,
                ["backend", "time (ms)", "KB/s", "vs hand-written"])

    # Ordering shapes from the paper (plus the classic implementation-
    # technique ladder: generated source > compiled closures > tree walk):
    assert times["hand-written RD"] < times["generated (all opts)"]
    assert times["generated (all opts)"] < times["generated (no opts)"]
    assert times["generated (all opts)"] < times["closure-compiled"]
    assert times["closure-compiled"] < times["packrat interpreter"]
    assert times["generated (no opts)"] < times["packrat interpreter"]
    # Generated+optimized stays within a small factor of hand-written
    # (the paper reports ~2-3x; we allow generous slack for the Python host).
    assert times["generated (all opts)"] < 12 * times["hand-written RD"]

    benchmark.pedantic(
        lambda: [optimized_cls(p).parse() for p in jay_corpus], rounds=3, iterations=1
    )


def test_e5_json_throughput(benchmark, json_corpus):
    """Same comparison on JSON (second workload, different token mix)."""
    import repro
    from repro.baselines import JsonParser

    lang = repro.compile_grammar("json.Json")
    interp = lang.interpreter()
    total_kb = sum(len(d) for d in json_corpus) / 1024

    for document in json_corpus:
        assert lang.parse(document) == JsonParser(document).parse()

    backends = [
        ("hand-written RD", lambda: [JsonParser(d).parse() for d in json_corpus]),
        ("generated (all opts)", lambda: [lang.parse(d) for d in json_corpus]),
        ("packrat interpreter", lambda: [interp.parse(d) for d in json_corpus]),
    ]
    rows = []
    times = {}
    for label, run in backends:
        seconds = time_best_of(run, repeat=3)
        times[label] = seconds
        rows.append(
            {
                "backend": label,
                "time (ms)": f"{seconds * 1000:.1f}",
                "KB/s": f"{total_kb / seconds:.0f}",
            }
        )
    print_table("E5b — throughput on JSON", rows, ["backend", "time (ms)", "KB/s"])
    assert times["hand-written RD"] < times["generated (all opts)"] < times["packrat interpreter"]

    benchmark.pedantic(lambda: [lang.parse(d) for d in json_corpus], rounds=3, iterations=1)


def test_e5_xc_throughput(benchmark, xc_corpus):
    """Same comparison on xC (the paper's other language family)."""
    import repro
    from repro.baselines import XcParser
    from repro.optim import Options

    grammar = repro.load_grammar("xc.XC")
    optimized_cls, prepared = compile_with(grammar, Options.all())
    interp = PackratInterpreter(prepared.grammar)
    total_kb = sum(len(p) for p in xc_corpus) / 1024

    for program in xc_corpus:
        reference = XcParser(program).parse()
        assert optimized_cls(program).parse() == reference
        assert interp.parse(program) == reference

    backends = [
        ("hand-written RD", lambda: [XcParser(p).parse() for p in xc_corpus]),
        ("generated (all opts)", lambda: [optimized_cls(p).parse() for p in xc_corpus]),
        ("packrat interpreter", lambda: [interp.parse(p) for p in xc_corpus]),
    ]
    rows = []
    times = {}
    for label, run in backends:
        seconds = time_best_of(run, repeat=3)
        times[label] = seconds
        rows.append(
            {
                "backend": label,
                "time (ms)": f"{seconds * 1000:.1f}",
                "KB/s": f"{total_kb / seconds:.0f}",
            }
        )
    print_table("E5c — throughput on xC", rows, ["backend", "time (ms)", "KB/s"])
    assert times["hand-written RD"] < times["generated (all opts)"] < times["packrat interpreter"]
    assert times["generated (all opts)"] < 12 * times["hand-written RD"]

    benchmark.pedantic(
        lambda: [optimized_cls(p).parse() for p in xc_corpus], rounds=3, iterations=1
    )
