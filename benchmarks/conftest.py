"""Shared benchmark fixtures: seeded corpora and compiled languages.

Everything is session-scoped and seeded so repeated runs measure identical
work.  Each experiment prints the table/series it reproduces (the shapes
the paper reports); EXPERIMENTS.md records a reference run.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

import repro
from repro.workloads import generate_c_program, generate_jay_program, generate_json_document


@pytest.fixture(scope="session")
def jay_corpus() -> list[str]:
    """Three medium Jay programs (~25 KB total), fixed seeds."""
    return [generate_jay_program(size=14, seed=seed) for seed in (11, 22, 33)]


@pytest.fixture(scope="session")
def xc_corpus() -> list[str]:
    return [generate_c_program(size=12, seed=seed) for seed in (44, 55)]


@pytest.fixture(scope="session")
def json_corpus() -> list[str]:
    return [generate_json_document(size=150, seed=seed) for seed in (66, 77)]


@pytest.fixture(scope="session")
def jay_grammar():
    return repro.load_grammar("jay.Jay")


@pytest.fixture(scope="session")
def jay_all(jay_grammar):
    return repro.compile_grammar(jay_grammar)
