"""Helpers shared by the benchmark files (kept outside conftest so they can
be imported by module name without clashing with tests/conftest.py)."""

from __future__ import annotations

import os
import sys
import time

# Recursive-descent parsers inherit Python's call stack; deeply nested
# inputs (E4) need head room.
sys.setrecursionlimit(100_000)

from repro.codegen import generate_parser_source, load_parser
from repro.optim import Options, prepare


def compile_with(grammar, options: Options):
    """Grammar + options -> (generated parser class, prepared grammar)."""
    prepared = prepare(grammar, options)
    return load_parser(generate_parser_source(prepared)), prepared


def print_table(title: str, rows: list[dict], columns: list[str]) -> None:
    print(f"\n=== {title} ===")
    widths = {c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    print("  ".join(c.ljust(widths[c]) for c in columns))
    print("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        print("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware on Linux)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def time_best_of(fn, repeat: int = 3) -> float:
    """Best-of-N wall time in seconds."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
