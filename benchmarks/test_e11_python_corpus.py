"""E11 — the real-Python stress workload.

Two series over the checked-in stdlib corpus (``examples/python/``, see its
README for provenance):

(a) corpus throughput (bytes/sec of raw source) of each backend — packrat
    interpreter, closure compiler, generated parser, parsing machine — over
    every non-allowlisted corpus file, layout pre-pass included in the
    timing (it is part of what a client pays to parse Python);
(b) E4-style linearity on a large real-Python input: a ≥100 KB file built
    by concatenating corpus modules must parse in time linear in its size.

Expected shape: (a) generated > closures > interpreter, all in the
hundreds-of-KB/s range; (b) R² ≥ 0.98 for the linear fit.
"""

from __future__ import annotations

import pytest

import repro
from repro.interp import PackratInterpreter
from repro.interp.closures import ClosureParser
from repro.optim import Options, prepare
from repro.workloads import load_corpus, python_layout
from repro.workloads.pycorpus import ALLOWLIST

from bench_util import print_table, time_best_of


@pytest.fixture(scope="module")
def corpus_texts() -> list[tuple[str, str, int]]:
    """``(name, decoded_text, raw_bytes)`` of every parseable corpus file."""
    files, _ = load_corpus()
    return [
        (cf.name, cf.text, cf.nbytes) for cf in files if cf.name not in ALLOWLIST
    ]


@pytest.fixture(scope="module")
def python_backends():
    grammar = repro.load_grammar("python.Python")
    full = prepare(grammar, Options.all(), check=False)
    language = repro.compile_grammar(grammar)
    interpreter = PackratInterpreter(full.grammar, chunked=True)
    closures = ClosureParser(full.grammar, chunked=True)
    vm_session = language.session(backend="vm")
    session = language.session()
    return [
        ("interpreter", interpreter.parse),
        ("closures", closures.parse),
        ("vm", vm_session.parse),
        ("generated", session.parse),
    ]


def test_e11a_corpus_throughput_per_backend(benchmark, corpus_texts, python_backends):
    total_bytes = sum(nbytes for _, _, nbytes in corpus_texts)
    rows = []
    throughput = {}
    for name, parse in python_backends:
        def run(parse=parse):
            for _, text, _ in corpus_texts:
                parse(python_layout(text))

        seconds = time_best_of(run, repeat=1 if name == "interpreter" else 2)
        throughput[name] = total_bytes / seconds
        rows.append(
            {
                "backend": name,
                "files": len(corpus_texts),
                "KB": f"{total_bytes / 1e3:.0f}",
                "time (s)": f"{seconds:.2f}",
                "KB/s": f"{total_bytes / seconds / 1e3:.0f}",
            }
        )
    print_table(
        "E11a — real-Python corpus throughput per backend",
        rows,
        ["backend", "files", "KB", "time (s)", "KB/s"],
    )

    assert len(corpus_texts) >= 20 and total_bytes >= 300_000
    # The compiled backends must beat the interpreter; the generated parser
    # is the fast path clients get from Language.parse, and the parsing
    # machine must beat the closures it replaces.
    assert throughput["generated"] > throughput["interpreter"]
    assert throughput["closures"] > throughput["interpreter"]
    assert throughput["vm"] > throughput["closures"]

    _, fastest = python_backends[-1]
    small = [t for _, t, n in corpus_texts if n < 15_000]
    benchmark.pedantic(
        lambda: [fastest(python_layout(t)) for t in small], rounds=3, iterations=1
    )


def linear_fit_r2(xs, ys):
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    return 1 - ss_res / ss_tot if ss_tot else 1.0


def test_e11b_parse_time_linear_on_large_python_file(benchmark, corpus_texts):
    """Concatenated corpus modules (complete files are valid top-level
    suites, so concatenation is again valid Python) at 1x..5x a ~30 KB
    base: ≥100 KB at the top, linear fit across the range."""
    base = "\n".join(
        text
        for name, text, _ in corpus_texts
        if name in ("abc.py", "bisect.py", "copy.py", "heapq.py")
    ) + "\n"
    language = repro.compile_grammar("python.Python")
    session = language.session()

    multiples = [1, 2, 3, 4, 5]
    rows, xs, ys = [], [], []
    for k in multiples:
        text = python_layout(base * k)
        seconds = time_best_of(lambda t=text: session.parse(t), repeat=3)
        xs.append(len(text))
        ys.append(seconds)
        rows.append(
            {
                "input bytes": len(text),
                "time (ms)": f"{seconds * 1000:.1f}",
                "µs/KB": f"{seconds * 1e6 / (len(text) / 1024):.0f}",
            }
        )
    print_table(
        "E11b — generated Python parser: time vs input size",
        rows,
        ["input bytes", "time (ms)", "µs/KB"],
    )

    assert xs[-1] >= 100_000, "top size must exercise a ≥100KB Python input"
    r2 = linear_fit_r2(xs, ys)
    print(f"linear fit R^2 = {r2:.4f}")
    assert r2 >= 0.98, "packrat parse time must be linear on real Python"
    per_byte = [y / x for x, y in zip(xs, ys)]
    assert max(per_byte) < 2.5 * min(per_byte)

    benchmark.pedantic(lambda: session.parse(python_layout(base)), rounds=3, iterations=1)
