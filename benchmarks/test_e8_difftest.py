"""E8 — throughput of the differential-testing harness.

Not a paper experiment: this measures the cost of the *testing
infrastructure* added around the reproduction (see docs/testing.md), so
fuzz budgets can be chosen deliberately.

Reported per grammar:

- oracle construction cost (composing, preparing, and generating ~15
  backends — paid once per fuzz run);
- sentence-generation rate (the cheap part);
- full-oracle check rate (every backend parses every input — the
  expensive part, and the number that sets the inputs/second budget).

Expected shape: generation is orders of magnitude faster than checking,
so fuzz wall-time ~ inputs x backends x parse cost; the oracle check rate
for calc should comfortably exceed 10 inputs/s.
"""

from __future__ import annotations

import random

from repro.difftest import DifferentialOracle, SentenceGenerator

from bench_util import print_table, time_best_of

GRAMMARS = ["calc.Calculator", "json.Json"]
CHECKED_INPUTS = 12


def test_e8_oracle_throughput(benchmark):
    rows = []
    for root in GRAMMARS:
        build_time = time_best_of(lambda: DifferentialOracle.for_root(root), repeat=1)
        oracle = DifferentialOracle.for_root(root)
        generator = SentenceGenerator(oracle.grammar, random.Random(8))

        sentences = [generator.generate() for _ in range(CHECKED_INPUTS)]
        generation_time = time_best_of(
            lambda: [generator.generate() for _ in range(CHECKED_INPUTS)], repeat=3
        )
        check_time = time_best_of(
            lambda: [oracle.check(s) for s in sentences], repeat=3
        )
        for sentence in sentences:
            assert not oracle.check(sentence), sentence

        rows.append({
            "grammar": root,
            "backends": len(oracle.backends),
            "build (s)": f"{build_time:.2f}",
            "generate (inputs/s)": f"{CHECKED_INPUTS / generation_time:,.0f}",
            "check (inputs/s)": f"{CHECKED_INPUTS / check_time:,.1f}",
        })

    print_table(
        "E8 — differential-oracle throughput",
        rows,
        ["grammar", "backends", "build (s)", "generate (inputs/s)", "check (inputs/s)"],
    )
    calc = rows[0]
    assert float(calc["check (inputs/s)"].replace(",", "")) > 10.0

    oracle = DifferentialOracle.for_root("calc.Calculator")
    generator = SentenceGenerator(oracle.grammar, random.Random(8))
    sample = [generator.generate() for _ in range(CHECKED_INPUTS)]
    benchmark.pedantic(lambda: [oracle.check(s) for s in sample], rounds=3, iterations=1)
