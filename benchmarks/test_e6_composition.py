"""E6 — composing independently written grammars.

The paper's qualitative claim, made quantitative:

1. independently written extension modules compose without edits (Jay +
   for-each + assert + embedded SQL; calculator + power + comparison);
2. composition is *conservative* — base-language programs parse to
   identical trees under the extended grammar;
3. the runtime overhead of carrying extensions is small, because unused
   alternatives fail fast on their first-character/keyword tests.

Expected shape: overhead of the extended Jay grammar on pure-base programs
well under 2x (the new alternatives are keyword-guarded).
"""

from __future__ import annotations

import pytest

import repro
from repro.workloads import generate_jay_program

from bench_util import print_table, time_best_of

EXTENDED_SNIPPETS = [
    "class U { void m(int[] xs) { for (int x : xs) { this.use(x); } } }",
    'class U { void m() { assert ready : "not ready"; } }',
    "class U { void m() { rows = sql { select a, b from t where a < 9 }; } }",
]


def test_e6_extensions_compose_and_are_conservative(benchmark, jay_corpus):
    base = repro.compile_grammar("jay.Jay")
    extended = repro.compile_grammar("jay.Extended")

    # 1. All extension features work in one composed language.
    for snippet in EXTENDED_SNIPPETS:
        assert extended.recognize(snippet), snippet
        assert not base.recognize(snippet), snippet

    # 2. Conservativity on the shared subset.
    for program in jay_corpus:
        assert base.parse(program) == extended.parse(program)

    # 3. Overhead of carrying the extensions, on base-only programs.
    base_cls = base.parser_class
    ext_cls = extended.parser_class
    base_time = time_best_of(lambda: [base_cls(p).parse() for p in jay_corpus], repeat=3)
    ext_time = time_best_of(lambda: [ext_cls(p).parse() for p in jay_corpus], repeat=3)
    rows = [
        {"grammar": "jay.Jay", "productions": len(base.prepared.grammar),
         "time (ms)": f"{base_time * 1000:.1f}", "overhead": "1.00x"},
        {"grammar": "jay.Extended", "productions": len(extended.prepared.grammar),
         "time (ms)": f"{ext_time * 1000:.1f}", "overhead": f"{ext_time / base_time:.2f}x"},
    ]
    print_table("E6 — overhead of composed extensions on base programs", rows,
                ["grammar", "productions", "time (ms)", "overhead"])
    assert ext_time < 2.0 * base_time

    benchmark.pedantic(lambda: [ext_cls(p).parse() for p in jay_corpus], rounds=3, iterations=1)


def test_e6_calc_diamond_composition(benchmark):
    """Two calculator extensions written in ignorance of each other."""
    power = repro.compile_grammar("calc.Power")
    comparison = repro.compile_grammar("calc.Comparison")
    full = repro.compile_grammar("calc.Full")

    assert power.recognize("2**3")
    assert not comparison.recognize("2**3 <= 9".replace("<= 9", ""))  # power absent
    assert comparison.recognize("1+2 <= 9")
    combined = "2**3 <= 9 == 1"
    assert full.recognize(combined)
    assert not power.recognize(combined)

    # Composition preserves the shared core exactly.
    for source in ["1+2*3", "(4-5)/6", "- 7"]:
        assert power.parse(source, start="Expression") == full.parse(source, start="Expression")

    benchmark.pedantic(lambda: full.parse("2**3 <= 9 == 1"), rounds=5, iterations=1)


def test_e6_sql_is_a_language_and_a_library(benchmark):
    """The same sql.Core modules power a standalone language and an
    embedded one."""
    standalone = repro.compile_grammar("sql.Sql")
    embedded = repro.compile_grammar("jay.Extended")

    query = "select name, age from people where age >= 21"
    tree = standalone.parse(query)
    host = embedded.parse(f"class Q {{ void m() {{ r = sql {{ {query} }}; }} }}")
    assert host.find_all("Select")[0] == tree

    benchmark.pedantic(lambda: standalone.parse(query), rounds=5, iterations=1)


def _synthetic_extension(index: int) -> tuple[str, str]:
    """An independent module adding a keyword-guarded statement form."""
    name = f"synth.Ext{index}"
    keyword = f"magic{index}"
    source = f"""
    module synth.Ext{index};
    modify jay.Statements;
    modify jay.Keywords;
    import jay.Characters;
    import jay.Symbols;
    import jay.Expressions;
    import jay.Spacing;
    KeywordWord += "{keyword}" / ... ;
    Statement += <Magic{index}> KW{index} LPAREN Expression RPAREN SEMI / ... ;
    transient void KW{index} = "{keyword}" !IdentifierPart Spacing ;
    """
    return name, source


def test_e6b_overhead_scales_with_extension_count(benchmark, jay_corpus):
    """How much does carrying k unused extensions cost base programs?

    Expected shape: sub-linear, staying well under 2x even at k=16 —
    each added alternative fails on its first keyword character.
    """
    from bench_util import compile_with
    from repro.meta import ModuleLoader
    from repro.optim import Options

    results = []
    baseline_time = None
    for count in (0, 2, 4, 8, 16):
        loader = repro.ModuleLoader()
        imports = ["import jay.Jay;"]
        for index in range(count):
            name, source = _synthetic_extension(index)
            loader.register_source(name, source)
            imports.append(f"import {name};")
        loader.register_source(
            "synth.Top",
            "module synth.Top;\n" + "\n".join(imports) + "\npublic Object TopProgram = CompilationUnit ;\n",
        )
        grammar = repro.load_grammar("synth.Top", loader=loader)
        parser_cls, _ = compile_with(grammar, Options.all())
        # Correctness: the extension actually parses, and base programs agree.
        if count:
            probe = "class P { void m() { magic0(1 + 2); } }"
            assert parser_cls(probe).parse().find_all("Magic0")
        seconds = time_best_of(lambda: [parser_cls(p).parse() for p in jay_corpus], repeat=3)
        if baseline_time is None:
            baseline_time = seconds
        results.append(
            {
                "extensions": count,
                "statement alts": 11 + count,
                "time (ms)": f"{seconds * 1000:.1f}",
                "overhead": f"{seconds / baseline_time:.2f}x",
            }
        )
    print_table(
        "E6b — cost of carrying k unused extensions (base-only programs)",
        results,
        ["extensions", "statement alts", "time (ms)", "overhead"],
    )
    final = float(results[-1]["overhead"].rstrip("x"))
    assert final < 2.0, "keyword-guarded extensions must stay cheap"

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
