"""E10 — parse-service throughput: a warm worker pool vs. a serial session.

The serve subsystem promises that its robustness envelope (processes,
pipes, bounded queue, watchdog) does not eat the parallelism it buys.  This
experiment drives the same seeded Jay batch through

- a **serial baseline**: one warm ``Language.session()`` loop in-process
  (the best single-threaded configuration E7 established), and
- a **4-worker ParseService**: the full envelope, results gathered with
  ``map``,

and reports wall time, requests/second, and speedup.  The acceptance bar —
service ≥ 2× the serial session — needs real cores: the pool parallelizes
across *processes*, so on a 1-CPU container the four workers time-slice one
core and the envelope can only add overhead.  The speedup assertion is
therefore gated on ≥ 2 usable CPUs (the correctness and fault-injection
checks always run).
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.serve import GrammarSpec, ParseService
from repro.workloads import slow_request_input

from bench_util import print_table, time_best_of

WORKERS = 4
#: Each corpus program is submitted this many times per run, so the batch is
#: long enough (24 requests) for pool pipelining to matter.
REPEATS = 8


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_e10_service_vs_serial_session(benchmark, jay_all, jay_corpus):
    batch = jay_corpus * REPEATS

    session = jay_all.session()

    def serial_loop():
        return [session.parse(program) for program in batch]

    expected = serial_loop()
    serial_time = time_best_of(serial_loop, repeat=3)

    with ParseService("jay", workers=WORKERS, timeout=120.0) as service:
        # Correctness first: the pool returns the same trees, in order.
        results = service.map(batch)
        assert [r.outcome for r in results] == ["ok"] * len(batch)
        assert [repr(r.value) for r in results] == [repr(t) for t in expected]
        assert not any(r.fallback for r in results)

        service_time = time_best_of(lambda: service.map(batch), repeat=3)
        stats = service.stats()

    assert stats.recycles == 0 and stats.retries == 0 and not stats.degraded

    n = len(batch)
    speedup = serial_time / service_time
    rows = [
        {"configuration": "serial warm session", "time (ms)": f"{serial_time * 1000:.1f}",
         "req/s": f"{n / serial_time:.1f}", "speedup": "1.0x"},
        {"configuration": f"ParseService workers={WORKERS}",
         "time (ms)": f"{service_time * 1000:.1f}",
         "req/s": f"{n / service_time:.1f}", "speedup": f"{speedup:.2f}x"},
    ]
    print_table(
        f"E10 — {n} Jay requests, serial session vs. {WORKERS}-worker service "
        f"({usable_cpus()} CPU(s) available)",
        rows, ["configuration", "time (ms)", "req/s", "speedup"],
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    if usable_cpus() < 2:
        pytest.skip(
            f"speedup bar needs >= 2 CPUs (have {usable_cpus()}): "
            f"measured {speedup:.2f}x for the record"
        )
    # The acceptance bar: the 4-worker pool at least doubles serial throughput.
    assert speedup >= 2.0, f"service only {speedup:.2f}x over serial session"


def test_e10_xc_corpus(benchmark, xc_corpus):
    """Same shape on the C-subset grammar — no speedup bar, shape only."""
    batch = xc_corpus * REPEATS
    language = repro.compile_grammar("xc.XC")
    session = language.session()

    def serial_loop():
        return [session.parse(program) for program in batch]

    expected = serial_loop()
    serial_time = time_best_of(serial_loop, repeat=3)

    with ParseService("xc", workers=WORKERS, timeout=120.0) as service:
        results = service.map(batch)
        assert [repr(r.value) for r in results] == [repr(t) for t in expected]
        service_time = time_best_of(lambda: service.map(batch), repeat=3)

    n = len(batch)
    rows = [
        {"configuration": "serial warm session", "time (ms)": f"{serial_time * 1000:.1f}",
         "req/s": f"{n / serial_time:.1f}"},
        {"configuration": f"ParseService workers={WORKERS}",
         "time (ms)": f"{service_time * 1000:.1f}", "req/s": f"{n / service_time:.1f}"},
    ]
    print_table(f"E10 — {n} xc requests, serial vs. service", rows,
                ["configuration", "time (ms)", "req/s"])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e10_fault_injection_under_load(benchmark, jay_corpus):
    """A hung request must not take the batch with it.

    One exponential pathological request is injected into a normal Jay
    batch; the service must resolve it ``timeout``, recycle the worker it
    hung, and still parse every normal request ``ok``.
    """
    specs = {
        "jay": GrammarSpec(root="jay.Jay"),
        "slow": GrammarSpec(factory="repro.workloads.pathological:exponential_setup"),
    }
    with ParseService(specs, workers=2, timeout=1.0) as service:
        futures = [service.submit(program, grammar="jay") for program in jay_corpus]
        hung = service.submit(slow_request_input(), grammar="slow")
        futures += [service.submit(program, grammar="jay") for program in jay_corpus]
        outcomes = [f.result(120).outcome for f in futures]
        hung_result = hung.result(120)
        stats = service.stats()

    assert outcomes == ["ok"] * len(outcomes)
    assert hung_result.outcome == "timeout"
    assert stats.recycles >= 1 and stats.respawns >= 1
    assert not stats.degraded
    print(
        f"\nE10 fault injection: {len(outcomes)} ok, 1 timeout, "
        f"{stats.recycles} recycle(s), {stats.respawns} respawn(s)"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
