"""E9 — profiling overhead: enabled is bounded, disabled is free.

The observability subsystem (``repro.profile``) is opt-in.  Two gates:

- **Enabled** profiling on the generated-parser throughput workload costs
  < 2.5x wall time — cheap enough to run on real corpora.
- **Disabled** profiling costs < 3% vs. the pre-PR baseline.  The default
  paths are *structurally* unchanged — the generated source has no hook
  calls, the interpreter uses the plain ``_Run``, and memo tables carry no
  instance-level ``get``/``put`` shadows — so the timing check guards the
  only residual cost (the ``profile is None`` branch per parse).
"""

from __future__ import annotations

import repro
from repro.codegen import generate_parser_source, load_parser
from repro.interp import GrammarInterpreter
from repro.interp.evaluator import _Run
from repro.profile import ParseProfile
from repro.runtime.memo import ChunkedMemoTable, DictMemoTable

from bench_util import print_table, time_best_of

ENABLED_CEILING = 2.5
DISABLED_CEILING = 0.03


def test_e9_disabled_paths_structurally_unchanged(jay_all):
    language = jay_all

    # Generated backend: the default source is the profiled=False source,
    # with no profiler callbacks anywhere in it.
    default_source = generate_parser_source(language.prepared)
    assert default_source == language.parser_source
    assert "prof." not in default_source
    plain_parser = language.parser("class C { }")
    assert "_profile" not in vars(plain_parser)

    # The profiled twin is a *separate* class; building it must not touch
    # the default one.
    profiled = language.profiled_parser_class
    assert profiled is not language.parser_class

    # Interpreter: no profile -> the plain _Run evaluator.
    interp = GrammarInterpreter(language.prepared.grammar)
    assert interp.profile is None
    value = interp.parse("class C { int f() { return 1; } }")
    assert value is not None
    run = interp._last_run if hasattr(interp, "_last_run") else None
    if run is not None:
        assert type(run) is _Run

    # Memo tables: without an events sink the class methods stay in
    # charge — no per-instance closures shadowing get/put.
    rules = ["A", "B", "C", "D"]
    for table in (DictMemoTable(rules), ChunkedMemoTable(rules)):
        assert "get" not in table.__dict__
        assert "put" not in table.__dict__


def test_e9_profile_overhead(jay_all, jay_corpus, benchmark):
    language = jay_all

    def baseline_loop():
        # The pre-PR shape: instantiate the (unhooked) parser class
        # directly, bypassing even the profile=None branch in parse().
        cls = language.parser_class
        return [cls(program).parse() for program in jay_corpus]

    def disabled_loop():
        return [language.parse(program) for program in jay_corpus]

    def enabled_loop():
        profile = ParseProfile()
        return [language.parse(program, profile=profile) for program in jay_corpus]

    # Correctness first: all three loops produce identical trees.
    assert baseline_loop() == disabled_loop() == enabled_loop()

    baseline = time_best_of(baseline_loop, repeat=7)
    disabled = time_best_of(disabled_loop, repeat=7)
    enabled = time_best_of(enabled_loop, repeat=5)

    rows = [
        {"path": "baseline (direct parser)", "time (ms)": f"{baseline * 1000:.1f}",
         "vs baseline": "1.00x"},
        {"path": "profiling disabled", "time (ms)": f"{disabled * 1000:.1f}",
         "vs baseline": f"{disabled / baseline:.2f}x"},
        {"path": "profiling enabled", "time (ms)": f"{enabled * 1000:.1f}",
         "vs baseline": f"{enabled / baseline:.2f}x"},
    ]
    print_table("E9 — generated-parser throughput with/without profiling", rows,
                ["path", "time (ms)", "vs baseline"])

    assert enabled <= ENABLED_CEILING * baseline, (
        f"enabled profiling costs {enabled / baseline:.2f}x "
        f"(ceiling {ENABLED_CEILING}x)"
    )
    assert disabled <= (1 + DISABLED_CEILING) * baseline, (
        f"disabled profiling costs {disabled / baseline:.3f}x "
        f"(ceiling {1 + DISABLED_CEILING:.2f}x)"
    )

    benchmark.pedantic(disabled_loop, rounds=3, iterations=1)


def test_e9_interpreter_overhead(jay_grammar, jay_corpus, benchmark):
    from repro.optim import Options, prepare

    prepared = prepare(jay_grammar, Options.none(), check=False)

    def plain_loop():
        interp = GrammarInterpreter(prepared.grammar)
        return [interp.parse(program) for program in jay_corpus]

    def profiled_loop():
        profile = ParseProfile()
        interp = GrammarInterpreter(prepared.grammar, profile=profile)
        return [interp.parse(program) for program in jay_corpus]

    assert plain_loop() == profiled_loop()

    plain = time_best_of(plain_loop, repeat=3)
    profiled = time_best_of(profiled_loop, repeat=3)

    print_table("E9 — interpreter with/without profiling", [
        {"path": "plain", "time (ms)": f"{plain * 1000:.0f}", "factor": "1.00x"},
        {"path": "profiled", "time (ms)": f"{profiled * 1000:.0f}",
         "factor": f"{profiled / plain:.2f}x"},
    ], ["path", "time (ms)", "factor"])

    assert profiled <= ENABLED_CEILING * plain, (
        f"profiled interpreter costs {profiled / plain:.2f}x"
    )

    benchmark.pedantic(plain_loop, rounds=2, iterations=1)
