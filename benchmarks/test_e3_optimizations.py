"""E3 — "Table 3": the cumulative effect of each optimization.

Mirrors the paper's headline engineering table: starting from the textbook
packrat parser (no optimizations: every repetition/option a memoized helper
production, every production memoized in one big hash table, error strings
built at every failure) and enabling one optimization at a time, measure

- parse time over a fixed Jay corpus (generated parser), and
- memo-table footprint (entries and approximate bytes) — the stand-in for
  the paper's heap-utilization numbers.

Expected shape: time and space improve broadly monotonically; the big time
wins come from ``transient`` + ``repeated`` (dropping useless memoization
and helper productions), the big space win from ``chunks`` + ``transient``.
"""

from __future__ import annotations

import pytest

from repro.optim import Options

from bench_util import compile_with, print_table, time_best_of


def measure(parser_cls, corpus):
    def run():
        for program in corpus:
            parser_cls(program).parse()

    best = time_best_of(run, repeat=3)
    parser = parser_cls(corpus[0])
    parser.parse()
    return best, parser.memo_entry_count(), parser.memo_size_bytes()


def test_e3_cumulative_optimization_ladder(benchmark, jay_grammar, jay_corpus):
    total_bytes = sum(len(p) for p in jay_corpus)
    rows = []
    results = {}
    for label, options in Options.cumulative():
        parser_cls, prepared = compile_with(jay_grammar, options)
        seconds, entries, size = measure(parser_cls, jay_corpus)
        results[label] = (seconds, entries, size)
        rows.append(
            {
                "configuration": label,
                "productions": len(prepared.grammar),
                "time (ms)": f"{seconds * 1000:.1f}",
                "KB/s": f"{total_bytes / 1024 / seconds:.0f}",
                "memo entries": entries,
                "memo KB": f"{size / 1024:.0f}",
            }
        )
    print_table(
        "E3 / Table 3 — cumulative optimizations on the Jay corpus",
        rows,
        ["configuration", "productions", "time (ms)", "KB/s", "memo entries", "memo KB"],
    )

    none_time, none_entries, none_size = results["none"]
    full_time, full_entries, full_size = results["+fuse"]

    # Headline shapes (generous margins; exact factors are host-dependent):
    assert full_time < 0.7 * none_time, "optimizations must speed parsing up substantially"
    assert full_entries < 0.5 * none_entries, "transient/inline must shrink the memo table"
    assert full_size < 0.7 * none_size, "memo footprint must shrink"
    # transient is the big single lever for both time and entries
    before_transient = results["+terminals"]
    after_transient = results["+transient"]
    assert after_transient[1] < before_transient[1]

    parser_cls, _ = compile_with(jay_grammar, Options.all())
    benchmark.pedantic(
        lambda: [parser_cls(p).parse() for p in jay_corpus], rounds=3, iterations=1
    )


def test_e3_individual_ablations(benchmark, jay_grammar, jay_corpus):
    """Leave-one-out: disable each optimization alone against the full set."""
    parser_all, _ = compile_with(jay_grammar, Options.all())
    base_time, base_entries, base_size = measure(parser_all, jay_corpus)
    rows = [
        {
            "configuration": "all",
            "time (ms)": f"{base_time * 1000:.1f}",
            "slowdown": "1.00x",
            "memo entries": base_entries,
        }
    ]
    times: dict[str, float] = {}
    for flag in Options.flag_names():
        parser_cls, _ = compile_with(jay_grammar, Options.all().without(flag))
        seconds, entries, _ = measure(parser_cls, jay_corpus)
        times[flag] = seconds
        rows.append(
            {
                "configuration": f"all - {flag}",
                "time (ms)": f"{seconds * 1000:.1f}",
                "slowdown": f"{seconds / base_time:.2f}x",
                "memo entries": entries,
            }
        )
    print_table(
        "E3b — leave-one-out ablation",
        rows,
        ["configuration", "time (ms)", "slowdown", "memo entries"],
    )
    # Disabling transient must cost memo entries; disabling repeated must
    # cost time (helper productions + their memoization).
    by_name = {r["configuration"]: r for r in rows}
    assert by_name["all - transient"]["memo entries"] > base_entries
    # Scanner fusion is a headline time lever on token-heavy grammars:
    # without it every whitespace/comment skip is a Python-level loop.
    assert times["fuse"] > 1.15 * base_time, "disabling fuse must cost parse time"
    benchmark.pedantic(
        lambda: [parser_all(p).parse() for p in jay_corpus], rounds=3, iterations=1
    )


def test_e3_xc_cumulative(benchmark, xc_corpus):
    """The same cumulative ladder on the xC grammar — the optimization
    story must not be Jay-specific."""
    import repro

    grammar = repro.load_grammar("xc.XC")
    total_bytes = sum(len(p) for p in xc_corpus)
    rows = []
    results = {}
    for label, options in Options.cumulative():
        parser_cls, prepared = compile_with(grammar, options)
        seconds, entries, size = measure(parser_cls, xc_corpus)
        results[label] = (seconds, entries)
        rows.append(
            {
                "configuration": label,
                "productions": len(prepared.grammar),
                "time (ms)": f"{seconds * 1000:.1f}",
                "KB/s": f"{total_bytes / 1024 / seconds:.0f}",
                "memo entries": entries,
            }
        )
    print_table(
        "E3c — cumulative optimizations on the xC corpus",
        rows,
        ["configuration", "productions", "time (ms)", "KB/s", "memo entries"],
    )
    none_time, none_entries = results["none"]
    full_time, full_entries = results["+fuse"]
    assert full_time < 0.7 * none_time
    assert full_entries < 0.5 * none_entries

    parser_cls, _ = compile_with(grammar, Options.all())
    benchmark.pedantic(
        lambda: [parser_cls(p).parse() for p in xc_corpus], rounds=3, iterations=1
    )
