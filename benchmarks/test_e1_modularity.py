"""E1 — "Table 1": grammar modularity statistics.

Reproduces the paper's per-grammar module statistics: number of modules,
productions, alternatives, and grammar LoC for each shipped language, with
a per-module breakdown for the flagship Jay grammar.  The timed quantity
is full module composition (load + instantiate + modify + flatten), which
the paper's generator performs on every build.

Expected shape: real languages decompose into ~10-17 small modules of a
few dozen grammar-LoC each; extension modules are an order of magnitude
smaller than the grammars they extend.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import grammar_stats, module_stats
from repro.meta import ModuleLoader
from repro.modules import Composer

from bench_util import print_table

GRAMMARS = [
    "calc.Calculator", "json.Json", "jay.Jay", "jay.Extended",
    "xc.XC", "xc.Extended", "sql.Sql", "ml.ML", "ml.Extended", "meta.Module",
]


def collect(root: str):
    composer = Composer(ModuleLoader())
    grammar = composer.compose(root)
    modules = [module_stats(template) for _, template in composer.instance_modules()]
    return grammar, modules


def test_e1_per_grammar_summary(benchmark):
    rows = []
    for root in GRAMMARS:
        grammar, modules = collect(root)
        stats = grammar_stats(grammar)
        rows.append(
            {
                "grammar": root,
                "modules": len(modules),
                "productions": stats.productions,
                "generic": stats.by_kind["generic"],
                "void": stats.by_kind["void"],
                "alternatives": stats.alternatives,
                "grammar LoC": sum(m.loc for m in modules),
            }
        )
    print_table(
        "E1 / Table 1 — modularity statistics per grammar",
        rows,
        ["grammar", "modules", "productions", "generic", "void", "alternatives", "grammar LoC"],
    )

    by_name = {r["grammar"]: r for r in rows}
    # Shape assertions: real languages are genuinely modular.
    assert by_name["jay.Jay"]["modules"] >= 10
    assert by_name["xc.XC"]["modules"] >= 10
    assert by_name["jay.Jay"]["productions"] >= 60
    # Extended grammars pull in more modules but barely more LoC.
    assert by_name["jay.Extended"]["modules"] > by_name["jay.Jay"]["modules"]
    extra_loc = by_name["jay.Extended"]["grammar LoC"] - by_name["jay.Jay"]["grammar LoC"]
    assert extra_loc < 0.5 * by_name["jay.Jay"]["grammar LoC"]

    # Timed quantity: composing the largest grammar from its 17 modules.
    benchmark.pedantic(lambda: collect("jay.Extended"), rounds=5, iterations=1)


def test_e1_jay_module_breakdown(benchmark):
    grammar, modules = collect("jay.Jay")
    rows = [
        {
            "module": m.name,
            "imports": m.imports,
            "productions": m.productions,
            "alternatives": m.alternatives,
            "LoC": m.loc,
        }
        for m in sorted(modules, key=lambda m: m.name)
    ]
    print_table(
        "E1 — jay.Jay module breakdown",
        rows,
        ["module", "imports", "productions", "alternatives", "LoC"],
    )
    # No module dominates: the largest module holds < 40% of the grammar.
    total = sum(r["LoC"] for r in rows)
    assert max(r["LoC"] for r in rows) < 0.4 * total
    benchmark.pedantic(lambda: collect("jay.Jay"), rounds=5, iterations=1)
