"""E4 — "Figure: linear-time parsing".

Two series:

(a) parse time of the generated packrat Jay parser vs input size — must be
    linear (we check the least-squares fit and that time-per-byte stays
    flat within a small factor);
(b) the pathological grammar (Ford's exponential-backtracking witness):
    the naive backtracking interpreter blows up exponentially with nesting
    depth while the packrat interpreter stays linear.

Expected shape: (a) R² ≥ 0.98 for the linear fit; (b) naive time grows
~3x per nesting level, packrat doesn't.
"""

from __future__ import annotations

import pytest

from repro.interp import BacktrackInterpreter, PackratInterpreter
from repro.workloads import backtracking_grammar, backtracking_input, generate_jay_program

from bench_util import print_table, time_best_of


def linear_fit_r2(xs, ys):
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    return 1 - ss_res / ss_tot if ss_tot else 1.0


def test_e4a_packrat_time_is_linear_in_input_size(benchmark, jay_all):
    parser_cls = jay_all.parser_class
    sizes = [4, 8, 16, 32, 64]
    programs = [generate_jay_program(size=s, seed=5) for s in sizes]
    rows = []
    xs, ys = [], []
    for program in programs:
        seconds = time_best_of(lambda p=program: parser_cls(p).parse(), repeat=3)
        xs.append(len(program))
        ys.append(seconds)
        rows.append(
            {
                "input bytes": len(program),
                "time (ms)": f"{seconds * 1000:.1f}",
                "µs/KB": f"{seconds * 1e6 / (len(program) / 1024):.0f}",
            }
        )
    print_table("E4a — generated Jay parser: time vs input size", rows,
                ["input bytes", "time (ms)", "µs/KB"])

    r2 = linear_fit_r2(xs, ys)
    print(f"linear fit R^2 = {r2:.4f}")
    assert r2 >= 0.98, "packrat parse time must be linear in input size"

    # time-per-byte must not drift by more than 2.5x across a 16x size range
    per_byte = [y / x for x, y in zip(xs, ys)]
    assert max(per_byte) < 2.5 * min(per_byte)

    benchmark.pedantic(lambda: parser_cls(programs[-1]).parse(), rounds=3, iterations=1)


def test_e4b_naive_backtracking_is_exponential(benchmark):
    grammar = backtracking_grammar()
    packrat = PackratInterpreter(grammar)
    naive = BacktrackInterpreter(grammar)

    depths = [6, 8, 10, 12]
    rows = []
    naive_times = []
    packrat_times = []
    for depth in depths:
        source = backtracking_input(depth)
        packrat_seconds = time_best_of(lambda s=source: packrat.recognize(s), repeat=3)
        naive_seconds = time_best_of(lambda s=source: naive.recognize(s), repeat=1)
        naive_times.append(naive_seconds)
        packrat_times.append(packrat_seconds)
        rows.append(
            {
                "depth": depth,
                "packrat (ms)": f"{packrat_seconds * 1000:.2f}",
                "naive (ms)": f"{naive_seconds * 1000:.2f}",
                "ratio": f"{naive_seconds / packrat_seconds:.0f}x",
            }
        )
    print_table("E4b — pathological input: packrat vs naive backtracking", rows,
                ["depth", "packrat (ms)", "naive (ms)", "ratio"])

    # Exponential growth: each +2 depth multiplies naive time by ~9 (3^2).
    # Require at least 4x per step to be robust to noise.
    for before, after in zip(naive_times, naive_times[1:]):
        assert after > 4 * before, "naive backtracking must blow up exponentially"
    # Packrat grows at most linearly-ish across the same range.
    assert packrat_times[-1] < 10 * max(packrat_times[0], 1e-5)
    # And a deep input remains trivially parseable for packrat.
    deep = backtracking_input(300)
    assert packrat.recognize(deep)

    benchmark.pedantic(lambda: packrat.recognize(deep), rounds=3, iterations=1)
