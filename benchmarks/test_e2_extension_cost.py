"""E2 — "Table 2": the cost of extending a language.

The paper's central claim: with modular syntax, a language extension is a
*delta* — a module of a few lines — while with a monolithic grammar it is a
copy-and-edit of the whole thing.  For every shipped extension we measure:

- LoC of the extension module(s),
- number of added / overridden / removed alternatives,
- LoC of the base grammar it would otherwise have had to fork.

Expected shape: each delta is 1-2 orders of magnitude smaller than its
base.  The timed quantity is composing + optimizing + generating the
extended parser, i.e. the cost of "rebuilding the language" after adding a
feature.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.stats import module_stats
from repro.meta import ModuleLoader
from repro.modules import Composer

from bench_util import print_table

#: (extension root, delta modules, base root)
EXTENSIONS = [
    ("calc.Power", ["calc.Power"], "calc.Calculator"),
    ("calc.Comparison", ["calc.Comparison"], "calc.Calculator"),
    ("calc.Full", ["calc.Power", "calc.Comparison", "calc.Full"], "calc.Calculator"),
    ("jay.ForEach", ["jay.ForEach"], "jay.Jay"),
    ("jay.AssertStmt", ["jay.AssertStmt"], "jay.Jay"),
    ("jay.SwitchStmt", ["jay.SwitchStmt"], "jay.Jay"),
    ("jay.Increments", ["jay.Increments"], "jay.Jay"),
    ("jay.Sql", ["jay.Sql", "sql.Core"], "jay.Jay"),
    (
        "jay.Extended",
        ["jay.ForEach", "jay.AssertStmt", "jay.SwitchStmt", "jay.Increments",
         "jay.Sql", "sql.Core", "jay.Extended"],
        "jay.Jay",
    ),
    ("xc.Until", ["xc.Until"], "xc.XC"),
    ("ml.Pipeline", ["ml.Pipeline"], "ml.ML"),
]


def base_loc(root: str) -> int:
    composer = Composer(ModuleLoader())
    composer.compose(root)
    return sum(module_stats(t).loc for _, t in composer.instance_modules())


def delta_stats(modules: list[str]):
    loader = ModuleLoader()
    loc = 0
    productions = 0
    modifications = 0
    for name in modules:
        stats = module_stats(loader.load(name))
        loc += stats.loc
        productions += stats.productions
        modifications += stats.modifications
    return loc, productions, modifications


def test_e2_extension_cost_table(benchmark):
    rows = []
    for extension, modules, base in EXTENSIONS:
        delta_loc, new_productions, modifications = delta_stats(modules)
        monolithic = base_loc(base)
        rows.append(
            {
                "extension": extension,
                "delta modules": len(modules),
                "delta LoC": delta_loc,
                "new prods": new_productions,
                "modifications": modifications,
                "base LoC (fork cost)": monolithic,
                "ratio": f"{monolithic / max(delta_loc, 1):.1f}x",
            }
        )
    print_table(
        "E2 / Table 2 — extension-as-delta vs fork-the-grammar",
        rows,
        ["extension", "delta modules", "delta LoC", "new prods", "modifications",
         "base LoC (fork cost)", "ratio"],
    )

    # Shape: single-feature deltas are >= 5x smaller than their base; for the
    # big Jay grammar >= 10x.
    by_name = {r["extension"]: r for r in rows}
    for name in ("jay.ForEach", "jay.AssertStmt", "jay.Increments", "xc.Until", "ml.Pipeline"):
        row = by_name[name]
        assert row["base LoC (fork cost)"] >= 10 * row["delta LoC"], name
    for row in rows:
        # Even for the toy calculator, a delta beats forking the base.
        assert row["base LoC (fork cost)"] > 1.5 * row["delta LoC"], row["extension"]

    # Timed quantity: full rebuild of the extended flagship language.
    benchmark.pedantic(
        lambda: repro.compile_grammar("jay.Extended"), rounds=3, iterations=1
    )


def test_e2_extended_language_is_conservative(benchmark, jay_corpus):
    """Adding extensions must not change the meaning of base programs."""
    base = repro.compile_grammar("jay.Jay")
    extended = repro.compile_grammar("jay.Extended")
    for program in jay_corpus:
        assert base.parse(program) == extended.parse(program)
    benchmark.pedantic(
        lambda: [extended.parse(p) for p in jay_corpus], rounds=3, iterations=1
    )
