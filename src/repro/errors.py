"""Exception hierarchy shared across the repro library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the phase that failed (reading a grammar file, composing
modules, analysing or optimizing a grammar, generating a parser, or parsing
input text).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GrammarSyntaxError(ReproError):
    """A grammar-definition (``.mg``) file is syntactically malformed.

    Carries the source name and position so tools can print a conventional
    ``file:line:column: message`` diagnostic.
    """

    def __init__(self, message: str, source: str = "<string>", line: int = 0, column: int = 0):
        super().__init__(f"{source}:{line}:{column}: {message}")
        self.message = message
        self.source = source
        self.line = line
        self.column = column

    def __reduce__(self):
        # The default exception reduction replays ``args`` (the formatted
        # string) into ``__init__``, which would garble the fields; rebuild
        # from the original constructor arguments so the error survives
        # pickling (e.g. across parse-service worker processes) unchanged.
        return (type(self), (self.message, self.source, self.line, self.column))


class CompositionError(ReproError):
    """Module composition failed (missing module, bad instantiation,
    conflicting or dangling modification, duplicate production, ...)."""


class AnalysisError(ReproError):
    """A static analysis rejected the grammar (e.g. ill-formed recursion)."""


class CodegenError(ReproError):
    """Parser generation failed for a structural reason."""


class ParseError(ReproError):
    """Input text could not be parsed by a generated or interpreted parser.

    The position reported is the *farthest failure* observed, which in PEG
    parsing is the conventional best guess for where the input is wrong.
    """

    def __init__(
        self,
        message: str,
        offset: int,
        line: int,
        column: int,
        expected: tuple[str, ...] = (),
        source: str = "<input>",
    ):
        full = message
        if expected:
            full = f"{message} (expected {', '.join(sorted(set(expected)))})"
        super().__init__(f"{source}:{line}:{column}: {full}")
        self.message = message
        self.offset = offset
        self.line = line
        self.column = column
        self.expected = expected
        self.source = source

    def __reduce__(self):
        # Reconstruct from the constructor arguments rather than the
        # formatted ``args`` string: parse-service results carry ParseErrors
        # across process boundaries and must round-trip every field.
        return (
            type(self),
            (self.message, self.offset, self.line, self.column, self.expected, self.source),
        )

    def show(self, text: str, source: str | None = None) -> str:
        """A compiler-style diagnostic with the offending line and a caret.

        ``text`` must be the input that was parsed (errors don't retain it).
        ``source`` overrides the source name recorded on the error.
        """
        if source is None:
            source = self.source
        # Honor all three physical line terminators so the caret line is
        # right on \r\n and lone-\r inputs too.
        start = max(text.rfind("\n", 0, self.offset), text.rfind("\r", 0, self.offset)) + 1
        candidates = [i for i in (text.find("\n", start), text.find("\r", start)) if i != -1]
        end = min(candidates) if candidates else len(text)
        source_line = text[start:end]
        caret = " " * (self.offset - start) + "^"
        header = f"{source}:{self.line}:{self.column}: error: {self.message}"
        if self.expected:
            header += f" (expected {', '.join(sorted(set(self.expected)))})"
        return f"{header}\n  {source_line}\n  {caret}"


class ParseDepthError(ParseError):
    """Input nesting exhausted the parser's recursion depth budget.

    Every backend converts a :class:`RecursionError` escaping its descent
    into this diagnostic, so deeply nested input degrades into a structured,
    picklable :class:`ParseError` (farthest offset reached, source name)
    instead of a raw interpreter traceback.  ``budget`` records the frame
    budget in force, when one was configured (see
    :func:`repro.runtime.base.recursion_budget`).

    Unlike ordinary parse errors, the position at which the budget runs out
    is a property of the *backend* (each one spends stack differently), so
    differential testing treats depth errors like resource limits, not
    semantics (see :mod:`repro.difftest.oracle`).
    """

    def __init__(
        self,
        message: str,
        offset: int,
        line: int,
        column: int,
        expected: tuple[str, ...] = (),
        source: str = "<input>",
        budget: int | None = None,
    ):
        super().__init__(message, offset, line, column, expected, source)
        self.budget = budget

    def __reduce__(self):
        return (
            type(self),
            (
                self.message,
                self.offset,
                self.line,
                self.column,
                self.expected,
                self.source,
                self.budget,
            ),
        )
