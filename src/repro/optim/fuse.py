"""Scanner fusion: compile value-free terminal regions to single ``re`` scans.

The dominant remaining cost in a pure-Python packrat parser is interpreter
overhead *per character*.  This pass finds regions whose match result is
fully described by (success, end position) — no semantic value, no bindings,
no actions, no recursion — and replaces each with a
:class:`~repro.peg.expr.Regex` leaf whose pattern the C regex engine
executes in one call.  :mod:`repro.analysis.fusable` holds the
translatability rules and the PEG→``re`` mapping (ordered choice → atomic
group, repetition → possessive quantifier) that makes the rewrite exact.

Value discipline.  A region may be fused with ``capture=False`` only where
its raw value provably never reaches a consumer: anywhere inside ``void``/
``String`` production bodies, under ``void:``/``text:``/predicates, or as a
non-contributing sequence item.  In positions where the raw value may flow
(a binding, a contributing choice) only two shapes fuse, both with
``capture=True`` and a value equal to the unfused one — ``text:e`` regions
and references to ``String``-kind productions, whose value is the matched
span either way.  Runs of adjacent fusable sequence items (and adjacent
fusable choice alternatives) merge into one scan.

Error parity.  Fused scans are noted (expression, position) on failure —
and on success for regions that may record expected-set entries — and
replayed through the ordinary machinery by ``ParserBase.parse_error``, so
farthest-failure offsets and expected sets are bit-identical to the unfused
pipeline.  See ``runtime/base.py``.

Productions marked ``nofuse`` are left alone and never inlined into fused
regions.  On interpreters before 3.11 (no possessive/atomic syntax) the
pass is a no-op.
"""

from __future__ import annotations

from repro.analysis.fusable import FusionAnalysis, fusion_supported
from repro.peg.expr import (
    And,
    Binding,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Sequence,
    Text,
    Voided,
    choice,
    seq,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Production, ValueKind
from repro.peg.values import contributes, kind_lookup


def fuse_scanners(grammar: Grammar) -> Grammar:
    """Fuse every worthwhile region in ``grammar`` (no-op before 3.11)."""
    if not fusion_supported():
        return grammar
    fuser = _Fuser(grammar)
    updated = [p for p in (fuser.fuse_production(prod) for prod in grammar) if p]
    if not updated:
        return grammar
    return grammar.replace_productions(updated)


def useless_nofuse(grammar: Grammar) -> list[str]:
    """Productions whose ``nofuse`` attribute changes nothing: with the
    attribute ignored, fusion would neither fuse a region inside their body
    nor inline them into any other production's region."""
    flagged = [p.name for p in grammar if p.has("nofuse")]
    if not flagged or not fusion_supported():
        return []
    stripped = grammar.replace_productions(
        [p.with_attributes(p.attributes - {"nofuse"}) for p in grammar if p.has("nofuse")]
    )
    fuser = _Fuser(stripped)
    for production in stripped:
        fuser.fuse_production(production)
    useful = fuser.fused_productions | fuser.analysis.inlined_names
    return [name for name in flagged if name not in useful]


def _raw_is_none(expr: Expression, kind_of) -> bool:
    """Is the expression's *raw* dynamic value always None?

    Non-contributing expressions still produce raw values (a literal yields
    its text) that a binding or a contributing choice can observe; fusion in
    such positions is only transparent when the raw value was None anyway.
    """
    if isinstance(expr, (Voided, Not, And, Epsilon)):
        return True
    if isinstance(expr, (Sequence, Repetition, Option)):
        return not contributes(expr, kind_of)
    if isinstance(expr, Nonterminal):
        return kind_of(expr.name) is ValueKind.VOID
    if isinstance(expr, Choice):
        return all(_raw_is_none(a, kind_of) for a in expr.alternatives)
    return False


class _Fuser:
    """One grammar-wide rewrite; tracks what fused for stats and lint."""

    def __init__(self, grammar: Grammar):
        self.analysis = FusionAnalysis(grammar)
        self._kind_of = kind_lookup(grammar)
        self._label = ""
        #: Productions that got at least one fused region in their body.
        self.fused_productions: set[str] = set()

    def _contributes(self, expr: Expression) -> bool:
        return contributes(expr, self._kind_of)

    def fuse_production(self, production: Production) -> Production | None:
        """The fused production, or None when nothing changed."""
        if production.has("nofuse"):
            return None
        self._label = production.name
        # Inside void/String bodies every value is machinery-built (None or
        # the matched span), so item values are dead and whole alternatives
        # may fuse regardless of what would normally contribute.
        body_discards = production.kind in (ValueKind.VOID, ValueKind.TEXT)
        changed = False
        alternatives = []
        for alternative in production.alternatives:
            discard = body_discards or not self._contributes(alternative.expr)
            rewritten = self._rewrite(alternative.expr, discard)
            if rewritten != alternative.expr:
                changed = True
                alternatives.append(alternative.with_expr(rewritten))
            else:
                alternatives.append(alternative)
        if not changed:
            return None
        self.fused_productions.add(production.name)
        return production.with_alternatives(tuple(alternatives))

    # -- rewriting ----------------------------------------------------------

    def _rewrite(self, expr: Expression, discard: bool) -> Expression:
        fused = self._try_fuse(expr, discard)
        if fused is not None:
            return fused
        if isinstance(expr, Sequence):
            return self._rewrite_sequence(expr, discard)
        if isinstance(expr, Choice):
            return self._rewrite_choice(expr, discard)
        if isinstance(expr, Repetition):
            inner = not self._contributes(expr.expr) or discard
            return Repetition(self._rewrite(expr.expr, inner), expr.min)
        if isinstance(expr, Option):
            inner = not self._contributes(expr.expr) or discard
            return Option(self._rewrite(expr.expr, inner))
        if isinstance(expr, Binding):
            # The bound value is the child's raw value: no discarding below.
            return Binding(expr.name, self._rewrite(expr.expr, False))
        if isinstance(expr, Voided):
            return Voided(self._rewrite(expr.expr, True))
        if isinstance(expr, Text):
            return Text(self._rewrite(expr.expr, True))
        if isinstance(expr, And):
            return And(self._rewrite(expr.expr, True))
        if isinstance(expr, Not):
            return Not(self._rewrite(expr.expr, True))
        if isinstance(expr, CharSwitch):
            cases = tuple(
                (chars, self._rewrite(branch, discard)) for chars, branch in expr.cases
            )
            return CharSwitch(cases, self._rewrite(expr.default, discard))
        return expr

    def _try_fuse(self, expr: Expression, discard: bool) -> Expression | None:
        analysis = self.analysis
        if not analysis.fusable(expr):
            return None
        if discard:
            return analysis.build_regex(expr, capture=False, label=self._label)
        # Value position: fuse only when the fused value equals the unfused
        # raw value — the matched span for text-captured shapes, None for
        # shapes whose raw value was already None.
        if isinstance(expr, Text):
            return analysis.build_regex(expr, capture=True, label=self._label)
        if (
            isinstance(expr, Nonterminal)
            and analysis.kind_of(expr.name) is ValueKind.TEXT
        ):
            return analysis.build_regex(expr, capture=True, label=self._label)
        if not self._contributes(expr) and _raw_is_none(expr, self._kind_of):
            return analysis.build_regex(expr, capture=False, label=self._label)
        return None

    def _rewrite_sequence(self, expr: Sequence, discard: bool) -> Expression:
        analysis = self.analysis
        out: list[Expression] = []
        run: list[Expression] = []

        def run_eligible(item: Expression) -> bool:
            if not analysis.fusable(item):
                return False
            if discard:
                return True
            # In value position a merged region yields None; every absorbed
            # item must have been value-dead (and raw-None) already.
            return not self._contributes(item) and _raw_is_none(item, self._kind_of)

        def flush() -> None:
            if not run:
                return
            items = run[:]
            del run[:]
            if len(items) > 1:
                fused = analysis.build_regex(
                    seq(*items), capture=False, label=self._label
                )
                if fused is not None:
                    out.append(fused)
                    return
            for item in items:
                # Run items are value-dead by eligibility, in either mode.
                out.append(self._rewrite(item, True))

        for item in expr.items:
            if run_eligible(item):
                run.append(item)
            else:
                flush()
                item_discard = discard or not self._contributes(item)
                out.append(self._rewrite(item, item_discard))
        flush()
        return seq(*out)

    def _rewrite_choice(self, expr: Choice, discard: bool) -> Expression:
        analysis = self.analysis
        out: list[Expression] = []
        run: list[Expression] = []

        def run_eligible(alt: Expression) -> bool:
            if not analysis.fusable(alt):
                return False
            if discard:
                return True
            return not self._contributes(alt) and _raw_is_none(alt, self._kind_of)

        def flush() -> None:
            if not run:
                return
            alternatives = run[:]
            del run[:]
            if len(alternatives) > 1:
                fused = analysis.build_regex(
                    choice(*alternatives), capture=False, label=self._label
                )
                if fused is not None:
                    out.append(fused)
                    return
            for alt in alternatives:
                # Run alternatives are value-dead by eligibility.
                out.append(self._rewrite(alt, True))

        for alt in expr.alternatives:
            if run_eligible(alt):
                run.append(alt)
            else:
                flush()
                out.append(self._rewrite(alt, discard))
        flush()
        return choice(*out)
