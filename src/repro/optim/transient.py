"""Transient productions: dropping useless memoization.

Memoizing a result only pays off when the production may be re-applied at
the same input position — which requires at least two syntactic call sites
(or a surrounding choice that backtracks over it).  The paper lets grammar
writers mark such productions ``transient`` and the generator additionally
infers transience; the memo table then skips them, saving both the lookup
and the stored entry.

With the optimization **on**, explicit ``transient`` attributes are honored
and every production with at most one call site in the whole grammar is
inferred transient (unless it carries ``memo``, which always wins).  With
the optimization **off**, all ``transient`` attributes are stripped —
everything is memoized, the textbook packrat behavior.

Inference is always semantics-preserving (memoization never changes PEG
results); single-call-site inference is the paper's time/space heuristic —
a production invoked from one place can still be re-applied at one position
when an *enclosing* production backtracks, so pathological grammars may
re-parse; the benchmarks quantify the trade.
"""

from __future__ import annotations

from repro.analysis.cost import reference_counts
from repro.peg.grammar import Grammar


def infer_transient(grammar: Grammar) -> Grammar:
    """Mark single-call-site productions transient (honoring ``memo``)."""
    counts = reference_counts(grammar)
    updated = []
    for production in grammar:
        if production.is_transient or production.has("memo"):
            continue
        if counts.get(production.name, 0) <= 1 and production.name != grammar.start:
            updated.append(
                production.with_attributes(production.attributes | {"transient"})
            )
    if not updated:
        return grammar
    return grammar.replace_productions(updated)


def strip_transient(grammar: Grammar) -> Grammar:
    """Remove all transient marks (memoize everything)."""
    updated = [
        production.with_attributes(production.attributes - {"transient"})
        for production in grammar
        if production.is_transient
    ]
    if not updated:
        return grammar
    return grammar.replace_productions(updated)
