"""Optimization options.

Mirrors the paper's individually toggleable optimizations (Rats! exposes
them as ``-Ono-…`` command-line flags).  :class:`Options` is consumed by the
optimization pipeline (grammar-rewriting flags) and by the code generator /
interpreter configuration (runtime flags ``chunks`` and ``errors``).

=============  ================================================================
``chunks``     memo table organized as per-position columns of chunk objects
               instead of one dict entry per ⟨production, position⟩
``grammar``    grammar folding: merge structurally identical productions and
               drop duplicate alternatives
``terminals``  first-character dispatch for choices over terminals, and
               first-set guards on production alternatives
``transient``  honor and infer ``transient`` (unmemoized) productions
``repeated``   compile repetitions to loops instead of the textbook
               recursive helper productions
``optional``   compile options inline instead of helper productions
``leftrec``    iterate transformed left recursion in place (helpers
               transient) instead of through memoized helper productions
``inline``     cost-based inlining of cheap productions
``errors``     constant-table farthest-failure tracking instead of building
               expected-message strings at every failure site
``prefixes``   fold common prefixes of adjacent alternatives
``fuse``       scanner fusion: compile value-free terminal regions to single
               ``re`` scans (atomic groups / possessive quantifiers; no-op
               before Python 3.11)
=============  ================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True, slots=True)
class Options:
    """Which optimizations are enabled.  Default: all on."""

    chunks: bool = True
    grammar: bool = True
    terminals: bool = True
    transient: bool = True
    repeated: bool = True
    optional: bool = True
    leftrec: bool = True
    inline: bool = True
    errors: bool = True
    prefixes: bool = True
    fuse: bool = True

    #: Cost threshold for inlining (see :mod:`repro.analysis.cost`).
    inline_threshold: int = 12

    @classmethod
    def all(cls) -> "Options":
        return cls()

    @classmethod
    def none(cls) -> "Options":
        values = {f.name: False for f in fields(cls) if f.type == "bool"}
        return cls(**values)

    @classmethod
    def flag_names(cls) -> list[str]:
        """The toggleable flags, in the canonical (ablation) order."""
        return [f.name for f in fields(cls) if f.type == "bool"]

    def with_flags(self, **flags: bool) -> "Options":
        return replace(self, **flags)

    def without(self, *names: str) -> "Options":
        return replace(self, **{name: False for name in names})

    def enabled(self) -> list[str]:
        return [name for name in self.flag_names() if getattr(self, name)]

    def cache_key(self) -> str:
        """A stable textual form of every field, for compilation-cache keys.

        Enumerates all dataclass fields (not just the boolean flags), so any
        future knob automatically invalidates cached artifacts.
        """
        return ";".join(f"{f.name}={getattr(self, f.name)!r}" for f in fields(self))

    @classmethod
    def single_off(cls) -> list[tuple[str, "Options"]]:
        """The ablation matrix for differential testing: every variant with
        exactly one optimization disabled (the paper's ``-Ono-<flag>``
        configurations), in canonical order.  Returns
        ``[("no-chunks", …), …, ("no-prefixes", …)]``."""
        return [(f"no-{name}", cls().without(name)) for name in cls.flag_names()]

    @classmethod
    def cumulative(cls) -> list[tuple[str, "Options"]]:
        """The ablation ladder for experiment E3: start from nothing and
        enable one optimization at a time, in canonical order.  Returns
        ``[("none", none), ("+chunks", …), …, ("+fuse", all)]``."""
        ladder: list[tuple[str, Options]] = [("none", cls.none())]
        current = cls.none()
        for name in cls.flag_names():
            current = current.with_flags(**{name: True})
            ladder.append((f"+{name}", current))
        return ladder
