"""The optimization pipeline: from composed grammar to codegen-ready grammar.

``prepare`` runs, in order:

1. well-formedness checking (rejects indirect left recursion, nullable
   repetition, dangling references …)
2. the direct left-recursion transformation — always, for correctness; the
   ``leftrec`` flag chooses iterated-in-place vs. memoized-helper form
3. the textbook desugarings of repetitions/options when ``repeated`` /
   ``optional`` are **off** (the optimized pipeline keeps them native)
4. grammar folding (``grammar``)
5. common-prefix folding (``prefixes``)
6. scanner fusion (``fuse``) — after prefix folding so folded literal runs
   fuse whole, before terminal specialization so dispatch sees fused leaves
7. terminal dispatch specialization (``terminals``)
8. cost-based inlining (``inline``)
9. transient handling: infer when ``transient`` is on, strip when off —
   fused regions are transient by construction (a single C-level scan,
   nothing worth memoizing) because they are leaves, not productions

The remaining two flags — ``chunks`` and ``errors`` — don't rewrite the
grammar; they configure the memo-table organization and failure tracking of
the parser backends, and are carried to them via the returned
:class:`PreparedGrammar`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.wellformed import Diagnostic, require_wellformed
from repro.optim.dedup import fold_grammar
from repro.optim.fuse import fuse_scanners
from repro.optim.inline import inline_cheap_productions
from repro.optim.options import Options
from repro.optim.prefixes import fold_prefixes
from repro.optim.terminals import specialize_terminals
from repro.optim.transient import infer_transient, strip_transient
from repro.peg.grammar import Grammar
from repro.transform.desugar import desugar
from repro.transform.leftrec import transform_left_recursion

#: Bump whenever the pipeline's semantics change (a pass is added, removed,
#: reordered, or its output format shifts).  The compilation cache folds this
#: into its keys, so stale prepared grammars are rebuilt, never trusted.
PIPELINE_VERSION = 2


@dataclass(frozen=True)
class PreparedGrammar:
    """An optimized grammar plus the runtime configuration flags."""

    grammar: Grammar
    options: Options
    warnings: tuple[Diagnostic, ...] = ()

    @property
    def chunked_memo(self) -> bool:
        return self.options.chunks

    @property
    def fast_errors(self) -> bool:
        return self.options.errors


def prepare(grammar: Grammar, options: Options | None = None, check: bool = True) -> PreparedGrammar:
    """Run the full pipeline under ``options`` (default: all optimizations)."""
    opts = options or Options.all()
    warnings: tuple[Diagnostic, ...] = ()
    if check:
        warnings = tuple(require_wellformed(grammar))
    grammar = transform_left_recursion(grammar, optimize=opts.leftrec)
    if not opts.repeated or not opts.optional:
        grammar = desugar(
            grammar, repetitions=not opts.repeated, options=not opts.optional
        )
    if opts.grammar:
        grammar = fold_grammar(grammar)
    if opts.prefixes:
        grammar = fold_prefixes(grammar)
    if opts.fuse:
        grammar = fuse_scanners(grammar)
    if opts.terminals:
        grammar = specialize_terminals(grammar)
    if opts.inline:
        grammar = inline_cheap_productions(grammar, threshold=opts.inline_threshold)
    grammar = infer_transient(grammar) if opts.transient else strip_transient(grammar)
    grammar.validate()
    return PreparedGrammar(grammar=grammar, options=opts, warnings=warnings)
