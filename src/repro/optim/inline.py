"""Cost-based inlining of cheap productions.

Calling a production costs a method call plus (for memoized productions) a
table access; for one-liner helpers — a semicolon, one character class, a
short keyword — that overhead dwarfs the matching work.  The pass replaces
references to cheap productions with their bodies.

Value preservation dictates which productions are candidates:

- ``void`` bodies are wrapped in ``Voided(...)`` — contributes nothing,
  exactly like a reference to a void production;
- ``text`` bodies are wrapped in ``Text(...)`` — value is the matched text,
  exactly the production's value;
- ``object`` productions qualify only with a single unlabeled alternative
  whose body has exactly one contributing element — splicing then adds the
  same single value the call contributed (``generic`` productions are never
  inlined: their value construction is tied to the production identity).

Further conditions: the body must be free of bindings and actions (they
would leak into the caller's namespace), the production must not be
(mutually) recursive, must not be ``noinline``, and must either be marked
``inline`` or cost at most ``threshold`` units.  Inlined-away productions
that are no longer referenced (and aren't public or the start) are pruned.
"""

from __future__ import annotations

from repro.analysis.cost import production_cost
from repro.analysis.reachability import reachable
from repro.peg.expr import (
    Action,
    Binding,
    Expression,
    Nonterminal,
    Text,
    Voided,
    choice,
    transform,
    walk,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Production, ValueKind
from repro.peg.values import contributes, kind_lookup


def _body_clean(production: Production) -> bool:
    for alternative in production.alternatives:
        for node in walk(alternative.expr):
            if isinstance(node, (Binding, Action)):
                return False
    return True


def _replacement(production: Production, kind_of) -> Expression | None:
    """The expression a call to ``production`` can be replaced with."""
    if production.kind is ValueKind.GENERIC:
        return None
    if not production.alternatives or not _body_clean(production):
        return None
    body = choice(*(alternative.expr for alternative in production.alternatives))
    if production.kind is ValueKind.VOID:
        return Voided(body)
    if production.kind is ValueKind.TEXT:
        return Text(body)
    # OBJECT: single unlabeled alternative with exactly one contribution.
    if len(production.alternatives) != 1 or production.alternatives[0].label is not None:
        return None
    expr = production.alternatives[0].expr
    from repro.peg.expr import Sequence

    items = expr.items if isinstance(expr, Sequence) else (expr,)
    contributing = [item for item in items if contributes(item, kind_of)]
    if len(contributing) != 1:
        return None
    return expr


def _recursive_names(grammar: Grammar) -> set[str]:
    names = set()
    for production in grammar:
        if production.name in reachable(grammar, roots=set(production.referenced_names())):
            names.add(production.name)
    return names


def inline_cheap_productions(grammar: Grammar, threshold: int = 12) -> Grammar:
    """Inline qualifying productions; prune the ones left unreferenced."""
    kind_of = kind_lookup(grammar)
    recursive = _recursive_names(grammar)
    replacements: dict[str, Expression] = {}
    for production in grammar:
        if production.has("noinline") or production.name in recursive:
            continue
        forced = production.has("inline")
        if not forced and production_cost(production) > threshold:
            continue
        replacement = _replacement(production, kind_of)
        if replacement is not None:
            replacements[production.name] = replacement

    if not replacements:
        return grammar

    # Resolve replacement chains: a body may itself reference an inlinee.
    def expand(expr: Expression, pending: frozenset[str]) -> Expression:
        def rewrite(node: Expression) -> Expression:
            if isinstance(node, Nonterminal):
                target = replacements.get(node.name)
                if target is not None and node.name not in pending:
                    return expand(target, pending | {node.name})
            return node

        return transform(expr, rewrite)

    updated = []
    for production in grammar:
        alternatives = tuple(
            alternative.with_expr(expand(alternative.expr, frozenset({production.name})))
            for alternative in production.alternatives
        )
        if alternatives != production.alternatives:
            production = production.with_alternatives(alternatives)
        updated.append(production)
    grammar = grammar.replace_productions(updated)

    # Prune inlinees that are now dead (not public, not the start,
    # no remaining references).
    still_referenced: set[str] = set()
    for production in grammar:
        still_referenced |= production.referenced_names()
    dead = {
        name
        for name in replacements
        if name not in still_referenced
        and name != grammar.start
        and not grammar[name].is_public
    }
    if dead:
        grammar = grammar.remove_productions(dead)
    return grammar
