"""Terminal optimization: first-character dispatch.

A choice whose alternatives all start with *known* characters — keywords,
operators, literal-led rules — can dispatch on the next input character
instead of trying each alternative in turn.  The pass rewrites such nested
:class:`Choice` expressions into :class:`CharSwitch` nodes.

A ``CharSwitch`` preserves observational behavior exactly: characters that
select several alternatives get a case containing those alternatives in the
original order; characters outside every first set fail immediately (there
is provably no alternative that could match).  Because the alternatives'
expressions are kept intact, semantic values are unchanged, so the rewrite
is safe in any context.

Choices with a nullable or unknown-first alternative are left alone (any
character could begin a match).  Dispatch is also skipped when the combined
character set is large (> ``max_chars``) or the choice is trivially small.
"""

from __future__ import annotations

from repro.analysis.first import FirstAnalysis
from repro.peg.expr import (
    CharClass,
    CharSwitch,
    Choice,
    Expression,
    Fail,
    Literal,
    choice,
    transform,
)
from repro.peg.grammar import Grammar

#: Don't build dispatch tables over huge character sets.
MAX_DISPATCH_CHARS = 128
#: Dispatch pays off only with at least this many alternatives.
MIN_ALTERNATIVES = 3


def build_char_switch(expr: Choice, first: FirstAnalysis) -> Expression | None:
    """Return an equivalent :class:`CharSwitch`, or None if not applicable."""
    if len(expr.alternatives) < MIN_ALTERNATIVES:
        return None
    first_sets: list[frozenset[str]] = []
    for alternative in expr.alternatives:
        fs = first.first(alternative)
        if not fs.known or not fs.chars:
            return None
        # Dispatch skips alternatives wholesale, so each must provably
        # record nothing beyond the current position when skipped (see
        # FirstAnalysis.dispatch_safe) or farthest-failure reports would
        # depend on the optimization flag.
        if not first.dispatch_safe(alternative):
            return None
        first_sets.append(fs.chars)
    all_chars = frozenset().union(*first_sets)
    if len(all_chars) > MAX_DISPATCH_CHARS:
        return None
    # Group characters by the ordered tuple of alternatives they can start.
    groups: dict[tuple[int, ...], set[str]] = {}
    for ch in all_chars:
        selected = tuple(i for i, chars in enumerate(first_sets) if ch in chars)
        groups.setdefault(selected, set()).add(ch)
    cases = []
    for selected, chars in sorted(groups.items(), key=lambda kv: min(kv[1])):
        branch = choice(*(expr.alternatives[i] for i in selected))
        cases.append((frozenset(chars), branch))
    shown = "".join(sorted(all_chars))
    if len(shown) > 16:
        shown = shown[:16] + "…"
    return CharSwitch(tuple(cases), Fail(f"one of {shown!r}"))


def _single_chars(expr: Expression) -> frozenset[str] | None:
    """The character set of a one-character terminal, else None."""
    if isinstance(expr, Literal) and len(expr.text) == 1:
        ch = expr.text
        return frozenset({ch.lower(), ch.upper()}) if expr.ignore_case else frozenset(ch)
    if isinstance(expr, CharClass) and not expr.negated:
        return expr.first_chars()
    return None


def merge_single_char_alternatives(expr: Choice) -> Expression:
    """Merge runs of adjacent one-character alternatives into one class.

    ``"+" / "-" / [0-9]`` becomes ``[+\\-0-9]``.  Sound because every merged
    alternative consumes exactly one character and yields that character as
    its value, so ordered choice over them is order-independent.
    """
    merged: list[Expression] = []
    run: set[str] = set()

    def flush() -> None:
        if not run:
            return
        ranges = tuple((ch, ch) for ch in sorted(run))
        merged.append(CharClass(ranges))
        run.clear()

    for alternative in expr.alternatives:
        chars = _single_chars(alternative)
        if chars is not None:
            run.update(chars)
        else:
            flush()
            merged.append(alternative)
    flush()
    return choice(*merged)


def specialize_terminals(grammar: Grammar) -> Grammar:
    """Merge single-character alternatives, then rewrite eligible nested
    choices into character switches."""
    first = FirstAnalysis(grammar)

    def rewrite(expr: Expression) -> Expression:
        if isinstance(expr, Choice):
            expr = merge_single_char_alternatives(expr)
        if isinstance(expr, Choice):
            switched = build_char_switch(expr, first)
            if switched is not None:
                return switched
        return expr

    updated = []
    for production in grammar:
        alternatives = tuple(
            alternative.with_expr(transform(alternative.expr, rewrite))
            for alternative in production.alternatives
        )
        if alternatives != production.alternatives:
            updated.append(production.with_alternatives(alternatives))
    if not updated:
        return grammar
    return grammar.replace_productions(updated)
