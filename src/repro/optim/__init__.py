"""Optimization passes and the prepare pipeline."""

from repro.optim.dedup import fold_duplicate_alternatives, fold_duplicate_productions, fold_grammar
from repro.optim.inline import inline_cheap_productions
from repro.optim.options import Options
from repro.optim.pipeline import PreparedGrammar, prepare
from repro.optim.prefixes import fold_prefixes
from repro.optim.terminals import specialize_terminals
from repro.optim.transient import infer_transient, strip_transient

__all__ = [
    "fold_duplicate_alternatives", "fold_duplicate_productions", "fold_grammar",
    "inline_cheap_productions", "Options", "PreparedGrammar", "prepare",
    "fold_prefixes", "specialize_terminals", "infer_transient", "strip_transient",
]
