"""Common-prefix folding.

``"interface" / "int" / "if"`` makes a backtracking parser re-scan the same
characters once per alternative.  Folding shared prefixes turns the choice
into a trie-shaped expression — ``"i" ("nt" ("erface" / ()) / "f")`` — that
scans each character once.  This matters most for keyword and operator
recognition, exactly where the paper applies it.

Soundness: in a PEG, ``A x / A y ≡ A (x / y)`` because a production applied
at one position always yields the same result (choices are deterministic),
so factoring never changes the language.  Values are a different matter:
splicing items under a nested choice changes how contributions reach a
generic node, so folding is restricted to *value-free* regions — every
affected alternative must contribute nothing and contain no bindings or
actions.  Literal-heavy terminal rules qualify; expression grammars don't,
and are left untouched.

The pass rewrites (1) every nested choice expression and (2) the top-level
alternative lists of ``void`` and ``text`` productions with unlabeled
alternatives (where values cannot be observed anyway).
"""

from __future__ import annotations

from repro.peg.expr import (
    Action,
    Binding,
    Choice,
    Expression,
    Literal,
    Sequence,
    choice,
    seq,
    transform,
    walk,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Alternative, Production, ValueKind
from repro.peg.values import contributes, kind_lookup


def _value_free(expr: Expression, kind_of) -> bool:
    if contributes(expr, kind_of):
        return False
    return not any(isinstance(node, (Binding, Action)) for node in walk(expr))


def _items(expr: Expression) -> tuple[Expression, ...]:
    if isinstance(expr, Sequence):
        return expr.items
    return (expr,)


def _common_prefix_len(a: tuple[Expression, ...], b: tuple[Expression, ...]) -> int:
    n = 0
    for x, y in zip(a, b):
        if x != y:
            # Literal prefixes can still share leading characters.
            break
        n += 1
    return n


def _split_literal_prefix(a: Expression, b: Expression) -> tuple[str, str, str] | None:
    """If both are literals sharing a leading string, return
    (shared, rest_a, rest_b)."""
    if not (isinstance(a, Literal) and isinstance(b, Literal)):
        return None
    if a.ignore_case != b.ignore_case:
        return None
    shared = 0
    for ca, cb in zip(a.text, b.text):
        if ca != cb:
            break
        shared += 1
    if shared == 0:
        return None
    return a.text[:shared], a.text[shared:], b.text[shared:]


def fold_choice(expr: Choice, kind_of) -> Expression:
    """Fold shared prefixes of adjacent, value-free alternatives."""
    alternatives = list(expr.alternatives)
    changed = True
    while changed:
        changed = False
        for i in range(len(alternatives) - 1):
            merged = _try_merge(alternatives[i], alternatives[i + 1], kind_of)
            if merged is not None:
                alternatives[i : i + 2] = [merged]
                changed = True
                break
    return choice(*alternatives)


def _try_merge(a: Expression, b: Expression, kind_of) -> Expression | None:
    if not (_value_free(a, kind_of) and _value_free(b, kind_of)):
        return None
    items_a, items_b = _items(a), _items(b)
    shared = _common_prefix_len(items_a, items_b)
    if shared:
        rest_a = seq(*items_a[shared:])
        rest_b = seq(*items_b[shared:])
        return seq(*items_a[:shared], fold_or_pair(rest_a, rest_b, kind_of))
    literal_split = _split_literal_prefix(items_a[0], items_b[0]) if items_a and items_b else None
    if literal_split:
        head, rest_a_text, rest_b_text = literal_split
        ignore_case = items_a[0].ignore_case  # type: ignore[union-attr]
        rest_a = seq(*(_maybe_literal(rest_a_text, ignore_case) + list(items_a[1:])))
        rest_b = seq(*(_maybe_literal(rest_b_text, ignore_case) + list(items_b[1:])))
        return seq(Literal(head, ignore_case), fold_or_pair(rest_a, rest_b, kind_of))
    return None


def _maybe_literal(text: str, ignore_case: bool) -> list[Expression]:
    if not text:
        return []
    return [Literal(text, ignore_case)]


def fold_or_pair(a: Expression, b: Expression, kind_of) -> Expression:
    """Build ``a / b``, folding recursively when both are still foldable."""
    combined = choice(a, b)
    if isinstance(combined, Choice):
        return fold_choice(combined, kind_of)
    return combined


def fold_prefixes(grammar: Grammar) -> Grammar:
    """Apply prefix folding across the grammar."""
    kind_of = kind_lookup(grammar)

    def rewrite(expr: Expression) -> Expression:
        if isinstance(expr, Choice):
            return fold_choice(expr, kind_of)
        return expr

    updated: list[Production] = []
    for production in grammar:
        alternatives = tuple(
            alternative.with_expr(transform(alternative.expr, rewrite))
            for alternative in production.alternatives
        )
        production = production.with_alternatives(alternatives)
        # Top-level folding for value-kinds where values are unobservable.
        if (
            production.kind in (ValueKind.VOID, ValueKind.TEXT)
            and len(production.alternatives) > 1
            and all(a.label is None for a in production.alternatives)
        ):
            folded = fold_choice(
                Choice(tuple(a.expr for a in production.alternatives)), kind_of
            )
            new_exprs = folded.alternatives if isinstance(folded, Choice) else (folded,)
            if len(new_exprs) != len(production.alternatives):
                production = production.with_alternatives(
                    tuple(Alternative(e) for e in new_exprs)
                )
        updated.append(production)
    return grammar.replace_productions(updated)
