"""Grammar folding: merge duplicate productions and alternatives.

Composed grammars accumulate structurally identical productions (several
modules defining the same space/terminator helpers, desugaring producing
identical repetition helpers).  Matching a duplicate wastes both time and —
worse for packrat parsing — memo-table space, since each copy is memoized
separately.

Two productions fold when they have the same value kind, the same
alternatives, and merging cannot change semantic values:  ``generic``
productions are folded only when every alternative is labeled (an unlabeled
alternative's node is named after the production itself).  The start
production and ``public`` productions are kept as fold representatives but
never removed.

Within one production, an alternative that exactly repeats an earlier one
(same label, same expression) can never match when the earlier one failed —
PEG choices are deterministic — so it is dropped.
"""

from __future__ import annotations

from repro.peg.expr import Nonterminal, transform
from repro.peg.grammar import Grammar
from repro.peg.production import Production, ValueKind


def _fold_key(production: Production):
    return (
        production.kind,
        tuple((a.label, a.expr) for a in production.alternatives),
        production.attributes - {"public"},
    )


def _foldable(production: Production) -> bool:
    if production.kind is ValueKind.GENERIC:
        return all(a.label is not None for a in production.alternatives)
    return True


def fold_duplicate_productions(grammar: Grammar) -> Grammar:
    """Merge structurally identical productions; rewrite references."""
    representatives: dict[object, str] = {}
    renames: dict[str, str] = {}
    pinned = {grammar.start} | {p.name for p in grammar if p.is_public}

    for production in grammar:
        if not _foldable(production):
            continue
        key = _fold_key(production)
        existing = representatives.get(key)
        if existing is None:
            representatives[key] = production.name
        elif production.name not in pinned:
            renames[production.name] = existing
        elif existing not in pinned:
            # Prefer the pinned production as representative; re-point the
            # earlier (unpinned) one at it instead.
            renames[existing] = production.name
            representatives[key] = production.name

    if not renames:
        return grammar

    # Resolve chains (a -> b -> c).
    def resolve(name: str) -> str:
        seen = set()
        while name in renames and name not in seen:
            seen.add(name)
            name = renames[name]
        return name

    final = {old: resolve(old) for old in renames}

    def rewrite(expr):
        if isinstance(expr, Nonterminal) and expr.name in final:
            return Nonterminal(final[expr.name])
        return expr

    updated = []
    for production in grammar:
        if production.name in final:
            continue
        updated.append(
            production.with_alternatives(
                tuple(
                    alternative.with_expr(transform(alternative.expr, rewrite))
                    for alternative in production.alternatives
                )
            )
        )
    kept = grammar.remove_productions(final.keys())
    return kept.replace_productions(
        p for p in updated if p.name in {q.name for q in kept}
    )


def fold_duplicate_alternatives(grammar: Grammar) -> Grammar:
    """Drop exact-duplicate alternatives within each production."""
    changed = []
    for production in grammar:
        seen: set = set()
        kept = []
        for alternative in production.alternatives:
            key = (alternative.label, alternative.expr)
            if key in seen:
                continue
            seen.add(key)
            kept.append(alternative)
        if len(kept) != len(production.alternatives):
            changed.append(production.with_alternatives(tuple(kept)))
    if not changed:
        return grammar
    return grammar.replace_productions(changed)


def fold_grammar(grammar: Grammar) -> Grammar:
    """Run both foldings to a fixpoint (folding can expose more folding)."""
    while True:
        folded = fold_duplicate_alternatives(fold_duplicate_productions(grammar))
        if folded.names() == grammar.names() and all(
            folded[n] == grammar[n] for n in folded.names()
        ):
            return folded
        grammar = folded
