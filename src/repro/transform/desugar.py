"""Textbook desugarings of repetitions and options into helper productions.

A pure packrat parser (Ford's formulation) has no loops: ``e*``, ``e+`` and
``e?`` are encoded as memoized recursive helper productions.  The paper's
*repeated* and *optional* optimizations keep these constructs native —
compiled to loops and inline conditionals with no helper productions and no
memoization.

This module implements the **baseline** encoding, used when those
optimizations are turned off (experiment E3): every repetition/option in
the grammar is replaced by a reference to a generated helper production::

    e*   →  Rep__N      Rep__N = h:e t:Rep__N { cons(h, t) }  /  { [] }
    e+   →  Plus__N     Plus__N = h:e t:Rep__N { cons(h, t) }
    e?   →  Opt__N      Opt__N = e  /  { null }

Value semantics are preserved exactly: when the repeated expression
contributes no value, the helpers are ``void`` productions without actions,
so they contribute nothing either.

Limitation (documented): a binding made *inside* a repetition is scoped to
the helper after desugaring, so grammars must not reference such bindings
from actions outside the repetition.  The shipped grammars and the property
tests respect this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.peg.expr import (
    Action,
    Binding,
    Epsilon,
    Expression,
    Nonterminal,
    Option,
    Repetition,
    seq,
    transform,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Alternative, Production, ValueKind
from repro.peg.values import contributes, kind_lookup

_HEAD = "head__"
_TAIL = "tail__"


@dataclass
class _Desugarer:
    grammar: Grammar
    desugar_repetitions: bool
    desugar_options: bool
    new_productions: list[Production] = field(default_factory=list)
    cache: dict[tuple, str] = field(default_factory=dict)
    counter: int = 0

    def __post_init__(self) -> None:
        self.kind_of = kind_lookup(self.grammar)
        self.names = set(self.grammar.names())

    def fresh_name(self, prefix: str) -> str:
        while True:
            self.counter += 1
            name = f"{prefix}__{self.counter}"
            if name not in self.names:
                self.names.add(name)
                return name

    def run(self) -> Grammar:
        rewritten = [
            production.with_alternatives(
                tuple(
                    alternative.with_expr(transform(alternative.expr, self._rewrite))
                    for alternative in production.alternatives
                )
            )
            for production in self.grammar.productions
        ]
        grammar = self.grammar.replace_productions(rewritten)
        for helper in self.new_productions:
            grammar = grammar.add_production(helper)
        return grammar

    # -- node rewriting (bottom-up via transform) ---------------------------------

    def _rewrite(self, expr: Expression) -> Expression:
        if isinstance(expr, Repetition) and self.desugar_repetitions:
            return Nonterminal(self._repetition_helper(expr))
        if isinstance(expr, Option) and self.desugar_options:
            return Nonterminal(self._option_helper(expr))
        return expr

    def _repetition_helper(self, expr: Repetition) -> str:
        contributing = contributes(expr.expr, self.kind_of)
        key = ("rep", expr.expr, expr.min, contributing)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        star_name = self._star_helper(expr.expr, contributing)
        if expr.min == 0:
            self.cache[key] = star_name
            return star_name
        plus_name = self.fresh_name("Plus")
        if contributing:
            body = Alternative(
                seq(
                    Binding(_HEAD, expr.expr),
                    Binding(_TAIL, Nonterminal(star_name)),
                    Action(f"cons({_HEAD}, {_TAIL})"),
                )
            )
            kind = ValueKind.OBJECT
        else:
            body = Alternative(seq(expr.expr, Nonterminal(star_name)))
            kind = ValueKind.VOID
        self.new_productions.append(
            Production(name=plus_name, kind=kind, alternatives=(body,))
        )
        self.cache[key] = plus_name
        return plus_name

    def _star_helper(self, item: Expression, contributing: bool) -> str:
        key = ("star", item, contributing)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        name = self.fresh_name("Rep")
        self.cache[key] = name
        if contributing:
            alternatives = (
                Alternative(
                    seq(
                        Binding(_HEAD, item),
                        Binding(_TAIL, Nonterminal(name)),
                        Action(f"cons({_HEAD}, {_TAIL})"),
                    )
                ),
                Alternative(Action("[]")),
            )
            kind = ValueKind.OBJECT
        else:
            alternatives = (
                Alternative(seq(item, Nonterminal(name))),
                Alternative(Epsilon()),
            )
            kind = ValueKind.VOID
        self.new_productions.append(
            Production(name=name, kind=kind, alternatives=alternatives)
        )
        return name

    def _option_helper(self, expr: Option) -> str:
        contributing = contributes(expr.expr, self.kind_of)
        key = ("opt", expr.expr, contributing)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        name = self.fresh_name("Opt")
        self.cache[key] = name
        if contributing:
            alternatives = (
                Alternative(expr.expr),
                Alternative(Action("null")),
            )
            kind = ValueKind.OBJECT
        else:
            alternatives = (
                Alternative(expr.expr),
                Alternative(Epsilon()),
            )
            kind = ValueKind.VOID
        self.new_productions.append(
            Production(name=name, kind=kind, alternatives=alternatives)
        )
        return name


def desugar(grammar: Grammar, repetitions: bool = True, options: bool = True) -> Grammar:
    """Replace native repetitions and/or options with helper productions."""
    if not repetitions and not options:
        return grammar
    return _Desugarer(grammar, repetitions, options).run()
