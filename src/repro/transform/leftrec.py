"""Direct left-recursion transformation.

PEG parsers loop forever on left-recursive productions, yet left recursion
is the natural way to write left-associative operators.  Following the
paper, *directly* left-recursive **generic** productions are mechanically
rewritten into iteration with a semantic-value fix-up that still produces
the left-leaning tree the grammar writer specified.

``Expr = <Sub> Expr "-" Term / <Base> Term`` becomes::

    Expr       =  seed__:Expr__Base tail__:Expr__Tail*
                  { __fold_left__(seed__, tail__) }       (object kind)
    Expr__Base =  <Base> Term                              (generic)
    Expr__Tail =  <Sub> "-" Term                           (generic)

``__fold_left__`` (see :func:`repro.runtime.node.fold_left`) folds each
suffix node over the accumulated value: ``a - b - c`` parses to
``(Sub (Sub a b) c)``.

The original order among recursive alternatives and among base alternatives
is preserved; what is necessarily lost is interleaving between the two
groups (recursive alternatives are all tried at each iteration step).

The rewrite itself is a *correctness* requirement and always runs; the
``leftrec`` optimization flag only controls whether the two helper
productions are marked ``transient inline`` (iterated in place without
memoization) or left as plain memoized productions — the textbook encoding
used as the ablation baseline in experiment E3.
"""

from __future__ import annotations

from repro.analysis.leftrec import directly_left_recursive
from repro.errors import AnalysisError
from repro.peg.expr import Action, Binding, Nonterminal, Repetition, Sequence, seq
from repro.peg.grammar import Grammar
from repro.peg.production import Alternative, Production, ValueKind
from repro.peg.values import node_name

#: Binding names used by the generated fold action (double underscores keep
#: them out of the way of user bindings, which are plain identifiers).
_SEED = "seed__"
_TAIL = "tail__"
_FOLD_ACTION = f"__fold_left__({_SEED}, {_TAIL})"


def transform_left_recursion(grammar: Grammar, optimize: bool = True) -> Grammar:
    """Rewrite all directly left-recursive generic productions.

    ``optimize`` marks the generated helpers ``transient`` (+ base also
    ``inline``), reflecting the paper's optimized treatment; pass ``False``
    for the memoized-helper baseline.
    """
    recursive = directly_left_recursive(grammar)
    if not recursive:
        return grammar
    result = grammar
    for name in grammar.names():
        if name in recursive:
            result = _transform_production(result, name, optimize)
    return result


def _is_direct_head(alternative: Alternative, name: str) -> bool:
    """Is the alternative's first element exactly a self-reference?"""
    expr = alternative.expr
    head = expr.items[0] if isinstance(expr, Sequence) else expr
    if isinstance(head, Binding) and isinstance(head.expr, Nonterminal) and head.expr.name == name:
        raise AnalysisError(
            f"production {name!r}: cannot bind the left-recursive occurrence "
            f"({head.name}:{name}); the transformation provides the value implicitly"
        )
    return isinstance(head, Nonterminal) and head.name == name


def _transform_production(grammar: Grammar, name: str, optimize: bool) -> Grammar:
    production = grammar[name]
    if production.kind is not ValueKind.GENERIC:
        raise AnalysisError(
            f"production {name!r} is left recursive but not generic; "
            "only generic productions can be transformed"
        )

    recursive_alts: list[Alternative] = []
    base_alts: list[Alternative] = []
    for alternative in production.alternatives:
        if _is_direct_head(alternative, name):
            if not isinstance(alternative.expr, Sequence):
                raise AnalysisError(f"production {name!r}: a bare self-reference alternative is useless")
            recursive_alts.append(alternative)
        else:
            if name in _left_names(alternative, grammar, name):
                raise AnalysisError(
                    f"production {name!r}: left recursion hidden behind a nullable prefix "
                    "is not supported; make the self-reference the first element"
                )
            base_alts.append(alternative)
    if not base_alts:
        raise AnalysisError(f"production {name!r}: left recursion without a base alternative")

    base_name = f"{name}__Base"
    tail_name = f"{name}__Tail"
    for helper in (base_name, tail_name):
        if helper in grammar:
            raise AnalysisError(f"cannot transform {name!r}: helper name {helper!r} already taken")

    helper_attrs = frozenset({"transient"}) if optimize else frozenset()
    inherited = production.attributes & {"withLocation"}

    # Unlabeled base alternatives that are NOT single-contribution
    # pass-throughs would build nodes named after the helper; relabel them
    # with the original production's name so values are unchanged.
    from repro.peg.values import contributes, kind_lookup
    from repro.peg.expr import Sequence as _Sequence

    kind_of = kind_lookup(grammar)
    relabeled_base: list[Alternative] = []
    for alternative in base_alts:
        if alternative.label is None:
            items = (
                alternative.expr.items
                if isinstance(alternative.expr, _Sequence)
                else (alternative.expr,)
            )
            contributing = sum(1 for item in items if contributes(item, kind_of))
            if contributing != 1:
                alternative = Alternative(
                    alternative.expr, node_name(name, None), alternative.location
                )
        relabeled_base.append(alternative)

    base = Production(
        name=base_name,
        kind=ValueKind.GENERIC,
        alternatives=tuple(relabeled_base),
        attributes=helper_attrs | inherited,
        location=production.location,
    )
    tail = Production(
        name=tail_name,
        kind=ValueKind.GENERIC,
        alternatives=tuple(
            Alternative(
                seq(*alt.expr.items[1:]),
                alt.label or node_name(name, None),
                alt.location,
            )
            for alt in recursive_alts
        ),
        attributes=helper_attrs | inherited,
        location=production.location,
    )
    driver = Production(
        name=name,
        kind=ValueKind.OBJECT,
        alternatives=(
            Alternative(
                seq(
                    Binding(_SEED, Nonterminal(base_name)),
                    Binding(_TAIL, Repetition(Nonterminal(tail_name), 0)),
                    Action(_FOLD_ACTION),
                ),
                None,
                production.location,
            ),
        ),
        attributes=production.attributes - {"withLocation"},
        location=production.location,
    )
    return (
        grammar.replace_production(driver)
        .add_production(base)
        .add_production(tail)
    )


def _left_names(alternative: Alternative, grammar: Grammar, name: str) -> set[str]:
    from repro.analysis.leftrec import left_calls
    from repro.analysis.nullability import nullable_productions

    return left_calls(alternative.expr, nullable_productions(grammar))
