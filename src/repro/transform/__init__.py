"""Semantics-preserving grammar transformations."""

from repro.transform.desugar import desugar
from repro.transform.leftrec import transform_left_recursion

__all__ = ["desugar", "transform_left_recursion"]
