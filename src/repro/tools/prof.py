"""``repro-prof`` — parse-time profiling and grammar-coverage reporting.

Usage::

    repro-prof calc                       # 50 generated sentences, all backends
    repro-prof examples/jay --json        # corpus directory (basename = grammar)
    repro-prof jay prog1.jay prog2.jay    # explicit input files
    repro-prof calc --text '1+2*3' --backend interp --top 10
    repro-prof json --generate 200 --seed 7 --min-coverage 0.9

The target is a grammar key (``calc``, ``json``, ``jay``, …), a qualified
root module (``jay.Jay``), or a **corpus directory** whose basename is the
grammar key and whose files are the inputs (e.g. ``examples/jay``).  When
no inputs are given, a seeded corpus is derived from the grammar with the
differential-fuzz sentence generator, so every run is reproducible.

Each selected backend (default: all three — interpreter, closure compiler,
generated parser) parses the whole corpus under instrumentation and prints
a hotspot table: per-production invocations, memo hit rates, backtracks,
wasted characters, farthest-failure contributions, and the per-alternative
coverage summary with an uncovered-alternative listing.  ``--json`` emits
the same reports as one machine-readable document (see
``docs/profiling.md`` for the schema).

Exit status: 0 on success; 1 on errors; 2 when ``--min-coverage`` is given
and any backend's succeeded-alternative coverage falls below it.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

from repro.difftest.generator import SentenceGenerator
from repro.errors import ReproError
from repro.meta import ModuleLoader
from repro.modules import compose
from repro.optim import Options
from repro.profile import (
    BACKENDS,
    EDIT_BACKENDS,
    format_report,
    profile_corpus,
    profile_edits,
    resolve_root,
)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-prof",
        description="Profile a parse corpus: hotspots, memo telemetry, grammar coverage.",
    )
    parser.add_argument(
        "target",
        help="grammar key (calc, json, jay, xc, ml, sql), qualified root "
        "(jay.Jay), or a corpus directory named after the grammar (examples/jay)",
    )
    parser.add_argument(
        "inputs", nargs="*", metavar="FILE",
        help="input files to parse (default: corpus directory files, else "
        "--generate sentences)",
    )
    parser.add_argument(
        "--text", action="append", default=[], metavar="TEXT",
        help="inline input text (repeatable)",
    )
    parser.add_argument(
        "--generate", type=int, default=None, metavar="N",
        help="derive N sentences from the grammar (default 50 when no other inputs)",
    )
    parser.add_argument("--seed", type=int, default=0, help="sentence-generator seed (default 0)")
    parser.add_argument(
        "--max-depth", type=int, default=24,
        help="derivation depth budget for generated sentences",
    )
    parser.add_argument(
        "--backend", choices=(*BACKENDS, "vm", "all"), default="all",
        help="which backend to instrument (default: all; with --edits the "
        "incremental backends 'vm' and 'closures')",
    )
    parser.add_argument(
        "--edits", type=int, default=None, metavar="N",
        help="profile incremental reparsing instead: apply N seeded random "
        "edits per input through an incremental session and report memo "
        "entries reused vs invalidated vs shifted (see docs/incremental.md)",
    )
    parser.add_argument(
        "--edit-seed", type=int, default=0,
        help="edit-script seed for --edits (default 0)",
    )
    parser.add_argument(
        "--path", action="append", dest="paths", metavar="DIR",
        help="additional directory to search for .mg modules (repeatable)",
    )
    parser.add_argument("--start", help="override the start production")
    parser.add_argument(
        "-O", "--optimized", action="store_true",
        help="profile the fully optimized pipeline instead of the leftrec-only "
        "grammar (hotspots shift to fused scans and optimized loops; coverage "
        "then reports optimized alternatives, not source alternatives)",
    )
    parser.add_argument("--top", type=int, default=20, help="hotspot table rows (default 20)")
    parser.add_argument("--json", action="store_true", dest="as_json", help="emit JSON")
    parser.add_argument(
        "--output", metavar="FILE", help="write the report there instead of stdout"
    )
    parser.add_argument(
        "--min-coverage", type=float, default=None, metavar="RATIO",
        help="exit 2 when succeeded-alternative coverage is below RATIO (e.g. 0.9)",
    )
    return parser


def _resolve_target(target: str) -> tuple[str, list[Path]]:
    """``(root, corpus files)`` for a grammar key or corpus directory."""
    path = Path(target)
    if path.is_dir():
        files = sorted(p for p in path.iterdir() if p.is_file())
        return resolve_root(path.name), files
    return resolve_root(target), []


def _load_corpus(args: argparse.Namespace, grammar) -> list[str]:
    texts: list[str] = []
    root, dir_files = _resolve_target(args.target)
    for name in args.inputs:
        texts.append(Path(name).read_text())
    if not args.inputs:
        for path in dir_files:
            texts.append(path.read_text())
    texts.extend(args.text)
    generate = args.generate
    if generate is None and not texts:
        generate = 50
    if generate:
        rng = random.Random(args.seed)
        generator = SentenceGenerator(grammar, rng, max_depth=args.max_depth)
        for _ in range(generate):
            texts.append(generator.generate())
    return texts


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    root, _ = _resolve_target(args.target)
    try:
        loader = ModuleLoader(paths=args.paths)
        grammar = compose(root, loader, start=args.start)
        texts = _load_corpus(args, grammar)
        options = Options.all() if args.optimized else None
        if args.edits is not None:
            if args.backend == "all":
                backends = list(EDIT_BACKENDS)
            elif args.backend in EDIT_BACKENDS:
                backends = [args.backend]
            else:
                print(
                    f"error: --edits drives the incremental backends "
                    f"{EDIT_BACKENDS}; got --backend {args.backend}",
                    file=sys.stderr,
                )
                return 1
            reports = [
                profile_edits(
                    grammar, texts, backend, edits=args.edits,
                    seed=args.edit_seed, grammar_name=root, options=options,
                )
                for backend in backends
            ]
        else:
            if args.backend == "vm":
                print(
                    "error: the 'vm' backend is incremental-only here; pass --edits N",
                    file=sys.stderr,
                )
                return 1
            backends = list(BACKENDS) if args.backend == "all" else [args.backend]
            reports = [
                profile_corpus(grammar, texts, backend, grammar_name=root, options=options)
                for backend in backends
            ]
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {root}: {exc}", file=sys.stderr)
        return 1

    if args.as_json:
        document = json.dumps({"reports": [r.to_json() for r in reports]}, indent=2)
    else:
        document = "\n\n".join(format_report(r, top=args.top) for r in reports)
    if args.output:
        Path(args.output).write_text(document + "\n")
        print(f"wrote {args.output}")
    else:
        print(document)

    if args.min_coverage is not None:
        low = [r for r in reports if r.coverage_ratio() < args.min_coverage]
        for report in low:
            print(
                f"coverage below threshold: {report.backend} "
                f"{report.coverage_ratio():.1%} < {args.min_coverage:.1%}",
                file=sys.stderr,
            )
        if low:
            return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
