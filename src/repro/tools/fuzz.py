"""``repro-fuzz`` — differential fuzzing across parser backends.

The implementation lives in :mod:`repro.difftest.cli`; this module is the
``repro.tools`` entry point (mirroring ``repro-pgen`` and friends) so the
console script and ``python -m repro.tools.fuzz`` both work.
"""

from repro.difftest.cli import build_arg_parser, main

__all__ = ["build_arg_parser", "main"]

if __name__ == "__main__":
    raise SystemExit(main())
