"""``repro-pgen`` — generate a Python packrat parser from grammar modules.

Usage::

    repro-pgen jay.Jay -o jay_parser.py
    repro-pgen my.Lang --path grammars/ --start Program -Ono-chunks -Ono-inline
    repro-pgen calc.Calculator --print-grammar   # show the composed grammar

The ``-Ono-<flag>`` options mirror the paper's per-optimization switches
(see ``repro.optim.Options``).
"""

from __future__ import annotations

import argparse
import sys

from repro.api import compile_grammar, load_grammar
from repro.cache import CompilationCache
from repro.errors import ReproError
from repro.optim import Options
from repro.peg.pretty import format_grammar


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pgen",
        description="Generate a packrat parser from modular PEG grammar files.",
    )
    parser.add_argument("root", help="qualified name of the root grammar module (e.g. jay.Jay)")
    parser.add_argument("-o", "--output", help="output file (default: stdout)")
    parser.add_argument(
        "--path",
        action="append",
        default=[],
        metavar="DIR",
        help="directory to search for .mg files (repeatable; built-in grammars are always available)",
    )
    parser.add_argument("--start", help="override the start production")
    parser.add_argument("--parser-name", default="Parser", help="generated class name")
    parser.add_argument(
        "--print-grammar",
        action="store_true",
        help="print the composed (pre-optimization) grammar instead of generating",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent compilation cache directory (see docs/caching.md)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="bypass the compilation caches entirely"
    )
    for flag in Options.flag_names():
        parser.add_argument(
            f"-Ono-{flag}",
            dest=f"no_{flag}",
            action="store_true",
            help=f"disable the {flag} optimization",
        )
    return parser


def options_from_args(args: argparse.Namespace) -> Options:
    disabled = [flag for flag in Options.flag_names() if getattr(args, f"no_{flag}")]
    return Options.all().without(*disabled)


def cache_from_args(args: argparse.Namespace) -> CompilationCache | bool | None:
    """Map ``--no-cache`` / ``--cache-dir`` onto compile_grammar's cache arg."""
    if getattr(args, "no_cache", False):
        return False
    if getattr(args, "cache_dir", None):
        return CompilationCache(args.cache_dir)
    return None


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        if args.print_grammar:
            grammar = load_grammar(args.root, paths=args.path or None, start=args.start)
            output = format_grammar(grammar)
        else:
            cache = cache_from_args(args)
            language = compile_grammar(
                args.root,
                options=options_from_args(args),
                paths=args.path or None,
                start=args.start,
                parser_name=args.parser_name,
                cache=cache,
            )
            for warning in language.prepared.warnings:
                print(f"warning: {warning}", file=sys.stderr)
            if isinstance(cache, CompilationCache):
                for warning in cache.warnings:
                    print(f"warning: {warning}", file=sys.stderr)
            output = language.parser_source
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
