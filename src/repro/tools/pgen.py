"""``repro-pgen`` — generate a Python packrat parser from grammar modules.

Usage::

    repro-pgen jay.Jay -o jay_parser.py
    repro-pgen my.Lang --path grammars/ --start Program -Ono-chunks -Ono-inline
    repro-pgen calc.Calculator --print-grammar   # show the composed grammar

The ``-Ono-<flag>`` options mirror the paper's per-optimization switches
(see ``repro.optim.Options``).
"""

from __future__ import annotations

import argparse
import sys

from repro.api import load_grammar
from repro.codegen import generate_parser_source
from repro.errors import ReproError
from repro.optim import Options, prepare
from repro.peg.pretty import format_grammar


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pgen",
        description="Generate a packrat parser from modular PEG grammar files.",
    )
    parser.add_argument("root", help="qualified name of the root grammar module (e.g. jay.Jay)")
    parser.add_argument("-o", "--output", help="output file (default: stdout)")
    parser.add_argument(
        "--path",
        action="append",
        default=[],
        metavar="DIR",
        help="directory to search for .mg files (repeatable; built-in grammars are always available)",
    )
    parser.add_argument("--start", help="override the start production")
    parser.add_argument("--parser-name", default="Parser", help="generated class name")
    parser.add_argument(
        "--print-grammar",
        action="store_true",
        help="print the composed (pre-optimization) grammar instead of generating",
    )
    for flag in Options.flag_names():
        parser.add_argument(
            f"-Ono-{flag}",
            dest=f"no_{flag}",
            action="store_true",
            help=f"disable the {flag} optimization",
        )
    return parser


def options_from_args(args: argparse.Namespace) -> Options:
    disabled = [flag for flag in Options.flag_names() if getattr(args, f"no_{flag}")]
    return Options.all().without(*disabled)


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        grammar = load_grammar(args.root, paths=args.path or None, start=args.start)
        if args.print_grammar:
            output = format_grammar(grammar)
        else:
            prepared = prepare(grammar, options_from_args(args))
            for warning in prepared.warnings:
                print(f"warning: {warning}", file=sys.stderr)
            output = generate_parser_source(prepared, args.parser_name)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
