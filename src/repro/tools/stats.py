"""``repro-stats`` — modularity statistics for a grammar (experiment E1).

Usage::

    repro-stats jay.Jay
    repro-stats my.Lang --path grammars/
    repro-stats jay.Jay --disasm              # parsing-machine bytecode listing
    repro-stats jay.Jay --disasm Expression   # one production only
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.stats import grammar_stats, module_stats
from repro.cache import CompilationCache
from repro.errors import ReproError
from repro.meta import ModuleLoader
from repro.modules import Composer


def collect(root: str, paths: list[str] | None = None):
    """Compose ``root`` and return (grammar stats, per-module stats list)."""
    loader = ModuleLoader(paths=paths)
    composer = Composer(loader)
    grammar = composer.compose(root)
    modules = [module_stats(template) for _, template in composer.instance_modules()]
    return grammar_stats(grammar), modules


def format_table(rows: list[dict], columns: list[str]) -> str:
    widths = {c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    lines = [header, sep]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-stats", description="Grammar modularity statistics."
    )
    parser.add_argument("root", help="qualified root module name")
    parser.add_argument("--path", action="append", default=[], metavar="DIR")
    parser.add_argument(
        "--dot", action="store_true", help="print the module dependency graph as GraphViz DOT"
    )
    parser.add_argument(
        "--disasm", nargs="?", const="", metavar="PRODUCTION",
        help="print the parsing-machine bytecode for the optimized grammar "
        "(optionally one production) and exit",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="also report the compilation cache entries in DIR",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when cache corruption warnings were emitted",
    )
    args = parser.parse_args(argv)
    if args.dot:
        from repro.modules.graph import module_graph

        try:
            graph = module_graph(args.root, ModuleLoader(paths=args.path or None))
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(graph.to_dot())
        return 0
    if args.disasm is not None:
        from repro.modules import compose
        from repro.optim import prepare
        from repro.vm import compile_program, disassemble, summarize

        try:
            prepared = prepare(compose(args.root, paths=args.path or None))
            program = compile_program(prepared)
            print(disassemble(program, args.disasm or None))
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        counts = summarize(program)
        top = ", ".join(f"{name} {n}" for name, n in list(counts["opcodes"].items())[:6])
        print(
            f"\n; {counts['instructions']} instructions across "
            f"{counts['productions']} productions ({counts['memo_rules']} memoized); "
            f"top opcodes: {top}"
        )
        return 0
    try:
        gstats, modules = collect(args.root, args.path or None)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    module_rows = [
        {
            "module": m.name,
            "params": m.parameters,
            "imports": m.imports,
            "modifies": m.modifies,
            "productions": m.productions,
            "mods": m.modifications,
            "alts": m.alternatives,
            "loc": m.loc,
        }
        for m in sorted(modules, key=lambda m: m.name)
    ]
    total = {
        "module": "TOTAL",
        "params": sum(r["params"] for r in module_rows),
        "imports": sum(r["imports"] for r in module_rows),
        "modifies": sum(r["modifies"] for r in module_rows),
        "productions": sum(r["productions"] for r in module_rows),
        "mods": sum(r["mods"] for r in module_rows),
        "alts": sum(r["alts"] for r in module_rows),
        "loc": sum(r["loc"] for r in module_rows),
    }
    print(f"Grammar {args.root}: {len(module_rows)} modules")
    print()
    print(format_table(module_rows + [total],
                       ["module", "params", "imports", "modifies", "productions", "mods", "alts", "loc"]))
    print()
    print("Composed grammar:")
    print(format_table([gstats.row()],
                       ["grammar", "productions", "generic", "text", "void", "object",
                        "alternatives", "nodes", "transient", "public"]))

    from repro.analysis.fusable import fusion_coverage, fusion_supported
    from repro.modules import compose
    from repro.optim import prepare

    if fusion_supported():
        prepared = prepare(compose(args.root, paths=args.path or None))
        coverage = fusion_coverage(prepared.grammar)
        print()
        print("Scanner fusion (prepared grammar, all optimizations):")
        print(format_table(
            [{
                "regions": coverage.regions,
                "patterns": coverage.patterns,
                "fused terminals": coverage.fused_terminals,
                "plain terminals": coverage.plain_terminals,
                "fused %": f"{coverage.ratio:.1%}",
            }],
            ["regions", "patterns", "fused terminals", "plain terminals", "fused %"],
        ))
    if args.cache_dir:
        cache = CompilationCache(args.cache_dir)
        entries = cache.entries()
        print()
        print(f"Compilation cache ({cache.directory}): {len(entries)} entries")
        if entries:
            print(format_table(entries, ["key", "root", "modules", "size_kb", "status"]))
        for warning in cache.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        if args.strict and cache.warnings:
            return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
