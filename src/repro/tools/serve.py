"""``repro-serve`` — drive NDJSON parse requests through a worker pool.

Usage::

    repro-serve jay --requests batch.ndjson            # NDJSON file in, NDJSON out
    cat batch.ndjson | repro-serve jay                 # stdin works too
    repro-serve jay batch1.ndjson batch2.ndjson        # several request files
    repro-serve jay --file examples/jay/Showcase.jay   # one request per source file
    repro-serve jay --text 'class C {}' --include-ast  # inline one-liners
    repro-serve --grammar jay=jay.Jay --grammar calc=calc.Calculator \
        --workers 4 --timeout 5 --stats -r batch.ndjson
    tail -f app.ndjson-chunks | repro-serve json --streaming  # chunked streams

The positional grammar is a short key (``jay``, ``calc``, …) or a qualified
root module (``jay.Jay``); ``--grammar KEY=SPEC`` serves several grammars at
once, where SPEC is a root module or ``factory:package.module:callable``
for programmatically built grammars.  Requests select a grammar with their
``"grammar"`` key; see ``docs/serving.md`` for the wire format.

Results are NDJSON on stdout (or ``--output``), one line per request, in
request order.  ``--stats`` prints a human summary to stderr and
``--stats-json`` writes the versioned :class:`~repro.serve.ServiceStats`
snapshot for archiving.

Exit status: 0 when every request parsed OK; 2 when any request resolved
``parse_error``/``timeout``/``rejected``/``worker_lost``/``error``;
1 for configuration or I/O errors.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.serve import GrammarSpec, ParseService, format_stats
from repro.serve.wire import encode_result, serve_lines


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve NDJSON parse requests through a pool of warm parser workers.",
    )
    parser.add_argument(
        "grammar", nargs="?",
        help="grammar key (calc, json, jay, xc, ml, sql) or qualified root (jay.Jay); "
        "optional when --grammar is used",
    )
    parser.add_argument(
        "requests", nargs="*", metavar="NDJSON",
        help="NDJSON request files (default: --requests/stdin)",
    )
    parser.add_argument(
        "--grammar", action="append", dest="grammars", default=[], metavar="KEY=SPEC",
        help="serve SPEC under KEY (repeatable); SPEC is a root module or "
        "factory:package.module:callable",
    )
    parser.add_argument(
        "-r", "--requests", action="append", dest="request_files", default=[],
        metavar="FILE", help="NDJSON request file, '-' for stdin (repeatable)",
    )
    parser.add_argument(
        "--file", action="append", dest="source_files", default=[], metavar="SRC",
        help="make one request from a source file (repeatable)",
    )
    parser.add_argument(
        "--text", action="append", default=[], metavar="TEXT",
        help="make one request from inline text (repeatable)",
    )
    parser.add_argument(
        "--path", action="append", dest="paths", default=[], metavar="DIR",
        help="additional directory to search for .mg modules (repeatable)",
    )
    parser.add_argument("--start", help="override the start production (single grammar only)")
    parser.add_argument("--workers", type=int, default=None, help="worker processes (default: min(4, cpus))")
    parser.add_argument("--queue", type=int, default=None, metavar="N",
                        help="submission queue bound (default: 8 per worker, 0 = unbounded)")
    parser.add_argument("--backpressure", choices=("block", "reject"), default="block",
                        help="full-queue policy (default: block)")
    parser.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS",
                        help="per-request wall-clock budget (default: 30; 0 = none)")
    parser.add_argument("--max-input-chars", type=int, default=None, metavar="N",
                        help="reject inputs longer than N characters")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries for worker-crash errors (default: 1)")
    parser.add_argument("--no-fallback", action="store_true",
                        help="fail requests instead of degrading to in-process parsing")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="compilation cache directory for worker warm-up")
    parser.add_argument("--streaming", action="store_true",
                        help="accept {\"stream\": …, \"chunk\": …} requests: frame chunked "
                        "character streams into newline-delimited documents and parse "
                        "each as it completes (ids are <stream>:<index>)")
    parser.add_argument("--include-ast", action="store_true",
                        help="include the semantic value's repr in OK result lines")
    parser.add_argument("-o", "--output", metavar="FILE", help="write results here instead of stdout")
    parser.add_argument("--stats", action="store_true", help="print a stats summary to stderr")
    parser.add_argument("--stats-json", metavar="FILE", help="write the ServiceStats JSON snapshot")
    return parser


def _grammar_specs(args) -> dict[str, GrammarSpec]:
    specs: dict[str, GrammarSpec] = {}
    paths = tuple(args.paths)

    def with_paths(spec: GrammarSpec) -> GrammarSpec:
        if paths and spec.root is not None and not spec.paths:
            import dataclasses

            spec = dataclasses.replace(spec, paths=paths)
        return spec

    if args.grammar:
        spec = GrammarSpec.coerce(args.grammar)
        if args.start:
            import dataclasses

            spec = dataclasses.replace(spec, start=args.start)
        key = args.grammar if "." not in args.grammar and ":" not in args.grammar else "default"
        specs[key] = with_paths(spec)
    elif args.start:
        raise ValueError("--start needs a single positional grammar")
    for entry in args.grammars:
        key, sep, value = entry.partition("=")
        if not sep or not key or not value:
            raise ValueError(f"--grammar must look like KEY=SPEC, got {entry!r}")
        specs[key] = with_paths(GrammarSpec.coerce(value))
    if not specs:
        raise ValueError("no grammar given (positional key or --grammar KEY=SPEC)")
    return specs


def _request_lines(args) -> "itertools.chain[str]":
    """All request lines, in argument order; stdin when nothing else."""
    streams = []
    for name in [*args.requests, *args.request_files]:
        if name == "-":
            streams.append(sys.stdin)
        else:
            streams.append(Path(name).read_text().splitlines())
    for path in args.source_files:
        streams.append([json.dumps({"id": path, "file": path})])
    for index, text in enumerate(args.text, 1):
        streams.append([json.dumps({"id": f"text-{index}", "text": text})])
    if not streams:
        streams.append(sys.stdin)
    return itertools.chain.from_iterable(streams)


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        specs = _grammar_specs(args)
    except (ValueError, TypeError) as error:
        print(f"repro-serve: error: {error}", file=sys.stderr)
        return 1

    out = open(args.output, "w") if args.output else sys.stdout
    failures = 0
    try:
        with ParseService(
            specs,
            workers=args.workers,
            queue_size=args.queue,
            backpressure=args.backpressure,
            timeout=args.timeout if args.timeout and args.timeout > 0 else None,
            max_input_chars=args.max_input_chars,
            retries=args.retries,
            fallback=not args.no_fallback,
            cache_dir=args.cache_dir,
        ) as service:
            for result in serve_lines(service, _request_lines(args), streaming=args.streaming):
                if not result.ok:
                    failures += 1
                print(encode_result(result, include_value=args.include_ast), file=out, flush=True)
            stats = service.stats()
        if args.stats:
            print(format_stats(stats), file=sys.stderr)
        if args.stats_json:
            Path(args.stats_json).write_text(json.dumps(stats.to_json(), indent=2) + "\n")
    except ReproError as error:
        print(f"repro-serve: error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"repro-serve: error: {error}", file=sys.stderr)
        return 1
    finally:
        if out is not sys.stdout:
            out.close()
    return 2 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
