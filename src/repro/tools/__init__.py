"""Command-line tools: ``repro-pgen`` and ``repro-stats``."""
