"""Command-line tools: ``repro-pgen``, ``repro-stats``, ``repro-lint``,
``repro-trace``, and ``repro-fuzz`` (differential fuzzing; see
:mod:`repro.difftest`)."""
