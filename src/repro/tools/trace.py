"""``repro-trace`` — parse a file and show what the parser did.

Usage::

    repro-trace jay.Jay program.jay            # stats + result/diagnostic
    repro-trace jay.Jay program.jay --events   # full indented trace
    repro-trace calc.Calculator - <<< "1 + *"  # read input from stdin
"""

from __future__ import annotations

import argparse
import sys

from repro.api import compile_grammar, load_grammar
from repro.cache import CompilationCache
from repro.errors import ReproError
from repro.interp import PackratInterpreter, format_trace, trace_parse, trace_statistics
from repro.optim import prepare


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Trace a packrat parse: production applications, memo hits, failures.",
    )
    parser.add_argument("root", help="qualified root grammar module (e.g. jay.Jay)")
    parser.add_argument("input", help="input file to parse, or '-' for stdin")
    parser.add_argument("--path", action="append", default=[], metavar="DIR")
    parser.add_argument("--start", help="override the start production")
    parser.add_argument("--events", action="store_true", help="print the full event log")
    parser.add_argument("--max-events", type=int, default=200, metavar="N")
    parser.add_argument("--cache-dir", metavar="DIR", help="persistent compilation cache directory")
    parser.add_argument("--no-cache", action="store_true", help="bypass the compilation caches")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when cache corruption warnings were emitted",
    )
    args = parser.parse_args(argv)

    cache = CompilationCache(args.cache_dir) if args.cache_dir and not args.no_cache else None
    try:
        if cache is not None:
            prepared = compile_grammar(
                args.root, paths=args.path or None, start=args.start, cache=cache
            ).prepared
        else:
            grammar = load_grammar(args.root, paths=args.path or None)
            prepared = prepare(grammar)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for warning in cache.warnings if cache is not None else ():
        print(f"warning: {warning}", file=sys.stderr)

    if args.input == "-":
        text = sys.stdin.read()
        source = "<stdin>"
    else:
        try:
            with open(args.input) as handle:
                text = handle.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        source = args.input

    interpreter = PackratInterpreter(prepared.grammar, chunked=prepared.chunked_memo)
    value, events, error = trace_parse(interpreter, text, start=args.start, source=source)

    if args.events:
        print(format_trace(events, max_events=args.max_events))
        print()
    stats = trace_statistics(events)
    print(
        f"{stats['applications']} applications, {stats['memo_hits']} memo hits, "
        f"{stats['failures']} failed, {stats['distinct_questions']} distinct "
        f"(production, position) questions, {stats['reasked_questions']} re-asked"
    )
    strict_failure = args.strict and cache is not None and bool(cache.warnings)
    if error is not None:
        print()
        print(error.show(text, source))
        return 1
    print(f"parse OK: {value!r}"[:400])
    return 2 if strict_failure else 0


if __name__ == "__main__":
    raise SystemExit(main())
