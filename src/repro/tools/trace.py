"""``repro-trace`` — parse a file and show what the parser did.

Usage::

    repro-trace jay.Jay program.jay            # stats + result/diagnostic
    repro-trace jay.Jay program.jay --events   # full indented trace
    repro-trace calc.Calculator - <<< "1 + *"  # read input from stdin
"""

from __future__ import annotations

import argparse
import sys

from repro.api import load_grammar
from repro.errors import ReproError
from repro.interp import PackratInterpreter, format_trace, trace_parse, trace_statistics
from repro.optim import prepare


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Trace a packrat parse: production applications, memo hits, failures.",
    )
    parser.add_argument("root", help="qualified root grammar module (e.g. jay.Jay)")
    parser.add_argument("input", help="input file to parse, or '-' for stdin")
    parser.add_argument("--path", action="append", default=[], metavar="DIR")
    parser.add_argument("--start", help="override the start production")
    parser.add_argument("--events", action="store_true", help="print the full event log")
    parser.add_argument("--max-events", type=int, default=200, metavar="N")
    args = parser.parse_args(argv)

    try:
        grammar = load_grammar(args.root, paths=args.path or None)
        prepared = prepare(grammar)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.input == "-":
        text = sys.stdin.read()
        source = "<stdin>"
    else:
        try:
            with open(args.input) as handle:
                text = handle.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        source = args.input

    interpreter = PackratInterpreter(prepared.grammar, chunked=prepared.chunked_memo)
    value, events, error = trace_parse(interpreter, text, start=args.start, source=source)

    if args.events:
        print(format_trace(events, max_events=args.max_events))
        print()
    stats = trace_statistics(events)
    print(
        f"{stats['applications']} applications, {stats['memo_hits']} memo hits, "
        f"{stats['failures']} failed, {stats['distinct_questions']} distinct "
        f"(production, position) questions, {stats['reasked_questions']} re-asked"
    )
    if error is not None:
        print()
        print(error.show(text, source))
        return 1
    print(f"parse OK: {value!r}"[:400])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
