"""``repro-lint`` — well-formedness + lint for grammar modules.

Usage::

    repro-lint jay.Jay
    repro-lint my.Lang --path grammars/ --strict   # lint findings fail too
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint import (
    lint,
    lint_alternatives_of_production,
    lint_useless_nofuse,
)
from repro.analysis.wellformed import check
from repro.api import load_grammar
from repro.errors import ReproError


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description="Check grammar modules for errors and hazards."
    )
    parser.add_argument("root", help="qualified root module name")
    parser.add_argument("--path", action="append", default=[], metavar="DIR")
    parser.add_argument(
        "--strict", action="store_true", help="treat lint findings as failures"
    )
    args = parser.parse_args(argv)

    try:
        grammar = load_grammar(args.root, paths=args.path or None)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    diagnostics = check(grammar)
    findings = (
        lint(grammar)
        + lint_alternatives_of_production(grammar)
        + lint_useless_nofuse(grammar)
    )

    errors = [d for d in diagnostics if d.severity == "error"]
    warnings = [d for d in diagnostics if d.severity == "warning"]
    for diagnostic in errors + warnings:
        print(diagnostic)
    for finding in findings:
        print(f"lint: {finding}")

    total = len(errors) + len(warnings) + len(findings)
    if total == 0:
        print(f"{args.root}: clean ({len(grammar)} productions)")
    if errors:
        return 1
    if args.strict and findings:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
