"""Runtime support shared by interpreters and generated parsers."""

from repro.runtime.actionlib import ACTION_GLOBALS, concat, cons, flatten, make_node
from repro.runtime.base import ParserBase, sizeof_deep
from repro.runtime.memo import ChunkedMemoTable, DictMemoTable, make_memo_table
from repro.runtime.node import GNode, fold_left, structural_diff, structurally_equal

__all__ = [
    "ACTION_GLOBALS", "concat", "cons", "flatten", "make_node",
    "ParserBase", "sizeof_deep",
    "ChunkedMemoTable", "DictMemoTable", "make_memo_table",
    "GNode", "fold_left", "structural_diff", "structurally_equal",
]
