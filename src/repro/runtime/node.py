"""Generic abstract-syntax-tree nodes.

*Generic* productions build their semantic values automatically as
:class:`GNode` instances: the node name is the alternative's label (or the
production's name), and the children are the semantic values of the
alternative's contributing components.  This is the paper's key convenience
for keeping grammars declarative — no per-production AST classes and no
hand-written tree-building actions.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.locations import Location


class GNode:
    """An immutable generic AST node: a name plus a children tuple.

    Children may be strings (from text productions), other nodes, ``None``
    (absent optionals), lists (from repetitions), or arbitrary action
    results.  Equality and hashing are structural but *ignore locations*, so
    parse results can be compared across parser backends that do or do not
    track locations.
    """

    __slots__ = ("name", "children", "location")

    def __init__(self, name: str, children: tuple[Any, ...] = (), location: Location | None = None):
        self.name = name
        self.children = tuple(children)
        self.location = location

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.children)

    def __getitem__(self, index: int) -> Any:
        return self.children[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.children)

    # -- equality (structural, location-insensitive) --------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GNode):
            return NotImplemented
        return self.name == other.name and _children_equal(self.children, other.children)

    def __hash__(self) -> int:
        return hash((self.name, _hashable(self.children)))

    def __repr__(self) -> str:
        if not self.children:
            return f"({self.name})"
        inner = " ".join(_repr_child(c) for c in self.children)
        return f"({self.name} {inner})"

    # -- convenience -----------------------------------------------------------

    def size(self) -> int:
        """Total number of GNode descendants including this node."""
        total = 1
        stack: list[Any] = list(self.children)
        while stack:
            item = stack.pop()
            if isinstance(item, GNode):
                total += 1
                stack.extend(item.children)
            elif isinstance(item, (list, tuple)):
                stack.extend(item)
        return total

    def find_all(self, name: str) -> list["GNode"]:
        """All descendant nodes (including self) with the given name."""
        found: list[GNode] = []
        stack: list[Any] = [self]
        while stack:
            item = stack.pop()
            if isinstance(item, GNode):
                if item.name == name:
                    found.append(item)
                stack.extend(reversed(item.children))
            elif isinstance(item, (list, tuple)):
                stack.extend(reversed(item))
        return found


def _children_equal(a: tuple[Any, ...], b: tuple[Any, ...]) -> bool:
    if len(a) != len(b):
        return False
    return all(x == y for x, y in zip(a, b))


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, GNode):
        return (value.name, _hashable(value.children))
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def _repr_child(child: Any) -> str:
    if isinstance(child, str):
        return repr(child)
    if isinstance(child, list):
        return "[" + " ".join(_repr_child(c) for c in child) + "]"
    return repr(child)


def structurally_equal(a: Any, b: Any) -> bool:
    """Structural equality over parse results, ignoring locations.

    Delegates to :class:`GNode` equality (which already ignores locations)
    but also treats a ``list`` and a ``tuple`` with equal elements as equal,
    since backends legitimately differ in which container they build for
    repetition values.  Shared by the test suite and the differential
    oracle (:mod:`repro.difftest`).
    """
    return structural_diff(a, b) is None


def structural_diff(a: Any, b: Any, path: str = "$") -> str | None:
    """The first structural difference between two parse results, or None.

    Returns a human-readable description anchored at a ``$``-rooted path
    (``$`` the root, ``$.0.2`` the third child of the first child), so a
    disagreement deep inside a large AST is reported precisely instead of
    as one giant repr diff.  Locations and memoization identity are
    ignored; names, child order, and child positions are compared.
    """
    if isinstance(a, GNode) and isinstance(b, GNode):
        if a.name != b.name:
            return f"{path}: node name {a.name!r} != {b.name!r}"
        return _diff_children(a.children, b.children, path)
    if isinstance(a, GNode) or isinstance(b, GNode):
        return f"{path}: {_shape(a)} != {_shape(b)}"
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return _diff_children(tuple(a), tuple(b), path)
    if isinstance(a, (list, tuple)) or isinstance(b, (list, tuple)):
        return f"{path}: {_shape(a)} != {_shape(b)}"
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def _diff_children(a: tuple[Any, ...], b: tuple[Any, ...], path: str) -> str | None:
    if len(a) != len(b):
        return f"{path}: child count {len(a)} != {len(b)}"
    for index, (x, y) in enumerate(zip(a, b)):
        diff = structural_diff(x, y, f"{path}.{index}")
        if diff is not None:
            return diff
    return None


def _shape(value: Any) -> str:
    if isinstance(value, GNode):
        return f"GNode({value.name!r})"
    return f"{type(value).__name__} {value!r}"


def fold_left(seed: Any, suffixes: list[GNode]) -> Any:
    """Rebuild a left-leaning tree from a seed and parsed operator suffixes.

    This is the semantic-value fix-up of the direct-left-recursion
    transformation: each suffix node ``(Label c1 … cN)`` becomes
    ``(Label acc c1 … cN)`` with the accumulated tree as first child, so
    ``a - b - c`` folds to ``(Sub (Sub a b) c)`` exactly as the original
    left-recursive grammar specifies.
    """
    acc = seed
    for suffix in suffixes:
        location = acc.location if isinstance(acc, GNode) else suffix.location
        acc = GNode(suffix.name, (acc,) + suffix.children, location)
    return acc
