"""The environment available to ``{ action }`` code.

Semantic actions in ``.mg`` grammars are restricted Python expressions.  They
are evaluated — identically by the grammar interpreters and by generated
parsers — in a namespace containing the alternative's bindings plus the
helpers defined here.  Nothing else (no builtins) is visible, which keeps
grammar files declarative and portable.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.node import GNode, fold_left


def make_node(name: str, *children: Any) -> GNode:
    """Explicitly build a generic node from an action."""
    return GNode(name, children)


def cons(head: Any, tail: list) -> list:
    """Prepend ``head`` to ``tail`` (classic list construction)."""
    return [head] + list(tail)


def append(items: list, last: Any) -> list:
    """Append ``last`` to ``items``."""
    return list(items) + [last]


def concat(*parts: Any) -> str:
    """Concatenate string fragments, skipping ``None``."""
    return "".join(p for p in parts if p is not None)


def flatten(values: Any) -> list:
    """Flatten nested lists/tuples into one list, dropping ``None``."""
    out: list = []
    stack = [values]
    while stack:
        item = stack.pop()
        if item is None:
            continue
        if isinstance(item, (list, tuple)):
            stack.extend(reversed(item))
        else:
            out.append(item)
    return out


#: Names injected into every action evaluation, in addition to bindings.
ACTION_GLOBALS: dict[str, Any] = {
    "__builtins__": {},
    "GNode": GNode,
    "make_node": make_node,
    "fold_left": fold_left,
    "__fold_left__": fold_left,  # used by the left-recursion transformation
    "cons": cons,
    "append": append,
    "concat": concat,
    "flatten": flatten,
    "null": None,
    "true": True,
    "false": False,
    # a few safe builtins grammar actions legitimately want
    "len": len,
    "int": int,
    "float": float,
    "str": str,
    "tuple": tuple,
    "list": list,
    "ord": ord,
    "chr": chr,
}
