"""Memoization table organizations.

The paper's *chunks* optimization replaces the textbook packrat organization
(one hash-table entry per ⟨production, position⟩) with per-position *column*
objects whose memo fields are grouped into lazily allocated *chunk* objects.
A parse that touches a position allocates one column; only the chunks whose
productions are actually tried get allocated, and each memo access is two
attribute loads instead of a hash lookup of a tuple key.

Two interchangeable table implementations are provided so the effect can be
measured (experiment E3):

- :class:`DictMemoTable` — the textbook baseline: ``dict[(rule, pos)] → entry``
- :class:`ChunkedMemoTable` — columns of chunks, built for a specific list of
  production names partitioned ``chunk_size`` fields at a time.

Entries are ``(next_pos, value)`` pairs; failures store ``(-1, None)``.
Both tables present the same ``get(rule_index, pos)`` / ``put`` interface;
the production *index* (dense int) is assigned by the caller.

Both tables accept an optional ``events`` sink (``hit(rule, pos, entry)`` /
``miss(rule, pos)`` / ``store(rule, pos, entry)``, see
:class:`repro.profile.collector.MemoEvents`) used by the profiling
subsystem for memo telemetry.  Instrumentation is pay-for-what-you-use:
with no sink the class-level ``get``/``put`` run unchanged; with a sink,
instrumented closures are installed as *instance* attributes, shadowing
the fast methods for that table only.

A third organization, :class:`IncrementalMemoTable`, serves incremental
reparsing (``docs/incremental.md``): a position-indexed column list holding
*relative* entries, so that relocating the memo across a text edit is two
C-level list splices (``shift_from``) plus a damage-local invalidation scan
(``drop_range``) instead of a walk over every entry.
"""

from __future__ import annotations

from array import array
from typing import Any

from repro.runtime.base import sizeof_deep

#: Number of memo fields per chunk.  Rats! groups ~10 fields per chunk; the
#: exact figure only shifts constants, and 8 keeps chunk objects small.
DEFAULT_CHUNK_SIZE = 8

_ABSENT = None  # absent entries are represented by None slots


class DictMemoTable:
    """Baseline packrat memo table: one dict keyed by (rule_index, pos)."""

    def __init__(
        self, rule_names: list[str], chunk_size: int = DEFAULT_CHUNK_SIZE, events=None
    ):
        self._table: dict[tuple[int, int], tuple[int, Any]] = {}
        self.rule_names = list(rule_names)
        self._size_cache: tuple[int, int] | None = None  # (entry_count, bytes)
        if events is not None:
            self._install_events(events)

    def get(self, rule: int, pos: int) -> tuple[int, Any] | None:
        return self._table.get((rule, pos))

    def put(self, rule: int, pos: int, entry: tuple[int, Any]) -> None:
        self._table[(rule, pos)] = entry

    def _install_events(self, events) -> None:
        """Shadow ``get``/``put`` with event-reporting closures (instance
        attributes only; the uninstrumented class methods are untouched)."""
        table = self._table

        def get(rule: int, pos: int):
            entry = table.get((rule, pos))
            if entry is None:
                events.miss(rule, pos)
            else:
                events.hit(rule, pos, entry)
            return entry

        def put(rule: int, pos: int, entry) -> None:
            table[(rule, pos)] = entry
            events.store(rule, pos, entry)

        self.get = get
        self.put = put

    def clear(self) -> None:
        self._table.clear()
        self._size_cache = None

    def reset(self) -> "DictMemoTable":
        """Drop all entries in place, keeping the table object (and the
        dict's allocated capacity) for reuse across parses."""
        self._table.clear()
        self._size_cache = None
        return self

    def entry_count(self) -> int:
        return len(self._table)

    def size_bytes(self) -> int:
        # Deep-sizing is O(entries); cache keyed on the entry count, which
        # changes with every store (entries are never overwritten: packrat
        # memoization stores one result per ⟨rule, pos⟩).
        cached = self._size_cache
        count = len(self._table)
        if cached is not None and cached[0] == count:
            return cached[1]
        size = sizeof_deep(self._table)
        self._size_cache = (count, size)
        return size


class _Column:
    """Per-position holder of lazily allocated chunks."""

    __slots__ = ("chunks",)

    def __init__(self, n_chunks: int):
        self.chunks: list[list | None] = [None] * n_chunks


class ChunkedMemoTable:
    """Column/chunk memo organization (the paper's *chunks* optimization).

    Chunks are fixed-size lists here (Python's closest cheap analogue of a
    field group); a chunk is allocated the first time any of its rules is
    memoized at that position.
    """

    def __init__(
        self, rule_names: list[str], chunk_size: int = DEFAULT_CHUNK_SIZE, events=None
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.rule_names = list(rule_names)
        self._chunk_size = chunk_size
        self._n_chunks = (len(rule_names) + chunk_size - 1) // chunk_size or 1
        self._columns: dict[int, _Column] = {}
        # Accounting is incremental (maintained by put/clear/reset), never a
        # full table scan: entry_count/chunk_count used to walk every column
        # on every call, which made per-parse measurement quadratic.
        self._entries = 0
        self._chunks = 0
        self._size_cache: tuple[int, int] | None = None  # (entry_count, bytes)
        if events is not None:
            self._install_events(events)

    def get(self, rule: int, pos: int) -> tuple[int, Any] | None:
        column = self._columns.get(pos)
        if column is None:
            return None
        chunk = column.chunks[rule // self._chunk_size]
        if chunk is None:
            return None
        return chunk[rule % self._chunk_size]

    def put(self, rule: int, pos: int, entry: tuple[int, Any]) -> None:
        column = self._columns.get(pos)
        if column is None:
            column = self._columns[pos] = _Column(self._n_chunks)
        index = rule // self._chunk_size
        chunk = column.chunks[index]
        if chunk is None:
            chunk = column.chunks[index] = [_ABSENT] * self._chunk_size
            self._chunks += 1
        slot = rule % self._chunk_size
        if chunk[slot] is None:
            self._entries += 1
        chunk[slot] = entry

    def _install_events(self, events) -> None:
        """Shadow ``get``/``put`` with event-reporting closures (instance
        attributes only; the uninstrumented class methods are untouched)."""
        plain_get = ChunkedMemoTable.get
        plain_put = ChunkedMemoTable.put

        def get(rule: int, pos: int):
            entry = plain_get(self, rule, pos)
            if entry is None:
                events.miss(rule, pos)
            else:
                events.hit(rule, pos, entry)
            return entry

        def put(rule: int, pos: int, entry) -> None:
            plain_put(self, rule, pos, entry)
            events.store(rule, pos, entry)

        self.get = get
        self.put = put

    def clear(self) -> None:
        self._columns.clear()
        self._entries = 0
        self._chunks = 0
        self._size_cache = None

    def reset(self) -> "ChunkedMemoTable":
        """Drop all columns in place, keeping the table object and its
        chunk geometry for reuse across parses."""
        self.clear()
        return self

    def entry_count(self) -> int:
        return self._entries

    def chunk_count(self) -> int:
        """Number of allocated chunk objects (the paper's space metric)."""
        return self._chunks

    def column_count(self) -> int:
        return len(self._columns)

    def size_bytes(self) -> int:
        # Cached per entry count; every store adds an entry (one result per
        # ⟨rule, pos⟩), so a changed table always has a changed count.
        cached = self._size_cache
        if cached is not None and cached[0] == self._entries:
            return cached[1]
        size = sizeof_deep(self._columns)
        self._size_cache = (self._entries, size)
        return size


#: Relative examined spans are summarized per column in one byte; spans of
#: ``_SPAN_CAP`` or more are additionally tracked in an exact side set.
_SPAN_CAP = 255


class IncrementalMemoTable:
    """Position-indexed memo table for incremental reparsing.

    Entries are *relative*: ``((span, value), rel_examined)`` where
    ``span = next_pos - pos`` (``-1`` marks a failure) and ``rel_examined =
    examined - pos`` is the exclusive width of the region of text the
    memoized parse read, lookahead and failure probes included.  Because
    nothing inside an entry mentions an absolute position, relocating the
    table across an edit (``shift_from``) is a pair of C-level list splices
    — tree-sitter's relative-offset trick applied to packrat columns —
    rather than a rewrite of every entry.

    Storage is one flat list slot per ⟨position, rule⟩: ``_cols[pos]`` is
    ``None`` until the first store at ``pos``, then a ``len(rule_names)``
    list.  Two per-column summaries keep ``drop_range`` damage-local:

    - ``_relb[pos]`` — a byte holding the column's maximum relative
      examined span, capped at ``_SPAN_CAP``;
    - ``_long`` — the (small) set of positions whose true maximum reaches
      the cap, checked exactly.

    An edit at ``lo`` therefore only inspects the damaged columns plus the
    ≤254-column spine window left of ``lo`` whose summary byte proves an
    entry *might* reach the damage, plus the handful of ``_long`` columns.

    One deliberate conservatism: a pure deletion at ``lo`` also drops
    zero-width entries *at* ``lo`` along with the damaged interior (the
    column is spliced away).  Dropping a reusable entry only costs a
    re-derivation; retention is what must be — and is — exact.
    """

    def __init__(self, rule_names: list[str]):
        self.rule_names = list(rule_names)
        self._width = len(rule_names)
        self._cols: list[list | None] = [None]
        self._relb = bytearray(1)
        self._cnt = array("H", (0,))
        self._long: set[int] = set()
        self._entries = 0

    def resize(self, length: int) -> "IncrementalMemoTable":
        """Reset the table for a text of ``length`` characters (columns for
        every position including the end-of-input position)."""
        n = length + 1
        self._cols = [None] * n
        self._relb = bytearray(n)
        self._cnt = array("H", bytes(2 * n))
        self._long.clear()
        self._entries = 0
        return self

    def reset(self) -> "IncrementalMemoTable":
        """Drop all entries in place, keeping the current geometry."""
        return self.resize(len(self._cols) - 1)

    def get(self, rule: int, pos: int):
        col = self._cols[pos]
        return col[rule] if col is not None else None

    def put(self, rule: int, pos: int, entry) -> None:
        col = self._cols[pos]
        if col is None:
            col = self._cols[pos] = [None] * self._width
        if col[rule] is None:
            self._entries += 1
            self._cnt[pos] += 1
        col[rule] = entry
        rel = entry[1]
        if rel >= _SPAN_CAP:
            self._long.add(pos)
            self._relb[pos] = _SPAN_CAP
        elif rel > self._relb[pos]:
            self._relb[pos] = rel

    # -- incremental reparsing (see docs/incremental.md) ----------------------

    def drop_range(self, lo: int, hi: int) -> int:
        """Invalidate entries whose examined span overlaps the damaged
        region ``[lo, hi)`` of the old text.  An entry at ``p`` with
        relative examined span ``r`` survives iff ``p + r <= lo`` (it never
        read damaged text) or ``p >= hi`` (it starts after the damage and is
        relocated by :meth:`shift_from`).  Returns the number dropped."""
        cols = self._cols
        relb = self._relb
        dropped = 0
        # Damaged interior: everything goes except zero-width entries at lo.
        for p in range(lo, min(hi, len(cols))):
            col = cols[p]
            if col is None:
                continue
            if p > lo or relb[p] > 0:
                dropped += self._drop_crossing(p, lo)
        # Spine: columns left of lo whose summary byte admits an entry
        # reaching past lo, plus the exact long-span set.
        window = max(0, lo - (_SPAN_CAP - 1))
        for p in range(window, lo):
            if relb[p] > lo - p:
                dropped += self._drop_crossing(p, lo)
        if self._long:
            for p in [q for q in self._long if q < window]:
                dropped += self._drop_crossing(p, lo)
        self._entries -= dropped
        return dropped

    def _drop_crossing(self, p: int, lo: int) -> int:
        """Null every entry in column ``p`` whose examined end exceeds
        ``lo``; re-tighten the column's span summary.  Returns the count."""
        col = self._cols[p]
        if col is None:
            return 0
        threshold = lo - p
        dropped = 0
        best = 0
        for i, entry in enumerate(col):
            if entry is None:
                continue
            rel = entry[1]
            if rel > threshold:
                col[i] = None
                dropped += 1
            elif rel > best:
                best = rel
        if dropped:
            self._cnt[p] -= dropped
            if best >= _SPAN_CAP:
                self._relb[p] = _SPAN_CAP
            else:
                self._relb[p] = best
                self._long.discard(p)
            if self._cnt[p] == 0:
                self._cols[p] = None
        return dropped

    def shift_from(self, pos: int, delta: int, on_value=None) -> int:
        """Relocate every column at a position ``>= pos`` by ``delta``
        characters.  With relative entries this is pure column motion: a
        list splice inserting ``delta`` empty columns (insertion) or
        deleting the ``-delta`` columns left of ``pos`` (deletion); no entry
        is rewritten.  ``on_value`` (if given) is called once per relocated
        success value so callers can patch position-bearing payloads (e.g.
        source locations).  Returns the number of entries relocated."""
        cols = self._cols
        cnt = self._cnt
        if delta > 0:
            cols[pos:pos] = [None] * delta
            self._relb[pos:pos] = bytes(delta)
            cnt[pos:pos] = array("H", bytes(2 * delta))
        elif delta < 0:
            lost = sum(cnt[pos + delta : pos])
            if lost:
                self._entries -= lost
            del cols[pos + delta : pos]
            del self._relb[pos + delta : pos]
            del cnt[pos + delta : pos]
        if self._long:
            cut = pos + delta if delta < 0 else pos
            self._long = {
                q + delta if q >= pos else q
                for q in self._long
                if q < cut or q >= pos
            }
        start = pos + delta if delta < 0 else pos
        shifted = sum(cnt[start:]) if delta else 0
        if on_value is not None:
            for col in cols[start:]:
                if col is None:
                    continue
                for entry in col:
                    if entry is not None and entry[0][0] >= 0:
                        on_value(entry[0][1])
        return shifted

    def entry_count(self) -> int:
        return self._entries

    def column_count(self) -> int:
        return sum(1 for col in self._cols if col is not None)

    def size_bytes(self) -> int:
        return sizeof_deep(self._cols) + sizeof_deep(self._relb) + sizeof_deep(
            self._cnt
        )


def make_memo_table(
    rule_names: list[str],
    chunked: bool,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    events=None,
):
    """Factory selecting the table organization for a parser run."""
    cls = ChunkedMemoTable if chunked else DictMemoTable
    return cls(rule_names, chunk_size, events=events)
