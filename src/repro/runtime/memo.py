"""Memoization table organizations.

The paper's *chunks* optimization replaces the textbook packrat organization
(one hash-table entry per ⟨production, position⟩) with per-position *column*
objects whose memo fields are grouped into lazily allocated *chunk* objects.
A parse that touches a position allocates one column; only the chunks whose
productions are actually tried get allocated, and each memo access is two
attribute loads instead of a hash lookup of a tuple key.

Two interchangeable table implementations are provided so the effect can be
measured (experiment E3):

- :class:`DictMemoTable` — the textbook baseline: ``dict[(rule, pos)] → entry``
- :class:`ChunkedMemoTable` — columns of chunks, built for a specific list of
  production names partitioned ``chunk_size`` fields at a time.

Entries are ``(next_pos, value)`` pairs; failures store ``(-1, None)``.
Both tables present the same ``get(rule_index, pos)`` / ``put`` interface;
the production *index* (dense int) is assigned by the caller.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.base import sizeof_deep

#: Number of memo fields per chunk.  Rats! groups ~10 fields per chunk; the
#: exact figure only shifts constants, and 8 keeps chunk objects small.
DEFAULT_CHUNK_SIZE = 8

_ABSENT = None  # absent entries are represented by None slots


class DictMemoTable:
    """Baseline packrat memo table: one dict keyed by (rule_index, pos)."""

    def __init__(self, rule_names: list[str], chunk_size: int = DEFAULT_CHUNK_SIZE):
        self._table: dict[tuple[int, int], tuple[int, Any]] = {}
        self.rule_names = list(rule_names)

    def get(self, rule: int, pos: int) -> tuple[int, Any] | None:
        return self._table.get((rule, pos))

    def put(self, rule: int, pos: int, entry: tuple[int, Any]) -> None:
        self._table[(rule, pos)] = entry

    def clear(self) -> None:
        self._table.clear()

    def reset(self) -> "DictMemoTable":
        """Drop all entries in place, keeping the table object (and the
        dict's allocated capacity) for reuse across parses."""
        self._table.clear()
        return self

    def entry_count(self) -> int:
        return len(self._table)

    def size_bytes(self) -> int:
        return sizeof_deep(self._table)


class _Column:
    """Per-position holder of lazily allocated chunks."""

    __slots__ = ("chunks",)

    def __init__(self, n_chunks: int):
        self.chunks: list[list | None] = [None] * n_chunks


class ChunkedMemoTable:
    """Column/chunk memo organization (the paper's *chunks* optimization).

    Chunks are fixed-size lists here (Python's closest cheap analogue of a
    field group); a chunk is allocated the first time any of its rules is
    memoized at that position.
    """

    def __init__(self, rule_names: list[str], chunk_size: int = DEFAULT_CHUNK_SIZE):
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.rule_names = list(rule_names)
        self._chunk_size = chunk_size
        self._n_chunks = (len(rule_names) + chunk_size - 1) // chunk_size or 1
        self._columns: dict[int, _Column] = {}

    def get(self, rule: int, pos: int) -> tuple[int, Any] | None:
        column = self._columns.get(pos)
        if column is None:
            return None
        chunk = column.chunks[rule // self._chunk_size]
        if chunk is None:
            return None
        return chunk[rule % self._chunk_size]

    def put(self, rule: int, pos: int, entry: tuple[int, Any]) -> None:
        column = self._columns.get(pos)
        if column is None:
            column = self._columns[pos] = _Column(self._n_chunks)
        index = rule // self._chunk_size
        chunk = column.chunks[index]
        if chunk is None:
            chunk = column.chunks[index] = [_ABSENT] * self._chunk_size
        chunk[rule % self._chunk_size] = entry

    def clear(self) -> None:
        self._columns.clear()

    def reset(self) -> "ChunkedMemoTable":
        """Drop all columns in place, keeping the table object and its
        chunk geometry for reuse across parses."""
        self._columns.clear()
        return self

    def entry_count(self) -> int:
        count = 0
        for column in self._columns.values():
            for chunk in column.chunks:
                if chunk is not None:
                    count += sum(1 for slot in chunk if slot is not None)
        return count

    def chunk_count(self) -> int:
        """Number of allocated chunk objects (the paper's space metric)."""
        return sum(
            sum(1 for chunk in column.chunks if chunk is not None)
            for column in self._columns.values()
        )

    def column_count(self) -> int:
        return len(self._columns)

    def size_bytes(self) -> int:
        return sizeof_deep(self._columns)


def make_memo_table(rule_names: list[str], chunked: bool, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """Factory selecting the table organization for a parser run."""
    cls = ChunkedMemoTable if chunked else DictMemoTable
    return cls(rule_names, chunk_size)
