"""Memoization table organizations.

The paper's *chunks* optimization replaces the textbook packrat organization
(one hash-table entry per ⟨production, position⟩) with per-position *column*
objects whose memo fields are grouped into lazily allocated *chunk* objects.
A parse that touches a position allocates one column; only the chunks whose
productions are actually tried get allocated, and each memo access is two
attribute loads instead of a hash lookup of a tuple key.

Two interchangeable table implementations are provided so the effect can be
measured (experiment E3):

- :class:`DictMemoTable` — the textbook baseline: ``dict[(rule, pos)] → entry``
- :class:`ChunkedMemoTable` — columns of chunks, built for a specific list of
  production names partitioned ``chunk_size`` fields at a time.

Entries are ``(next_pos, value)`` pairs; failures store ``(-1, None)``.
Both tables present the same ``get(rule_index, pos)`` / ``put`` interface;
the production *index* (dense int) is assigned by the caller.

Both tables accept an optional ``events`` sink (``hit(rule, pos, entry)`` /
``miss(rule, pos)`` / ``store(rule, pos, entry)``, see
:class:`repro.profile.collector.MemoEvents`) used by the profiling
subsystem for memo telemetry.  Instrumentation is pay-for-what-you-use:
with no sink the class-level ``get``/``put`` run unchanged; with a sink,
instrumented closures are installed as *instance* attributes, shadowing
the fast methods for that table only.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.base import sizeof_deep

#: Number of memo fields per chunk.  Rats! groups ~10 fields per chunk; the
#: exact figure only shifts constants, and 8 keeps chunk objects small.
DEFAULT_CHUNK_SIZE = 8

_ABSENT = None  # absent entries are represented by None slots


class DictMemoTable:
    """Baseline packrat memo table: one dict keyed by (rule_index, pos)."""

    def __init__(
        self, rule_names: list[str], chunk_size: int = DEFAULT_CHUNK_SIZE, events=None
    ):
        self._table: dict[tuple[int, int], tuple[int, Any]] = {}
        self.rule_names = list(rule_names)
        self._size_cache: tuple[int, int] | None = None  # (entry_count, bytes)
        if events is not None:
            self._install_events(events)

    def get(self, rule: int, pos: int) -> tuple[int, Any] | None:
        return self._table.get((rule, pos))

    def put(self, rule: int, pos: int, entry: tuple[int, Any]) -> None:
        self._table[(rule, pos)] = entry

    def _install_events(self, events) -> None:
        """Shadow ``get``/``put`` with event-reporting closures (instance
        attributes only; the uninstrumented class methods are untouched)."""
        table = self._table

        def get(rule: int, pos: int):
            entry = table.get((rule, pos))
            if entry is None:
                events.miss(rule, pos)
            else:
                events.hit(rule, pos, entry)
            return entry

        def put(rule: int, pos: int, entry) -> None:
            table[(rule, pos)] = entry
            events.store(rule, pos, entry)

        self.get = get
        self.put = put

    def clear(self) -> None:
        self._table.clear()
        self._size_cache = None

    def reset(self) -> "DictMemoTable":
        """Drop all entries in place, keeping the table object (and the
        dict's allocated capacity) for reuse across parses."""
        self._table.clear()
        self._size_cache = None
        return self

    def entry_count(self) -> int:
        return len(self._table)

    def size_bytes(self) -> int:
        # Deep-sizing is O(entries); cache keyed on the entry count, which
        # changes with every store (entries are never overwritten: packrat
        # memoization stores one result per ⟨rule, pos⟩).
        cached = self._size_cache
        count = len(self._table)
        if cached is not None and cached[0] == count:
            return cached[1]
        size = sizeof_deep(self._table)
        self._size_cache = (count, size)
        return size


class _Column:
    """Per-position holder of lazily allocated chunks."""

    __slots__ = ("chunks",)

    def __init__(self, n_chunks: int):
        self.chunks: list[list | None] = [None] * n_chunks


class ChunkedMemoTable:
    """Column/chunk memo organization (the paper's *chunks* optimization).

    Chunks are fixed-size lists here (Python's closest cheap analogue of a
    field group); a chunk is allocated the first time any of its rules is
    memoized at that position.
    """

    def __init__(
        self, rule_names: list[str], chunk_size: int = DEFAULT_CHUNK_SIZE, events=None
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.rule_names = list(rule_names)
        self._chunk_size = chunk_size
        self._n_chunks = (len(rule_names) + chunk_size - 1) // chunk_size or 1
        self._columns: dict[int, _Column] = {}
        # Accounting is incremental (maintained by put/clear/reset), never a
        # full table scan: entry_count/chunk_count used to walk every column
        # on every call, which made per-parse measurement quadratic.
        self._entries = 0
        self._chunks = 0
        self._size_cache: tuple[int, int] | None = None  # (entry_count, bytes)
        if events is not None:
            self._install_events(events)

    def get(self, rule: int, pos: int) -> tuple[int, Any] | None:
        column = self._columns.get(pos)
        if column is None:
            return None
        chunk = column.chunks[rule // self._chunk_size]
        if chunk is None:
            return None
        return chunk[rule % self._chunk_size]

    def put(self, rule: int, pos: int, entry: tuple[int, Any]) -> None:
        column = self._columns.get(pos)
        if column is None:
            column = self._columns[pos] = _Column(self._n_chunks)
        index = rule // self._chunk_size
        chunk = column.chunks[index]
        if chunk is None:
            chunk = column.chunks[index] = [_ABSENT] * self._chunk_size
            self._chunks += 1
        slot = rule % self._chunk_size
        if chunk[slot] is None:
            self._entries += 1
        chunk[slot] = entry

    def _install_events(self, events) -> None:
        """Shadow ``get``/``put`` with event-reporting closures (instance
        attributes only; the uninstrumented class methods are untouched)."""
        plain_get = ChunkedMemoTable.get
        plain_put = ChunkedMemoTable.put

        def get(rule: int, pos: int):
            entry = plain_get(self, rule, pos)
            if entry is None:
                events.miss(rule, pos)
            else:
                events.hit(rule, pos, entry)
            return entry

        def put(rule: int, pos: int, entry) -> None:
            plain_put(self, rule, pos, entry)
            events.store(rule, pos, entry)

        self.get = get
        self.put = put

    def clear(self) -> None:
        self._columns.clear()
        self._entries = 0
        self._chunks = 0
        self._size_cache = None

    def reset(self) -> "ChunkedMemoTable":
        """Drop all columns in place, keeping the table object and its
        chunk geometry for reuse across parses."""
        self.clear()
        return self

    def entry_count(self) -> int:
        return self._entries

    def chunk_count(self) -> int:
        """Number of allocated chunk objects (the paper's space metric)."""
        return self._chunks

    def column_count(self) -> int:
        return len(self._columns)

    def size_bytes(self) -> int:
        # Cached per entry count; every store adds an entry (one result per
        # ⟨rule, pos⟩), so a changed table always has a changed count.
        cached = self._size_cache
        if cached is not None and cached[0] == self._entries:
            return cached[1]
        size = sizeof_deep(self._columns)
        self._size_cache = (self._entries, size)
        return size


def make_memo_table(
    rule_names: list[str],
    chunked: bool,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    events=None,
):
    """Factory selecting the table organization for a parser run."""
    cls = ChunkedMemoTable if chunked else DictMemoTable
    return cls(rule_names, chunk_size, events=events)
