"""Shared machinery for parser backends.

:class:`ParserBase` provides what every backend (interpreters and generated
parsers) needs: the input text, farthest-failure tracking for error messages,
and accounting hooks used by the benchmarks to measure memoization cost.

The farthest-failure heuristic is the standard one for PEG parsing: because
ordered choice backtracks silently, the most useful error position is the
rightmost offset any expression failed at, together with the set of
human-readable descriptions of what was expected there.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Any

from repro.errors import ParseDepthError, ParseError
from repro.locations import LineIndex, Location


class ParserBase:
    """Base class holding input text and failure bookkeeping."""

    #: Failure sentinel used in ``(pos, value)`` result pairs.
    FAIL = -1

    def __init__(self, text: str):
        self._text = text
        self._length = len(text)
        self._fail_pos = -1
        self._fail_expected: list[str] = []
        self._fused_pending: list[tuple[Any, int]] = []
        self._line_index: LineIndex | None = None
        self._source = "<input>"
        self._failed = False

    def reset(self, text: str, source: str = "<input>") -> "ParserBase":
        """Point this parser at a new input, reusing allocated structures.

        Clears failure tracking, the line index, and (via :meth:`_reset_memo`)
        the memo table *in place* — no per-parse reallocation.  When ``text``
        is the very input the parser already holds, the memo table and line
        index are *kept*: every stored entry is still valid (entries depend
        only on the text), so a repeated ``parse()`` of the same input in a
        session is memo-warm instead of re-deriving the whole table.  Returns
        ``self`` so ``parser.reset(text).parse()`` chains.

        Retention is skipped when the previous parse *failed*: memo hits do
        not replay the expected-set records their original computation made,
        so a warm re-parse of a failing input would rebuild an incomplete
        farthest-failure frontier.  Failed parses stay cold and exact.
        """
        same_text = not self._failed and (text is self._text or text == self._text)
        self._failed = False
        self._text = text
        self._length = len(text)
        self._fail_pos = -1
        self._fail_expected = []
        self._fused_pending.clear()
        self._source = source
        if not same_text:
            self._line_index = None
            self._reset_memo()
        return self

    def rebind(
        self,
        text: str,
        line_index: LineIndex | None = None,
        source: str | None = None,
    ) -> "ParserBase":
        """Re-point at edited text *without* touching memoized state.

        The incremental-session path: the caller has already dropped or
        shifted the affected memo entries (:mod:`repro.incremental`) and may
        supply the incrementally spliced line index so locations and error
        messages never pay an O(n) rebuild.  Failure tracking is cleared —
        the farthest-failure frontier is a per-parse quantity.
        """
        self._text = text
        self._length = len(text)
        self._fail_pos = -1
        self._fail_expected = []
        self._fused_pending.clear()
        self._line_index = line_index
        self._failed = False
        if source is not None:
            self._source = source
        return self

    def _reset_memo(self) -> None:
        """Clear memoized state in place (overridden by memoizing backends)."""

    # -- location tracking -----------------------------------------------------

    def _location(self, pos: int) -> Location:
        """Line/column location of ``pos``, O(log lines) via a cached index.

        The index (:class:`repro.locations.LineIndex`) is built once per
        input — a single C-level scan that recognizes ``\\n``, ``\\r\\n``
        and lone ``\\r`` terminators — and answers every later query by
        binary search, so error construction stays cheap on multi-megabyte
        inputs with any line-ending mix.
        """
        index = self._line_index
        if index is None:
            index = self._line_index = LineIndex(self._text)
        return index.location(pos, self._source)

    # -- error tracking ------------------------------------------------------

    def _expected(self, pos: int, what: str) -> None:
        """Record a failed expectation at ``pos`` (keeps only the farthest).

        Expectations at the same position are deduplicated (heavy
        backtracking retries the same terminal many times) while preserving
        first-seen order.
        """
        if pos > self._fail_pos:
            self._fail_pos = pos
            self._fail_expected = [what]
        elif pos == self._fail_pos and what not in self._fail_expected:
            self._fail_expected.append(what)

    def _merge_expected(self, messages: list[str]) -> None:
        """Merge a constant expected table into the farthest-failure set.

        Called by ``errors``-optimized generated parsers on the
        equal-position path.  The current value of ``_fail_expected`` may
        *be* one of the generated module's shared constant lists, so new
        messages are added to a copy, never in place.
        """
        current = self._fail_expected
        if current is messages:
            return
        merged: list[str] | None = None
        for message in messages:
            if message not in current:
                if merged is None:
                    merged = list(current)
                    current = merged
                merged.append(message)
        if merged is not None:
            self._fail_expected = merged

    def _literal_failure_pos(self, pos: int, literal: str, ignore_case: bool = False) -> int:
        """Offset of the first mismatching character of a failed literal.

        Failure positions take the trie view of a literal: ``"publix"``
        against ``"public"`` fails at the ``x``, not at the ``p``.  Every
        backend records literal failures this way, which makes
        farthest-failure positions invariant under common-prefix folding
        (which splits shared literal prefixes into nested sequences).
        """
        text = self._text
        limit = min(self._length - pos, len(literal))
        matched = 0
        if ignore_case:
            while matched < limit and text[pos + matched].lower() == literal[matched].lower():
                matched += 1
        else:
            while matched < limit and text[pos + matched] == literal[matched]:
                matched += 1
        return pos + matched

    def _replay_fused(self, token: Any, pos: int) -> None:
        """Re-run one noted fused region through the ordinary machinery.

        Overridden by backends that execute fused ``Regex`` scans; ``token``
        is whatever the backend appended to ``_fused_pending`` (the node, a
        compiled fallback closure, a generated replay function).  The replay
        re-evaluates the region's original expression at ``pos`` purely for
        its ``_expected`` side effects.
        """

    def _drain_fused(self) -> None:
        """Replay every noted fused scan into the expected-set bookkeeping.

        A fused region is one C-level scan: it cannot record which terminal
        inside it failed, or the failures its successful match stepped over
        (a failing final repetition iteration, rejected earlier choice
        alternatives, predicate probes — which may lie *beyond* the match
        end).  Since the farthest-failure frontier never influences control
        flow, backends just note ``(token, pos)`` per non-silent scan and
        this drain reproduces the records lazily, only when an error message
        is actually demanded.  The frontier merge is max-position plus
        set-union — commutative and idempotent — so replay order and
        duplicate evaluations cannot change the resulting offset or set.
        """
        pending = self._fused_pending
        if not pending:
            return
        self._fused_pending = []
        replay = self._replay_fused
        for token, pos in pending:
            replay(token, pos)

    def parse_error(self) -> ParseError:
        """Build a :class:`ParseError` at the farthest failure position."""
        self._failed = True  # disables same-text memo retention on reset()
        self._drain_fused()
        pos = max(self._fail_pos, 0)
        location = self._location(pos)
        found = repr(self._text[pos]) if pos < self._length else "end of input"
        # Generated parsers share constant expected lists, which may repeat
        # across merges; dedupe here too, preserving first-seen order.
        expected = tuple(dict.fromkeys(self._fail_expected))[:12]
        return ParseError(
            f"syntax error at {found}",
            offset=pos,
            line=location.line,
            column=location.column,
            expected=expected,
            source=self._source,
        )

    def depth_error(self, budget: int | None = None) -> ParseDepthError:
        """Build the structured diagnostic for an exhausted recursion budget.

        Called by backends *after* a :class:`RecursionError` has unwound (the
        stack is free again).  The reported position is the farthest offset
        the parse reached before running out of depth — the same heuristic
        :meth:`parse_error` uses — so callers get an actionable location
        instead of a bare interpreter traceback.
        """
        self._failed = True
        try:
            self._drain_fused()
        except RecursionError:  # replay itself may be deep; best effort only
            self._fused_pending.clear()
        pos = max(self._fail_pos, 0)
        location = self._location(pos)
        return ParseDepthError(
            "input nesting exceeds the parser's depth budget",
            offset=pos,
            line=location.line,
            column=location.column,
            expected=(),
            source=self._source,
            budget=budget,
        )

    def check_complete(self, pos: int, value: Any) -> Any:
        """Raise unless ``pos`` consumed the whole input; else return value."""
        if pos == self.FAIL or pos < self._length:
            raise self.parse_error()
        return value

    # -- memoization accounting (overridden by memoizing backends) -----------

    def memo_entry_count(self) -> int:
        """Number of memoized results currently stored."""
        return 0

    def memo_size_bytes(self) -> int:
        """Approximate bytes held by memoization structures."""
        return 0


def _stack_depth() -> int:
    """Number of frames currently on the Python stack (O(depth))."""
    frame = sys._getframe()
    depth = 0
    while frame is not None:
        depth += 1
        frame = frame.f_back
    return depth


@contextmanager
def recursion_budget(frames: int | None):
    """Temporarily cap recursion at ``frames`` *additional* stack frames.

    ``None`` is a no-op.  The cap is relative to the current stack depth, so
    a budget means the same thing whether the parse is entered from a
    shallow script or from deep inside a framework.  Exceeding it raises
    :class:`RecursionError`, which the parse entry points convert into a
    structured :class:`~repro.errors.ParseDepthError` — the budget exists so
    that degradation is a *diagnostic*, not a stack overflow.
    """
    if frames is None:
        yield
        return
    if frames < 1:
        raise ValueError("depth budget must be a positive frame count")
    previous = sys.getrecursionlimit()
    # The budget both tightens and widens: a parse-service worker uses it to
    # accept deeper nesting than the interpreter default *and* to fail with
    # a diagnostic well before the hard worker recursion ceiling.
    sys.setrecursionlimit(_stack_depth() + frames)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


def sizeof_deep(obj: Any, _seen: set[int] | None = None) -> int:
    """Approximate deep ``sys.getsizeof`` for memo-table measurement.

    Follows dicts, lists, tuples and objects with ``__dict__``/``__slots__``;
    shared objects are counted once.  Traversal is iterative (explicit
    stack), so arbitrarily deep structures — e.g. the memo tables built by
    the E3/E5 benchmarks — cannot hit Python's recursion limit.
    """
    seen = _seen if _seen is not None else set()
    total = 0
    stack = [obj]
    while stack:
        current = stack.pop()
        if current is None:
            continue
        oid = id(current)
        if oid in seen:
            continue
        seen.add(oid)
        total += sys.getsizeof(current)
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        else:
            attrs = getattr(current, "__dict__", None)
            if attrs is not None:
                stack.append(attrs)
            slots = getattr(type(current), "__slots__", ())
            if isinstance(slots, str):
                slots = (slots,)
            for slot in slots:
                if hasattr(current, slot):
                    stack.append(getattr(current, slot))
    return total
