"""Shared machinery for parser backends.

:class:`ParserBase` provides what every backend (interpreters and generated
parsers) needs: the input text, farthest-failure tracking for error messages,
and accounting hooks used by the benchmarks to measure memoization cost.

The farthest-failure heuristic is the standard one for PEG parsing: because
ordered choice backtracks silently, the most useful error position is the
rightmost offset any expression failed at, together with the set of
human-readable descriptions of what was expected there.
"""

from __future__ import annotations

import sys
from bisect import bisect_right
from typing import Any

from repro.errors import ParseError
from repro.locations import Location, line_column


class ParserBase:
    """Base class holding input text and failure bookkeeping."""

    #: Failure sentinel used in ``(pos, value)`` result pairs.
    FAIL = -1

    def __init__(self, text: str):
        self._text = text
        self._length = len(text)
        self._fail_pos = -1
        self._fail_expected: list[str] = []
        self._line_starts: list[int] | None = None
        self._source = "<input>"

    # -- location tracking -----------------------------------------------------

    def _location(self, pos: int) -> Location:
        """Line/column location of ``pos``, O(log lines) via a cached index."""
        starts = self._line_starts
        if starts is None:
            starts = [0]
            find = self._text.find
            offset = find("\n")
            while offset != -1:
                starts.append(offset + 1)
                offset = find("\n", offset + 1)
            self._line_starts = starts
        line = bisect_right(starts, pos)
        return Location(self._source, line, pos - starts[line - 1] + 1)

    # -- error tracking ------------------------------------------------------

    def _expected(self, pos: int, what: str) -> None:
        """Record a failed expectation at ``pos`` (keeps only the farthest)."""
        if pos > self._fail_pos:
            self._fail_pos = pos
            self._fail_expected = [what]
        elif pos == self._fail_pos:
            self._fail_expected.append(what)

    def parse_error(self) -> ParseError:
        """Build a :class:`ParseError` at the farthest failure position."""
        pos = max(self._fail_pos, 0)
        line, column = line_column(self._text, pos)
        found = repr(self._text[pos]) if pos < self._length else "end of input"
        return ParseError(
            f"syntax error at {found}",
            offset=pos,
            line=line,
            column=column,
            expected=tuple(self._fail_expected[:12]),
        )

    def check_complete(self, pos: int, value: Any) -> Any:
        """Raise unless ``pos`` consumed the whole input; else return value."""
        if pos == self.FAIL or pos < self._length:
            raise self.parse_error()
        return value

    # -- memoization accounting (overridden by memoizing backends) -----------

    def memo_entry_count(self) -> int:
        """Number of memoized results currently stored."""
        return 0

    def memo_size_bytes(self) -> int:
        """Approximate bytes held by memoization structures."""
        return 0


def sizeof_deep(obj: Any, _seen: set[int] | None = None) -> int:
    """Approximate deep ``sys.getsizeof`` for memo-table measurement.

    Follows dicts, lists, tuples and objects with ``__dict__``/``__slots__``;
    shared objects are counted once.
    """
    seen = _seen if _seen is not None else set()
    oid = id(obj)
    if oid in seen or obj is None:
        return 0
    seen.add(oid)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, val in obj.items():
            size += sizeof_deep(key, seen) + sizeof_deep(val, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += sizeof_deep(item, seen)
    else:
        attrs = getattr(obj, "__dict__", None)
        if attrs is not None:
            size += sizeof_deep(attrs, seen)
        slots = getattr(type(obj), "__slots__", ())
        for slot in slots:
            if hasattr(obj, slot):
                size += sizeof_deep(getattr(obj, slot), seen)
    return size
