"""Working with generic ASTs: visitors, transformers, dumping, JSON.

Generic productions give every language a uniform tree type
(:class:`~repro.runtime.node.GNode`), so one set of tools serves all of
them:

- :class:`Visitor` — dispatch on node names via ``visit_<Name>`` methods
  (``visit_default`` catches the rest); non-node children are passed
  through unvisited.
- :class:`Transformer` — like Visitor but rebuilds: each method returns the
  replacement value for its node; the default rebuilds the node with
  transformed children.
- :func:`dump_tree` — human-readable indented rendering.
- :func:`node_to_json` / :func:`node_from_json` — lossless (up to
  locations) serialization of trees whose leaves are strings/None.
"""

from __future__ import annotations

from typing import Any

from repro.locations import Location
from repro.runtime.node import GNode


class Visitor:
    """Name-dispatched read-only traversal.

    Subclass and define ``visit_Add(self, node)`` etc.; call ``visit`` on
    the root.  Unhandled nodes go to ``visit_default``, which by default
    visits the children and returns None.
    """

    def visit(self, value: Any) -> Any:
        if isinstance(value, GNode):
            method = getattr(self, f"visit_{value.name}", None)
            if method is not None:
                return method(value)
            return self.visit_default(value)
        if isinstance(value, (list, tuple)):
            for item in value:
                self.visit(item)
            return None
        return None

    def visit_default(self, node: GNode) -> Any:
        self.visit_children(node)
        return None

    def visit_children(self, node: GNode) -> None:
        for child in node.children:
            self.visit(child)


class Transformer:
    """Name-dispatched rebuilding traversal (bottom-up).

    ``transform_<Name>`` methods receive a node whose children have already
    been transformed and return its replacement (any value).  The default
    rebuilds the node unchanged.
    """

    def transform(self, value: Any) -> Any:
        if isinstance(value, GNode):
            rebuilt = GNode(
                value.name,
                tuple(self.transform(child) for child in value.children),
                value.location,
            )
            method = getattr(self, f"transform_{value.name}", None)
            if method is not None:
                return method(rebuilt)
            return self.transform_default(rebuilt)
        if isinstance(value, list):
            return [self.transform(item) for item in value]
        if isinstance(value, tuple):
            return tuple(self.transform(item) for item in value)
        return value

    def transform_default(self, node: GNode) -> Any:
        return node


def dump_tree(value: Any, indent: int = 0, max_depth: int | None = None) -> str:
    """Indented, one-node-per-line rendering of a tree."""
    pad = "  " * indent
    if max_depth is not None and indent >= max_depth:
        return f"{pad}..."
    if isinstance(value, GNode):
        location = f"  @{value.location}" if value.location else ""
        if not value.children:
            return f"{pad}{value.name}{location}"
        lines = [f"{pad}{value.name}{location}"]
        for child in value.children:
            lines.append(dump_tree(child, indent + 1, max_depth))
        return "\n".join(lines)
    if isinstance(value, (list, tuple)):
        if not value:
            return f"{pad}[]"
        lines = [f"{pad}["]
        for item in value:
            lines.append(dump_tree(item, indent + 1, max_depth))
        lines.append(f"{pad}]")
        return "\n".join(lines)
    return f"{pad}{value!r}"


def node_to_json(value: Any) -> Any:
    """Convert a tree to JSON-serializable structures.

    Nodes become ``{"$node": name, "children": […], "location": […]?}``;
    lists/tuples become lists; strings, numbers, bools and None pass
    through.
    """
    if isinstance(value, GNode):
        encoded: dict[str, Any] = {
            "$node": value.name,
            "children": [node_to_json(child) for child in value.children],
        }
        if value.location is not None:
            loc = value.location
            encoded["location"] = [loc.source, loc.line, loc.column]
        return encoded
    if isinstance(value, (list, tuple)):
        return [node_to_json(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"cannot serialize {type(value).__name__} to JSON")


def node_from_json(value: Any) -> Any:
    """Inverse of :func:`node_to_json` (tuples come back as lists)."""
    if isinstance(value, dict):
        if "$node" not in value:
            raise ValueError("not a serialized GNode: missing $node")
        location = None
        if "location" in value:
            source, line, column = value["location"]
            location = Location(source, line, column)
        return GNode(
            value["$node"],
            tuple(node_from_json(child) for child in value["children"]),
            location,
        )
    if isinstance(value, list):
        return [node_from_json(item) for item in value]
    return value
