"""Grammar interpreters.

- :class:`PackratInterpreter` — memoizing (linear-time) interpretation;
  the library's executable reference semantics and testing oracle.
- :class:`BacktrackInterpreter` — plain backtracking interpretation, the
  naive-PEG baseline used by the linearity experiment (E4).
"""

from typing import Any

from repro.interp.closures import ClosureParser
from repro.interp.evaluator import GrammarInterpreter
from repro.interp.trace import TraceEvent, format_trace, trace_parse, trace_statistics
from repro.peg.grammar import Grammar


class PackratInterpreter(GrammarInterpreter):
    """Memoizing grammar interpreter (packrat parsing)."""

    def __init__(self, grammar: Grammar, chunked: bool = True, profile=None):
        super().__init__(grammar, memoize=True, chunked=chunked, profile=profile)


class BacktrackInterpreter(GrammarInterpreter):
    """Non-memoizing grammar interpreter (naive backtracking)."""

    def __init__(self, grammar: Grammar, profile=None):
        super().__init__(grammar, memoize=False, profile=profile)


__all__ = [
    "GrammarInterpreter", "PackratInterpreter", "BacktrackInterpreter",
    "ClosureParser",
    "TraceEvent", "format_trace", "trace_parse", "trace_statistics",
]
