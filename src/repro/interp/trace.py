"""Parse tracing: watch the packrat parser think.

``trace_parse`` runs the grammar interpreter over an input while recording
every production application — position, nesting depth, outcome (matched
span, failure, or memo hit) — and returns the events alongside the parse
result.  ``format_trace`` renders them as an indented log:

    Expression @0
      Term @0
        Number @0            = 0:1
      Term @0                = 0:1
      Number @2 (memo)       = fail

This is the grammar author's debugging view: where the parser backtracked,
which productions were re-asked (memo hits), and where the farthest
failure came from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ParseError
from repro.interp.evaluator import GrammarInterpreter, _Run


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One production application."""

    depth: int
    production: str
    position: int
    end: int  # -1 on failure
    from_memo: bool

    @property
    def matched(self) -> bool:
        return self.end >= 0


class _TracingRun(_Run):
    """A run that records apply() outcomes."""

    def __init__(self, interpreter, text, source, events: list[TraceEvent], limit: int):
        super().__init__(interpreter, text, source)
        self._events = events
        self._depth = 0
        self._limit = limit

    def apply(self, name: str, pos: int):
        from_memo = False
        if self._memo is not None:
            production = self._interp._productions.get(name)
            if production is not None and not production.transient:
                from_memo = self._memo.get(production.index, pos) is not None
        self._depth += 1
        try:
            result = super().apply(name, pos)
        finally:
            self._depth -= 1
        if len(self._events) < self._limit:
            self._events.append(
                TraceEvent(self._depth, name, pos, result[0], from_memo)
            )
        return result


def trace_parse(
    interpreter: GrammarInterpreter,
    text: str,
    start: str | None = None,
    source: str = "<input>",
    limit: int = 100_000,
) -> tuple[Any, list[TraceEvent], ParseError | None]:
    """Parse with tracing.

    Returns ``(value, events, error)`` — on failure ``value`` is None and
    ``error`` carries the usual farthest-failure diagnosis.  ``events`` are
    in completion order (post-order).  At most ``limit`` events are kept.
    """
    events: list[TraceEvent] = []
    run = _TracingRun(interpreter, text, source, events, limit)
    interpreter._last_run = run
    start_name = start or interpreter.grammar.start
    pos, value = run.apply(start_name, 0)
    if pos < 0 or pos < len(text):
        return None, events, run.parse_error()
    return value, events, None


def format_trace(events: list[TraceEvent], max_events: int = 200) -> str:
    """Indented, human-readable rendering of a trace."""
    lines = []
    for event in events[:max_events]:
        indent = "  " * event.depth
        outcome = f"= {event.position}:{event.end}" if event.matched else "= fail"
        memo = " (memo)" if event.from_memo else ""
        lines.append(f"{indent}{event.production} @{event.position}{memo}  {outcome}")
    if len(events) > max_events:
        lines.append(f"... {len(events) - max_events} more events")
    return "\n".join(lines)


def trace_statistics(events: list[TraceEvent]) -> dict[str, Any]:
    """Aggregate statistics: applications, memo hits, failures, re-asks."""
    applications = len(events)
    memo_hits = sum(1 for e in events if e.from_memo)
    failures = sum(1 for e in events if not e.matched)
    asked: dict[tuple[str, int], int] = {}
    for event in events:
        key = (event.production, event.position)
        asked[key] = asked.get(key, 0) + 1
    reasked = sum(1 for count in asked.values() if count > 1)
    return {
        "applications": applications,
        "memo_hits": memo_hits,
        "failures": failures,
        "distinct_questions": len(asked),
        "reasked_questions": reasked,
    }
