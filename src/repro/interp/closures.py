"""Closure-compiled parsing: a third execution strategy.

Between interpreting the grammar IR node by node (:mod:`repro.interp`) and
generating Python source (:mod:`repro.codegen`) sits a classic middle
ground: *closure compilation*.  Each expression is compiled — once, ahead
of parsing — into a Python closure ``match(state, pos) -> (pos, value)``;
the IR dispatch, contribution checks, and value-shape decisions all happen
at compile time, so the parse loop runs straight-line closure calls.

The semantics are identical to the other backends (shared value model from
:mod:`repro.peg.values`; the property tests compare all three), and the
benchmarks place it where the technique belongs: faster than the
tree-walking interpreter, slower than generated source.

Usage::

    parser = ClosureParser(prepared.grammar, chunked=True)
    value = parser.parse(text)
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.fusable import compiled_pattern
from repro.errors import AnalysisError
from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Regex,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Production, ValueKind
from repro.peg.values import binding_names, contributes, kind_lookup, node_name
from repro.runtime.actionlib import ACTION_GLOBALS
from repro.runtime.base import ParserBase
from repro.runtime.memo import IncrementalMemoTable, make_memo_table
from repro.runtime.node import GNode

FAIL = -1
FAILPAIR = (-1, None)

#: A compiled matcher: (run-state, position) -> (new position | -1, value).
Matcher = Callable[["_State", int], tuple[int, Any]]


class _State(ParserBase):
    """Mutable per-parse state threaded through the closures."""

    __slots__ = ("memo", "env")

    def __init__(self, text: str, memo, source: str):
        super().__init__(text)
        self.memo = memo
        self.env: dict[str, Any] = {}
        self._source = source

    def _replay_fused(self, token: Any, pos: int) -> None:
        # ``token`` is the compiled fallback matcher for the fused region's
        # original expression; running it reproduces the ``_expected``
        # records the single-scan path could not make.
        token(self, pos)


class _IncrementalState(_State):
    """Parse state that tracks the *examined* watermark (incremental mode).

    ``examined`` is the exclusive end of the span of positions the current
    memoized-production frame has read — consumption, lookahead probes and
    failed expectations alike.  The memoized wrapper saves/resets/restores
    it around each frame so every memo entry records exactly the input span
    its cached outcome depends on (see docs/incremental.md).
    """

    __slots__ = ("examined",)

    def __init__(self, text: str, memo, source: str):
        super().__init__(text, memo, source)
        self.examined = 0

    def _expected(self, pos: int, what: str) -> None:
        # A failed expectation at ``pos`` read the character there (or saw
        # end of input), so the outcome depends on positions up to pos + 1.
        if pos >= self.examined:
            self.examined = pos + 1
        super()._expected(pos, what)


class _ProfiledState(_State):
    """Parse state that additionally attributes farthest-failure advances.

    ``ParserBase`` is not slotted, so the production stack and profile live
    in the instance ``__dict__`` — only profiled parses allocate them.
    """

    __slots__ = ()

    def __init__(self, text: str, memo, source: str, profile):
        super().__init__(text, memo, source)
        self.profile = profile
        self.prod_stack: list[str] = []

    def _expected(self, pos: int, what: str) -> None:
        if pos > self._fail_pos and self.prod_stack:
            self.profile.record_farthest(self.prod_stack[-1])
        super()._expected(pos, what)


class ClosureParser:
    """Compile a grammar to closures; construct once, parse many times.

    With ``profile=`` (a :class:`repro.profile.ParseProfile`) the closures
    are compiled with instrumentation baked in; without it the compiled
    closures are exactly the uninstrumented ones — there is no disabled-probe
    branch on the hot path.
    """

    def __init__(
        self,
        grammar: Grammar,
        chunked: bool = True,
        profile=None,
        incremental: bool = False,
    ):
        grammar.validate()
        if incremental and profile is not None:
            raise AnalysisError(
                "incremental closure parsers do not support profile=; "
                "attach the profile to the IncrementalSession instead"
            )
        self.grammar = grammar
        self.chunked = chunked
        self._profile = profile
        self._incremental = incremental
        self._kind_of = kind_lookup(grammar)
        self._with_location = "withLocation" in grammar.options
        # Incremental mode memoizes *every* production (not just the ones
        # the transient heuristic would keep): an edit reuses entries at the
        # granularity they were stored, and un-memoized structural glue
        # (single-call-site rules) would force the warm reparse to re-derive
        # the whole spine.  Memoizing more never changes results — the
        # interp-plain reference memoizes everything.
        self._memo_rules: list[str] = [
            p.name
            for p in grammar.productions
            if incremental or not p.is_transient
        ]
        self._memo_index = {name: i for i, name in enumerate(self._memo_rules)}
        # Production matchers are filled in after compilation so that
        # recursive references resolve through one indirection.
        self._productions: dict[str, Matcher] = {}
        for production in grammar.productions:
            self._productions[production.name] = self._compile_production(production)
        self._last_state: _State | None = None

    # -- public API ---------------------------------------------------------------

    def parse(self, text: str, start: str | None = None, source: str = "<input>") -> Any:
        state = self._new_state(text, source)
        matcher = self._matcher_for(start or self.grammar.start)
        try:
            pos, value = matcher(state, 0)
        except RecursionError:
            # Deep nesting is an input property, not an internal fault:
            # degrade into a structured diagnostic once the stack unwinds.
            raise state.depth_error() from None
        if pos < 0 or pos < len(text):
            raise state.parse_error()
        return value

    def match_prefix(self, text: str, start: str | None = None) -> tuple[int, Any]:
        state = self._new_state(text, "<input>")
        return self._matcher_for(start or self.grammar.start)(state, 0)

    def recognize(self, text: str, start: str | None = None) -> bool:
        pos, _ = self.match_prefix(text, start)
        return pos == len(text)

    def memo_entry_count(self) -> int:
        if self._last_state is None or self._last_state.memo is None:
            return 0
        return self._last_state.memo.entry_count()

    def _new_state(self, text: str, source: str) -> _State:
        profile = self._profile
        if profile is not None:
            from repro.profile.collector import MemoEvents

            memo = make_memo_table(
                self._memo_rules,
                chunked=self.chunked,
                events=MemoEvents(profile, self._memo_rules),
            )
            state: _State = _ProfiledState(text, memo, source, profile)
        elif self._incremental:
            memo = IncrementalMemoTable(self._memo_rules).resize(len(text))
            state = _IncrementalState(text, memo, source)
        else:
            memo = make_memo_table(self._memo_rules, chunked=self.chunked)
            state = _State(text, memo, source)
        self._last_state = state
        return state

    # -- incremental reparsing (driven by repro.incremental) -----------------------

    def incremental_state(self, text: str = "", source: str = "<input>") -> _IncrementalState:
        """A persistent parse state whose memo table survives across edits.

        Only available on parsers built with ``incremental=True`` (whose
        closures maintain the examined watermark the reuse test needs).
        """
        if not self._incremental:
            raise AnalysisError("parser was not compiled with incremental=True")
        memo = IncrementalMemoTable(self._memo_rules).resize(len(text))
        state = _IncrementalState(text, memo, source)
        self._last_state = state
        return state

    def reparse(self, state: _IncrementalState, start: str | None = None) -> Any:
        """Parse ``state``'s current text, serving surviving memo entries.

        The caller (:class:`repro.incremental.IncrementalSession`) has
        already applied the edit to the memo table and rebound the state at
        the new text; this just runs the closures over it.  Raises
        :class:`ParseError` on failure like :meth:`parse`.
        """
        state._fail_pos = -1
        state._fail_expected = []
        state._fused_pending.clear()
        state.examined = 0
        matcher = self._matcher_for(start or self.grammar.start)
        try:
            pos, value = matcher(state, 0)
        except RecursionError:
            raise state.depth_error() from None
        if pos < 0 or pos < state._length:
            raise state.parse_error()
        return value

    def _matcher_for(self, name: str) -> Matcher:
        matcher = self._productions.get(name)
        if matcher is None:
            raise AnalysisError(f"undefined production {name!r}")
        return matcher

    # -- production compilation ---------------------------------------------------------

    def _compile_production(self, production: Production) -> Matcher:
        alternatives = [
            self._compile_alternative(production, alternative, index)
            for index, alternative in enumerate(production.alternatives)
        ]

        def run_alternatives(state: _State, pos: int) -> tuple[int, Any]:
            for alternative in alternatives:
                result = alternative(state, pos)
                if result[0] >= 0:
                    return result
            return FAILPAIR

        if self._incremental:
            index = self._memo_index[production.name]

            def memoized_incremental(state: _State, pos: int) -> tuple[int, Any]:
                # Entries are relative: ((span, value), rel_examined) where
                # span = next_pos - pos (-1 marks failure) and rel_examined
                # is the exclusive width of the region this computation read
                # — relative so the table relocates across edits by splicing
                # columns, never rewriting entries.  The watermark is
                # saved/reset around the frame so the entry records only
                # *this* production's dependencies, then folded back into
                # the parent's watermark.
                memo = state.memo
                col = memo._cols[pos]
                hit = col[index] if col is not None else None
                if hit is not None:
                    examined = pos + hit[1]
                    if examined > state.examined:
                        state.examined = examined
                    pair = hit[0]
                    span = pair[0]
                    if span < 0:
                        return FAILPAIR
                    return (pos + span, pair[1])
                saved = state.examined
                state.examined = pos
                result = run_alternatives(state, pos)
                examined = state.examined
                end = result[0]
                if end > examined:
                    examined = end
                memo.put(
                    index,
                    pos,
                    (
                        (end - pos, result[1]) if end >= 0 else FAILPAIR,
                        examined - pos,
                    ),
                )
                state.examined = examined if examined > saved else saved
                return result

            inner = memoized_incremental
        elif production.is_transient:
            inner = run_alternatives
        else:
            index = self._memo_index[production.name]

            def memoized(state: _State, pos: int) -> tuple[int, Any]:
                memo = state.memo
                hit = memo.get(index, pos)
                if hit is not None:
                    return hit
                result = run_alternatives(state, pos)
                memo.put(index, pos, result)
                return result

            inner = memoized

        profile = self._profile
        if profile is None:
            return inner

        name = production.name

        def profiled(state: _State, pos: int) -> tuple[int, Any]:
            profile.invoke(name)
            stack = state.prod_stack
            stack.append(name)
            try:
                result = inner(state, pos)
            finally:
                stack.pop()
            if result[0] < 0:
                profile.failure(name)
            else:
                profile.success(name)
            return result

        return profiled

    def _compile_alternative(self, production: Production, alternative, alt_index: int) -> Matcher:
        expr = alternative.expr
        items = expr.items if isinstance(expr, Sequence) else (expr,)
        names = tuple(binding_names(expr))
        compiled = []
        for item in items:
            compiled.append(
                (self._compile(item), contributes(item, self._kind_of), isinstance(item, Action))
            )
        build = self._compile_value_builder(production, alternative)
        profile = self._profile

        if profile is not None:
            prod_name = production.name

            def match_alternative_profiled(state: _State, pos: int) -> tuple[int, Any]:
                profile.alt_enter(prod_name, alt_index)
                saved_env = state.env
                if names:
                    state.env = dict.fromkeys(names)
                contributions: list[Any] = []
                explicit: Any = _SENTINEL
                cur = pos
                try:
                    for matcher, contributing, is_action in compiled:
                        npos, value = matcher(state, cur)
                        if npos < 0:
                            profile.alt_fail(prod_name, alt_index, cur - pos)
                            return FAILPAIR
                        cur = npos
                        if contributing:
                            contributions.append(value)
                            if is_action:
                                explicit = value
                    profile.alt_success(prod_name, alt_index)
                    return cur, build(state, pos, cur, contributions, explicit)
                finally:
                    state.env = saved_env

            return match_alternative_profiled

        def match_alternative(state: _State, pos: int) -> tuple[int, Any]:
            saved_env = state.env
            if names:
                state.env = dict.fromkeys(names)
            contributions: list[Any] = []
            explicit: Any = _SENTINEL
            cur = pos
            try:
                for matcher, contributing, is_action in compiled:
                    cur, value = matcher(state, cur)
                    if cur < 0:
                        return FAILPAIR
                    if contributing:
                        contributions.append(value)
                        if is_action:
                            explicit = value
                return cur, build(state, pos, cur, contributions, explicit)
            finally:
                state.env = saved_env

        return match_alternative

    def _compile_value_builder(self, production: Production, alternative):
        kind = production.kind
        if kind is ValueKind.VOID:
            return lambda state, start, end, contributions, explicit: None
        if kind is ValueKind.TEXT:
            return lambda state, start, end, contributions, explicit: state._text[start:end]
        if kind is ValueKind.GENERIC:
            label = alternative.label
            gname = node_name(production.name, label)
            with_location = self._with_location or production.has("withLocation")
            if label is None:

                def build_generic(state, start, end, contributions, explicit):
                    if len(contributions) == 1:
                        return contributions[0]
                    location = state._location(start) if with_location else None
                    return GNode(gname, tuple(contributions), location)

                return build_generic

            def build_labeled(state, start, end, contributions, explicit):
                location = state._location(start) if with_location else None
                return GNode(gname, tuple(contributions), location)

            return build_labeled

        def build_object(state, start, end, contributions, explicit):
            if explicit is not _SENTINEL:
                return explicit
            if not contributions:
                return None
            if len(contributions) == 1:
                return contributions[0]
            return tuple(contributions)

        return build_object

    # -- expression compilation ------------------------------------------------------------

    def _compile(self, expr: Expression) -> Matcher:
        if isinstance(expr, Literal):
            return self._compile_literal(expr)
        if isinstance(expr, CharClass):
            matches = expr.matches

            def match_class(state, pos):
                text = state._text
                if pos < state._length and matches(text[pos]):
                    return pos + 1, text[pos]
                state._expected(pos, "character class")
                return FAILPAIR

            return match_class
        if isinstance(expr, AnyChar):

            def match_any(state, pos):
                if pos < state._length:
                    return pos + 1, state._text[pos]
                state._expected(pos, "any character")
                return FAILPAIR

            return match_any
        if isinstance(expr, Nonterminal):
            name = expr.name
            productions = self._productions

            def match_call(state, pos):
                return productions[name](state, pos)

            return match_call
        if isinstance(expr, Sequence):
            return self._compile_sequence(expr)
        if isinstance(expr, Choice):
            branches = [
                (self._compile(branch),) for branch in expr.alternatives
            ]

            def match_choice(state, pos):
                for (branch,) in branches:
                    result = branch(state, pos)
                    if result[0] >= 0:
                        return result
                return FAILPAIR

            return match_choice
        if isinstance(expr, Repetition):
            item = self._compile(expr.expr)
            collect = contributes(expr.expr, self._kind_of)
            minimum = expr.min

            def match_repetition(state, pos):
                values = [] if collect else None
                count = 0
                while True:
                    npos, value = item(state, pos)
                    if npos < 0 or npos == pos:
                        break
                    pos = npos
                    count += 1
                    if collect:
                        values.append(value)
                if count < minimum:
                    return FAILPAIR
                return pos, values

            return match_repetition
        if isinstance(expr, Option):
            item = self._compile(expr.expr)
            keep = contributes(expr.expr, self._kind_of)

            def match_option(state, pos):
                npos, value = item(state, pos)
                if npos < 0:
                    return pos, None
                return npos, value if keep else None

            return match_option
        if isinstance(expr, And):
            item = self._compile(expr.expr)

            if self._incremental:
                # A *succeeding* lookahead operand leaves no failure record,
                # yet the outcome depends on everything it consumed — fold
                # its end into the watermark before rewinding.
                def match_and_incremental(state, pos):
                    npos, _ = item(state, pos)
                    if npos < 0:
                        return FAILPAIR
                    if npos > state.examined:
                        state.examined = npos
                    return pos, None

                return match_and_incremental

            def match_and(state, pos):
                npos, _ = item(state, pos)
                if npos < 0:
                    return FAILPAIR
                return pos, None

            return match_and
        if isinstance(expr, Not):
            item = self._compile(expr.expr)

            if self._incremental:

                def match_not_incremental(state, pos):
                    npos, _ = item(state, pos)
                    if npos >= 0:
                        if npos > state.examined:
                            state.examined = npos
                        state._expected(pos, "not-predicate")
                        return FAILPAIR
                    return pos, None

                return match_not_incremental

            def match_not(state, pos):
                npos, _ = item(state, pos)
                if npos >= 0:
                    state._expected(pos, "not-predicate")
                    return FAILPAIR
                return pos, None

            return match_not
        if isinstance(expr, Binding):
            item = self._compile(expr.expr)
            name = expr.name

            def match_binding(state, pos):
                npos, value = item(state, pos)
                if npos >= 0:
                    state.env[name] = value
                return npos, value

            return match_binding
        if isinstance(expr, Voided):
            item = self._compile(expr.expr)

            def match_voided(state, pos):
                npos, _ = item(state, pos)
                return npos, None

            return match_voided
        if isinstance(expr, Text):
            item = self._compile(expr.expr)

            def match_text(state, pos):
                npos, _ = item(state, pos)
                if npos < 0:
                    return FAILPAIR
                return npos, state._text[pos:npos]

            return match_text
        if isinstance(expr, Action):
            code = compile(expr.code, "<action>", "eval")

            def match_action(state, pos):
                return pos, eval(code, ACTION_GLOBALS, state.env)  # noqa: S307

            return match_action
        if isinstance(expr, Epsilon):
            return lambda state, pos: (pos, None)
        if isinstance(expr, Fail):
            message = expr.message or "nothing"

            def match_fail(state, pos):
                state._expected(pos, message)
                return FAILPAIR

            return match_fail
        if isinstance(expr, Regex):
            if self._incremental:
                # A fused scan examines an unbounded span past its match end
                # (possessive backtracking probes), which would poison the
                # watermark; incremental parsers run the region's *original*
                # expression instead, whose reads are all accounted for.
                # PR 5's replay machinery guarantees fused and unfused runs
                # report identical outcomes, offsets and expected sets.
                inner = expr.original
                if expr.capture:
                    wrapped = inner if isinstance(inner, Text) else Text(inner)
                else:
                    wrapped = Voided(inner)
                return self._compile(wrapped)
            return self._compile_regex(expr)
        if isinstance(expr, CharSwitch):
            cases = [(chars, self._compile(branch)) for chars, branch in expr.cases]
            default = self._compile(expr.default)

            if self._incremental:
                # Dispatch reads text[pos] (or sees end of input) without
                # recording anything on the skip path; account for the read.
                def match_switch_incremental(state, pos):
                    if pos >= state.examined:
                        state.examined = pos + 1
                    if pos < state._length:
                        ch = state._text[pos]
                        for chars, branch in cases:
                            if ch in chars:
                                result = branch(state, pos)
                                if result[0] >= 0:
                                    return result
                                break
                    return default(state, pos)

                return match_switch_incremental

            def match_switch(state, pos):
                if pos < state._length:
                    ch = state._text[pos]
                    for chars, branch in cases:
                        if ch in chars:
                            result = branch(state, pos)
                            if result[0] >= 0:
                                return result
                            break
                return default(state, pos)

            return match_switch
        raise AnalysisError(f"cannot compile {type(expr).__name__}")

    def _compile_regex(self, expr: Regex) -> Matcher:
        scan = compiled_pattern(expr.pattern).match
        # The fallback matcher re-runs the region's original expression for
        # its ``_expected`` side effects, deferred until an error message is
        # demanded (see ParserBase._drain_fused).
        fallback = self._compile(expr.original)
        capture = expr.capture
        silent = expr.silent
        profile = self._profile
        label = expr.label or "<fused>"

        def match_fused(state, pos):
            match = scan(state._text, pos)
            if match is None:
                state._fused_pending.append((fallback, pos))
                return FAILPAIR
            if not silent:
                state._fused_pending.append((fallback, pos))
            end = match.end()
            return end, state._text[pos:end] if capture else None

        if profile is None:
            return match_fused

        def match_fused_profiled(state, pos):
            profile.fused_scan(label)
            return match_fused(state, pos)

        return match_fused_profiled

    def _compile_literal(self, expr: Literal) -> Matcher:
        text_value = expr.text
        length = len(text_value)
        expected = repr(text_value)
        if expr.ignore_case:
            folded = text_value.lower()

            def match_ci(state, pos):
                end = pos + length
                chunk = state._text[pos:end]
                if chunk.lower() == folded:
                    return end, chunk
                state._expected(state._literal_failure_pos(pos, text_value, True), expected)
                return FAILPAIR

            return match_ci

        def match_literal(state, pos):
            if state._text.startswith(text_value, pos):
                return pos + length, text_value
            state._expected(state._literal_failure_pos(pos, text_value), expected)
            return FAILPAIR

        return match_literal

    def _compile_sequence(self, expr: Sequence) -> Matcher:
        parts = [
            (self._compile(item), contributes(item, self._kind_of))
            for item in expr.items
        ]

        def match_sequence(state, pos):
            contributions: list[Any] = []
            for matcher, contributing in parts:
                pos, value = matcher(state, pos)
                if pos < 0:
                    return FAILPAIR
                if contributing:
                    contributions.append(value)
            if not contributions:
                return pos, None
            if len(contributions) == 1:
                return pos, contributions[0]
            return pos, tuple(contributions)

        return match_sequence


_SENTINEL = object()
