"""Grammar interpreters: the executable reference semantics of the PEG IR.

:class:`GrammarInterpreter` walks the grammar data structure node by node to
parse input — exactly the strategy the paper contrasts with generated
parsers.  With ``memoize=True`` it is a *packrat* parser (linear time, memo
table); with ``memoize=False`` it is the naive backtracking recursive-descent
interpretation of the PEG (worst-case exponential).

The interpreter doubles as the differential-testing oracle: generated
parsers must produce semantically identical values (see the property tests).

Left-recursive grammars must be transformed before interpretation (see
:mod:`repro.transform.leftrec`); the interpreter detects untransformed left
recursion at run time and raises :class:`AnalysisError` rather than looping.
"""

from __future__ import annotations

from typing import Any

from repro.errors import AnalysisError
from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Regex,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Production, ValueKind
from repro.analysis.fusable import compiled_pattern
from repro.peg.values import binding_names, contributes, kind_lookup, node_name, pass_through
from repro.runtime.actionlib import ACTION_GLOBALS
from repro.runtime.base import ParserBase
from repro.runtime.memo import make_memo_table
from repro.runtime.node import GNode

FAIL = ParserBase.FAIL


class _CompiledAlternative:
    """Per-alternative precomputation: top-level items, contribution flags,
    binding namespace, and the generic node name."""

    __slots__ = ("items", "contributing", "bindings", "gnode_name", "label")

    def __init__(self, production: Production, label: str | None, expr: Expression, kind_of):
        self.items: tuple[Expression, ...] = (
            expr.items if isinstance(expr, Sequence) else (expr,)
        )
        self.contributing = tuple(contributes(item, kind_of) for item in self.items)
        self.bindings = tuple(binding_names(expr))
        self.gnode_name = node_name(production.name, label)
        self.label = label


class _CompiledProduction:
    __slots__ = ("name", "kind", "alternatives", "transient", "with_location", "index")

    def __init__(self, production: Production, kind_of, index: int, grammar_with_location: bool):
        self.name = production.name
        self.kind = production.kind
        self.index = index
        self.transient = production.is_transient
        self.with_location = grammar_with_location or production.has("withLocation")
        self.alternatives = tuple(
            _CompiledAlternative(production, alt.label, alt.expr, kind_of)
            for alt in production.alternatives
        )


class GrammarInterpreter:
    """Interpret a grammar directly; construct once, parse many times."""

    def __init__(
        self,
        grammar: Grammar,
        memoize: bool = True,
        chunked: bool = True,
        profile=None,
    ):
        grammar.validate()
        self.grammar = grammar
        self.memoize = memoize
        self.chunked = chunked
        #: Optional :class:`repro.profile.ParseProfile`; when set, parses run
        #: through the instrumented :class:`repro.interp.profiled.ProfilingRun`
        #: (the plain ``_Run`` hot path is untouched when unset).
        self.profile = profile
        kind_of = kind_lookup(grammar)
        with_location = "withLocation" in grammar.options
        self._productions: dict[str, _CompiledProduction] = {
            p.name: _CompiledProduction(p, kind_of, i, with_location)
            for i, p in enumerate(grammar.productions)
        }
        self._actions: dict[str, Any] = {}
        self._source_name = "<input>"
        self._last_run: _Run | None = None
        self._kind_of = kind_of
        self._contrib_cache: dict[Expression, bool] = {}

    def _contributes(self, expr: Expression) -> bool:
        cached = self._contrib_cache.get(expr)
        if cached is None:
            cached = contributes(expr, self._kind_of)
            self._contrib_cache[expr] = cached
        return cached

    # -- public API -----------------------------------------------------------

    def parse(self, text: str, start: str | None = None, source: str = "<input>") -> Any:
        """Parse ``text`` completely from ``start`` and return its value.

        Raises :class:`repro.errors.ParseError` on failure or trailing input.
        """
        run = self._run(text, source)
        try:
            pos, value = run.apply(start or self.grammar.start, 0)
        except RecursionError:
            # Deep nesting is an input property, not an internal fault:
            # degrade into a structured diagnostic once the stack unwinds.
            raise run.depth_error() from None
        if pos == FAIL:
            raise run.parse_error()
        return run.check_complete(pos, value)

    def match_prefix(self, text: str, start: str | None = None) -> tuple[int, Any]:
        """Parse a prefix of ``text``; returns ``(consumed, value)`` or
        ``(-1, None)`` when even a prefix does not match."""
        run = self._run(text, self._source_name)
        return run.apply(start or self.grammar.start, 0)

    def recognize(self, text: str, start: str | None = None) -> bool:
        """Does the whole input match?"""
        run = self._run(text, self._source_name)
        pos, _ = run.apply(start or self.grammar.start, 0)
        return pos == len(text)

    def memo_entry_count(self) -> int:
        """Memo entries stored during the most recent parse."""
        return self._last_run.memo_entry_count() if self._last_run else 0

    def memo_size_bytes(self) -> int:
        """Approximate memo bytes held after the most recent parse."""
        return self._last_run.memo_size_bytes() if self._last_run else 0

    def _run(self, text: str, source: str) -> "_Run":
        if self.profile is not None:
            from repro.interp.profiled import ProfilingRun

            run: _Run = ProfilingRun(self, text, source, self.profile)
        else:
            run = _Run(self, text, source)
        self._last_run = run
        return run

    def _compiled_action(self, code: str):
        compiled = self._actions.get(code)
        if compiled is None:
            compiled = compile(code, "<action>", "eval")
            self._actions[code] = compiled
        return compiled


class _Run(ParserBase):
    """One parse over one input text."""

    def __init__(self, interpreter: GrammarInterpreter, text: str, source: str):
        super().__init__(text)
        self._interp = interpreter
        self._source = source
        self._active: set[tuple[str, int]] = set()
        #: Set by ProfilingRun to ``profile.fused_scans``; the plain run
        #: checks one attribute per fused scan and skips all accounting.
        self._fused_counts: dict[str, int] | None = None
        if interpreter.memoize:
            names = list(interpreter._productions)
            self._memo = make_memo_table(names, chunked=interpreter.chunked)
        else:
            self._memo = None

    def _reset_memo(self) -> None:
        if self._memo is not None:
            self._memo.reset()
        self._active.clear()

    # -- memo accounting -------------------------------------------------------

    def memo_entry_count(self) -> int:
        return self._memo.entry_count() if self._memo else 0

    def memo_size_bytes(self) -> int:
        return self._memo.size_bytes() if self._memo else 0

    # -- production application --------------------------------------------------

    def apply(self, name: str, pos: int) -> tuple[int, Any]:
        prod = self._interp._productions.get(name)
        if prod is None:
            raise AnalysisError(f"undefined production {name!r}")
        memo = self._memo
        if memo is not None and not prod.transient:
            entry = memo.get(prod.index, pos)
            if entry is not None:
                return entry
        key = (name, pos)
        if key in self._active:
            raise AnalysisError(
                f"left recursion detected at runtime in production {name!r} "
                f"(grammar was not transformed; run repro.transform.leftrec first)"
            )
        self._active.add(key)
        try:
            result = self._apply_uncached(prod, pos)
        finally:
            self._active.discard(key)
        if memo is not None and not prod.transient:
            memo.put(prod.index, pos, result)
        return result

    def _apply_uncached(self, prod: _CompiledProduction, pos: int) -> tuple[int, Any]:
        for alternative in prod.alternatives:
            result = self._match_alternative(prod, alternative, pos)
            if result[0] != FAIL:
                return result
        if not prod.alternatives:
            raise AnalysisError(f"production {prod.name!r} has no alternatives")
        return FAIL, None

    def _match_alternative(
        self, prod: _CompiledProduction, alternative: _CompiledAlternative, pos: int
    ) -> tuple[int, Any]:
        env: dict[str, Any] = dict.fromkeys(alternative.bindings) if alternative.bindings else {}
        contributions: list[Any] = []
        explicit: list[Any] = []  # action results, which win for OBJECT kind
        cur = pos
        for item, contributing in zip(alternative.items, alternative.contributing):
            nxt, value = self._eval(item, cur, env)
            if nxt == FAIL:
                # The failure value carries the last good position so the
                # profiling run can estimate wasted characters; callers only
                # look at the value on success.
                return FAIL, cur
            cur = nxt
            if contributing:
                contributions.append(value)
                if isinstance(item, Action):
                    explicit.append(value)
        return cur, self._build_value(prod, alternative, pos, cur, contributions, explicit)

    def _build_value(
        self,
        prod: _CompiledProduction,
        alternative: _CompiledAlternative,
        start: int,
        end: int,
        contributions: list[Any],
        explicit: list[Any],
    ) -> Any:
        kind = prod.kind
        if kind is ValueKind.VOID:
            return None
        if kind is ValueKind.TEXT:
            return self._text[start:end]
        if kind is ValueKind.GENERIC:
            if alternative.label is None and len(contributions) == 1:
                # Pass-through alternative (e.g. ``Sum = <Add> ... / Product``):
                # don't wrap the single child in a redundant node.
                return contributions[0]
            location = self._location(start) if prod.with_location else None
            return GNode(alternative.gnode_name, tuple(contributions), location)
        # OBJECT: explicit action result wins; otherwise pass-through.
        if explicit:
            return explicit[-1]
        return pass_through(contributions)

    def _replay_fused(self, token: Any, pos: int) -> None:
        # Re-evaluate the fused region's original expression purely for its
        # expected-set records (see ParserBase._drain_fused).  The original
        # is nonterminal-free, binding-free and action-free, so the empty
        # environment is never read.
        self._eval(token.original, pos, {})

    # -- expression evaluation ------------------------------------------------------

    def _eval(self, expr: Expression, pos: int, env: dict[str, Any]) -> tuple[int, Any]:
        text = self._text
        if isinstance(expr, Literal):
            end = pos + len(expr.text)
            if expr.ignore_case:
                if text[pos:end].lower() == expr.text.lower():
                    return end, text[pos:end]
            elif text.startswith(expr.text, pos):
                return end, expr.text
            self._expected(
                self._literal_failure_pos(pos, expr.text, expr.ignore_case),
                repr(expr.text),
            )
            return FAIL, None
        if isinstance(expr, CharClass):
            if pos < self._length and expr.matches(text[pos]):
                return pos + 1, text[pos]
            self._expected(pos, "character class")
            return FAIL, None
        if isinstance(expr, AnyChar):
            if pos < self._length:
                return pos + 1, text[pos]
            self._expected(pos, "any character")
            return FAIL, None
        if isinstance(expr, Regex):
            counts = self._fused_counts
            if counts is not None:
                key = expr.label or "<fused>"
                counts[key] = counts.get(key, 0) + 1
            match = compiled_pattern(expr.pattern).match(text, pos)
            if match is None:
                self._fused_pending.append((expr, pos))
                return FAIL, None
            if not expr.silent:
                # A successful scan may still have stepped over recordable
                # failures (choice backtracks, the final repetition
                # iteration); note it for lazy error replay.
                self._fused_pending.append((expr, pos))
            end = match.end()
            return end, text[pos:end] if expr.capture else None
        if isinstance(expr, Nonterminal):
            return self.apply(expr.name, pos)
        if isinstance(expr, Sequence):
            contributions: list[Any] = []
            cur = pos
            for item in expr.items:
                cur, value = self._eval(item, cur, env)
                if cur == FAIL:
                    return FAIL, None
                if self._interp._contributes(item):
                    contributions.append(value)
            return cur, pass_through(contributions)
        if isinstance(expr, Choice):
            # The choice's dynamic value is the matched branch's raw value
            # (so binding a choice of literals captures the matched text,
            # consistently with binding a literal or character class).
            for alternative in expr.alternatives:
                cur, value = self._eval(alternative, pos, env)
                if cur != FAIL:
                    return cur, value
            return FAIL, None
        if isinstance(expr, Repetition):
            item_contributes = self._interp._contributes(expr.expr)
            values: list[Any] = []
            cur = pos
            count = 0
            while True:
                nxt, value = self._eval(expr.expr, cur, env)
                if nxt == FAIL:
                    break
                if nxt == cur:
                    break  # zero-width item: stop rather than loop forever
                cur = nxt
                count += 1
                if item_contributes:
                    values.append(value)
            if count < expr.min:
                return FAIL, None
            return cur, values if item_contributes else None
        if isinstance(expr, Option):
            cur, value = self._eval(expr.expr, pos, env)
            if cur == FAIL:
                return pos, None
            # Non-contributing items (e.g. bare literals) yield None so all
            # backends and the desugared encoding agree; capture text with
            # ``text:`` when the matched characters are wanted.
            return cur, value if self._interp._contributes(expr.expr) else None
        if isinstance(expr, And):
            cur, _ = self._eval(expr.expr, pos, env)
            if cur == FAIL:
                return FAIL, None
            return pos, None
        if isinstance(expr, Not):
            cur, _ = self._eval(expr.expr, pos, env)
            if cur == FAIL:
                return pos, None
            self._expected(pos, "not-predicate")
            return FAIL, None
        if isinstance(expr, Binding):
            cur, value = self._eval(expr.expr, pos, env)
            if cur != FAIL:
                env[expr.name] = value
            return cur, value
        if isinstance(expr, Voided):
            cur, _ = self._eval(expr.expr, pos, env)
            return cur, None
        if isinstance(expr, Text):
            cur, _ = self._eval(expr.expr, pos, env)
            if cur == FAIL:
                return FAIL, None
            return cur, text[pos:cur]
        if isinstance(expr, Action):
            compiled = self._interp._compiled_action(expr.code)
            value = eval(compiled, ACTION_GLOBALS, env)  # noqa: S307 - sandboxed namespace
            return pos, value
        if isinstance(expr, Epsilon):
            return pos, None
        if isinstance(expr, Fail):
            self._expected(pos, expr.message or "nothing")
            return FAIL, None
        if isinstance(expr, CharSwitch):
            if pos < self._length:
                ch = text[pos]
                for chars, branch in expr.cases:
                    if ch in chars:
                        cur, value = self._eval(branch, pos, env)
                        if cur != FAIL:
                            return cur, value
            return self._eval(expr.default, pos, env)
        raise TypeError(f"cannot evaluate {type(expr).__name__}")
