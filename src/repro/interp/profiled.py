"""The profiled interpreter run.

:class:`ProfilingRun` subclasses the interpreter's per-parse ``_Run`` and
overrides exactly the seams where telemetry attaches:

- ``apply`` — per-production invocation counts, success/failure outcomes,
  and the production stack used to attribute farthest-failure advances;
- ``_apply_uncached`` — per-alternative coverage (entered/succeeded),
  backtrack counts, and wasted-character estimates (the characters a failed
  alternative consumed before being abandoned);
- ``_expected`` — farthest-failure contribution attribution (charged to the
  innermost production being evaluated when the frontier advances);
- the memo table — constructed with a
  :class:`~repro.profile.collector.MemoEvents` sink, so hit/miss telemetry
  comes from the table itself (the same wiring both
  :class:`~repro.runtime.memo.DictMemoTable` and
  :class:`~repro.runtime.memo.ChunkedMemoTable` expose to any backend).

The uninstrumented ``_Run`` is untouched: an interpreter without a profile
never loads this module (see ``GrammarInterpreter._run``).
"""

from __future__ import annotations

from repro.interp.evaluator import FAIL, GrammarInterpreter, _CompiledProduction, _Run
from repro.profile.collector import MemoEvents, ParseProfile
from repro.runtime.memo import make_memo_table


class ProfilingRun(_Run):
    """One profiled parse over one input text."""

    def __init__(
        self, interpreter: GrammarInterpreter, text: str, source: str, profile: ParseProfile
    ):
        super().__init__(interpreter, text, source)
        self._profile = profile
        self._stack: list[str] = []
        # The inherited _eval counts fused Regex scans into this dict when
        # set (one attribute check on the plain path, nothing more).
        self._fused_counts = profile.fused_scans
        if self._memo is not None:
            names = list(interpreter._productions)
            self._memo = make_memo_table(
                names, chunked=interpreter.chunked, events=MemoEvents(profile, names)
            )

    def apply(self, name: str, pos: int):
        profile = self._profile
        profile.invoke(name)
        self._stack.append(name)
        try:
            result = super().apply(name, pos)
        finally:
            self._stack.pop()
        if result[0] == FAIL:
            profile.failure(name)
        else:
            profile.success(name)
        return result

    def _apply_uncached(self, prod: _CompiledProduction, pos: int):
        profile = self._profile
        name = prod.name
        for index, alternative in enumerate(prod.alternatives):
            profile.alt_enter(name, index)
            result = self._match_alternative(prod, alternative, pos)
            if result[0] != FAIL:
                profile.alt_success(name, index)
                return result
            # On failure the value slot carries the last good position
            # (see _Run._match_alternative) — the wasted-character estimate.
            consumed = result[1] - pos if isinstance(result[1], int) else 0
            profile.alt_fail(name, index, consumed)
        if not prod.alternatives:
            # Defer to the base class for its diagnostic.
            return super()._apply_uncached(prod, pos)
        return FAIL, None

    def _expected(self, pos: int, what: str) -> None:
        if pos > self._fail_pos and self._stack:
            self._profile.record_farthest(self._stack[-1])
        super()._expected(pos, what)
