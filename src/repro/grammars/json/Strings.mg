// JSON strings with escape sequences (RFC 8259 section 7).
//
// The value is the raw text between the quotes (escapes are not decoded —
// decoding is host-application policy, see examples/json_pipeline.py).
module json.Strings;

import json.Spacing;

Object JsonString = void:"\"" text:( JsonChar* ) void:"\"" Spacing ;

transient void JsonChar =
    "\\" ( ["] / "\\" / "/" / "b" / "f" / "n" / "r" / "t" / Unicode )
  / [^"\\]
  ;

transient void Unicode = "u" Hex Hex Hex Hex ;

transient void Hex = [0-9a-fA-F] ;
