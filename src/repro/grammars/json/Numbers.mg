// JSON numbers (RFC 8259 section 6): -? int frac? exp?
module json.Numbers;

import json.Spacing;

Object JsonNumber = text:( "-"? IntPart FracPart? ExpPart? ) Spacing ;

transient void IntPart = "0" / [1-9] [0-9]* ;

transient void FracPart = "." [0-9]+ ;

transient void ExpPart = ( "e" / "E" ) ( "+" / "-" )? [0-9]+ ;
