// JSON insignificant white space (RFC 8259 section 2).
module json.Spacing;

transient void Spacing = ( " " / "\t" / "\r" / "\n" )* ;

transient void EndOfInput = !_ ;
