// JSON values, objects and arrays (RFC 8259).  Root module.
module json.Json;

import json.Spacing;
import json.Numbers;
import json.Strings;

public Object JsonText = Spacing JsonValue EndOfInput ;

generic JsonValue =
    <Object> void:"{" Spacing ( MemberList )? void:"}" Spacing
  / <Array>  void:"[" Spacing ( ElementList )? void:"]" Spacing
  / <String> JsonString
  / <Number> JsonNumber
  / <True>   "true" Spacing
  / <False>  "false" Spacing
  / <Null>   "null" Spacing
  ;

Object MemberList = head:Member tail:( void:"," Spacing Member )* { cons(head, tail) } ;

generic Member = <Member> JsonString void:":" Spacing JsonValue ;

Object ElementList = head:JsonValue tail:( void:"," Spacing JsonValue )* { cons(head, tail) } ;
