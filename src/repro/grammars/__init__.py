"""Grammar modules shipped with the library.

These ``.mg`` files are the data for the modularity experiments and the
demo languages:

``calc.*``
    a small arithmetic language; ``calc.Calculator`` is the root, with
    ``calc.Power`` and ``calc.Comparison`` as extension modules.
``json.*``
    JSON, split into spacing/number/string/value modules;
    root ``json.Json``.
``jay.*``
    **Jay**, a Java subset modeled on the paper's modular Java grammar
    (spacing, identifiers, keywords, literals, types, expressions,
    statements, declarations, compilation unit); root ``jay.Jay``; the
    extension modules ``jay.ForEach``, ``jay.AssertStmt`` and ``jay.Sql``
    add an enhanced for loop, an assert statement, and embedded SQL
    expressions.
``xc.*``
    **xC**, a C subset with the same decomposition style; root ``xc.XC``;
    extension ``xc.Until`` adds an ``until`` loop.
``sql.*``
    a mini SQL SELECT grammar, composable into host languages.
``ml.*``
    **mini-ML**, an OCaml-flavored functional language (juxtaposition
    application, pattern matching, cons lists); root ``ml.ML``; see
    ``examples/miniml_interpreter.py`` for a working evaluator.
``meta.*``
    the ``.mg`` grammar-definition language itself (the bootstrap);
    root ``meta.Module``, consumed by :mod:`repro.meta.selfhost`.

Use :func:`repro.load_grammar` / :func:`repro.compile_grammar` with these
names — the default :class:`repro.meta.ModuleLoader` finds them
automatically.
"""

ROOTS = {
    "calc": "calc.Calculator",
    "json": "json.Json",
    "jay": "jay.Jay",
    "xc": "xc.XC",
    "sql": "sql.Sql",
    "ml": "ml.ML",
    "meta": "meta.Module",
}

EXTENSIONS = {
    "calc": ["calc.Power", "calc.Comparison", "calc.Full"],
    "jay": [
        "jay.ForEach", "jay.AssertStmt", "jay.SwitchStmt",
        "jay.Increments", "jay.Sql", "jay.Extended",
    ],
    "xc": ["xc.Until", "xc.Extended"],
    "ml": ["ml.Pipeline", "ml.Extended"],
}
