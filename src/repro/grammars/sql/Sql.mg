// Standalone root for the mini SQL language.
module sql.Sql;

import sql.Core;

public Object SqlProgram = SqlSpacing SqlSelect SqlEnd ;

transient void SqlEnd = !_ ;
