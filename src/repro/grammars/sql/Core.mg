// A mini SQL SELECT grammar, written independently of any host language
// so it can be composed into one (see jay.Sql).  All production names are
// Sql-prefixed to keep the flat composed namespace conflict-free.
module sql.Core;

transient void SqlSpacing = [ \t\r\n]* ;

generic SqlSelect =
    <Select> SELECT SqlColumns FROM SqlTable SqlWhere?
  ;

Object SqlColumns =
    head:SqlColumn tail:( void:"," SqlSpacing SqlColumn )* { cons(head, tail) }
  ;

Object SqlColumn =
    text:( "*" ) SqlSpacing
  / SqlName
  ;

Object SqlTable = SqlName ;

generic SqlWhere = <Where> WHERE SqlComparison ;

generic SqlComparison =
    <SqlCompare> SqlOperand text:( "<=" / ">=" / "<>" / "=" / "<" / ">" ) SqlSpacing SqlOperand
  ;

Object SqlOperand =
    text:( [0-9]+ ) SqlSpacing
  / SqlName
  ;

Object SqlName = !SqlKeyword text:( [a-zA-Z_] [a-zA-Z0-9_]* ) SqlSpacing ;

transient void SqlKeyword = ( "select"i / "from"i / "where"i ) ![a-zA-Z0-9_] ;

transient void SELECT = "select"i ![a-zA-Z0-9_] SqlSpacing ;
transient void FROM   = "from"i   ![a-zA-Z0-9_] SqlSpacing ;
transient void WHERE  = "where"i  ![a-zA-Z0-9_] SqlSpacing ;
