// mini-ML with all shipped extensions.
module ml.Extended;

import ml.ML;
import ml.Pipeline;

public generic ExtendedProgram = Program ;
