// Mini-ML expressions.  Function application is juxtaposition — a
// left-recursive generic production ((f x) y) — and :: is right
// associative, both exercising recursion handling in opposite directions.
module ml.Expressions;

import ml.Spacing;
import ml.Lexical;
import ml.Patterns;

public generic Expression =
    <Let>   LET Rec? Name PatternAtom* void:"=" !( "=" ) Spacing Expression IN Expression
  / <Fun>   FUN PatternAtom+ ARROW Expression
  / <If>    IF Expression THEN Expression ELSE Expression
  / <Match> MATCH Expression WITH MatchArm+
  / OrExpression
  ;

Object Rec = text:( "rec" ) !NamePart Spacing ;

generic MatchArm = <Arm> void:"|" !( "|" ) Spacing Pattern ARROW Expression ;

generic OrExpression =
    <Or> OrExpression void:"||" Spacing AndExpression
  / AndExpression
  ;

generic AndExpression =
    <And> AndExpression void:"&&" Spacing CompareExpression
  / CompareExpression
  ;

// Comparisons are non-associative, as in ML.
generic CompareExpression =
    <Equal>        ConsExpression void:"=" !( "=" ) Spacing ConsExpression
  / <NotEqual>     ConsExpression void:"<>" Spacing ConsExpression
  / <LessEqual>    ConsExpression void:"<=" Spacing ConsExpression
  / <GreaterEqual> ConsExpression void:">=" Spacing ConsExpression
  / <Less>         ConsExpression void:"<" !( [>=] ) Spacing ConsExpression
  / <Greater>      ConsExpression void:">" !( "=" ) Spacing ConsExpression
  / ConsExpression
  ;

// List construction is right associative: 1 :: 2 :: [] = 1 :: (2 :: []).
generic ConsExpression =
    <Cons> AddExpression void:"::" Spacing ConsExpression
  / AddExpression
  ;

generic AddExpression =
    <Add>    AddExpression void:"+" Spacing MulExpression
  / <Sub>    AddExpression void:"-" !( ">" ) Spacing MulExpression
  / <Concat> AddExpression void:"^" Spacing MulExpression
  / MulExpression
  ;

generic MulExpression =
    <Mul> MulExpression void:"*" !( ")" ) Spacing ApplyExpression
  / <Div> MulExpression void:"/" Spacing ApplyExpression
  / <Mod> MulExpression void:"mod" !NamePart Spacing ApplyExpression
  / ApplyExpression
  ;

// Application by juxtaposition, binding tighter than any operator:
//   f x y   parses as   ((f x) y)
generic ApplyExpression =
    <Apply> ApplyExpression Atom
  / Atom
  ;

generic Atom =
    <Unit>      void:"(" Spacing void:")" Spacing
  / void:"(" Spacing Expression void:")" Spacing
  / <ListLit>   void:"[" Spacing Elements? void:"]" Spacing
  / <IntLit>    text:( [0-9]+ ) Spacing
  / <StringLit> void:"\"" text:( ( "\\" _ / [^"\\] )* ) void:"\"" Spacing
  / <True>      "true"  !NamePart Spacing
  / <False>     "false" !NamePart Spacing
  / <Var>       Name
  ;

Object Elements =
    head:Expression tail:( void:";" Spacing Expression )* { cons(head, tail) }
  ;
