// White space and OCaml-style comments for mini-ML.
module ml.Spacing;

transient void Spacing = ( [ \t\r\n] / MlComment )* ;

// (* nested comments are supported, as in ML *)
transient void MlComment = "(*" ( MlComment / !"*)" _ )* "*)" ;

transient void EndOfInput = !_ ;
