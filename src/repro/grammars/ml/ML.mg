// Root module: a program is a sequence of top-level bindings followed by
// a result expression.
module ml.ML;

import ml.Spacing;
import ml.Lexical;
import ml.Patterns;
import ml.Expressions;

public generic Program =
    <Program> Spacing Binding* Expression EndOfInput
  ;

generic Binding =
    <Bind> LET Rec? Name PatternAtom* void:"=" !( "=" ) Spacing Expression void:";;" Spacing
  ;
