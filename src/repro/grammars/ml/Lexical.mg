// Names, keywords, and literals for mini-ML.
module ml.Lexical;

import ml.Spacing;

transient void NamePart = [a-zA-Z0-9_'] ;

transient void MlKeyword =
    ( "match" / "else" / "false" / "then" / "true" / "with"
    / "fun" / "let" / "mod" / "rec" / "if" / "in" ) !NamePart
  ;

Object Name = !MlKeyword text:( [a-z_] NamePart* ) Spacing ;

transient void LET   = "let"   !NamePart Spacing ;
transient void IN    = "in"    !NamePart Spacing ;
transient void FUN   = "fun"   !NamePart Spacing ;
transient void IF    = "if"    !NamePart Spacing ;
transient void THEN  = "then"  !NamePart Spacing ;
transient void ELSE  = "else"  !NamePart Spacing ;
transient void MATCH = "match" !NamePart Spacing ;
transient void WITH  = "with"  !NamePart Spacing ;

transient void ARROW = "->" Spacing ;
