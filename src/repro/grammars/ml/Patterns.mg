// Patterns for match expressions and parameters.
module ml.Patterns;

import ml.Spacing;
import ml.Lexical;

generic Pattern =
    <PCons> PatternAtom void:"::" Spacing Pattern
  / PatternAtom
  ;

generic PatternAtom =
    <PWildcard> void:"_" !NamePart Spacing
  / <PInt>     text:( [0-9]+ ) Spacing
  / <PNil>     void:"[" Spacing void:"]" Spacing
  / <PTrue>    "true"  !NamePart Spacing
  / <PFalse>   "false" !NamePart Spacing
  / <PVar>     Name
  / void:"(" Spacing Pattern void:")" Spacing
  ;
