// Extension: the pipeline operator  ``x |> f``  (apply f to x), binding
// looser than comparisons and associating left:  a |> f |> g  is  g (f a).
//
// A delta over ml.Expressions: a new precedence layer is spliced between
// the boolean and comparison layers by overriding AndExpression's operand
// and adding the new production.
module ml.Pipeline;

modify ml.Expressions;

import ml.Spacing;

AndExpression :=
    <And> AndExpression void:"&&" Spacing PipeExpression
  / PipeExpression
  ;

generic PipeExpression =
    <Pipe> PipeExpression void:"|>" Spacing CompareExpression
  / CompareExpression
  ;
