// Core arithmetic expressions: +, -, *, /, unary minus, parentheses.
//
// Binary operators are written with natural left recursion; the
// left-recursion transformation turns them into iteration while keeping
// left-leaning trees ((a - b) - c).
module calc.Core;

import calc.Spacing;
import calc.Number;

public generic Expression =
    <Add> Expression void:"+" Spacing Term
  / <Sub> Expression void:"-" Spacing Term
  / Term
  ;

generic Term =
    <Mul> Term void:"*" Spacing Factor
  / <Div> Term void:"/" Spacing Factor
  / Factor
  ;

generic Factor =
    <Neg> void:"-" Spacing Factor
  / Primary
  ;

Object Primary =
    void:"(" Spacing Expression void:")" Spacing
  / Number
  ;
