// Extension: right-associative exponentiation, binding tighter than * and /.
//
// Demonstrates the modification mechanism: Factor gains a new alternative
// *before* the existing ones, so ``2 ** 3 ** 2`` parses as (Pow 2 (Pow 3 2)).
module calc.Power;

modify calc.Core;

Factor += <Pow> Primary void:"**" Spacing Factor / ... ;
