// White space for the calculator language.
module calc.Spacing;

transient void Spacing = ( " " / "\t" / "\r" / "\n" )* ;

transient void EndOfInput = !_ ;
