// Composition of two independently written extensions: power + comparison.
module calc.Full;

import calc.Power;
import calc.Comparison;

public Object FullCalculation = Spacing Comparison EndOfInput ;
