// Extension: comparison operators above arithmetic, and a new root.
//
// An independent module written without knowledge of calc.Power; the
// composition experiment (E6) combines both.
module calc.Comparison;

import calc.Core;
import calc.Spacing;

generic Comparison =
    <Lt> Comparison void:"<"  !( "=" ) Spacing Expression
  / <Le> Comparison void:"<=" Spacing Expression
  / <Gt> Comparison void:">"  !( "=" ) Spacing Expression
  / <Ge> Comparison void:">=" Spacing Expression
  / <Eq> Comparison void:"==" Spacing Expression
  / Expression
  ;

public Object ComparisonCalculation = Spacing Comparison EndOfInput ;
