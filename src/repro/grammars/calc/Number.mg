// Numeric literals for the calculator language.
module calc.Number;

import calc.Spacing;

generic Number =
    <Float> text:([0-9]+ "." [0-9]+) Spacing
  / <Int>   text:([0-9]+) Spacing
  ;
