// Root module of the base calculator language.
module calc.Calculator;

import calc.Core;
import calc.Spacing;

public Object Calculation = Spacing Expression EndOfInput ;
