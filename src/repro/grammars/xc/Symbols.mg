// Punctuation tokens.
module xc.Symbols;

import xc.Spacing;

transient void LPAREN = "(" Spacing ;
transient void RPAREN = ")" Spacing ;
transient void LBRACE = "{" Spacing ;
transient void RBRACE = "}" Spacing ;
transient void LBRACK = "[" Spacing ;
transient void RBRACK = "]" Spacing ;
transient void SEMI   = ";" Spacing ;
transient void COMMA  = "," Spacing ;
transient void COLON  = ":" Spacing ;
transient void ASSIGN = "=" !( "=" ) Spacing ;
