// Type specifiers and declarators.  Direct declarators are left recursive
// (arrays); pointers nest on the right.
module xc.Types;

import xc.Characters;
import xc.Keywords;
import xc.Identifiers;
import xc.Symbols;
import xc.Spacing;

Object DeclarationSpecifiers = TypeSpecifier+ ;

generic TypeSpecifier =
    <StructType> STRUCT Identifier
  / <BasicType>  text:( "unsigned" / "signed" / "double" / "float" / "short"
                      / "char" / "long" / "void" / "int" ) !IdentifierPart Spacing
  ;

generic Declarator =
    <Pointer> void:"*" Spacing Declarator
  / DirectDeclarator
  ;

generic DirectDeclarator =
    <ArrayDecl> DirectDeclarator LBRACK ArraySize? RBRACK
  / <NameDecl>  Identifier
  ;

Object ArraySize = text:( [0-9]+ ) Spacing ;
