// Extension: an ``until (cond) stmt`` loop (while-not), added as a delta
// over xc.Statements, with "until" reserved via a keyword-list delta.
module xc.Until;

modify xc.Statements;
modify xc.Keywords;

import xc.Characters;
import xc.Symbols;
import xc.Expressions;
import xc.Spacing;

KeywordWord += "until" / ... ;

Statement +=
    <Until> UNTIL LPAREN Expression RPAREN Statement
  / ...
  ;

transient void UNTIL = "until" !IdentifierPart Spacing ;
