// Reserved words and keyword tokens (longest-first where one keyword is a
// prefix of another — see jay.Keywords for why).
module xc.Keywords;

import xc.Characters;
import xc.Spacing;

transient void Keyword = KeywordWord !IdentifierPart ;

transient void KeywordWord =
    "continue" / "unsigned" / "default" / "typedef" / "double" / "return"
  / "signed" / "sizeof" / "struct" / "switch" / "break" / "float" / "short"
  / "while" / "case" / "char" / "else" / "goto" / "long" / "void" / "for"
  / "int" / "do" / "if"
  ;

transient void IF       = "if"       !IdentifierPart Spacing ;
transient void ELSE     = "else"     !IdentifierPart Spacing ;
transient void WHILE    = "while"    !IdentifierPart Spacing ;
transient void DO       = "do"       !IdentifierPart Spacing ;
transient void FOR      = "for"      !IdentifierPart Spacing ;
transient void RETURN   = "return"   !IdentifierPart Spacing ;
transient void BREAK    = "break"    !IdentifierPart Spacing ;
transient void CONTINUE = "continue" !IdentifierPart Spacing ;
transient void SWITCH   = "switch"   !IdentifierPart Spacing ;
transient void CASE     = "case"     !IdentifierPart Spacing ;
transient void DEFAULT  = "default"  !IdentifierPart Spacing ;
transient void GOTO     = "goto"     !IdentifierPart Spacing ;
transient void STRUCT   = "struct"   !IdentifierPart Spacing ;
