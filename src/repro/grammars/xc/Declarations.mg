// External (file-scope) declarations: functions, globals, struct
// definitions.
module xc.Declarations;

import xc.Keywords;
import xc.Symbols;
import xc.Identifiers;
import xc.Types;
import xc.Statements;
import xc.Spacing;

generic ExternalDeclaration =
    <StructDef> STRUCT Identifier LBRACE StructField+ RBRACE SEMI
  / <Function>  DeclarationSpecifiers Declarator LPAREN ParameterList? RPAREN CompoundStatement
  / <Global>    Declaration
  ;

generic StructField = <StructField> DeclarationSpecifiers Declarator SEMI ;

Object ParameterList =
    head:Parameter tail:( COMMA Parameter )* { cons(head, tail) }
  / text:( "void" ) !IdentifierPart Spacing
  ;

generic Parameter = <Parameter> DeclarationSpecifiers Declarator ;
