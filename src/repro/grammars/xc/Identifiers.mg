// Identifiers (keywords excluded).
module xc.Identifiers;

import xc.Characters;
import xc.Keywords;
import xc.Spacing;

Object Identifier = !Keyword text:( IdentifierStart IdentifierPart* ) Spacing ;
