// White space, comments, and (skipped) preprocessor directives.
module xc.Spacing;

transient void Spacing = ( [ \t\r\n] / LineComment / BlockComment / Directive )* ;

transient void LineComment = "//" [^\n]* ;

transient void BlockComment = "/*" ( !"*/" _ )* "*/" ;

// A practical simplification: `#include <...>` etc. are treated as blank
// lines rather than interpreted (the paper's C grammar sits behind a real
// preprocessor, which is out of scope here).
transient void Directive = "#" [^\n]* ;

transient void EndOfInput = !_ ;
