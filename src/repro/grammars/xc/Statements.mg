// Statements, including switch/case labels, goto/labels, and local
// declarations.
module xc.Statements;

import xc.Keywords;
import xc.Symbols;
import xc.Expressions;
import xc.Types;
import xc.Identifiers;
import xc.Spacing;

public generic Statement =
    CompoundStatement
  / <If>      IF LPAREN Expression RPAREN Statement ( ELSE Statement )?
  / <Switch>  SWITCH LPAREN Expression RPAREN Statement
  / <Case>    CASE ConditionalExpression COLON
  / <Default> DEFAULT COLON
  / <While>   WHILE LPAREN Expression RPAREN Statement
  / <DoWhile> DO Statement WHILE LPAREN Expression RPAREN SEMI
  / <For>     FOR LPAREN ForInit? SEMI ForCond? SEMI ForUpdate? RPAREN Statement
  / <Return>  RETURN Expression? SEMI
  / <Break>   BREAK SEMI
  / <Continue> CONTINUE SEMI
  / <Goto>    GOTO Identifier SEMI
  / <Label>   Identifier COLON
  / <Decl>    Declaration
  / <ExprStmt> Expression SEMI
  / <Empty>   SEMI
  ;

generic CompoundStatement = <Block> LBRACE Statement* RBRACE ;

generic ForInit =
    <ForDecl> DeclarationSpecifiers InitDeclarators
  / <ForExpr> Expression
  ;

Object ForCond = Expression ;

Object ForUpdate = Expression ;

generic Declaration =
    <Declaration> DeclarationSpecifiers InitDeclarators SEMI
  ;

Object InitDeclarators =
    head:InitDeclarator tail:( COMMA InitDeclarator )* { cons(head, tail) }
  ;

generic InitDeclarator =
    <InitDeclarator> Declarator ( ASSIGN AssignmentExpression )?
  ;
