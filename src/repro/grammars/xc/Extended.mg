// xC with all shipped extensions.
module xc.Extended;

import xc.XC;
import xc.Until;

public Object ExtendedProgram = TranslationUnit ;
