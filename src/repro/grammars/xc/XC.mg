// Root module of the xC language (a C subset).
module xc.XC;

import xc.Unit;

public Object Program = TranslationUnit ;
