// A translation unit.
module xc.Unit;

import xc.Declarations;
import xc.Spacing;

generic TranslationUnit =
    <Unit> Spacing ExternalDeclaration+ EndOfInput
  ;
