// Character-level building blocks.
module xc.Characters;

transient void IdentifierStart = [a-zA-Z_] ;

transient void IdentifierPart = [a-zA-Z0-9_] ;
