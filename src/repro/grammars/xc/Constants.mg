// Constants: integers (decimal/hex/octal), floats, chars, strings.
module xc.Constants;

import xc.Characters;
import xc.Spacing;

generic Constant =
    <FloatConst>  text:( [0-9]+ "." [0-9]* FloatSuffix? / "." [0-9]+ FloatSuffix? ) Spacing
  / <HexConst>    text:( "0x" [0-9a-fA-F]+ / "0X" [0-9a-fA-F]+ ) IntSuffix Spacing
  / <IntConst>    text:( [0-9]+ ) IntSuffix Spacing
  / <CharConst>   void:"'" text:( "\\" _ / [^'\\] ) void:"'" Spacing
  / <StringConst> void:"\"" text:( StringChar* ) void:"\"" Spacing
  ;

transient void FloatSuffix = [fFlL] ;

transient void IntSuffix = ( [uU] [lL]? / [lL] [uU]? )? ;

transient void StringChar = "\\" _ / [^"\\] ;
