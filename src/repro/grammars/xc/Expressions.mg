// The C expression hierarchy, including bitwise and shift layers and the
// unary pointer operators.
module xc.Expressions;

import xc.Characters;
import xc.Identifiers;
import xc.Constants;
import xc.Symbols;
import xc.Spacing;

public generic Expression =
    <Comma> Expression COMMA AssignmentExpression
  / AssignmentExpression
  ;

generic AssignmentExpression =
    <Assign> UnaryExpression AssignmentOperator AssignmentExpression
  / ConditionalExpression
  ;

Object AssignmentOperator =
    text:( "+=" / "-=" / "*=" / "/=" / "%=" / "&=" / "|=" / "^=" / "<<=" / ">>=" ) Spacing
  / text:( "=" ) !( "=" ) Spacing
  ;

generic ConditionalExpression =
    <Conditional> LogicalOrExpression void:"?" Spacing Expression
                  void:":" Spacing ConditionalExpression
  / LogicalOrExpression
  ;

generic LogicalOrExpression =
    <LogicalOr> LogicalOrExpression void:"||" Spacing LogicalAndExpression
  / LogicalAndExpression
  ;

generic LogicalAndExpression =
    <LogicalAnd> LogicalAndExpression void:"&&" Spacing BitwiseOrExpression
  / BitwiseOrExpression
  ;

generic BitwiseOrExpression =
    <BitOr> BitwiseOrExpression void:"|" !( [|=] ) Spacing BitwiseXorExpression
  / BitwiseXorExpression
  ;

generic BitwiseXorExpression =
    <BitXor> BitwiseXorExpression void:"^" !( "=" ) Spacing BitwiseAndExpression
  / BitwiseAndExpression
  ;

generic BitwiseAndExpression =
    <BitAnd> BitwiseAndExpression void:"&" !( [&=] ) Spacing EqualityExpression
  / EqualityExpression
  ;

generic EqualityExpression =
    <Equal>    EqualityExpression void:"==" Spacing RelationalExpression
  / <NotEqual> EqualityExpression void:"!=" Spacing RelationalExpression
  / RelationalExpression
  ;

generic RelationalExpression =
    <LessEqual>    RelationalExpression void:"<=" Spacing ShiftExpression
  / <GreaterEqual> RelationalExpression void:">=" Spacing ShiftExpression
  / <Less>    RelationalExpression void:"<" !( "<" ) Spacing ShiftExpression
  / <Greater> RelationalExpression void:">" !( ">" ) Spacing ShiftExpression
  / ShiftExpression
  ;

generic ShiftExpression =
    <ShiftLeft>  ShiftExpression void:"<<" !( "=" ) Spacing AdditiveExpression
  / <ShiftRight> ShiftExpression void:">>" !( "=" ) Spacing AdditiveExpression
  / AdditiveExpression
  ;

generic AdditiveExpression =
    <Add> AdditiveExpression void:"+" !( [+=] ) Spacing MultiplicativeExpression
  / <Sub> AdditiveExpression void:"-" !( [\-=>] ) Spacing MultiplicativeExpression
  / MultiplicativeExpression
  ;

generic MultiplicativeExpression =
    <Mul> MultiplicativeExpression void:"*" !( "=" ) Spacing UnaryExpression
  / <Div> MultiplicativeExpression void:"/" !( [=/*] ) Spacing UnaryExpression
  / <Mod> MultiplicativeExpression void:"%" !( "=" ) Spacing UnaryExpression
  / UnaryExpression
  ;

generic UnaryExpression =
    <PreIncrement> void:"++" Spacing UnaryExpression
  / <PreDecrement> void:"--" Spacing UnaryExpression
  / <Neg>    void:"-" !( [\-=] ) Spacing UnaryExpression
  / <Not>    void:"!" !( "=" ) Spacing UnaryExpression
  / <BitNot> void:"~" Spacing UnaryExpression
  / <Deref>  void:"*" !( "=" ) Spacing UnaryExpression
  / <AddrOf> void:"&" !( [&=] ) Spacing UnaryExpression
  / PostfixExpression
  ;

generic PostfixExpression =
    <Call>   PostfixExpression void:"(" Spacing Arguments? void:")" Spacing
  / <Index>  PostfixExpression LBRACK Expression RBRACK
  / <Arrow>  PostfixExpression void:"->" Spacing Identifier
  / <Member> PostfixExpression void:"." Spacing Identifier
  / <PostIncrement> PostfixExpression void:"++" Spacing
  / <PostDecrement> PostfixExpression void:"--" Spacing
  / PrimaryExpression
  ;

Object Arguments =
    head:AssignmentExpression tail:( COMMA AssignmentExpression )* { cons(head, tail) }
  ;

generic PrimaryExpression =
    void:"(" Spacing Expression void:")" Spacing
  / Constant
  / <Var> Identifier
  ;
