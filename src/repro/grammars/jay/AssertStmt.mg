// Extension: the assert statement  ``assert expr ;`` / ``assert expr : expr ;``
//
// Besides adding the statement form, "assert" must become a reserved word
// so it stops parsing as an identifier — demonstrated by modifying the
// keyword list of jay.Keywords as a second, independent delta.
module jay.AssertStmt;

modify jay.Statements;
modify jay.Keywords;

import jay.Characters;
import jay.Symbols;
import jay.Expressions;
import jay.Spacing;

KeywordWord += "assert" / ... ;

Statement +=
    <Assert> ASSERT Expression ( COLON Expression )? SEMI
  / ...
  ;

transient void ASSERT = "assert" !IdentifierPart Spacing ;
