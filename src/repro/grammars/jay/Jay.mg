// Root module of the Jay language (a Java subset), assembled from the
// module library the way the paper assembles its Java grammar.
module jay.Jay;

import jay.Unit;

option withLocation;

public Object Program = CompilationUnit ;
