// Types: primitives, class types, and array types (left recursive).
module jay.Types;

import jay.Characters;
import jay.Identifiers;
import jay.Symbols;
import jay.Spacing;

generic Type =
    <ArrayType> Type LBRACK RBRACK
  / <PrimitiveType> text:( "boolean" / "char" / "int" ) !IdentifierPart Spacing
  / <ClassType> QualifiedName
  ;
