// Compilation units: package declaration, imports, classes.
module jay.Unit;

import jay.Keywords;
import jay.Symbols;
import jay.Identifiers;
import jay.Declarations;
import jay.Spacing;

generic CompilationUnit =
    <Unit> Spacing PackageDecl? ImportDecl* ClassDecl+ EndOfInput
  ;

generic PackageDecl = <Package> PACKAGE QualifiedName SEMI ;

generic ImportDecl = <Import> IMPORT QualifiedName SEMI ;
