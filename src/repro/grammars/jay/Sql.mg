// Extension: embedded SQL expressions  ``sql { select a, b from t where a < 3 }``.
//
// Composes two languages written by different authors: the sql.Core
// grammar slots into Jay's PrimaryExpression.  Syntax errors inside the
// query become ordinary Jay parse errors — the point of grammar-level
// (rather than string-level) embedding.
module jay.Sql;

modify jay.Expressions;

import sql.Core;
import jay.Characters;
import jay.Spacing;

PrimaryExpression +=
    <SqlQuery> void:"sql" !IdentifierPart Spacing void:"{" Spacing SqlSelect void:"}" Spacing
  / ...
  ;
