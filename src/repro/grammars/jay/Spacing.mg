// White space and comments.
module jay.Spacing;

transient void Spacing = ( [ \t\r\n] / LineComment / BlockComment )* ;

transient void LineComment = "//" [^\n]* ;

transient void BlockComment = "/*" ( !"*/" _ )* "*/" ;

transient void EndOfInput = !_ ;
