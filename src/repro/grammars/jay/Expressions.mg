// The expression hierarchy.  Binary operators are written with natural
// left recursion; precedence is encoded by the conventional layering of
// productions.  Operator literals carry negative lookahead so that "<="
// is never split into "<" "=", "+" never swallows the start of "+=", and
// "/" is never confused with a comment opener.
module jay.Expressions;

import jay.Characters;
import jay.Identifiers;
import jay.Literals;
import jay.Types;
import jay.Symbols;
import jay.Spacing;

public generic Expression =
    <Assign> PostfixExpression AssignmentOperator Expression
  / ConditionalExpression
  ;

Object AssignmentOperator =
    text:( "+=" / "-=" / "*=" / "/=" / "%=" ) Spacing
  / text:( "=" ) !( "=" ) Spacing
  ;

generic ConditionalExpression =
    <Conditional> LogicalOrExpression void:"?" Spacing Expression
                  void:":" Spacing ConditionalExpression
  / LogicalOrExpression
  ;

generic LogicalOrExpression =
    <LogicalOr> LogicalOrExpression void:"||" Spacing LogicalAndExpression
  / LogicalAndExpression
  ;

generic LogicalAndExpression =
    <LogicalAnd> LogicalAndExpression void:"&&" Spacing EqualityExpression
  / EqualityExpression
  ;

generic EqualityExpression =
    <Equal>    EqualityExpression void:"==" Spacing RelationalExpression
  / <NotEqual> EqualityExpression void:"!=" Spacing RelationalExpression
  / RelationalExpression
  ;

generic RelationalExpression =
    <LessEqual>    RelationalExpression void:"<=" Spacing AdditiveExpression
  / <GreaterEqual> RelationalExpression void:">=" Spacing AdditiveExpression
  / <Less>    RelationalExpression void:"<" Spacing AdditiveExpression
  / <Greater> RelationalExpression void:">" Spacing AdditiveExpression
  / AdditiveExpression
  ;

generic AdditiveExpression =
    <Add> AdditiveExpression void:"+" !( [+=] ) Spacing MultiplicativeExpression
  / <Sub> AdditiveExpression void:"-" !( [\-=] ) Spacing MultiplicativeExpression
  / MultiplicativeExpression
  ;

generic MultiplicativeExpression =
    <Mul> MultiplicativeExpression void:"*" !( "=" ) Spacing UnaryExpression
  / <Div> MultiplicativeExpression void:"/" !( [=/*] ) Spacing UnaryExpression
  / <Mod> MultiplicativeExpression void:"%" !( "=" ) Spacing UnaryExpression
  / UnaryExpression
  ;

generic UnaryExpression =
    <Neg> void:"-" !( [\-=] ) Spacing UnaryExpression
  / <Not> void:"!" !( "=" ) Spacing UnaryExpression
  / PostfixExpression
  ;

generic PostfixExpression =
    <Call>  PostfixExpression void:"(" Spacing Arguments? void:")" Spacing
  / <Index> PostfixExpression LBRACK Expression RBRACK
  / <Field> PostfixExpression void:"." Spacing Identifier
  / PrimaryExpression
  ;

Object Arguments =
    head:Expression tail:( COMMA Expression )* { cons(head, tail) }
  ;

generic PrimaryExpression =
    <NewArray> NEW Type LBRACK Expression RBRACK
  / <New>      NEW Type void:"(" Spacing Arguments? void:")" Spacing
  / <This>     THIS
  / void:"(" Spacing Expression void:")" Spacing
  / Literal
  / <Var> Identifier
  ;
