// Class members and class declarations.
module jay.Declarations;

import jay.Keywords;
import jay.Symbols;
import jay.Identifiers;
import jay.Types;
import jay.Statements;
import jay.Characters;
import jay.Spacing;

generic ClassDecl =
    <Class> Modifier* CLASS Identifier ( EXTENDS QualifiedName )? ClassBody
  ;

Object ClassBody = LBRACE Member* RBRACE ;

generic Member =
    <Method> Modifier* ResultType Identifier LPAREN Parameters? RPAREN MethodBody
  / <Field>  Modifier* Type Declarators SEMI
  ;

Object Modifier =
    text:( "public" / "private" / "protected" / "static" / "final" )
    !IdentifierPart Spacing
  ;

generic ResultType =
    <Void> VOID
  / Type
  ;

Object Parameters =
    head:Parameter tail:( COMMA Parameter )* { cons(head, tail) }
  ;

generic Parameter = <Parameter> Type Identifier ;

Object MethodBody =
    Block
  / SEMI
  ;
