// Jay with every shipped extension: enhanced for, assert, embedded SQL.
// The extensions were written independently; this module only aggregates.
module jay.Extended;

import jay.Jay;
import jay.ForEach;
import jay.AssertStmt;
import jay.SwitchStmt;
import jay.Increments;
import jay.Sql;

public Object ExtendedProgram = CompilationUnit ;
