// Literal values: numbers, strings, characters, booleans, null.
module jay.Literals;

import jay.Characters;
import jay.Spacing;

generic Literal =
    <FloatLit>  text:( [0-9]+ "." [0-9]+ ) Spacing
  / <IntLit>    text:( [0-9]+ ) Spacing
  / <StringLit> void:"\"" text:( StringChar* ) void:"\"" Spacing
  / <CharLit>   void:"'" text:( "\\" _ / [^'\\] ) void:"'" Spacing
  / <True>      "true"  !IdentifierPart Spacing
  / <False>     "false" !IdentifierPart Spacing
  / <Null>      "null"  !IdentifierPart Spacing
  ;

transient void StringChar = "\\" _ / [^"\\] ;
