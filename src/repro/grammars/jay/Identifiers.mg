// Identifiers and qualified names.
module jay.Identifiers;

import jay.Characters;
import jay.Keywords;
import jay.Spacing;

Object Identifier = !Keyword text:( IdentifierStart IdentifierPart* ) Spacing ;

generic QualifiedName =
    <QName> Identifier ( void:"." Spacing Identifier )+
  / Identifier
  ;
