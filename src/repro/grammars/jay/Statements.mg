// Statements.  Local declarations come before expression statements so
// that "int x = 5;" is a declaration, not a parse error — the PEG
// backtracks into <ExprStmt> only when the declaration shape fails.
module jay.Statements;

import jay.Keywords;
import jay.Symbols;
import jay.Expressions;
import jay.Types;
import jay.Identifiers;
import jay.Spacing;

public generic Statement =
    Block
  / <If>        IF LPAREN Expression RPAREN Statement ( ELSE Statement )?
  / <While>     WHILE LPAREN Expression RPAREN Statement
  / <DoWhile>   DO Statement WHILE LPAREN Expression RPAREN SEMI
  / <For>       FOR LPAREN ForInit? SEMI ForCond? SEMI ForUpdate? RPAREN Statement
  / <Return>    RETURN Expression? SEMI
  / <Break>     BREAK SEMI
  / <Continue>  CONTINUE SEMI
  / <LocalDecl> Type Declarators SEMI
  / <ExprStmt>  Expression SEMI
  / <Empty>     SEMI
  ;

generic Block = <Block> LBRACE Statement* RBRACE ;

generic ForInit =
    <ForDecl> Type Declarators
  / <ForExpr> ExpressionList
  ;

Object ForCond = Expression ;

generic ForUpdate = <ForUpdate> ExpressionList ;

Object ExpressionList =
    head:Expression tail:( COMMA Expression )* { cons(head, tail) }
  ;

Object Declarators =
    head:Declarator tail:( COMMA Declarator )* { cons(head, tail) }
  ;

generic Declarator =
    <Declarator> Identifier ( ASSIGN Expression )?
  ;
