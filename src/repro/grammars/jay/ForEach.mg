// Extension: the enhanced for loop  ``for (Type x : expr) stmt``.
//
// A pure delta over jay.Statements — the classic example of adding a
// statement form without touching (or even seeing) the base grammar's
// source.
module jay.ForEach;

modify jay.Statements;

import jay.Keywords;
import jay.Symbols;
import jay.Types;
import jay.Identifiers;
import jay.Expressions;

Statement +=
    <ForEach> FOR LPAREN Type Identifier COLON Expression RPAREN Statement
  / ...
  ;
