// Extension: switch statements with case/default groups.
//
// Unlike xC's label-style cases, this delta gives Jay structured cases:
// each group owns its statements, so the tree is directly consumable.
module jay.SwitchStmt;

modify jay.Statements;
modify jay.Keywords;

import jay.Characters;
import jay.Symbols;
import jay.Expressions;
import jay.Spacing;

KeywordWord += "default" / "switch" / "case" / ... ;

Statement +=
    <Switch> SWITCH LPAREN Expression RPAREN LBRACE CaseGroup* DefaultGroup? RBRACE
  / ...
  ;

generic CaseGroup = <Case> CASE Expression COLON Statement* ;

generic DefaultGroup = <Default> DEFAULT COLON Statement* ;

transient void SWITCH  = "switch"  !IdentifierPart Spacing ;
transient void CASE    = "case"    !IdentifierPart Spacing ;
transient void DEFAULT = "default" !IdentifierPart Spacing ;
