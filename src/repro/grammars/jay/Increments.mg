// Extension: ++ and -- in both prefix and postfix form.
//
// An *expression-level* delta (ForEach/Assert extend statements): the
// unary layer gains prefix forms, and the postfix layer gains
// left-recursive suffix forms — the modification machinery composes with
// the left-recursion transformation.  The base grammar's "+" and "-"
// operators already exclude "++"/"--" via lookahead, so no base rules
// need to change.
module jay.Increments;

modify jay.Expressions;

import jay.Spacing;

UnaryExpression +=
    <PreIncrement> void:"++" Spacing UnaryExpression
  / <PreDecrement> void:"--" Spacing UnaryExpression
  / ...
  ;

PostfixExpression +=
    <PostIncrement> PostfixExpression void:"++" Spacing
  / <PostDecrement> PostfixExpression void:"--" Spacing
  / ...
  ;
