// Character-level building blocks shared by identifiers and keywords.
module jay.Characters;

transient void IdentifierStart = [a-zA-Z_$] ;

transient void IdentifierPart = [a-zA-Z0-9_$] ;
