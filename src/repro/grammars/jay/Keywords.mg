// Reserved words, plus the keyword token productions used by statements
// and declarations.  Keywords that are prefixes of other keywords must
// come after them in KeywordWord (PEG choice is ordered), so the list is
// sorted longest-first.
module jay.Keywords;

import jay.Characters;
import jay.Spacing;

transient void Keyword = KeywordWord !IdentifierPart ;

transient void KeywordWord =
    "protected" / "continue" / "boolean" / "extends" / "private" / "package"
  / "return" / "public" / "static" / "import" / "final" / "break" / "while"
  / "class" / "false" / "null" / "true" / "void" / "else" / "char" / "this"
  / "new" / "int" / "for" / "if" / "do"
  ;

transient void IF       = "if"       !IdentifierPart Spacing ;
transient void ELSE     = "else"     !IdentifierPart Spacing ;
transient void WHILE    = "while"    !IdentifierPart Spacing ;
transient void DO       = "do"       !IdentifierPart Spacing ;
transient void FOR      = "for"      !IdentifierPart Spacing ;
transient void RETURN   = "return"   !IdentifierPart Spacing ;
transient void BREAK    = "break"    !IdentifierPart Spacing ;
transient void CONTINUE = "continue" !IdentifierPart Spacing ;
transient void CLASS    = "class"    !IdentifierPart Spacing ;
transient void EXTENDS  = "extends"  !IdentifierPart Spacing ;
transient void PACKAGE  = "package"  !IdentifierPart Spacing ;
transient void IMPORT   = "import"   !IdentifierPart Spacing ;
transient void NEW      = "new"      !IdentifierPart Spacing ;
transient void THIS     = "this"     !IdentifierPart Spacing ;
transient void VOID     = "void"     !IdentifierPart Spacing ;
