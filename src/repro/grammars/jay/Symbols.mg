// Punctuation tokens.  Each consumes trailing white space, following the
// convention that every token production leaves the parser at the start of
// the next token.  These tiny productions are prime inlining candidates.
module jay.Symbols;

import jay.Spacing;

transient void LPAREN   = "(" Spacing ;
transient void RPAREN   = ")" Spacing ;
transient void LBRACE   = "{" Spacing ;
transient void RBRACE   = "}" Spacing ;
transient void LBRACK   = "[" Spacing ;
transient void RBRACK   = "]" Spacing ;
transient void SEMI     = ";" Spacing ;
transient void COMMA    = "," Spacing ;
transient void COLON    = ":" !( ":" ) Spacing ;
transient void ASSIGN   = "=" !( "=" ) Spacing ;
