// Character classes shared by identifiers, keywords and literals.
// ASCII identifiers only; source files using non-ASCII identifiers are
// carried on the corpus allowlist (see docs/grammars-python.md).
module python.Characters;

transient void IdentifierStart = [a-zA-Z_] ;

transient void IdentifierPart = [a-zA-Z0-9_] ;
