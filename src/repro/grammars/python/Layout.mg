// Layout: the whitespace convention for the Python grammar.
//
// The grammar parses text produced by repro.workloads.pylayout.python_layout,
// which re-expresses Python's context-sensitive indentation as three sentinel
// characters: U+0001 (INDENT), U+0002 (DEDENT) and U+0003 (logical NEWLINE).
// After that pre-pass a raw "\n" is *always* insignificant -- it is inside
// brackets, after a backslash continuation, or on a blank/comment-only line --
// so a single Spacing production suffices for the whole grammar.  Spacing
// must never skip a sentinel: the sentinels are the layout tokens.
module python.Layout;

transient void Spacing = ( [ \t\f\n] / "\\\n" / Comment )* ;

// A comment runs to the end of the physical line.  It must also stop at
// layout sentinels: the pre-pass places the logical NEWLINE *before* the
// "\n" of a commented code line, and the closing DEDENTs of a file can
// directly follow a final comment with no newline at all.
transient void Comment = "#" [^\n\u0001\u0002\u0003]* ;

transient void NEWLINE = "\u0003" Spacing ;
transient void INDENT  = "\u0001" Spacing ;
transient void DEDENT  = "\u0002" Spacing ;

transient void EndOfInput = !_ ;
