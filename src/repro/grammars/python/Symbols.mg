// Punctuation tokens.  Each consumes trailing Spacing and carries the
// negative lookahead that keeps compound operators atomic ("<" never
// splits "<=", "*" never starts "**" or "*=", and so on).
module python.Symbols;

import python.Layout;

transient void LPAR        = "(" Spacing ;
transient void RPAR        = ")" Spacing ;
transient void LBRACK      = "[" Spacing ;
transient void RBRACK      = "]" Spacing ;
transient void LBRACE      = "{" Spacing ;
transient void RBRACE      = "}" Spacing ;
transient void COMMA       = "," Spacing ;
transient void COLON       = ":" !( "=" ) Spacing ;
transient void SEMI        = ";" Spacing ;
transient void DOT         = "." !( "." ) Spacing ;
transient void ELLIPSIS    = "..." Spacing ;
transient void ARROW       = "->" Spacing ;
transient void ASSIGN      = "=" !( "=" ) Spacing ;
transient void WALRUS      = ":=" Spacing ;

transient void PLUS        = "+" !( "=" ) Spacing ;
transient void MINUS       = "-" !( [=>] ) Spacing ;
transient void STAR        = "*" !( [*=] ) Spacing ;
transient void DOUBLESTAR  = "**" !( "=" ) Spacing ;
transient void SLASH       = "/" !( [/=] ) Spacing ;
transient void DOUBLESLASH = "//" !( "=" ) Spacing ;
transient void PERCENT     = "%" !( "=" ) Spacing ;
transient void AT          = "@" !( "=" ) Spacing ;
transient void TILDE       = "~" Spacing ;

transient void LSHIFT      = "<<" !( "=" ) Spacing ;
transient void RSHIFT      = ">>" !( "=" ) Spacing ;
transient void AMP         = "&" !( "=" ) Spacing ;
transient void PIPE        = "|" !( "=" ) Spacing ;
transient void CARET       = "^" !( "=" ) Spacing ;
