// Identifiers.  A Name's value is the identifier text itself.
module python.Identifiers;

import python.Characters;
import python.Keywords;
import python.Layout;

Object Name = !Keyword text:( IdentifierStart IdentifierPart* ) Spacing ;
