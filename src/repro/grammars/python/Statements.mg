// Statements: simple statements (one logical line, `;`-separated), compound
// statements, and the suite structure built from the layout sentinels.
//
// A Suite is either an indented block -- NEWLINE INDENT statement+ DEDENT,
// exactly the token shape the layout pre-pass guarantees -- or the inline
// `if x: y = 1` form.  Statement values are lists (a simple-statement line
// can hold several statements), flattened into one list per block.
module python.Statements;

import python.Layout;
import python.Keywords;
import python.Identifiers;
import python.Literals;
import python.Symbols;
import python.Expressions;

Object Statement = CompoundStmt / SimpleStmts ;

Object SimpleStmts =
    head:SmallStmt tail:( void:SEMI SmallStmt )* void:SEMI? void:NEWLINE
    { cons(head, tail) }
  ;

Object Suite =
    void:NEWLINE void:INDENT body:( Statement )+ void:DEDENT { flatten(body) }
  / SimpleStmts
  ;

generic SmallStmt =
    <Pass> void:PASS
  / <Break> void:BREAK
  / <Continue> void:CONTINUE
  / <Return> void:RETURN TestListStar?
  / <Raise> void:RAISE RaiseBody?
  / GlobalStmt
  / NonlocalStmt
  / AssertStmt
  / DelStmt
  / ImportStmt
  / ExprStmt
  ;

generic RaiseBody = <RaiseFrom> Test void:FROM Test / Test ;

generic GlobalStmt   = <Global>   void:GLOBAL NameList ;
generic NonlocalStmt = <Nonlocal> void:NONLOCAL NameList ;

Object NameList = head:Name tail:( void:COMMA Name )* { cons(head, tail) } ;

generic AssertStmt = <Assert> void:ASSERT Test ( void:COMMA Test )? ;

generic DelStmt = <Del> void:DEL TargetList ;

generic ImportStmt =
    <Import> void:IMPORT DottedAsNames
  / <FromImport> void:FROM text:( [.]* ) Spacing DottedName? void:IMPORT
                 ImportTargets
  ;

Object DottedAsNames =
    head:DottedAs tail:( void:COMMA DottedAs )* { cons(head, tail) }
  ;

generic DottedAs = <Module> DottedName ( void:AS Name )? ;

// A dotted module path as one string ("os.path").  The !Keyword guard keeps
// `from . import x` from reading `import` as the module name.
Object DottedName =
    !Keyword text:( IdentifierStart IdentifierPart*
                    ( "." IdentifierStart IdentifierPart* )* ) Spacing
  ;

generic ImportTargets =
    <ImportAll> STAR
  / void:LPAR ImportAsNames void:COMMA? void:RPAR
  / ImportAsNames
  ;

Object ImportAsNames =
    head:ImportAs tail:( void:COMMA ImportAs )* { cons(head, tail) }
  ;

generic ImportAs = <ImportName> Name ( void:AS Name )? ;

// Expression-statements and the assignment family.  Order matters: the
// annotated and augmented forms are tried first (their operators cannot be
// confused with `=` or a plain expression thanks to token lookahead), then
// chained assignment, then yield / plain expressions.
generic ExprStmt =
    <AnnAssign> Target void:COLON Test ( void:ASSIGN AssignValue )?
  / <AugAssign> Target AugOp AssignValue
  / <Assign> ( TargetList void:ASSIGN )+ AssignValue
  / YieldExpr
  / <Expr> TestListStar
  ;

Object AssignValue = YieldExpr / TestListStar ;

Object AugOp =
    text:( "**=" / "//=" / ">>=" / "<<=" / "+=" / "-=" / "*=" / "/="
         / "%=" / "@=" / "&=" / "|=" / "^=" ) Spacing
  ;

generic CompoundStmt =
    IfStmt
  / WhileStmt
  / ForStmt
  / TryStmt
  / WithStmt
  / FuncDef
  / ClassDef
  / Decorated
  / AsyncStmt
  ;

generic IfStmt = <If> void:IF NamedTest void:COLON Suite ElifClause* ElseClause? ;

generic ElifClause = <Elif> void:ELIF NamedTest void:COLON Suite ;

Object ElseClause = void:ELSE void:COLON Suite ;

generic WhileStmt = <While> void:WHILE NamedTest void:COLON Suite ElseClause? ;

generic ForStmt =
    <For> void:FOR TargetList void:IN TestListStar void:COLON Suite ElseClause?
  ;

generic TryStmt =
    <Try> void:TRY void:COLON Suite ExceptClause* ElseClause? FinallyClause?
  ;

generic ExceptClause = <Except> void:EXCEPT ExceptSpec? void:COLON Suite ;

generic ExceptSpec = <ExceptAs> Test void:AS Name / Test ;

Object FinallyClause = void:FINALLY void:COLON Suite ;

generic WithStmt = <With> void:WITH WithItems void:COLON Suite ;

// `with (a as b, c as d):` parenthesizes the item list; the &":" lookahead
// distinguishes it from a parenthesized expression item `with (a, b) as c:`.
Object WithItems =
    void:LPAR head:WithItem tail:( void:COMMA WithItem )* void:COMMA?
    void:RPAR &( ":" ) { cons(head, tail) }
  / head:WithItem tail:( void:COMMA WithItem )* { cons(head, tail) }
  ;

generic WithItem = <WithItem> Test ( void:AS Target )? ;

generic FuncDef =
    <FuncDef> void:DEF Name void:LPAR ParamList? void:RPAR
              ( void:ARROW Test )? void:COLON Suite
  ;

Object ParamList =
    head:Param tail:( void:COMMA Param )* void:COMMA? { cons(head, tail) }
  ;

generic Param =
    <DoubleStarParam> void:DOUBLESTAR ParamName
  / <StarParam> void:STAR ParamName?
  / <SlashMarker> void:SLASH
  / <Param> ParamName ( void:ASSIGN Test )?
  ;

generic ParamName = <Ann> Name void:COLON Test / Name ;

generic ClassDef =
    <ClassDef> void:CLASS Name ( void:LPAR Arguments? void:RPAR )?
               void:COLON Suite
  ;

generic Decorated = <Decorated> Decorator+ DecoratedDef ;

generic Decorator = <Decorator> void:AT NamedTest void:NEWLINE ;

generic DecoratedDef = FuncDef / ClassDef / AsyncStmt ;

generic AsyncStmt = <Async> void:ASYNC AsyncBody ;

generic AsyncBody = FuncDef / WithStmt / ForStmt ;
