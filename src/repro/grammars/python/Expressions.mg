// The expression hierarchy, written with the natural left recursion the
// module system supports for generic productions.  Precedence follows the
// conventional layering: ternary > or > and > not > comparison > | > ^ > &
// > shifts > additive > multiplicative > unary > power > await > trailers.
//
// Assignment *targets* get their own restricted productions (Target,
// TargetList): a target must stop before `in`/`=` and PEG repetitions are
// possessive, so reusing the comparison-bearing Test hierarchy for targets
// would swallow the `in` of `for x in ...` with no way to backtrack.
module python.Expressions;

import python.Layout;
import python.Keywords;
import python.Identifiers;
import python.Literals;
import python.Symbols;

public generic Test =
    Lambda
  / <IfExp> OrTest void:IF OrTest void:ELSE Test
  / OrTest
  ;

// test-with-walrus: used where CPython allows namedexpr_test.
generic NamedTest =
    <NamedExpr> Name void:WALRUS Test
  / Test
  ;

generic Lambda = <Lambda> void:LAMBDA LambdaParams? void:COLON Test ;

// Lambda parameters must not carry annotations -- a `:` after a parameter
// name *is* the lambda's body separator -- so they get their own production
// instead of reusing the annotated def parameters.
Object LambdaParams =
    head:LambdaParam tail:( void:COMMA LambdaParam )* void:COMMA?
    { cons(head, tail) }
  ;

generic LambdaParam =
    <DoubleStarParam> void:DOUBLESTAR Name
  / <StarParam> void:STAR Name?
  / <SlashMarker> void:SLASH
  / <Param> Name ( void:ASSIGN Test )?
  ;

generic OrTest  = <BoolOr>  OrTest  void:OR  AndTest / AndTest ;
generic AndTest = <BoolAnd> AndTest void:AND NotTest / NotTest ;
generic NotTest = <NotOp> void:NOT NotTest / Comparison ;

// Chained comparisons associate left: a < b < c parses to
// (Compare (Compare a "<" b) "<" c).
generic Comparison =
    <Compare> Comparison CompOp BitOr
  / <NotIn>   Comparison void:NOT void:IN BitOr
  / <IsNot>   Comparison void:IS void:NOT BitOr
  / <In>      Comparison void:IN BitOr
  / <Is>      Comparison void:IS BitOr
  / BitOr
  ;

Object CompOp =
    text:( "==" / "!=" / "<=" / ">=" / "<" !( "<" ) / ">" !( ">" ) ) Spacing
  ;

generic BitOr  = <BitOr>  BitOr  void:PIPE  BitXor / BitXor ;
generic BitXor = <BitXor> BitXor void:CARET BitAnd / BitAnd ;
generic BitAnd = <BitAnd> BitAnd void:AMP   Shift  / Shift ;

generic Shift =
    <LShift> Shift void:LSHIFT Arith
  / <RShift> Shift void:RSHIFT Arith
  / Arith
  ;

generic Arith =
    <Add> Arith void:PLUS Term
  / <Sub> Arith void:MINUS Term
  / Term
  ;

generic Term =
    <Mul>      Term void:STAR Factor
  / <MatMul>   Term void:AT Factor
  / <Div>      Term void:SLASH Factor
  / <FloorDiv> Term void:DOUBLESLASH Factor
  / <Mod>      Term void:PERCENT Factor
  / Factor
  ;

generic Factor =
    <UAdd>   void:PLUS Factor
  / <USub>   void:MINUS Factor
  / <Invert> void:TILDE Factor
  / Power
  ;

// ** binds tighter than unary on its left, looser on its right: -x ** -y
// is -(x ** (-y)).
generic Power = <Pow> AwaitPrimary void:DOUBLESTAR Factor / AwaitPrimary ;

generic AwaitPrimary = <Await> void:AWAIT AwaitPrimary / Primary ;

generic Primary =
    <Attr>      Primary void:DOT Name
  / <Call>      Primary void:LPAR Arguments? void:RPAR
  / <Subscript> Primary void:LBRACK Subscripts void:RBRACK
  / Atom
  ;

Object Arguments =
    head:Argument tail:( void:COMMA Argument )* void:COMMA?
    { cons(head, tail) }
  ;

generic Argument =
    <KwArg> Name void:ASSIGN Test
  / <StarArg> void:STAR Test
  / <DoubleStarArg> void:DOUBLESTAR Test
  / <GenExpArg> Test CompClauses
  / NamedTest
  ;

Object Subscripts =
    head:Subscript tail:( void:COMMA Subscript )* void:COMMA?
    { cons(head, tail) }
  ;

generic Subscript =
    <Slice> Test? void:COLON Test? ( void:COLON Test? )?
  / StarTest
  ;

generic StarTest = <Star> void:STAR OrTest / NamedTest ;

// Expression lists as they appear in tuple displays, subscript tuples,
// return/assignment values and for-loop iterables.
Object TestListStar =
    head:StarTest tail:( void:COMMA StarTest )* void:COMMA?
    { cons(head, tail) }
  ;

generic Atom =
    ParenAtom
  / ListAtom
  / BraceAtom
  / Strings
  / Number
  / <EllipsisLit> ELLIPSIS
  / <NoneLit>  NONE
  / <TrueLit>  TRUE
  / <FalseLit> FALSE
  / Name
  ;

// "(x)" is grouping and passes straight through; "(x,)" and "(x, y)" are
// tuples; "(x for y in z)" is a generator; "(yield x)" wraps a yield.
generic ParenAtom =
    <GenExp> void:LPAR NamedTest CompClauses void:RPAR
  / <YieldAtom> void:LPAR YieldExpr void:RPAR
  / <TupleLit> void:LPAR void:RPAR
  / void:LPAR NamedTest void:RPAR
  / <TupleLit> void:LPAR TestListStar void:RPAR
  ;

generic YieldExpr =
    <YieldFrom> void:YIELD void:FROM Test
  / <Yield> void:YIELD TestListStar?
  ;

generic ListAtom =
    <ListComp> void:LBRACK NamedTest CompClauses void:RBRACK
  / <ListLit> void:LBRACK TestListStar? void:RBRACK
  ;

generic BraceAtom =
    <DictComp> void:LBRACE Test void:COLON Test CompClauses void:RBRACE
  / <SetComp>  void:LBRACE NamedTest CompClauses void:RBRACE
  / <DictLit>  void:LBRACE DictItems? void:RBRACE
  / <SetLit>   void:LBRACE TestListStar void:RBRACE
  ;

Object DictItems =
    head:DictItem tail:( void:COMMA DictItem )* void:COMMA?
    { cons(head, tail) }
  ;

generic DictItem =
    <DictPair> Test void:COLON Test
  / <DictUnpack> void:DOUBLESTAR OrTest
  ;

// One or more comprehension clauses: a leading `for`, then any mix of
// further `for`s and `if`s.  Conditions are or_test as in CPython, so a
// bare ternary needs parentheses there.
Object CompClauses =
    head:CompFor tail:( CompFor / CompIf )* { cons(head, tail) }
  ;

generic CompFor =
    <CompForAsync> void:ASYNC void:FOR TargetList void:IN OrTest
  / <CompFor> void:FOR TargetList void:IN OrTest
  ;

generic CompIf = <CompIf> void:IF OrTest ;

// Assignment targets: starred targets plus primaries, which already cover
// names, attributes, subscripts and parenthesized/bracketed target lists
// (as tuple/list atoms -- a deliberate superset of CPython's target
// grammar; the point is never to misparse valid code).
generic Target =
    <StarTarget> void:STAR Target
  / Primary
  ;

Object TargetList =
    head:Target tail:( void:COMMA Target )* void:COMMA?
    { cons(head, tail) }
  ;
