// Python's reserved words (3.8-level; `match`/`case` are soft keywords and
// parse as plain identifiers).  KeywordWord is sorted longest-first so that
// a prefix ("as") never shadows a longer keyword ("assert", "async") in the
// ordered choice.
module python.Keywords;

import python.Characters;
import python.Layout;

transient void Keyword = KeywordWord !IdentifierPart ;

transient void KeywordWord =
    "continue" / "nonlocal"
  / "finally"
  / "assert" / "except" / "global" / "import" / "lambda" / "return"
  / "async" / "await" / "break" / "class" / "False" / "raise" / "while" / "yield"
  / "elif" / "else" / "from" / "None" / "pass" / "True" / "with"
  / "and" / "def" / "del" / "for" / "not" / "try"
  / "as" / "if" / "in" / "is" / "or"
  ;

transient void AND      = "and"      !IdentifierPart Spacing ;
transient void AS       = "as"       !IdentifierPart Spacing ;
transient void ASSERT   = "assert"   !IdentifierPart Spacing ;
transient void ASYNC    = "async"    !IdentifierPart Spacing ;
transient void AWAIT    = "await"    !IdentifierPart Spacing ;
transient void BREAK    = "break"    !IdentifierPart Spacing ;
transient void CLASS    = "class"    !IdentifierPart Spacing ;
transient void CONTINUE = "continue" !IdentifierPart Spacing ;
transient void DEF      = "def"      !IdentifierPart Spacing ;
transient void DEL      = "del"      !IdentifierPart Spacing ;
transient void ELIF     = "elif"     !IdentifierPart Spacing ;
transient void ELSE     = "else"     !IdentifierPart Spacing ;
transient void EXCEPT   = "except"   !IdentifierPart Spacing ;
transient void FALSE    = "False"    !IdentifierPart Spacing ;
transient void FINALLY  = "finally"  !IdentifierPart Spacing ;
transient void FOR      = "for"      !IdentifierPart Spacing ;
transient void FROM     = "from"     !IdentifierPart Spacing ;
transient void GLOBAL   = "global"   !IdentifierPart Spacing ;
transient void IF       = "if"       !IdentifierPart Spacing ;
transient void IMPORT   = "import"   !IdentifierPart Spacing ;
transient void IN       = "in"       !IdentifierPart Spacing ;
transient void IS       = "is"       !IdentifierPart Spacing ;
transient void LAMBDA   = "lambda"   !IdentifierPart Spacing ;
transient void NONE     = "None"     !IdentifierPart Spacing ;
transient void NONLOCAL = "nonlocal" !IdentifierPart Spacing ;
transient void NOT      = "not"      !IdentifierPart Spacing ;
transient void OR       = "or"       !IdentifierPart Spacing ;
transient void PASS     = "pass"     !IdentifierPart Spacing ;
transient void RAISE    = "raise"    !IdentifierPart Spacing ;
transient void RETURN   = "return"   !IdentifierPart Spacing ;
transient void TRUE     = "True"     !IdentifierPart Spacing ;
transient void TRY      = "try"      !IdentifierPart Spacing ;
transient void WHILE    = "while"    !IdentifierPart Spacing ;
transient void WITH     = "with"     !IdentifierPart Spacing ;
transient void YIELD    = "yield"    !IdentifierPart Spacing ;
