// Root module for the Python grammar.  Composing this module pulls in the
// whole python.* family; the start production is File.
//
// File mirrors CPython's `file_input`: leading Spacing absorbs any blank
// and comment-only lines (the layout pre-pass leaves those verbatim), then
// statements until end of input.  An empty or comment-only file parses to
// the empty statement list.
module python.Python;

import python.Layout;
import python.Statements;

public Object File =
    void:Spacing stmts:( Statement )* void:EndOfInput { flatten(stmts) }
  ;
