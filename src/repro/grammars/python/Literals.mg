// Number and string literals.
//
// Numbers keep their exact source text as a (Num "...") node; strings keep
// each literal's raw text (prefix and quotes included), with implicit
// adjacent-literal concatenation collected into one (Str [pieces]) node.
// f-strings are carried as plain text -- their embedded expressions are not
// parsed (nested same-quote f-strings are a 3.12 feature and sit on the
// corpus allowlist).
module python.Literals;

import python.Characters;
import python.Layout;

generic Number = <Num> text:( NumberBody ) !IdentifierStart Spacing ;

// The trailing [jJ] accepts imaginary forms; the !IdentifierStart guard
// rejects a literal running straight into a name (CPython rejects "123abc"
// at the tokenizer level).
transient void NumberBody =
    ( "0x"i HexDigits / "0o"i OctDigits / "0b"i BinDigits / DecimalBody ) [jJ]?
  ;

transient void DecimalBody =
    Digits "." Digits? Exponent?
  / "." Digits Exponent?
  / Digits Exponent?
  ;

transient void Exponent  = [eE] [+\-]? Digits ;
transient void Digits    = [0-9] [0-9_]* ;

// An underscore may directly follow the radix prefix (0x_FF is legal).
transient void HexDigits = [0-9a-fA-F_]+ ;
transient void OctDigits = [0-7_]+ ;
transient void BinDigits = [01_]+ ;

generic Strings = <Str> StringLiteral+ ;

Object StringLiteral = text:( StringPrefix? ( LongString / ShortString ) ) Spacing ;

transient void StringPrefix = [rbfuRBFU] [rbfuRBFU]? ;

// Triple-quoted strings may span physical lines; the layout pre-pass
// guarantees no sentinel characters ever appear inside a string literal.
// "\\" _ also covers raw strings: even there a backslash lexically escapes
// a following quote.
transient void LongString =
    "\"\"\"" ( "\\" _ / !( "\"\"\"" ) _ )* "\"\"\""
  / "'''"    ( "\\" _ / !( "'''" ) _ )*    "'''"
  ;

transient void ShortString =
    "\"" ( "\\" _ / [^"\\\n] )* "\""
  / "'"  ( "\\" _ / [^'\\\n] )*  "'"
  ;
