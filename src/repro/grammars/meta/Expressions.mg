// Parsing-expression syntax: choices, sequences, prefixes, suffixes,
// primaries.  The tree mirrors the IR one node per operator; the bridge
// converts it with no further analysis.
module meta.Expressions;

import meta.Spacing;
import meta.Lexical;

Object MChoice =
    head:MAlternative tail:( void:"/" MSpacing MAlternative )* { cons(head, tail) }
  ;

generic MAlternative =
    <Alternative> MLabel? MPrefixed*
  ;

Object MLabel =
    void:"<" MSpacing name:MWord void:">" MSpacing { name }
  ;

generic MPrefixed =
    <AndPred> void:"&" MSpacing MSuffixed
  / <NotPred> void:"!" MSpacing MSuffixed
  / <Voided>  void:"void" MWordBreak MSpacing void:":" MSpacing MSuffixed
  / <Texted>  void:"text" MWordBreak MSpacing void:":" MSpacing MSuffixed
  / <Bound>   MWord void:":" !( "=" ) MSpacing MSuffixed
  / MSuffixed
  ;

generic MSuffixed =
    <Suffixed> MPrimary MSuffixOp+
  / MPrimary
  ;

Object MSuffixOp = text:( [*+?] ) MSpacing ;

generic MPrimary =
    <Group> void:"(" MSpacing MChoice void:")" MSpacing
  / <Any>   void:"_" MWordBreak MSpacing
  / MLiteral
  / MClass
  / MAction
  / <Reference> MName !MDefOp
  ;

// A name directly followed by a definition operator belongs to the next
// definition, not to the current alternative.
transient void MDefOp = "+=" / ":=" / "-=" / "=" ;
