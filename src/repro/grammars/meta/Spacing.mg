// White space and comments of the .mg grammar-definition language itself.
// All meta productions are M-prefixed so the grammar can be composed into
// other grammars without name clashes.
module meta.Spacing;

transient void MSpacing = ( [ \t\r\n] / MLineComment / MBlockComment )* ;

transient void MLineComment = "//" [^\n]* ;

transient void MBlockComment = "/*" ( !"*/" _ )* "*/" ;

transient void MEndOfFile = !_ ;

// Word boundary after contextual keywords ("import", "void", ...).
transient void MWordBreak = ![a-zA-Z0-9_] ;
