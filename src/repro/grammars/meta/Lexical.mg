// Lexical syntax of .mg: names, string literals, character classes,
// semantic actions.  Bodies are captured raw; escape decoding is the
// bridge's job (repro.meta.selfhost), exactly as the hand-written lexer
// decodes them.
module meta.Lexical;

import meta.Spacing;

// Possibly dot-qualified name (module names, production references).
Object MName =
    text:( MWordPart ( "." MWordPart )* ) MSpacing
  ;

// A single undotted word (labels, parameters, binding names).
Object MWord = text:( MWordPart ) MSpacing ;

transient void MWordPart = [a-zA-Z_] [a-zA-Z0-9_]* ;

generic MLiteral =
    <Literal> void:"\"" text:( MStringChar* ) void:"\"" MCaseFlag? MSpacing
  ;

Object MCaseFlag = text:( "i" ) MWordBreak ;

transient void MStringChar = "\\" _ / [^"\\] ;

generic MClass =
    <Class> void:"[" text:( MClassChar* ) void:"]" MSpacing
  ;

transient void MClassChar = "\\" _ / [^\]\\] ;

generic MAction =
    <Action> void:"{" text:( MActionText ) void:"}" MSpacing
  ;

// Brace-balanced action bodies; braces inside string literals don't count.
transient void MActionText = ( MBraced / MDoubleQuoted / MSingleQuoted / [^{}"'] )* ;

transient void MBraced = "{" MActionText "}" ;

transient void MDoubleQuoted = "\"" ( "\\" _ / [^"\\] )* "\"" ;

transient void MSingleQuoted = "'" ( "\\" _ / [^'\\] )* "'" ;
