// File-level syntax: the module header, dependencies, options, production
// definitions, and the three modification forms.  Keywords ("module",
// "import", "public", "generic", ...) are contextual: when the keyword
// reading fails — e.g. a production is actually *named* `import` — PEG
// backtracking falls through to the definition alternatives, exactly like
// the hand-written parser's lookahead.
module meta.Module;

import meta.Spacing;
import meta.Lexical;
import meta.Expressions;

public generic MModule =
    <Module> MSpacing void:"module" MWordBreak MSpacing MName MParamList?
             void:";" MSpacing MDependency* MItem* MEndOfFile
  ;

Object MParamList =
    void:"(" MSpacing head:MName tail:( void:"," MSpacing MName )* void:")" MSpacing
    { cons(head, tail) }
  ;

generic MDependency =
    <Import>      void:"import" MWordBreak MSpacing MName void:";" MSpacing
  / <Instantiate> void:"instantiate" MWordBreak MSpacing MName MArgList? MAlias?
                  void:";" MSpacing
  / <Modify>      void:"modify" MWordBreak MSpacing MName void:";" MSpacing
  ;

Object MArgList =
    void:"(" MSpacing head:MName tail:( void:"," MSpacing MName )* void:")" MSpacing
    { cons(head, tail) }
  ;

Object MAlias = void:"as" MWordBreak MSpacing MName ;

generic MItem =
    <OptionDecl> void:"option" MWordBreak MSpacing MWord
                 ( void:"," MSpacing MWord )* void:";" MSpacing
  / MDefinition
  ;

generic MDefinition =
    <Removal>    MName void:"-=" MSpacing MLabelList void:";" MSpacing
  / <Addition>   MName void:"+=" MSpacing MModChoice void:";" MSpacing
  / <Override>   MAttribute* MKind? MName void:":=" MSpacing MChoice void:";" MSpacing
  / <Production> MAttribute* MKind? MName void:"=" !( "=" ) MSpacing MChoice
                 void:";" MSpacing
  ;

// An attribute/kind word directly followed by a definition operator is
// really a production *named* like an attribute — the !MDefOp guard makes
// these words contextual.
Object MAttribute =
    v:( text:( "public" / "transient" / "memo" / "inline" / "noinline"
             / "withLocation" ) )
    MWordBreak MSpacing !MDefOp { v }
  ;

Object MKind =
    v:( text:( "void" / "String" / "generic" / "Object" ) )
    MWordBreak MSpacing !MDefOp { v }
  ;

Object MLabelList =
    head:MLabel tail:( void:"," MSpacing MLabel )* { cons(head, tail) }
  ;

Object MModChoice =
    head:MModAlternative tail:( void:"/" MSpacing MModAlternative )* { cons(head, tail) }
  ;

generic MModAlternative =
    <Ellipsis> void:"..." MSpacing
  / MAlternative
  ;
