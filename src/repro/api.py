"""High-level API: the front door most users need.

.. code-block:: python

    import repro

    # From grammar modules on disk / built in:
    lang = repro.compile_grammar("jay.Jay", paths=["grammars/"])
    tree = lang.parse("class C { int f() { return 42; } }")

    # From a programmatically built grammar:
    from repro.peg.builder import GrammarBuilder, ...
    lang = repro.compile_grammar(builder.build())

A :class:`Language` bundles everything derived from one grammar under one
set of optimization options: the composed grammar, the prepared (optimized)
grammar, the generated parser source, and the ready-to-use parser class.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.codegen import generate_parser_source, load_parser
from repro.interp import BacktrackInterpreter, PackratInterpreter
from repro.meta import ModuleLoader
from repro.modules import compose
from repro.optim import Options, PreparedGrammar, prepare
from repro.peg.grammar import Grammar


@dataclass(frozen=True)
class Language:
    """A compiled language: grammar + optimized grammar + generated parser."""

    grammar: Grammar
    prepared: PreparedGrammar
    parser_source: str
    parser_class: type

    # -- parsing ----------------------------------------------------------------

    def parse(self, text: str, start: str | None = None, source: str = "<input>") -> Any:
        """Parse ``text`` completely with the generated parser."""
        return self.parser_class(text, source).parse(start)

    def parse_file(self, path: str | Path, start: str | None = None) -> Any:
        """Parse the contents of a file (its path becomes the source name)."""
        path = Path(path)
        return self.parse(path.read_text(), start=start, source=str(path))

    def trace(self, text: str, start: str | None = None, source: str = "<input>"):
        """Parse with tracing (on the interpreter backend).

        Returns ``(value, events, error)``; see
        :func:`repro.interp.trace_parse`.
        """
        from repro.interp import trace_parse

        return trace_parse(self.interpreter(), text, start=start, source=source)

    def parser(self, text: str, source: str = "<input>"):
        """A fresh generated-parser instance over ``text``."""
        return self.parser_class(text, source)

    def recognize(self, text: str, start: str | None = None) -> bool:
        """Does the whole input match?  (No value construction errors are
        suppressed — only parse failures.)"""
        from repro.errors import ParseError

        try:
            self.parse(text, start)
        except ParseError:
            return False
        return True

    # -- reference backends --------------------------------------------------------

    def interpreter(self, memoize: bool = True) -> PackratInterpreter | BacktrackInterpreter:
        """A grammar interpreter over the same prepared grammar."""
        if memoize:
            return PackratInterpreter(self.prepared.grammar, chunked=self.prepared.chunked_memo)
        return BacktrackInterpreter(self.prepared.grammar)

    # -- artifacts -----------------------------------------------------------------

    def write_parser(self, path: str | Path) -> Path:
        """Write the generated parser module to ``path``."""
        path = Path(path)
        path.write_text(self.parser_source)
        return path

    @property
    def options(self) -> Options:
        return self.prepared.options


def load_grammar(
    root: str,
    paths: list[str | Path] | None = None,
    loader: ModuleLoader | None = None,
    start: str | None = None,
) -> Grammar:
    """Compose the module ``root`` (and everything it reaches) into a grammar."""
    if loader is None:
        loader = ModuleLoader(paths=list(paths) if paths else None)
    return compose(root, loader, start=start)


def compile_grammar(
    grammar: Grammar | str,
    options: Options | None = None,
    paths: list[str | Path] | None = None,
    loader: ModuleLoader | None = None,
    start: str | None = None,
    parser_name: str = "Parser",
) -> Language:
    """Compose (if needed), optimize, and generate a parser.

    ``grammar`` is either an already-built :class:`Grammar` or the qualified
    name of a root grammar module to compose.
    """
    if isinstance(grammar, str):
        grammar = load_grammar(grammar, paths=paths, loader=loader, start=start)
    elif start is not None:
        grammar = grammar.with_start(start)
    prepared = prepare(grammar, options)
    source = generate_parser_source(prepared, parser_name)
    parser_class = load_parser(source, parser_name)
    return Language(
        grammar=grammar,
        prepared=prepared,
        parser_source=source,
        parser_class=parser_class,
    )


def parse(
    grammar: Grammar | str,
    text: str,
    options: Options | None = None,
    paths: list[str | Path] | None = None,
    start: str | None = None,
) -> Any:
    """One-shot convenience: compile and parse in one call."""
    return compile_grammar(grammar, options=options, paths=paths, start=start).parse(text)
