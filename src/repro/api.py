"""High-level API: the front door most users need.

.. code-block:: python

    import repro

    # From grammar modules on disk / built in:
    lang = repro.compile_grammar("jay.Jay", paths=["grammars/"])
    tree = lang.parse("class C { int f() { return 42; } }")

    # From a programmatically built grammar:
    from repro.peg.builder import GrammarBuilder, ...
    lang = repro.compile_grammar(builder.build())

A :class:`Language` bundles everything derived from one grammar under one
set of optimization options: the composed grammar, the prepared (optimized)
grammar, the generated parser source, and the ready-to-use parser class.

Compilation is memoized at two levels (see ``docs/caching.md``):

- an in-process LRU of :class:`Language` objects keyed by
  ``(root, options, start, parser name, search paths)``, revalidated
  against the current ``.mg`` texts on every hit;
- an optional on-disk :class:`~repro.cache.CompilationCache` (pass
  ``cache=True`` / ``cache_dir=...`` / a cache instance, or set
  ``$REPRO_CACHE_DIR``) that makes the second *process* warm too.

For parsing many inputs with one grammar, :meth:`Language.session` reuses a
single parser instance, resetting (not reallocating) its memo table between
inputs.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.cache import CompilationCache, module_fingerprint
from repro.codegen import generate_parser_source, load_parser
from repro.errors import CompositionError
from repro.interp import BacktrackInterpreter, PackratInterpreter
from repro.meta import ModuleLoader
from repro.modules import compose, compose_with_manifest
from repro.optim import Options, PreparedGrammar, prepare
from repro.peg.grammar import Grammar


@dataclass(frozen=True)
class Language:
    """A compiled language: grammar + optimized grammar + generated parser."""

    grammar: Grammar
    prepared: PreparedGrammar
    parser_source: str
    parser_class: type

    #: Backends :meth:`parse` / :meth:`session` accept.
    BACKENDS = ("generated", "vm")

    # -- parsing ----------------------------------------------------------------

    def parse(
        self,
        text: str,
        start: str | None = None,
        source: str = "<input>",
        profile: Any = None,
        depth_budget: int | None = None,
        backend: str = "generated",
    ) -> Any:
        """Parse ``text`` completely.

        ``backend`` selects the execution strategy: ``"generated"`` (the
        default, compiled Python source) or ``"vm"`` (the parsing machine,
        :mod:`repro.vm`).  Both produce identical ASTs and errors.

        Pass a :class:`repro.profile.ParseProfile` as ``profile`` to record
        parse-time telemetry; the parse then runs through a lazily compiled
        *profiled twin* of the selected backend (the default parser class is
        untouched — see ``docs/profiling.md``).  Note the twin profiles the
        fully *optimized* grammar; for author's-grammar coverage use
        :func:`repro.profile.profile_corpus`.

        ``depth_budget`` caps the resources the parse may use: for the
        generated backend it is a recursion budget counted in stack frames
        above the caller (see :func:`repro.runtime.base.recursion_budget`);
        for the VM backend it is a machine stack-entry budget (calls plus
        live backtrack points).  Either way, input too deeply nested raises
        a structured :class:`~repro.errors.ParseDepthError`, never a raw
        :class:`RecursionError`.
        """
        if backend == "vm":
            return self._parse_vm(text, start, source, profile, depth_budget)
        if backend != "generated":
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {self.BACKENDS}"
            )
        from repro.runtime.base import recursion_budget

        with recursion_budget(depth_budget):
            if profile is None:
                return self.parser_class(text, source).parse(start)
            profile.register_grammar(self.prepared.grammar)
            try:
                value = self.profiled_parser_class(text, source, profile=profile).parse(start)
            except Exception:
                profile.count_parse(text, accepted=False)
                raise
            profile.count_parse(text, accepted=True)
            return value

    def _parse_vm(
        self,
        text: str,
        start: str | None,
        source: str,
        profile: Any,
        depth_budget: int | None,
    ) -> Any:
        from repro.vm import VMParser

        program = self.vm_program(profiled=profile is not None)
        if profile is None:
            return VMParser(program, text, source, depth_budget=depth_budget).parse(start)
        profile.register_grammar(self.prepared.grammar)
        try:
            value = VMParser(
                program, text, source, profile=profile, depth_budget=depth_budget
            ).parse(start)
        except Exception:
            profile.count_parse(text, accepted=False)
            raise
        profile.count_parse(text, accepted=True)
        return value

    def vm_program(self, profiled: bool = False, incremental: bool = False):
        """The grammar lowered to parsing-machine bytecode, compiled on first
        use and cached on the instance (plain, profiled, and incremental
        twins separately).
        """
        from repro.vm import compile_program

        if profiled and incremental:
            raise ValueError("profiled and incremental VM programs are exclusive")
        if incremental:
            attr = "_vm_program_incremental"
        elif profiled:
            attr = "_vm_program_profiled"
        else:
            attr = "_vm_program"
        cached = self.__dict__.get(attr)
        if cached is None:
            cached = compile_program(self.prepared, profiled=profiled, incremental=incremental)
            object.__setattr__(self, attr, cached)
        return cached

    def parse_file(self, path: str | Path, start: str | None = None) -> Any:
        """Parse the contents of a file (its path becomes the source name)."""
        path = Path(path)
        return self.parse(path.read_text(), start=start, source=str(path))

    def trace(self, text: str, start: str | None = None, source: str = "<input>"):
        """Parse with tracing (on the interpreter backend).

        Returns ``(value, events, error)``; see
        :func:`repro.interp.trace_parse`.
        """
        from repro.interp import trace_parse

        return trace_parse(self.interpreter(), text, start=start, source=source)

    def parser(self, text: str, source: str = "<input>", profile: Any = None):
        """A fresh generated-parser instance over ``text`` (the profiled
        twin when ``profile`` is given)."""
        if profile is None:
            return self.parser_class(text, source)
        return self.profiled_parser_class(text, source, profile=profile)

    @property
    def profiled_parser_class(self) -> type:
        """The generated parser's instrumented twin, compiled on first use.

        Same grammar, same optimization options, same ASTs and errors — plus
        :class:`repro.profile.ParseProfile` hooks.  Cached on the instance so
        repeated profiled parses pay codegen once.
        """
        cached = self.__dict__.get("_profiled_class")
        if cached is None:
            name = self.parser_class.__name__
            source = generate_parser_source(self.prepared, name, profiled=True)
            cached = load_parser(source, name)
            object.__setattr__(self, "_profiled_class", cached)
        return cached

    def session(
        self,
        start: str | None = None,
        profile: Any = None,
        depth_budget: int | None = None,
        backend: str = "generated",
    ) -> "ParseSession":
        """A warm-parse session: one parser instance reused across inputs.

        .. code-block:: python

            session = lang.session()
            for text in corpus:
                tree = session.parse(text)

        Between inputs the parser is ``reset()`` — failure tracking, the
        line index, and the memo table are cleared *in place*, so parsing N
        inputs allocates one parser and one memo table, not N.

        ``backend`` selects the execution strategy (``"generated"`` or
        ``"vm"``), exactly as in :meth:`parse`.  With ``profile`` set, the
        session reuses one *profiled-twin* parser instead and accumulates
        telemetry across all its parses.  A ``depth_budget`` (stack frames,
        or machine stack entries on the VM) applies to every parse in the
        session — deep inputs fail with a structured
        :class:`~repro.errors.ParseDepthError`.
        """
        return ParseSession(
            self, start=start, profile=profile, depth_budget=depth_budget, backend=backend
        )

    def incremental(
        self,
        start: str | None = None,
        backend: str = "vm",
        profile: Any = None,
        depth_budget: int | None = None,
    ) -> "IncrementalSession":
        """An edit-aware session: reparse after edits, reusing memo entries.

        .. code-block:: python

            session = lang.incremental()
            session.set_text(buffer)
            tree = session.parse()
            session.apply_edit(offset, removed, "replacement")
            tree = session.parse()          # only re-derives damaged spans

        :meth:`~repro.incremental.IncrementalSession.apply_edit` shifts memo
        entries right of the damage and drops only those whose *examined*
        span overlaps it, so a small edit costs work proportional to the
        damage, not the buffer (see ``docs/incremental.md``).  ``backend``
        is ``"vm"`` (default) or ``"closures"``; both run watermark-
        instrumented twins whose results are identical to a cold parse.
        """
        from repro.incremental import IncrementalSession

        return IncrementalSession(
            self, start=start, backend=backend, profile=profile, depth_budget=depth_budget
        )

    def recognize(self, text: str, start: str | None = None) -> bool:
        """Does the whole input match?  (No value construction errors are
        suppressed — only parse failures.)"""
        from repro.errors import ParseError

        try:
            self.parse(text, start)
        except ParseError:
            return False
        return True

    # -- reference backends --------------------------------------------------------

    def interpreter(
        self, memoize: bool = True, profile: Any = None
    ) -> PackratInterpreter | BacktrackInterpreter:
        """A grammar interpreter over the same prepared grammar."""
        if memoize:
            return PackratInterpreter(
                self.prepared.grammar, chunked=self.prepared.chunked_memo, profile=profile
            )
        return BacktrackInterpreter(self.prepared.grammar, profile=profile)

    # -- artifacts -----------------------------------------------------------------

    def write_parser(self, path: str | Path) -> Path:
        """Write the generated parser module to ``path``."""
        path = Path(path)
        path.write_text(self.parser_source)
        return path

    @property
    def options(self) -> Options:
        return self.prepared.options


class ParseSession:
    """Parse many inputs with one reused parser instance.

    Created via :meth:`Language.session`.  The first :meth:`parse` call
    allocates the parser; every later call resets it in place — same parser
    object, same memo-table container — which removes per-parse allocation
    of memo columns from the warm path.
    """

    def __init__(
        self,
        language: Language,
        start: str | None = None,
        profile: Any = None,
        depth_budget: int | None = None,
        backend: str = "generated",
    ):
        if backend not in Language.BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {Language.BACKENDS}"
            )
        self._language = language
        self._start = start
        self._parser = None
        self._profile = profile
        self._depth_budget = depth_budget
        self._backend = backend
        if profile is not None:
            profile.register_grammar(language.prepared.grammar)
        #: Number of inputs parsed (including failed parses).
        self.parses = 0

    @property
    def language(self) -> Language:
        return self._language

    @property
    def parser(self):
        """The underlying parser instance (``None`` before the first parse)."""
        return self._parser

    def parse(self, text: str, source: str = "<input>") -> Any:
        """Parse ``text`` completely; raises :class:`ParseError` on failure."""
        if self._backend == "vm":
            # The VM enforces the depth budget itself, as a machine
            # stack-entry cap — no interpreter recursion limit to arm.
            return self._parse(text, source)
        from repro.runtime.base import recursion_budget

        with recursion_budget(self._depth_budget):
            return self._parse(text, source)

    def _make_parser(self, text: str, source: str):
        profile = self._profile
        if self._backend == "vm":
            from repro.vm import VMParser

            program = self._language.vm_program(profiled=profile is not None)
            return VMParser(
                program, text, source, profile=profile, depth_budget=self._depth_budget
            )
        if profile is None:
            return self._language.parser_class(text, source)
        return self._language.profiled_parser_class(text, source, profile=profile)

    def _parse(self, text: str, source: str) -> Any:
        parser = self._parser
        profile = self._profile
        if parser is None:
            parser = self._parser = self._make_parser(text, source)
        else:
            parser.reset(text, source)
        self.parses += 1
        if profile is None:
            try:
                return parser.parse(self._start)
            except Exception:
                # Failed parses must not park a stale (possibly huge) memo
                # table on the session between requests: a long-lived session
                # (e.g. a serve worker) would otherwise hold the whole memo
                # of the last failure while idle.
                parser._reset_memo()
                raise
        try:
            value = parser.parse(self._start)
        except Exception:
            profile.count_parse(text, accepted=False)
            parser._reset_memo()
            raise
        profile.count_parse(text, accepted=True)
        return value

    def recognize(self, text: str) -> bool:
        """Does the whole input match?"""
        from repro.errors import ParseError

        try:
            self.parse(text)
        except ParseError:
            return False
        return True

    def close(self) -> None:
        """Release the session's parser (and with it the memo table).

        The session stays usable — the next :meth:`parse` simply allocates a
        fresh parser — but a closed idle session no longer pins the last
        input's memo columns in memory.
        """
        self._parser = None

    def __enter__(self) -> "ParseSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# -- in-process language LRU ---------------------------------------------------
#
# Entries are (Language, fingerprint, module names); a hit is revalidated by
# re-hashing the participating .mg texts, so editing a grammar file between
# compile_grammar calls is observed even without the disk cache.
#
# All access to the OrderedDict goes through ``_lru_lock``: compile_grammar
# is called concurrently by the parse-service worker pool and by any
# multi-threaded embedder, and OrderedDict mutation is not atomic.  The
# fingerprint I/O in ``_lru_lookup`` happens *outside* the lock so a slow
# disk never serializes unrelated compiles.

_LRU_MAX = 32
_language_lru: OrderedDict[tuple, tuple[Language, dict[str, str], tuple[str, ...]]] = OrderedDict()
_lru_lock = threading.RLock()

if hasattr(os, "register_at_fork"):
    # A child forked while another thread holds the lock would inherit it
    # locked forever (the owning thread does not exist in the child); the
    # serve worker pool forks from threaded parents, so re-arm it.
    os.register_at_fork(after_in_child=lambda: globals().__setitem__("_lru_lock", threading.RLock()))


def clear_language_cache() -> None:
    """Empty the in-process :class:`Language` LRU."""
    with _lru_lock:
        _language_lru.clear()


def language_cache_info() -> dict[str, int]:
    """Size/capacity of the in-process :class:`Language` LRU."""
    with _lru_lock:
        return {"size": len(_language_lru), "max": _LRU_MAX}


def _lru_store(key: tuple, language: Language, fingerprint: dict[str, str], modules: tuple[str, ...]) -> None:
    with _lru_lock:
        _language_lru[key] = (language, fingerprint, modules)
        _language_lru.move_to_end(key)
        while len(_language_lru) > _LRU_MAX:
            _language_lru.popitem(last=False)


def _lru_lookup(key: tuple, loader: ModuleLoader) -> Language | None:
    with _lru_lock:
        entry = _language_lru.get(key)
    if entry is None:
        return None
    language, fingerprint, modules = entry
    try:
        current = module_fingerprint(loader, modules)
    except CompositionError:
        current = None
    if current != fingerprint:
        with _lru_lock:
            _language_lru.pop(key, None)
        return None
    with _lru_lock:
        if key in _language_lru:
            _language_lru.move_to_end(key)
    return language


def _resolve_disk_cache(
    cache: CompilationCache | bool | None, cache_dir: str | Path | None
) -> CompilationCache | None:
    """Which on-disk cache (if any) the ``cache``/``cache_dir`` args select."""
    if cache is False:
        return None
    if isinstance(cache, CompilationCache):
        return cache
    if cache_dir is not None:
        return CompilationCache(Path(cache_dir))
    if cache is True or os.environ.get("REPRO_CACHE_DIR"):
        return CompilationCache()
    return None


def load_grammar(
    root: str,
    paths: list[str | Path] | None = None,
    loader: ModuleLoader | None = None,
    start: str | None = None,
) -> Grammar:
    """Compose the module ``root`` (and everything it reaches) into a grammar."""
    if loader is None:
        loader = ModuleLoader(paths=list(paths) if paths else None)
    return compose(root, loader, start=start)


def compile_grammar(
    grammar: Grammar | str,
    options: Options | None = None,
    paths: list[str | Path] | None = None,
    loader: ModuleLoader | None = None,
    start: str | None = None,
    parser_name: str = "Parser",
    cache: CompilationCache | bool | None = None,
    cache_dir: str | Path | None = None,
) -> Language:
    """Compose (if needed), optimize, and generate a parser.

    ``grammar`` is either an already-built :class:`Grammar` or the qualified
    name of a root grammar module to compose.

    Named roots are served from the in-process LRU when possible (disable
    with ``cache=False``); an on-disk cache is used in addition when
    ``cache=True``, ``cache_dir`` is given, ``cache`` is a
    :class:`~repro.cache.CompilationCache`, or ``$REPRO_CACHE_DIR`` is set.
    Both levels revalidate against the current ``.mg`` module texts, so
    stale artifacts are rebuilt, never trusted.
    """
    opts = options or Options.all()
    if not isinstance(grammar, str):
        # Programmatically built grammars have no stable source identity to
        # fingerprint, so they bypass both cache levels.
        if start is not None:
            grammar = grammar.with_start(start)
        return _compile_prepared(grammar, opts, parser_name)

    root = grammar
    disk = _resolve_disk_cache(cache, cache_dir)
    # A caller-supplied loader may hold unregistered in-memory sources, so
    # the process-wide LRU (keyed only by name/paths) would be unsound.
    use_lru = cache is not False and loader is None
    if loader is None:
        loader = ModuleLoader(paths=list(paths) if paths else None)
    lru_key = (
        root,
        opts.cache_key(),
        start,
        parser_name,
        tuple(str(p) for p in (paths or ())),
    )

    if use_lru:
        cached = _lru_lookup(lru_key, loader)
        if cached is not None:
            return cached

    if disk is not None:
        hit = disk.lookup(root, opts, start, parser_name, loader)
        if hit is not None:
            language = Language(
                grammar=hit.grammar,
                prepared=hit.prepared,
                parser_source=hit.parser_source,
                parser_class=hit.parser_class,
            )
            if use_lru:
                _lru_store(lru_key, language, hit.fingerprint, tuple(hit.fingerprint))
            return language

    composed, modules = compose_with_manifest(root, loader, start=start)
    language = _compile_prepared(composed, opts, parser_name)
    if disk is not None:
        disk.store(
            root, opts, start, parser_name, loader, modules,
            language.grammar, language.prepared, language.parser_source,
        )
    if use_lru:
        try:
            fingerprint = module_fingerprint(loader, modules)
        except CompositionError:
            fingerprint = None
        if fingerprint is not None:
            _lru_store(lru_key, language, fingerprint, modules)
    return language


def _compile_prepared(grammar: Grammar, options: Options, parser_name: str) -> Language:
    """The uncached compile path: optimize, generate, and load."""
    prepared = prepare(grammar, options)
    source = generate_parser_source(prepared, parser_name)
    parser_class = load_parser(source, parser_name)
    return Language(
        grammar=grammar,
        prepared=prepared,
        parser_source=source,
        parser_class=parser_class,
    )


def parse(
    grammar: Grammar | str,
    text: str,
    options: Options | None = None,
    paths: list[str | Path] | None = None,
    start: str | None = None,
) -> Any:
    """One-shot convenience: compile and parse in one call."""
    return compile_grammar(grammar, options=options, paths=paths, start=start).parse(text)
