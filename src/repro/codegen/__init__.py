"""Parser generation: prepared grammar → Python source → parser class."""

from repro.codegen.generator import ParserGenerator, generate_parser_source
from repro.codegen.load import load_parser, load_parser_file, load_parser_module

__all__ = [
    "ParserGenerator",
    "generate_parser_source",
    "load_parser",
    "load_parser_file",
    "load_parser_module",
]
