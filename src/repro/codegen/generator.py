"""The parser generator: prepared grammar → Python parser source.

The generated module defines one ``Parser`` class with a ``_p_<Production>``
method per production (names are sanitized) plus a public ``parse`` entry
point.  The translation mirrors the reference interpreter exactly — the
property tests compare the two on random inputs — but specializes
everything the interpreter decides dynamically:

- per-expression matching code is emitted inline (no dispatch on IR nodes);
- memoization code is emitted only for non-transient productions, in one of
  two organizations chosen by the ``chunks`` optimization flag: per-position
  *columns of chunks* (two list index operations per lookup) or the textbook
  single dictionary keyed by ``(production, position)``;
- repetitions and options compile to loops and inline conditionals;
- with the ``terminals`` flag, choices that were specialized to
  :class:`CharSwitch` dispatch on the next character, and production
  alternatives with known disjoint first sets get first-character guards;
- with the ``errors`` flag, farthest-failure tracking is inlined with
  constant expected-name tables instead of per-failure method calls;
- semantic actions become module-level functions called with the
  alternative's bindings.

The module source is returned as a string; :func:`repro.codegen.load_parser`
executes it and returns the parser class.
"""

from __future__ import annotations

from repro.analysis.first import FirstAnalysis
from repro.errors import CodegenError
from repro.optim.options import Options
from repro.optim.pipeline import PreparedGrammar
from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Regex,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Production, ValueKind
from repro.peg.values import binding_names, contributes, kind_lookup, node_name
from repro.codegen.writer import CodeWriter

#: Memo chunk size for the chunked organization.
CHUNK_SIZE = 8
#: Minimum alternatives for production-level first-char guards.
GUARD_MIN_ALTERNATIVES = 3


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


def _first_set_message(chars: frozenset[str]) -> str:
    """Human-readable expected message for a skipped first-char guard."""
    shown = "".join(sorted(chars))
    if len(shown) > 16:
        shown = shown[:16] + "…"
    return f"one of {shown!r}"


class ParserGenerator:
    """Generate parser source for one prepared grammar.

    With ``profiled=True`` the emitted parser reports per-production
    invocations, memo hits/misses, per-alternative coverage, backtracks and
    wasted-character estimates to a :class:`repro.profile.ParseProfile`
    (``profile=`` constructor argument; a fresh collector is created when
    omitted).  The default (unprofiled) output is byte-identical to what
    this generator emitted before profiling existed — instrumentation is a
    separate generated artifact, not a runtime flag.
    """

    def __init__(
        self, prepared: PreparedGrammar, parser_name: str = "Parser", profiled: bool = False
    ):
        self.grammar: Grammar = prepared.grammar
        self.options: Options = prepared.options
        self.parser_name = parser_name
        self.profiled = profiled
        self.kind_of = kind_lookup(self.grammar)
        self.first = FirstAnalysis(self.grammar) if self.options.terminals else None
        self._actions: dict[tuple[str, tuple[str, ...]], str] = {}
        self._action_defs: list[str] = []
        self._charsets: dict[frozenset[str], str] = {}
        self._expected: dict[str, str] = {}
        # Fused-scan support: interned compiled patterns and the per-region
        # replay functions that reproduce farthest-failure records on demand.
        self._patterns: dict[str, str] = {}
        self._replays: dict[Regex, str] = {}
        self._replay_defs: list[str] = []
        self._counter = 0
        self._with_location_default = "withLocation" in self.grammar.options
        # Dense memo indices for non-transient productions.
        self._memo_index: dict[str, int] = {}
        for production in self.grammar:
            if not production.is_transient:
                self._memo_index[production.name] = len(self._memo_index)

    # -- helpers --------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _charset_const(self, chars: frozenset[str]) -> str:
        existing = self._charsets.get(chars)
        if existing is None:
            existing = f"_CS{len(self._charsets)}"
            self._charsets[chars] = existing
        return existing

    def _expected_const(self, message: str) -> str:
        existing = self._expected.get(message)
        if existing is None:
            existing = f"_E{len(self._expected)}"
            self._expected[message] = existing
        return existing

    def _pattern_const(self, pattern: str) -> str:
        existing = self._patterns.get(pattern)
        if existing is None:
            existing = f"_RX{len(self._patterns)}"
            self._patterns[pattern] = existing
        return existing

    def _replay_fn(self, expr: Regex) -> str:
        """The module-level replay function for one fused region.

        Its body is the ordinary generated code for the region's original
        expression, run purely for its farthest-failure records — which means
        it naturally goes through :meth:`_fail`, so under the ``errors`` flag
        it shares (and never mutates) the module's constant expected tables.
        """
        existing = self._replays.get(expr)
        if existing is None:
            existing = f"_fused_replay{len(self._replays)}"
            self._replays[expr] = existing
            w = CodeWriter()
            with w.block(f"def {existing}(self, pos):"):
                w.line("# Replays one fused region's original expression for its")
                w.line("# expected-set records (see ParserBase._drain_fused).")
                w.line("text = self._text")
                ok_var = self._fresh("ok")
                value_var = self._fresh("v")
                w.line(f"{ok_var} = True")
                self._emit(w, expr.original, "pos", value_var, ok_var, False)
            self._replay_defs.append(w.render())
        return existing

    def _action_fn(self, code: str, names: tuple[str, ...]) -> str:
        key = (code, names)
        existing = self._actions.get(key)
        if existing is None:
            existing = f"_action{len(self._actions)}"
            self._actions[key] = existing
            params = ", ".join(names)
            self._action_defs.append(f"def {existing}({params}):\n    return ({code})\n")
        return existing

    def _fail(self, w: CodeWriter, pos: str, message: str) -> None:
        """Emit farthest-failure tracking.

        The optimized (``errors``) form must stay observationally identical
        to ``self._expected``: farther positions replace the expected set
        with the shared constant table, and equal positions *merge* into it
        (via :meth:`ParserBase._merge_expected`, which copies before adding
        so the constants are never mutated).
        """
        if self.options.errors:
            const = self._expected_const(message)
            with w.block(f"if {pos} > self._fail_pos:"):
                w.line(f"self._fail_pos = {pos}")
                w.line(f"self._fail_expected = {const}")
            with w.block(f"elif {pos} == self._fail_pos:"):
                w.line(f"self._merge_expected({const})")
        else:
            w.line(f"self._expected({pos}, {message!r})")

    # -- top level ---------------------------------------------------------------

    def generate(self) -> str:
        # Generate the class body first: doing so records the character-set,
        # expected-message, and action constants the module header must define.
        body = CodeWriter()
        body.indent()
        self._class_body(body)

        w = CodeWriter()
        self._module_header(w)
        for chars, const in self._charsets.items():
            w.line(f"{const} = frozenset({''.join(sorted(chars))!r})")
        for message, const in self._expected.items():
            w.line(f"{const} = [{message!r}]")
        for pattern, const in self._patterns.items():
            w.line(f"{const} = _re.compile({pattern!r}, _re.DOTALL).match")
        if self._charsets or self._expected or self._patterns:
            w.line()
        for definition in self._action_defs + self._replay_defs:
            for line in definition.splitlines():
                w.line(line)
            w.line()
        w.line()
        w.line(f"class {self.parser_name}(ParserBase):")
        for line in body.render().splitlines():
            w._lines.append(line)
        w.line()
        w.line(f"GRAMMAR_NAME = {self.grammar.name!r}")
        w.line(f"START = {self.grammar.start!r}")
        if self.profiled:
            w.line("PROFILED = True")
        return w.render()

    def _module_header(self, w: CodeWriter) -> None:
        w.lines(
            f'"""Packrat parser generated from grammar {self.grammar.name!r}.',
            "",
            "Generated by repro.codegen — do not edit.",
            f"Optimizations: {', '.join(self.options.enabled()) or 'none'}",
            '"""',
            "",
            *(("import re as _re",) if self._patterns else ()),
            "from repro.runtime.base import ParserBase",
            "from repro.runtime.node import GNode",
            "from repro.runtime.actionlib import ACTION_GLOBALS",
            *(
                ("from repro.profile.collector import ParseProfile",)
                if self.profiled
                else ()
            ),
            "",
            "# Make the action helpers (cons, fold_left, ...) visible to the",
            "# generated action functions, without clobbering module builtins.",
            "globals().update({k: v for k, v in ACTION_GLOBALS.items() if k != '__builtins__'})",
            "",
            "FAIL = -1",
            "FAILPAIR = (-1, None)",
            f"N_MEMO = {len(self._memo_index)}",
            f"N_CHUNKS = {(len(self._memo_index) + CHUNK_SIZE - 1) // CHUNK_SIZE or 1}",
            f"CHUNK_SIZE = {CHUNK_SIZE}",
            "",
        )

    def _class_body(self, w: CodeWriter) -> None:
        rule_names = list(self._memo_index)
        w.line(f'"""Parser for grammar {self.grammar.name!r} (start: {self.grammar.start!r})."""')
        w.line()
        w.line(f"MEMOIZED_RULES = {rule_names!r}")
        w.line()
        init_sig = (
            "def __init__(self, text, source='<input>', profile=None):"
            if self.profiled
            else "def __init__(self, text, source='<input>'):"
        )
        with w.block(init_sig):
            w.line("super().__init__(text)")
            w.line("self._source = source")
            if self.profiled:
                w.line("self._profile = profile if profile is not None else ParseProfile()")
            if self.options.chunks:
                w.line("self._columns = {}")
            else:
                w.line("self._memo = {}")
        w.line()
        with w.block("def _reset_memo(self):"):
            w.line('"""Clear the memo table in place (reset() protocol)."""')
            if self.options.chunks:
                w.line("self._columns.clear()")
            else:
                w.line("self._memo.clear()")
        w.line()
        with w.block("def parse(self, start=None):"):
            w.line('"""Parse the whole input text; returns the semantic value."""')
            w.line(f"method = getattr(self, '_p_' + (start or {self.grammar.start!r}))")
            with w.block("try:"):
                w.line("npos, value = method(0)")
            with w.block("except RecursionError:"):
                w.line("# Deep nesting degrades into a structured diagnostic.")
                w.line("raise self.depth_error() from None")
            with w.block("if npos < 0 or npos < self._length:"):
                w.line("raise self.parse_error()")
            w.line("return value")
        w.line()
        with w.block("def match_prefix(self, start=None):"):
            w.line('"""Match a prefix; returns (consumed, value) or (-1, None)."""')
            w.line(f"method = getattr(self, '_p_' + (start or {self.grammar.start!r}))")
            w.line("return method(0)")
        w.line()
        self._memo_accounting(w)
        for production in self.grammar:
            self._production_method(w, production)
        if self._replays:
            with w.block("def _replay_fused(self, token, pos):"):
                w.line("# token is one of the module's _fused_replayN functions.")
                w.line("token(self, pos)")
            w.line()

    def _memo_accounting(self, w: CodeWriter) -> None:
        if self.options.chunks:
            with w.block("def memo_entry_count(self):"):
                w.line("count = 0")
                with w.block("for col in self._columns.values():"):
                    with w.block("for chunk in col:"):
                        with w.block("if chunk is not None:"):
                            w.line("count += sum(1 for slot in chunk if slot is not None)")
                w.line("return count")
            w.line()
            with w.block("def memo_chunk_count(self):"):
                w.line(
                    "return sum(sum(1 for c in col if c is not None) "
                    "for col in self._columns.values())"
                )
            w.line()
            with w.block("def memo_size_bytes(self):"):
                w.line("from repro.runtime.base import sizeof_deep")
                w.line("return sizeof_deep(self._columns)")
        else:
            with w.block("def memo_entry_count(self):"):
                w.line("return len(self._memo)")
            w.line()
            with w.block("def memo_size_bytes(self):"):
                w.line("from repro.runtime.base import sizeof_deep")
                w.line("return sizeof_deep(self._memo)")
        w.line()

    # -- production methods ----------------------------------------------------------

    def _bump(self, w: CodeWriter, attr: str, key: object, amount: str = "1") -> None:
        """Inline ``profile.<attr>[key] += amount``.

        The profiled twin writes the :class:`ParseProfile` counter dicts
        directly instead of calling the hook methods — a Python-level call
        per event would dominate profiled-parser runtime."""
        w.line(f"_pd = prof.{attr}")
        w.line(f"_pd[{key!r}] = _pd.get({key!r}, 0) + {amount}")

    def _production_method(self, w: CodeWriter, production: Production) -> None:
        name = _sanitize(production.name)
        prof_name = production.name
        with w.block(f"def _p_{name}(self, pos):"):
            w.line(f'"""{production.kind.value} {production.name}"""')
            if self.profiled:
                w.line("prof = self._profile")
                self._bump(w, "invocations", prof_name)
            memoized = production.name in self._memo_index
            if memoized:
                index = self._memo_index[production.name]
                if self.options.chunks:
                    chunk_index, slot = divmod(index, CHUNK_SIZE)
                    w.line("cols = self._columns")
                    w.line("col = cols.get(pos)")
                    with w.block("if col is None:"):
                        w.line("col = cols[pos] = [None] * N_CHUNKS")
                    w.line(f"chunk = col[{chunk_index}]")
                    with w.block("if chunk is None:"):
                        w.line(f"chunk = col[{chunk_index}] = [None] * CHUNK_SIZE")
                    w.line(f"m = chunk[{slot}]")
                    with w.block("if m is not None:"):
                        if self.profiled:
                            self._bump(w, "memo_hits", prof_name)
                        w.line("return m")
                else:
                    w.line(f"key = ({index}, pos)")
                    w.line("m = self._memo.get(key)")
                    with w.block("if m is not None:"):
                        if self.profiled:
                            self._bump(w, "memo_hits", prof_name)
                        w.line("return m")
                if self.profiled:
                    self._bump(w, "memo_misses", prof_name)
            w.line("text = self._text")
            self._production_body(w, production)
            if memoized:
                if self.options.chunks:
                    w.line(f"chunk[{slot}] = result")
                else:
                    w.line("self._memo[key] = result")
            if self.profiled:
                with w.block("if result[0] < 0:"):
                    self._bump(w, "failures", prof_name)
                with w.block("else:"):
                    self._bump(w, "successes", prof_name)
            w.line("return result")
        w.line()

    def _production_body(self, w: CodeWriter, production: Production) -> None:
        guards = self._alternative_guards(production)
        prof_name = production.name
        with w.block("while True:"):
            for alt_index, alternative in enumerate(production.alternatives):
                w.line(f"# alternative {alt_index + 1}" + (f" <{alternative.label}>" if alternative.label else ""))
                if self.profiled:
                    self._bump(w, "coverage.entered", (prof_name, alt_index))
                guard = guards[alt_index] if guards else None
                if guard is not None:
                    const, message = guard
                    with w.block(f"if pos < self._length and text[pos] in {const}:"):
                        pos_var = self._alternative_attempt(w, production, alternative, alt_index)
                        # Reached only when the attempt failed (success breaks).
                        if self.profiled:
                            self._bump(w, "backtracks", (prof_name))
                            w.line(f"_pw = {pos_var} - pos")
                            with w.block("if _pw > 0:"):
                                self._bump(w, "wasted_chars", prof_name, "_pw")
                    # Skipping the alternative must record the failure the
                    # attempt would have recorded (its first terminal failing
                    # at pos), or guarded and unguarded parsers would report
                    # different farthest-failure positions.
                    with w.block("else:"):
                        self._fail(w, "pos", message)
                        if self.profiled:
                            self._bump(w, "backtracks", prof_name)
                else:
                    pos_var = self._alternative_attempt(w, production, alternative, alt_index)
                    if self.profiled:
                        self._bump(w, "backtracks", prof_name)
                        w.line(f"_pw = {pos_var} - pos")
                        with w.block("if _pw > 0:"):
                            self._bump(w, "wasted_chars", prof_name, "_pw")
            w.line("result = FAILPAIR")
            w.line("break")

    def _alternative_guards(
        self, production: Production
    ) -> list[tuple[str, str] | None] | None:
        """Per-alternative first-char guard ``(charset const, expected
        message)`` pairs, or None when guarding is disabled."""
        if self.first is None or len(production.alternatives) < GUARD_MIN_ALTERNATIVES:
            return None
        guards: list[tuple[str, str] | None] = []
        useful = False
        for alternative in production.alternatives:
            fs = self.first.first(alternative.expr)
            if (
                fs.known
                and fs.chars
                and len(fs.chars) <= 64
                # A guarded skip records one failure at ``pos``; that must be
                # exactly what evaluating the alternative would have recorded
                # (see FirstAnalysis.dispatch_safe).
                and self.first.dispatch_safe(alternative.expr)
            ):
                guards.append((self._charset_const(fs.chars), _first_set_message(fs.chars)))
                useful = True
            else:
                guards.append(None)
        return guards if useful else None

    def _alternative_attempt(
        self, w: CodeWriter, production: Production, alternative, alt_index: int = 0
    ) -> str:
        """Emit one attempt; on success set ``result`` and break.

        Returns the attempt's position variable so profiled callers can
        emit a wasted-character estimate on the failure path.
        """
        names = binding_names(alternative.expr)
        self._bindings_in_scope = tuple(names)
        for bound in names:
            w.line(f"bnd_{bound} = None")
        kind = production.kind
        items = (
            alternative.expr.items
            if isinstance(alternative.expr, Sequence)
            else (alternative.expr,)
        )
        need_contributions = kind in (ValueKind.GENERIC, ValueKind.OBJECT)
        pos_var = self._fresh("p")
        ok_var = self._fresh("ok")
        w.line(f"{pos_var} = pos")
        w.line(f"{ok_var} = True")
        contribution_vars: list[str] = []
        explicit_vars: list[str] = []
        depth = 0
        for item in items:
            value_var = self._fresh("v")
            item_contributes = contributes(item, self.kind_of)
            need_value = (need_contributions and item_contributes) or _has_binding(item)
            self._emit(w, item, pos_var, value_var, ok_var, need_value or isinstance(item, Action))
            if item_contributes:
                contribution_vars.append(value_var)
                if isinstance(item, Action):
                    explicit_vars.append(value_var)
            w.line(f"if {ok_var}:")
            w.indent()
            depth += 1
        self._success_value(w, production, alternative, contribution_vars, explicit_vars, pos_var)
        if self.profiled:
            self._bump(w, "coverage.succeeded", (production.name, alt_index))
        w.line("break")
        for _ in range(depth):
            w.dedent()
        return pos_var

    def _success_value(
        self,
        w: CodeWriter,
        production: Production,
        alternative,
        contribution_vars: list[str],
        explicit_vars: list[str],
        pos_var: str,
    ) -> None:
        kind = production.kind
        if kind is ValueKind.VOID:
            w.line(f"result = ({pos_var}, None)")
            return
        if kind is ValueKind.TEXT:
            w.line(f"result = ({pos_var}, text[pos:{pos_var}])")
            return
        if kind is ValueKind.GENERIC:
            if alternative.label is None and len(contribution_vars) == 1:
                w.line(f"result = ({pos_var}, {contribution_vars[0]})")
                return
            gname = node_name(production.name, alternative.label)
            children = ", ".join(contribution_vars)
            children_tuple = f"({children},)" if contribution_vars else "()"
            with_location = self._with_location_default or production.has("withLocation")
            location = "self._location(pos)" if with_location else "None"
            w.line(f"result = ({pos_var}, GNode({gname!r}, {children_tuple}, {location}))")
            return
        # OBJECT
        if explicit_vars:
            w.line(f"result = ({pos_var}, {explicit_vars[-1]})")
        elif not contribution_vars:
            w.line(f"result = ({pos_var}, None)")
        elif len(contribution_vars) == 1:
            w.line(f"result = ({pos_var}, {contribution_vars[0]})")
        else:
            w.line(f"result = ({pos_var}, ({', '.join(contribution_vars)}))")

    # -- expression emission -----------------------------------------------------------
    #
    # _emit(w, expr, pos_var, value_var, ok_var, need_value) emits code that,
    # assuming ok_var is True and pos_var holds the current position, tries
    # to match expr: on success pos_var is advanced and value_var holds the
    # value (when need_value); on failure ok_var becomes False (pos_var is
    # then meaningless — the caller must not use it).

    def _emit(self, w, expr, pos_var, value_var, ok_var, need_value) -> None:
        if isinstance(expr, Literal):
            self._emit_literal(w, expr, pos_var, value_var, ok_var, need_value)
        elif isinstance(expr, CharClass):
            self._emit_char_class(w, expr, pos_var, value_var, ok_var, need_value)
        elif isinstance(expr, AnyChar):
            with w.block(f"if {pos_var} < self._length:"):
                if need_value:
                    w.line(f"{value_var} = text[{pos_var}]")
                w.line(f"{pos_var} += 1")
            with w.block("else:"):
                w.line(f"{ok_var} = False")
                self._fail(w, pos_var, "any character")
        elif isinstance(expr, Nonterminal):
            method = f"_p_{_sanitize(expr.name)}"
            result = self._fresh("r")
            w.line(f"{result} = self.{method}({pos_var})")
            with w.block(f"if {result}[0] < 0:"):
                w.line(f"{ok_var} = False")
            with w.block("else:"):
                if need_value:
                    w.line(f"{value_var} = {result}[1]")
                w.line(f"{pos_var} = {result}[0]")
        elif isinstance(expr, Sequence):
            self._emit_sequence(w, expr, pos_var, value_var, ok_var, need_value)
        elif isinstance(expr, Choice):
            self._emit_choice(w, expr, pos_var, value_var, ok_var, need_value)
        elif isinstance(expr, Repetition):
            self._emit_repetition(w, expr, pos_var, value_var, ok_var, need_value)
        elif isinstance(expr, Option):
            self._emit_option(w, expr, pos_var, value_var, ok_var, need_value)
        elif isinstance(expr, And):
            saved = self._fresh("s")
            w.line(f"{saved} = {pos_var}")
            inner_value = self._fresh("v")
            self._emit(w, expr.expr, pos_var, inner_value, ok_var, False)
            w.line(f"{pos_var} = {saved}")
            if need_value:
                w.line(f"{value_var} = None")
        elif isinstance(expr, Not):
            saved = self._fresh("s")
            w.line(f"{saved} = {pos_var}")
            inner_value = self._fresh("v")
            self._emit(w, expr.expr, pos_var, inner_value, ok_var, False)
            with w.block(f"if {ok_var}:"):
                w.line(f"{ok_var} = False")
                self._fail(w, saved, "not-predicate")
            with w.block("else:"):
                w.line(f"{ok_var} = True")
                w.line(f"{pos_var} = {saved}")
            if need_value:
                w.line(f"{value_var} = None")
        elif isinstance(expr, Binding):
            self._emit(w, expr.expr, pos_var, value_var, ok_var, True)
            with w.block(f"if {ok_var}:"):
                w.line(f"bnd_{expr.name} = {value_var}")
        elif isinstance(expr, Voided):
            inner_value = self._fresh("v")
            self._emit(w, expr.expr, pos_var, inner_value, ok_var, False)
            if need_value:
                w.line(f"{value_var} = None")
        elif isinstance(expr, Text):
            saved = self._fresh("s")
            w.line(f"{saved} = {pos_var}")
            inner_value = self._fresh("v")
            self._emit(w, expr.expr, pos_var, inner_value, ok_var, False)
            if need_value:
                with w.block(f"if {ok_var}:"):
                    w.line(f"{value_var} = text[{saved}:{pos_var}]")
        elif isinstance(expr, Action):
            names = tuple(self._bindings_in_scope)
            fn = self._action_fn(expr.code, names)
            args = ", ".join(f"bnd_{n}" for n in names)
            w.line(f"{value_var} = {fn}({args})")
        elif isinstance(expr, Epsilon):
            if need_value:
                w.line(f"{value_var} = None")
        elif isinstance(expr, Fail):
            w.line(f"{ok_var} = False")
            self._fail(w, pos_var, expr.message or "nothing")
        elif isinstance(expr, CharSwitch):
            self._emit_char_switch(w, expr, pos_var, value_var, ok_var, need_value)
        elif isinstance(expr, Regex):
            self._emit_regex(w, expr, pos_var, value_var, ok_var, need_value)
        else:  # pragma: no cover
            raise CodegenError(f"cannot generate code for {type(expr).__name__}")

    # Bindings visible to actions: managed as a stack around alternatives.
    _bindings_in_scope: tuple[str, ...] = ()

    def _emit_literal(self, w, expr, pos_var, value_var, ok_var, need_value) -> None:
        length = len(expr.text)
        if expr.ignore_case:
            folded = expr.text.lower()
            cond = f"text[{pos_var}:{pos_var} + {length}].lower() == {folded!r}"
        elif length == 1:
            cond = f"{pos_var} < self._length and text[{pos_var}] == {expr.text!r}"
        else:
            cond = f"text.startswith({expr.text!r}, {pos_var})"
        message = f"{expr.text!r}"
        with w.block(f"if {cond}:"):
            if need_value:
                if expr.ignore_case:
                    w.line(f"{value_var} = text[{pos_var}:{pos_var} + {length}]")
                else:
                    w.line(f"{value_var} = {expr.text!r}")
            w.line(f"{pos_var} += {length}")
        with w.block("else:"):
            w.line(f"{ok_var} = False")
            if length == 1:
                self._fail(w, pos_var, message)
            elif expr.ignore_case:
                fail_pos = self._fresh("f")
                w.line(f"{fail_pos} = self._literal_failure_pos({pos_var}, {expr.text!r}, True)")
                self._fail(w, fail_pos, message)
            else:
                # Failure is recorded at the first mismatching character
                # (see ParserBase._literal_failure_pos); the common case —
                # the first character already differs — stays call-free.
                with w.block(
                    f"if {pos_var} < self._length and text[{pos_var}] == {expr.text[0]!r}:"
                ):
                    fail_pos = self._fresh("f")
                    w.line(f"{fail_pos} = self._literal_failure_pos({pos_var}, {expr.text!r})")
                    self._fail(w, fail_pos, message)
                with w.block("else:"):
                    self._fail(w, pos_var, message)

    def _emit_char_class(self, w, expr, pos_var, value_var, ok_var, need_value) -> None:
        ch = self._fresh("c")
        chars = expr.first_chars()
        if chars is not None and len(chars) <= 32:
            test = f"{ch} in {self._charset_const(chars)}"
        else:
            parts = []
            for lo, hi in expr.ranges:
                if lo == hi:
                    parts.append(f"{ch} == {lo!r}")
                else:
                    parts.append(f"{lo!r} <= {ch} <= {hi!r}")
            test = " or ".join(parts) or "False"
            if expr.negated:
                test = f"not ({test})"
        with w.block(f"if {pos_var} < self._length:"):
            w.line(f"{ch} = text[{pos_var}]")
            with w.block(f"if {test}:"):
                if need_value:
                    w.line(f"{value_var} = {ch}")
                w.line(f"{pos_var} += 1")
            with w.block("else:"):
                w.line(f"{ok_var} = False")
                self._fail(w, pos_var, "character class")
        with w.block("else:"):
            w.line(f"{ok_var} = False")
            self._fail(w, pos_var, "character class")

    def _emit_sequence(self, w, expr, pos_var, value_var, ok_var, need_value) -> None:
        contribution_vars: list[str] = []
        depth = 0
        for index, item in enumerate(expr.items):
            item_value = self._fresh("v")
            item_contributes = contributes(item, self.kind_of)
            self._emit(
                w, item, pos_var, item_value, ok_var,
                (need_value and item_contributes) or _has_binding(item) or isinstance(item, Action),
            )
            if item_contributes:
                contribution_vars.append(item_value)
            if index < len(expr.items) - 1 or need_value:
                w.line(f"if {ok_var}:")
                w.indent()
                depth += 1
        if need_value:
            if not contribution_vars:
                w.line(f"{value_var} = None")
            elif len(contribution_vars) == 1:
                w.line(f"{value_var} = {contribution_vars[0]}")
            else:
                w.line(f"{value_var} = ({', '.join(contribution_vars)})")
        for _ in range(depth):
            w.dedent()

    def _emit_choice(self, w, expr, pos_var, value_var, ok_var, need_value) -> None:
        # The choice's value is the matched branch's raw value (matches the
        # interpreter; see its Choice case).
        saved = self._fresh("s")
        w.line(f"{saved} = {pos_var}")
        depth = 0
        for index, branch in enumerate(expr.alternatives):
            if index > 0:
                w.line(f"if not {ok_var}:")
                w.indent()
                depth += 1
                w.line(f"{ok_var} = True")
                w.line(f"{pos_var} = {saved}")
            branch_value = self._fresh("v")
            self._emit(w, branch, pos_var, branch_value, ok_var, need_value)
            if need_value:
                with w.block(f"if {ok_var}:"):
                    w.line(f"{value_var} = {branch_value}")
        for _ in range(depth):
            w.dedent()

    def _emit_repetition(self, w, expr, pos_var, value_var, ok_var, need_value) -> None:
        item_contributes = contributes(expr.expr, self.kind_of)
        collect = need_value and item_contributes
        if collect:
            w.line(f"{value_var} = []")
            append = f"{value_var}_append"
            w.line(f"{append} = {value_var}.append")
        elif need_value:
            w.line(f"{value_var} = None")
        count = self._fresh("n") if expr.min == 1 else None
        if count:
            w.line(f"{count} = 0")
        inner_pos = self._fresh("p")
        inner_ok = self._fresh("ok")
        with w.block("while True:"):
            w.line(f"{inner_pos} = {pos_var}")
            w.line(f"{inner_ok} = True")
            item_value = self._fresh("v")
            self._emit(w, expr.expr, inner_pos, item_value, inner_ok, collect or _has_binding(expr.expr))
            with w.block(f"if not {inner_ok} or {inner_pos} == {pos_var}:"):
                w.line("break")
            w.line(f"{pos_var} = {inner_pos}")
            if collect:
                w.line(f"{append}({item_value})")
            if count:
                w.line(f"{count} += 1")
        if count:
            with w.block(f"if {count} < 1:"):
                w.line(f"{ok_var} = False")

    def _emit_option(self, w, expr, pos_var, value_var, ok_var, need_value) -> None:
        item_contributes = contributes(expr.expr, self.kind_of)
        saved = self._fresh("s")
        inner_ok = self._fresh("ok")
        w.line(f"{saved} = {pos_var}")
        w.line(f"{inner_ok} = True")
        item_value = self._fresh("v")
        self._emit(
            w, expr.expr, pos_var, item_value, inner_ok,
            (need_value and item_contributes) or _has_binding(expr.expr),
        )
        with w.block(f"if not {inner_ok}:"):
            w.line(f"{pos_var} = {saved}")
            if need_value:
                w.line(f"{value_var} = None")
        if need_value:
            with w.block("else:"):
                w.line(f"{value_var} = {item_value if item_contributes else None}")

    def _emit_char_switch(self, w, expr, pos_var, value_var, ok_var, need_value) -> None:
        ch = self._fresh("c")
        matched = self._fresh("m")
        w.line(f"{matched} = False")
        with w.block(f"if {pos_var} < self._length:"):
            w.line(f"{ch} = text[{pos_var}]")
            for index, (chars, branch) in enumerate(expr.cases):
                header = "if" if index == 0 else "elif"
                with w.block(f"{header} {ch} in {self._charset_const(chars)}:"):
                    w.line(f"{matched} = True")
                    branch_value = self._fresh("v")
                    self._emit(w, branch, pos_var, branch_value, ok_var, need_value)
                    if need_value:
                        with w.block(f"if {ok_var}:"):
                            w.line(f"{value_var} = {branch_value}")
        # No case applied, or the case's branch failed: try the default
        # (mirrors the interpreter's fall-through semantics).
        with w.block(f"if not {matched} or not {ok_var}:"):
            w.line(f"{ok_var} = True")
            default_value = self._fresh("v")
            self._emit(w, expr.default, pos_var, default_value, ok_var, need_value)
            if need_value:
                with w.block(f"if {ok_var}:"):
                    w.line(f"{value_var} = {default_value}")


    def _emit_regex(self, w, expr, pos_var, value_var, ok_var, need_value) -> None:
        # One C-level scan for a whole fused region.  Failures — and
        # successes of regions whose match can step over recordable failures
        # — are noted for lazy replay; the scan itself never touches the
        # expected set (see ParserBase._drain_fused for the argument).
        scan = self._pattern_const(expr.pattern)
        replay = self._replay_fn(expr)
        if self.profiled:
            self._bump(w, "fused_scans", expr.label or "<fused>")
        match = self._fresh("m")
        w.line(f"{match} = {scan}(text, {pos_var})")
        with w.block(f"if {match} is None:"):
            w.line(f"self._fused_pending.append(({replay}, {pos_var}))")
            w.line(f"{ok_var} = False")
        with w.block("else:"):
            if not expr.silent:
                w.line(f"self._fused_pending.append(({replay}, {pos_var}))")
            if need_value and expr.capture:
                end = self._fresh("e")
                w.line(f"{end} = {match}.end()")
                w.line(f"{value_var} = text[{pos_var}:{end}]")
                w.line(f"{pos_var} = {end}")
            else:
                if need_value:
                    w.line(f"{value_var} = None")
                w.line(f"{pos_var} = {match}.end()")


def _has_binding(expr: Expression) -> bool:
    from repro.peg.expr import walk

    return any(isinstance(node, Binding) for node in walk(expr))


def generate_parser_source(
    prepared: PreparedGrammar, parser_name: str = "Parser", profiled: bool = False
) -> str:
    """Generate the parser module source for a prepared grammar.

    ``profiled=True`` emits the instrumented twin (see
    :class:`ParserGenerator`); the default output is unchanged.
    """
    return ParserGenerator(prepared, parser_name, profiled=profiled).generate()
