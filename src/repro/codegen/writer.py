"""A small indentation-aware code writer used by the parser generator."""

from __future__ import annotations


class CodeWriter:
    """Accumulates Python source lines with managed indentation."""

    INDENT = "    "

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._depth = 0

    def line(self, text: str = "") -> None:
        if text:
            self._lines.append(self.INDENT * self._depth + text)
        else:
            self._lines.append("")

    def lines(self, *texts: str) -> None:
        for text in texts:
            self.line(text)

    def indent(self) -> "CodeWriter":
        self._depth += 1
        return self

    def dedent(self) -> "CodeWriter":
        if self._depth == 0:
            raise ValueError("dedent below zero")
        self._depth -= 1
        return self

    class _Block:
        def __init__(self, writer: "CodeWriter"):
            self._writer = writer

        def __enter__(self) -> "CodeWriter":
            return self._writer.indent()

        def __exit__(self, *exc) -> None:
            self._writer.dedent()

    def block(self, header: str) -> "_Block":
        """``with w.block("if ok:"):`` — emit header and indent the body."""
        self.line(header)
        return CodeWriter._Block(self)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"
