"""Turning generated parser source into a usable parser class."""

from __future__ import annotations

import importlib.util
import itertools
import sys
from pathlib import Path
from types import ModuleType

from repro.errors import CodegenError

#: Prefix under which loaded parser files are registered in ``sys.modules``.
#: Namespacing avoids clobbering unrelated modules (or each other) when two
#: generated files share a stem.
_MODULE_NAMESPACE = "repro._generated_parsers"

_load_counter = itertools.count()


def load_parser_module(source: str, module_name: str = "repro_generated_parser") -> ModuleType:
    """Execute generated parser source and return the module object."""
    module = ModuleType(module_name)
    module.__dict__["__name__"] = module_name
    try:
        code = compile(source, f"<generated:{module_name}>", "exec")
        exec(code, module.__dict__)  # noqa: S102 - our own generated code
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise CodegenError(f"generated parser does not compile: {exc}") from exc
    return module


def load_parser(source: str, parser_name: str = "Parser"):
    """Execute generated source and return the parser class."""
    module = load_parser_module(source)
    try:
        return getattr(module, parser_name)
    except AttributeError as exc:  # pragma: no cover
        raise CodegenError(f"generated module defines no class {parser_name!r}") from exc


def load_parser_file(path: str | Path, parser_name: str = "Parser"):
    """Import a previously written parser file and return the parser class.

    Each load is registered under a unique ``repro._generated_parsers.*``
    key: two parser files sharing a stem never clobber each other, and a
    generated parser can never shadow an unrelated installed module.
    """
    path = Path(path)
    module_name = f"{_MODULE_NAMESPACE}.{path.stem}"
    while module_name in sys.modules:
        module_name = f"{_MODULE_NAMESPACE}.{path.stem}_{next(_load_counter)}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise CodegenError(f"cannot import parser file {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(module_name, None)
        raise
    return getattr(module, parser_name)
