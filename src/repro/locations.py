"""Source locations.

A :class:`Location` identifies a point in some named source text.  Locations
are attached to grammar constructs by the ``.mg`` reader (so composition
errors can point at the offending line) and to generic AST nodes by parsers
generated with the ``withLocation`` attribute.

:class:`LineIndex` is the shared line-number machinery: built once in O(n),
it answers offset→(line, column) queries in O(log lines) via binary search.
It recognizes all three real-world line terminators — ``"\\n"``, ``"\\r\\n"``
(one terminator, not two), and lone ``"\\r"`` — while *not* treating form
feeds or vertical tabs as line breaks (editors and compilers number physical
lines; ``\\f`` is horizontal noise inside a line).  Columns are 1-based
*character* offsets within the line: a tab advances the column by one, like
``cc`` and ``clang`` column reporting, so columns stay O(1) and unambiguous
on tab-heavy sources.
"""

from __future__ import annotations

import re
from bisect import bisect_left, bisect_right
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Location:
    """An absolute position in a named source."""

    source: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.source}:{self.line}:{self.column}"


UNKNOWN = Location("<unknown>", 0, 0)

#: One terminator per physical line break.  ``\r\n`` must come first so a
#: Windows line ending is a single break, not a ``\r`` break followed by a
#: ``\n`` break.
_LINE_BREAK = re.compile(r"\r\n|\r|\n")


class LineIndex:
    """Offset → (line, column) queries over one text, O(log lines) each.

    The index is a sorted list of line-start offsets, built by a single
    C-level regex scan (O(n), run once).  It is safe to build eagerly for
    multi-megabyte inputs and to keep cached: the memory cost is one int
    per line.
    """

    __slots__ = ("_starts", "_length")

    def __init__(self, text: str):
        starts = [0]
        append = starts.append
        for match in _LINE_BREAK.finditer(text):
            append(match.end())
        self._starts = starts
        self._length = len(text)

    @property
    def line_count(self) -> int:
        return len(self._starts)

    def line_column(self, offset: int) -> tuple[int, int]:
        """1-based ``(line, column)`` of ``offset`` (clamped to the text)."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        offset = min(offset, self._length)
        starts = self._starts
        line = bisect_right(starts, offset)
        return line, offset - starts[line - 1] + 1

    def location(self, offset: int, source: str) -> Location:
        line, column = self.line_column(offset)
        return Location(source, line, column)

    def line_start(self, line: int) -> int:
        """Offset of the first character of 1-based ``line``."""
        return self._starts[line - 1]

    def offset_of(self, line: int, column: int) -> int:
        """Inverse of :meth:`line_column`: the absolute offset of a 1-based
        ``(line, column)`` pair.  No bounds check beyond the line lookup —
        the caller vouches the pair came from this index's text."""
        return self._starts[line - 1] + column - 1

    def clone(self) -> "LineIndex":
        """An O(1) snapshot of the current state.

        :meth:`splice` *rebinds* the line-start list (it never mutates it),
        so a clone taken before a splice keeps answering queries over the
        pre-edit text — which is exactly what the incremental session needs
        to map stale locations through an edit (``docs/incremental.md``).
        """
        copy = LineIndex.__new__(LineIndex)
        copy._starts = self._starts
        copy._length = self._length
        return copy

    def splice(self, new_text: str, offset: int, removed: int, inserted: int) -> None:
        """Update the index in place for an edit that replaced ``removed``
        characters at ``offset`` with ``inserted`` characters, yielding
        ``new_text``.  Only the damaged neighbourhood is rescanned; line
        starts right of it are shifted by the length delta, so the cost is
        O(damage + lines) instead of O(characters) — the difference that
        matters on multi-megabyte editor buffers (see docs/incremental.md).

        The result is always identical to ``LineIndex(new_text)``.
        """
        delta = inserted - removed
        new_len = len(new_text)
        if new_len != self._length + delta:
            raise ValueError("new_text length does not match the edit")
        starts = self._starts
        # Rescan from one line *before* the damaged line: an edit at the very
        # start of a line can join or split a "\r\n" straddling the boundary.
        li = bisect_right(starts, offset) - 1
        if li > 0:
            li -= 1
        scan_from = starts[li]
        # First retained tail start: the +2 skirts both characters of a
        # potential "\r\n" terminator ending at the damage edge, so the break
        # producing that start is provably intact.
        j = bisect_left(starts, offset + removed + 2)
        tail = [s + delta for s in starts[j:]]
        scan_to = tail[0] if tail else new_len
        middle = [
            match.end()
            for match in _LINE_BREAK.finditer(new_text, scan_from, scan_to)
        ]
        if tail and middle and middle[-1] == scan_to:
            middle.pop()
        self._starts = starts[: li + 1] + middle + tail
        self._length = new_len

    def line_span(self, line: int) -> tuple[int, int]:
        """``(start, end)`` offsets of 1-based ``line``.

        ``end`` is the next line's start (or the text length for the last
        line), so the slice still carries the line's terminator; display
        code strips a trailing ``"\\r\\n"``/``"\\r"``/``"\\n"`` itself.
        """
        starts = self._starts
        start = starts[line - 1]
        end = starts[line] if line < len(starts) else self._length
        return start, end


def line_column(text: str, offset: int) -> tuple[int, int]:
    """Return 1-based ``(line, column)`` for ``offset`` into ``text``.

    ``offset`` may equal ``len(text)`` (end-of-input position).  This
    convenience builds a throwaway :class:`LineIndex` (O(n)); callers that
    query the same text repeatedly should hold a :class:`LineIndex`.
    """
    return LineIndex(text).line_column(offset)
