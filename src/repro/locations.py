"""Source locations.

A :class:`Location` identifies a point in some named source text.  Locations
are attached to grammar constructs by the ``.mg`` reader (so composition
errors can point at the offending line) and to generic AST nodes by parsers
generated with the ``withLocation`` attribute.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Location:
    """An absolute position in a named source."""

    source: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.source}:{self.line}:{self.column}"


UNKNOWN = Location("<unknown>", 0, 0)


def line_column(text: str, offset: int) -> tuple[int, int]:
    """Return 1-based ``(line, column)`` for ``offset`` into ``text``.

    ``offset`` may equal ``len(text)`` (end-of-input position).
    """
    if offset < 0:
        raise ValueError("offset must be non-negative")
    offset = min(offset, len(text))
    line = text.count("\n", 0, offset) + 1
    last_newline = text.rfind("\n", 0, offset)
    column = offset - last_newline  # works for -1 too: offset + 1
    return line, column
