"""Recursive-descent parser for ``.mg`` grammar-module files.

Surface grammar (see :mod:`repro.meta.ast` for the semantic description)::

    File         <- ModuleDecl Dependency* (OptionDecl / Definition)* EOF
    ModuleDecl   <- "module" QName Params? ";"
    Params       <- "(" QName ("," QName)* ")"
    Dependency   <- "instantiate" QName Args? ("as" QName)? ";"
                  / ("import" / "modify") QName ";"
    OptionDecl   <- "option" Ident ("," Ident)* ";"
    Definition   <- Production / Addition / Override / Removal
    Production   <- Attr* Kind? Name "=" Choice ";"
    Addition     <- Name "+=" Choice ";"          -- "..." marks the old body
    Override     <- Attr* Kind? Name ":=" Choice ";"
    Removal      <- Name "-=" "<" Label ">" ("," "<" Label ">")* ";"
    Choice       <- Alternative ("/" Alternative)*
    Alternative  <- ("<" Label ">")? Prefixed*    -- or "..." (in += bodies)
    Prefixed     <- ("&" / "!") Suffixed
                  / ("void" / "text" / Name) ":" Suffixed
                  / Suffixed
    Suffixed     <- Primary ("*" / "+" / "?")*
    Primary      <- Name / Literal / Class / "_" / "(" Choice ")" / Action

``Kind`` is one of ``void | String | generic | Object`` (default ``Object``),
``Attr`` one of the production attributes.  Keywords are contextual — any
identifier can still name a production.
"""

from __future__ import annotations

from repro.errors import GrammarSyntaxError
from repro.locations import Location
from repro.meta.ast import (
    Addition,
    Dependency,
    ModuleAst,
    Override,
    ProductionDef,
    Removal,
)
from repro.meta.lexer import Lexer, Token
from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    Expression,
    Literal,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Text,
    Voided,
    char_class,
    choice,
    literal,
    seq,
)
from repro.peg.production import KNOWN_ATTRIBUTES, Alternative, ValueKind

_KINDS = {
    "void": ValueKind.VOID,
    "String": ValueKind.TEXT,
    "generic": ValueKind.GENERIC,
    "Object": ValueKind.OBJECT,
}

#: An Alternative with this label stands for the ``...`` placeholder.
_ELLIPSIS_ALT = object()


class ModuleParser:
    """Parse one module file into a :class:`ModuleAst`."""

    def __init__(self, text: str, source: str = "<string>"):
        self._text = text
        self._source = source
        self._tokens = Lexer(text, source).tokens()
        self._index = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _location(self, token: Token | None = None) -> Location:
        tok = token or self._current
        return Location(self._source, tok.line, tok.column)

    def _error(self, message: str, token: Token | None = None) -> GrammarSyntaxError:
        tok = token or self._current
        return GrammarSyntaxError(message, self._source, tok.line, tok.column)

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._index += 1
        return token

    def _at_punct(self, value: str) -> bool:
        return self._current.is_punct(value)

    def _at_word(self, value: str) -> bool:
        return self._current.is_word(value)

    def _eat_punct(self, value: str) -> Token:
        if not self._at_punct(value):
            raise self._error(f"expected {value!r}, found {self._describe(self._current)}")
        return self._advance()

    def _eat_word(self, value: str) -> Token:
        if not self._at_word(value):
            raise self._error(f"expected keyword {value!r}, found {self._describe(self._current)}")
        return self._advance()

    def _eat_name(self, what: str = "name") -> str:
        if self._current.kind != "ident":
            raise self._error(f"expected {what}, found {self._describe(self._current)}")
        return self._advance().value

    @staticmethod
    def _describe(token: Token) -> str:
        if token.kind == "eof":
            return "end of file"
        return repr(token.value)

    # -- file structure -----------------------------------------------------------

    def parse_module(self) -> ModuleAst:
        header = self._eat_word("module")
        name = self._eat_name("module name")
        parameters: tuple[str, ...] = ()
        if self._at_punct("("):
            parameters = self._name_list()
        self._eat_punct(";")

        dependencies: list[Dependency] = []
        while self._current.kind == "ident" and self._current.value in ("import", "instantiate", "modify"):
            # PEG ordered choice, like the self-hosted reader: these words
            # are not reserved, so `import = x ;` is a *production* named
            # "import".  Try the dependency; on failure rewind and let the
            # definition list have it — keeping the dependency diagnostic
            # if neither interpretation parses.
            saved = self._index
            try:
                dependencies.append(self._dependency())
            except GrammarSyntaxError as dependency_error:
                self._index = saved
                try:
                    self._definition()
                except GrammarSyntaxError:
                    raise dependency_error from None
                self._index = saved
                break

        options: set[str] = set()
        productions: list[ProductionDef] = []
        modifications: list[Addition | Override | Removal] = []
        while self._current.kind != "eof":
            item: ProductionDef | Addition | Override | Removal
            if self._at_word("option"):
                saved = self._index
                try:
                    options |= self._option_decl()
                    continue
                except GrammarSyntaxError as option_error:
                    # Same backtracking as for dependencies: a production
                    # may be *named* "option".
                    self._index = saved
                    try:
                        item = self._definition()
                    except GrammarSyntaxError:
                        raise option_error from None
            else:
                item = self._definition()
            if isinstance(item, ProductionDef):
                productions.append(item)
            else:
                modifications.append(item)

        return ModuleAst(
            name=name,
            parameters=parameters,
            dependencies=tuple(dependencies),
            options=frozenset(options),
            productions=tuple(productions),
            modifications=tuple(modifications),
            location=self._location(header),
            source_text=self._text,
        )

    def _name_list(self) -> tuple[str, ...]:
        self._eat_punct("(")
        names = [self._eat_name()]
        while self._at_punct(","):
            self._advance()
            names.append(self._eat_name())
        self._eat_punct(")")
        return tuple(names)

    def _dependency(self) -> Dependency:
        keyword = self._advance()
        module = self._eat_name("module name")
        arguments: tuple[str, ...] = ()
        if self._at_punct("("):
            arguments = self._name_list()
        alias = None
        if self._at_word("as"):
            self._advance()
            alias = self._eat_name("alias")
        self._eat_punct(";")
        if keyword.value != "instantiate" and arguments:
            raise self._error(f"{keyword.value} does not take arguments", keyword)
        if keyword.value != "instantiate" and alias is not None:
            raise self._error(f"{keyword.value} does not take an alias", keyword)
        return Dependency(keyword.value, module, arguments, alias, self._location(keyword))

    def _option_decl(self) -> set[str]:
        self._eat_word("option")
        names = {self._eat_name("option name")}
        while self._at_punct(","):
            self._advance()
            names.add(self._eat_name("option name"))
        self._eat_punct(";")
        return names

    # -- productions and modifications -----------------------------------------------

    def _definition(self) -> ProductionDef | Addition | Override | Removal:
        start = self._current
        attributes: set[str] = set()
        while self._current.kind == "ident" and self._current.value in KNOWN_ATTRIBUTES:
            # Lookahead: an attribute word directly followed by = += := -= is
            # actually a production *named* like an attribute.
            nxt = self._tokens[self._index + 1]
            if nxt.kind == "punct" and nxt.value in ("=", "+=", ":=", "-="):
                break
            attributes.add(self._advance().value)

        kind: ValueKind | None = None
        if self._current.kind == "ident" and self._current.value in _KINDS:
            nxt = self._tokens[self._index + 1]
            if not (nxt.kind == "punct" and nxt.value in ("=", "+=", ":=", "-=")):
                kind = _KINDS[self._advance().value]

        name = self._eat_name("production name")
        location = self._location(start)

        if self._at_punct("="):
            self._advance()
            alternatives, has_ellipsis = self._choice(allow_ellipsis=False)
            self._eat_punct(";")
            return ProductionDef(
                name=name,
                kind=kind or ValueKind.OBJECT,
                alternatives=alternatives,
                attributes=frozenset(attributes),
                location=location,
            )

        if self._at_punct("+="):
            if attributes or kind is not None:
                raise self._error("+= cannot change attributes or value kind", start)
            self._advance()
            alternatives, parts = self._choice_with_ellipsis()
            self._eat_punct(";")
            before, after = parts
            return Addition(name=name, before=before, after=after, location=location)

        if self._at_punct(":="):
            self._advance()
            alternatives, _ = self._choice(allow_ellipsis=False)
            self._eat_punct(";")
            return Override(
                name=name,
                alternatives=alternatives,
                kind=kind,
                attributes=frozenset(attributes) if attributes else None,
                location=location,
            )

        if self._at_punct("-="):
            self._advance()
            labels = [self._label()]
            while self._at_punct(","):
                self._advance()
                labels.append(self._label())
            self._eat_punct(";")
            if attributes or kind is not None:
                raise self._error("-= cannot change attributes or value kind", start)
            return Removal(name=name, labels=tuple(labels), location=location)

        raise self._error(f"expected one of = += := -= after {name!r}")

    def _label(self) -> str:
        self._eat_punct("<")
        name = self._eat_name("alternative label")
        self._eat_punct(">")
        return name

    # -- expressions --------------------------------------------------------------

    def _choice(self, allow_ellipsis: bool) -> tuple[tuple[Alternative, ...], bool]:
        alternatives: list[Alternative] = []
        saw_ellipsis = False
        while True:
            if allow_ellipsis and self._at_punct("..."):
                self._advance()
                saw_ellipsis = True
                alternatives.append(_ELLIPSIS_ALT)  # type: ignore[arg-type]
            else:
                alternatives.append(self._alternative())
            if not self._at_punct("/"):
                break
            self._advance()
        return tuple(alternatives), saw_ellipsis

    def _choice_with_ellipsis(
        self,
    ) -> tuple[tuple[Alternative, ...], tuple[tuple[Alternative, ...], tuple[Alternative, ...]]]:
        alternatives, saw = self._choice(allow_ellipsis=True)
        if not saw:
            # No placeholder: new alternatives are appended after the old body.
            return alternatives, ((), tuple(a for a in alternatives if a is not _ELLIPSIS_ALT))
        split = [i for i, a in enumerate(alternatives) if a is _ELLIPSIS_ALT]
        if len(split) > 1:
            raise self._error("at most one '...' allowed in a += body")
        index = split[0]
        before = tuple(a for a in alternatives[:index])
        after = tuple(a for a in alternatives[index + 1 :])
        return alternatives, (before, after)

    def _alternative(self) -> Alternative:
        token = self._current
        label = None
        if self._at_punct("<"):
            label = self._label()
        items: list[Expression] = []
        while self._starts_prefixed():
            items.append(self._prefixed())
        return Alternative(seq(*items), label, self._location(token))

    def _starts_prefixed(self) -> bool:
        token = self._current
        if token.kind in ("literal", "class", "action"):
            return True
        if token.kind == "ident":
            # An identifier followed by a definition operator belongs to the
            # *next* definition, not this alternative.
            nxt = self._tokens[self._index + 1]
            return not (nxt.kind == "punct" and nxt.value in ("=", "+=", ":=", "-="))
        if token.kind == "punct":
            return token.value in ("&", "!", "(", "_")
        return False

    def _prefixed(self) -> Expression:
        if self._at_punct("&"):
            self._advance()
            return And(self._suffixed())
        if self._at_punct("!"):
            self._advance()
            return Not(self._suffixed())
        if self._current.kind == "ident":
            nxt = self._tokens[self._index + 1]
            if nxt.kind == "punct" and nxt.value == ":":
                name = self._advance().value
                self._advance()  # ':'
                body = self._suffixed()
                if name == "void":
                    return Voided(body)
                if name == "text":
                    return Text(body)
                return Binding(name, body)
        return self._suffixed()

    def _suffixed(self) -> Expression:
        expr = self._primary()
        while self._current.kind == "punct" and self._current.value in ("*", "+", "?"):
            op = self._advance().value
            if op == "*":
                expr = Repetition(expr, 0)
            elif op == "+":
                expr = Repetition(expr, 1)
            else:
                expr = Option(expr)
        return expr

    def _primary(self) -> Expression:
        token = self._current
        if token.kind == "ident":
            self._advance()
            return Nonterminal(token.value)
        if token.kind == "literal":
            self._advance()
            if not token.value:
                raise self._error("empty string literal matches nothing; use ()? instead", token)
            return literal(token.value, ignore_case=token.flag == "i")
        if token.kind == "class":
            self._advance()
            try:
                return char_class(token.value)
            except ValueError as exc:
                raise self._error(str(exc), token) from exc
        if token.kind == "action":
            self._advance()
            return Action(token.value)
        if token.is_punct("_"):
            self._advance()
            return AnyChar()
        if token.is_punct("("):
            self._advance()
            alternatives, _ = self._choice(allow_ellipsis=False)
            self._eat_punct(")")
            exprs = [a.expr for a in alternatives]
            return choice(*exprs)
        raise self._error(f"expected expression, found {self._describe(token)}")


def parse_module(text: str, source: str = "<string>") -> ModuleAst:
    """Parse ``.mg`` source text into a :class:`ModuleAst`."""
    return ModuleParser(text, source).parse_module()
