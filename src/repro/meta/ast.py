"""Syntax tree for ``.mg`` grammar-module files.

A module file contains, in order: a ``module`` declaration (optionally with
*parameters* — placeholders for module names bound at instantiation time), a
list of dependencies (``import`` / ``instantiate … as …`` / ``modify``),
grammar-wide ``option`` clauses, and a list of production definitions and/or
production *modifications*:

.. code-block:: text

    module demo.Extension(Base);

    modify Base;

    option withLocation;

    Expression += <Pow> Primary "**" Expression / ... ;
    Statement  -= <Goto> ;
    Comment    := "//" [^\\n]* ;

Modification forms (the paper's extension mechanism):

``+=``  add alternatives; a ``...`` alternative marks where the existing
        alternatives go (omitted ⇒ the new ones are appended).
``:=``  override the production's body (and optionally attributes/kind).
``-=``  remove the named (labeled) alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.locations import Location, UNKNOWN
from repro.peg.production import Alternative, ValueKind


@dataclass(frozen=True, slots=True)
class Dependency:
    """One ``import`` / ``instantiate`` / ``modify`` clause."""

    kind: str  # "import" | "instantiate" | "modify"
    module: str  # target module or parameter name
    arguments: tuple[str, ...] = ()
    alias: str | None = None
    location: Location = field(default=UNKNOWN, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("import", "instantiate", "modify"):
            raise ValueError(f"bad dependency kind {self.kind!r}")


@dataclass(frozen=True, slots=True)
class ProductionDef:
    """A full production definition."""

    name: str
    kind: ValueKind
    alternatives: tuple[Alternative, ...]
    attributes: frozenset[str] = frozenset()
    location: Location = field(default=UNKNOWN, compare=False)


#: Sentinel label marking the ``...`` placeholder inside ``+=`` bodies.
ELLIPSIS_MARKER = "..."


@dataclass(frozen=True, slots=True)
class Addition:
    """``Name += alts ;`` — insert alternatives around the existing ones."""

    name: str
    before: tuple[Alternative, ...]  # alternatives listed before `...`
    after: tuple[Alternative, ...]  # alternatives listed after `...`
    location: Location = field(default=UNKNOWN, compare=False)


@dataclass(frozen=True, slots=True)
class Override:
    """``Name := alts ;`` — replace the production body.

    ``kind``/``attributes`` are ``None`` when the override keeps the
    original declaration's value kind and attributes.
    """

    name: str
    alternatives: tuple[Alternative, ...]
    kind: ValueKind | None = None
    attributes: frozenset[str] | None = None
    location: Location = field(default=UNKNOWN, compare=False)


@dataclass(frozen=True, slots=True)
class Removal:
    """``Name -= <Label>, <Label> ;`` — delete labeled alternatives."""

    name: str
    labels: tuple[str, ...]
    location: Location = field(default=UNKNOWN, compare=False)


Modification = Addition | Override | Removal


@dataclass(frozen=True, slots=True)
class ModuleAst:
    """A parsed ``.mg`` module file."""

    name: str
    parameters: tuple[str, ...] = ()
    dependencies: tuple[Dependency, ...] = ()
    options: frozenset[str] = frozenset()
    productions: tuple[ProductionDef, ...] = ()
    modifications: tuple[Modification, ...] = ()
    location: Location = field(default=UNKNOWN, compare=False)
    source_text: str = field(default="", compare=False)

    @property
    def is_modifier(self) -> bool:
        """Does this module modify another module (contain ``modify`` deps)?"""
        return any(dep.kind == "modify" for dep in self.dependencies)

    def modified_targets(self) -> list[str]:
        return [dep.module for dep in self.dependencies if dep.kind == "modify"]
