"""The ``.mg`` grammar-definition language: AST, lexer, parser, loader."""

from repro.meta.ast import (
    Addition,
    Dependency,
    Modification,
    ModuleAst,
    Override,
    ProductionDef,
    Removal,
)
from repro.meta.loader import ModuleLoader
from repro.meta.parser import parse_module

__all__ = [
    "Addition", "Dependency", "Modification", "ModuleAst", "Override",
    "ProductionDef", "Removal", "ModuleLoader", "parse_module",
]
