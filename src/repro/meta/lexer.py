"""Tokenizer for ``.mg`` grammar-module files.

Token kinds:

``ident``     identifiers and keywords, possibly dot-qualified (``jay.Core``)
``literal``   double-quoted string, value already unescaped; a trailing ``i``
              flag (case-insensitive) is reported via the ``flag`` field
``class``     character class body between ``[`` and ``]`` (raw, unescaped —
              :func:`repro.peg.expr.char_class` interprets it)
``action``    brace-balanced action code between ``{`` and ``}``
``punct``     one of  ; = += := -= / < > ( ) * + ? & ! : , _ ...
``eof``       end of input
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GrammarSyntaxError
from repro.locations import line_column

_PUNCT_MULTI = ("+=", ":=", "-=", "...")
_PUNCT_SINGLE = set(";=/<>()*+?&!:,_")

_STRING_ESCAPES = {
    "n": "\n", "r": "\r", "t": "\t", "f": "\f", "v": "\v",
    "\\": "\\", '"': '"', "'": "'", "0": "\0",
}


def decode_string_body(raw: str) -> str:
    """Decode the escapes of a raw (still-escaped) string-literal body.

    Mirrors exactly what :class:`Lexer` does while scanning a literal; used
    by the self-hosted meta grammar's bridge, which captures bodies raw.
    Raises :class:`ValueError` on malformed escapes.
    """
    out: list[str] = []
    index = 0
    while index < len(raw):
        ch = raw[index]
        if ch != "\\":
            out.append(ch)
            index += 1
            continue
        if index + 1 >= len(raw):
            raise ValueError("dangling escape in string literal")
        escape = raw[index + 1]
        if escape == "u":
            if index + 6 > len(raw):
                raise ValueError("truncated \\u escape")
            out.append(chr(int(raw[index + 2 : index + 6], 16)))
            index += 6
            continue
        if escape not in _STRING_ESCAPES:
            raise ValueError(f"unknown escape \\{escape}")
        out.append(_STRING_ESCAPES[escape])
        index += 2
    return "".join(out)


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    value: str
    offset: int
    line: int
    column: int
    flag: str = ""

    def is_punct(self, value: str) -> bool:
        return self.kind == "punct" and self.value == value

    def is_word(self, value: str) -> bool:
        return self.kind == "ident" and self.value == value


class Lexer:
    """Tokenize one source string; raises :class:`GrammarSyntaxError`."""

    def __init__(self, text: str, source: str = "<string>"):
        self._text = text
        self._source = source
        self._pos = 0

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            token = self._next()
            out.append(token)
            if token.kind == "eof":
                return out

    # -- internals -----------------------------------------------------------

    def _error(self, message: str, offset: int | None = None) -> GrammarSyntaxError:
        at = self._pos if offset is None else offset
        line, column = line_column(self._text, at)
        return GrammarSyntaxError(message, self._source, line, column)

    def _skip_trivia(self) -> None:
        text, n = self._text, len(self._text)
        while self._pos < n:
            ch = text[self._pos]
            if ch in " \t\r\n":
                self._pos += 1
            elif text.startswith("//", self._pos):
                end = text.find("\n", self._pos)
                self._pos = n if end == -1 else end + 1
            elif text.startswith("/*", self._pos):
                end = text.find("*/", self._pos + 2)
                if end == -1:
                    raise self._error("unterminated block comment")
                self._pos = end + 2
            else:
                return

    def _make(self, kind: str, value: str, offset: int, flag: str = "") -> Token:
        line, column = line_column(self._text, offset)
        return Token(kind, value, offset, line, column, flag)

    def _next(self) -> Token:
        self._skip_trivia()
        text, n = self._text, len(self._text)
        start = self._pos
        if start >= n:
            return self._make("eof", "", start)
        ch = text[start]

        if ch.isalpha() or ch == "_" and start + 1 < n and (text[start + 1].isalnum() or text[start + 1] == "_"):
            return self._lex_ident(start)
        if ch == '"':
            return self._lex_string(start)
        if ch == "[":
            return self._lex_class(start)
        if ch == "{":
            return self._lex_action(start)
        for multi in _PUNCT_MULTI:
            if text.startswith(multi, start):
                self._pos = start + len(multi)
                return self._make("punct", multi, start)
        if ch in _PUNCT_SINGLE:
            self._pos = start + 1
            return self._make("punct", ch, start)
        raise self._error(f"unexpected character {ch!r}")

    def _lex_ident(self, start: int) -> Token:
        text, n = self._text, len(self._text)
        pos = start
        while pos < n and (text[pos].isalnum() or text[pos] in "_"):
            pos += 1
        # dot-qualified segments (module names): ident(.ident)*
        while pos < n and text[pos] == "." and pos + 1 < n and (text[pos + 1].isalpha() or text[pos + 1] == "_"):
            pos += 1
            while pos < n and (text[pos].isalnum() or text[pos] in "_"):
                pos += 1
        self._pos = pos
        word = text[start:pos]
        # literal case-insensitivity flag is handled in _lex_string
        return self._make("ident", word, start)

    def _lex_string(self, start: int) -> Token:
        text, n = self._text, len(self._text)
        pos = start + 1
        out: list[str] = []
        while True:
            if pos >= n:
                raise self._error("unterminated string literal", start)
            ch = text[pos]
            if ch == '"':
                pos += 1
                break
            if ch == "\n":
                raise self._error("newline in string literal", pos)
            if ch == "\\":
                if pos + 1 >= n:
                    raise self._error("dangling escape in string literal", pos)
                esc = text[pos + 1]
                if esc == "u":
                    if pos + 6 > n:
                        raise self._error("truncated \\u escape", pos)
                    out.append(chr(int(text[pos + 2 : pos + 6], 16)))
                    pos += 6
                    continue
                if esc not in _STRING_ESCAPES:
                    raise self._error(f"unknown escape \\{esc}", pos)
                out.append(_STRING_ESCAPES[esc])
                pos += 2
                continue
            out.append(ch)
            pos += 1
        flag = ""
        if pos < n and text[pos] == "i" and (pos + 1 >= n or not (text[pos + 1].isalnum() or text[pos + 1] == "_")):
            flag = "i"
            pos += 1
        self._pos = pos
        return self._make("literal", "".join(out), start, flag)

    def _lex_class(self, start: int) -> Token:
        text, n = self._text, len(self._text)
        pos = start + 1
        while pos < n:
            ch = text[pos]
            if ch == "\\":
                pos += 2
                continue
            if ch == "]":
                body = text[start + 1 : pos]
                self._pos = pos + 1
                return self._make("class", body, start)
            pos += 1
        raise self._error("unterminated character class", start)

    def _lex_action(self, start: int) -> Token:
        text, n = self._text, len(self._text)
        pos = start + 1
        depth = 1
        while pos < n:
            ch = text[pos]
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    body = text[start + 1 : pos].strip()
                    self._pos = pos + 1
                    return self._make("action", body, start)
            elif ch in "\"'":
                quote = ch
                pos += 1
                while pos < n and text[pos] != quote:
                    if text[pos] == "\\":
                        pos += 1
                    pos += 1
                if pos >= n:
                    raise self._error("unterminated string inside action", start)
            pos += 1
        raise self._error("unterminated action", start)
