"""The self-hosted ``.mg`` reader.

The surface language of this system is itself defined as a modular PEG —
the ``meta.*`` grammar modules shipped with the library — just as the
original Rats! grammar is written in Rats!.  This module compiles that
grammar (with the library's own pipeline) and converts the resulting
generic syntax trees into the same :class:`~repro.meta.ast.ModuleAst`
values the hand-written reader produces.

``parse_module_selfhosted`` is a drop-in replacement for
:func:`repro.meta.parser.parse_module`; the test suite checks the two
agree structurally on every shipped grammar module (the bootstrap
fixpoint).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any

from repro.errors import GrammarSyntaxError, ParseError
from repro.meta.ast import Addition, Dependency, ModuleAst, Override, ProductionDef, Removal
from repro.meta.lexer import decode_string_body
from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    Expression,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Text,
    Voided,
    char_class,
    choice,
    literal,
    seq,
)
from repro.peg.production import Alternative, ValueKind
from repro.runtime.node import GNode

_KINDS = {
    "void": ValueKind.VOID,
    "String": ValueKind.TEXT,
    "generic": ValueKind.GENERIC,
    "Object": ValueKind.OBJECT,
}

#: Sentinel standing for the ``...`` placeholder in ``+=`` bodies.
_ELLIPSIS = object()


@lru_cache(maxsize=1)
def meta_language():
    """The compiled self-hosted ``.mg`` parser (built once, lazily)."""
    # Imported here to avoid a circular import at package load time.
    from repro.api import compile_grammar

    return compile_grammar("meta.Module")


def parse_module_selfhosted(text: str, source: str = "<string>") -> ModuleAst:
    """Parse ``.mg`` source with the self-hosted grammar."""
    language = meta_language()
    try:
        tree = language.parse(text, source=source)
    except ParseError as exc:
        raise GrammarSyntaxError(exc.message, source, exc.line, exc.column) from exc
    return _build_module(tree, text)


# ---------------------------------------------------------------------------
# Tree -> ModuleAst conversion
# ---------------------------------------------------------------------------

def _build_module(tree: GNode, source_text: str) -> ModuleAst:
    assert tree.name == "Module", tree
    name, parameters, dependencies, items = tree.children
    productions: list[ProductionDef] = []
    modifications: list[Addition | Override | Removal] = []
    options: set[str] = set()
    for item in items:
        if item.name == "OptionDecl":
            head, rest = item.children
            options.add(head)
            options.update(rest)
        elif isinstance(item, GNode) and item.name == "Production":
            productions.append(_build_production(item))
        else:
            modifications.append(_build_modification(item))
    return ModuleAst(
        name=name,
        parameters=tuple(parameters or ()),
        dependencies=tuple(_build_dependency(d) for d in dependencies),
        options=frozenset(options),
        productions=tuple(productions),
        modifications=tuple(modifications),
        source_text=source_text,
    )


def _build_dependency(node: GNode) -> Dependency:
    if node.name == "Import":
        return Dependency("import", node[0])
    if node.name == "Modify":
        return Dependency("modify", node[0])
    assert node.name == "Instantiate", node
    name, arguments, alias = node.children
    return Dependency("instantiate", name, tuple(arguments or ()), alias)


def _build_production(node: GNode) -> ProductionDef:
    attributes, kind, name, alternatives = node.children
    return ProductionDef(
        name=name,
        kind=_KINDS[kind] if kind else ValueKind.OBJECT,
        alternatives=tuple(_build_alternative(a) for a in alternatives),
        attributes=frozenset(attributes),
    )


def _build_modification(node: GNode):
    if node.name == "Removal":
        name, labels = node.children
        return Removal(name=name, labels=tuple(labels))
    if node.name == "Override":
        attributes, kind, name, alternatives = node.children
        return Override(
            name=name,
            alternatives=tuple(_build_alternative(a) for a in alternatives),
            kind=_KINDS[kind] if kind else None,
            attributes=frozenset(attributes) if attributes else None,
        )
    assert node.name == "Addition", node
    name, alternatives = node.children
    built = [
        _ELLIPSIS if a.name == "Ellipsis" else _build_alternative(a) for a in alternatives
    ]
    splits = [i for i, a in enumerate(built) if a is _ELLIPSIS]
    if len(splits) > 1:
        raise GrammarSyntaxError("at most one '...' allowed in a += body")
    if not splits:
        return Addition(name=name, before=(), after=tuple(built))
    index = splits[0]
    return Addition(
        name=name,
        before=tuple(built[:index]),
        after=tuple(built[index + 1 :]),
    )


def _build_alternative(node: GNode) -> Alternative:
    assert node.name == "Alternative", node
    label, items = node.children
    return Alternative(seq(*(_build_expression(i) for i in items)), label)


def _build_expression(node: GNode) -> Expression:
    name = node.name
    if name == "Reference":
        return Nonterminal(node[0])
    if name == "Literal":
        body, flag = node.children
        try:
            decoded = decode_string_body(body)
        except ValueError as exc:
            raise GrammarSyntaxError(str(exc)) from exc
        if not decoded:
            raise GrammarSyntaxError("empty string literal matches nothing")
        return literal(decoded, ignore_case=flag == "i")
    if name == "Class":
        try:
            return char_class(node[0])
        except ValueError as exc:
            raise GrammarSyntaxError(str(exc)) from exc
    if name == "Action":
        return Action(node[0].strip())
    if name == "Any":
        return AnyChar()
    if name == "Group":
        return choice(*(_group_alternative(a) for a in node[0]))
    if name == "AndPred":
        return And(_build_expression(node[0]))
    if name == "NotPred":
        return Not(_build_expression(node[0]))
    if name == "Voided":
        return Voided(_build_expression(node[0]))
    if name == "Texted":
        return Text(_build_expression(node[0]))
    if name == "Bound":
        return Binding(node[0], _build_expression(node[1]))
    if name == "Suffixed":
        expr = _build_expression(node[0])
        for op in node[1]:
            if op == "*":
                expr = Repetition(expr, 0)
            elif op == "+":
                expr = Repetition(expr, 1)
            else:
                expr = Option(expr)
        return expr
    raise GrammarSyntaxError(f"unexpected meta node {name!r}")


def _group_alternative(node: GNode) -> Expression:
    # Nested groups parse as full alternatives; labels are not meaningful
    # there (matching the hand-written reader, which discards none because
    # its nested choice rule never produces them).
    alternative = _build_alternative(node)
    return alternative.expr
