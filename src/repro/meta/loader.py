"""Locating and parsing grammar modules by qualified name.

A :class:`ModuleLoader` resolves module names like ``jay.Expression`` to
``.mg`` sources, looked up in order:

1. explicitly registered in-memory sources (``register_source``),
2. files under the loader's search paths (``jay/Expression.mg``),
3. the grammars shipped with the library (:mod:`repro.grammars`).

Parsed modules are cached; a module name always denotes one template.
"""

from __future__ import annotations

import importlib.resources
from pathlib import Path

from repro.errors import CompositionError
from repro.meta.ast import ModuleAst
from repro.meta.parser import parse_module


class ModuleLoader:
    """Load grammar-module templates by qualified name."""

    def __init__(self, paths: list[str | Path] | None = None, include_builtin: bool = True):
        self._paths = [Path(p) for p in (paths or [])]
        self._sources: dict[str, str] = {}
        self._cache: dict[str, ModuleAst] = {}
        self._include_builtin = include_builtin

    # -- registration -----------------------------------------------------------

    def register_source(self, name: str, text: str) -> None:
        """Register in-memory ``.mg`` source for module ``name``."""
        self._sources[name] = text
        self._cache.pop(name, None)

    def register_module(self, module: ModuleAst) -> None:
        """Register an already-parsed module template."""
        self._cache[module.name] = module

    def add_path(self, path: str | Path) -> None:
        self._paths.append(Path(path))

    # -- lookup --------------------------------------------------------------------

    def load(self, name: str) -> ModuleAst:
        """Load, parse, and cache the module template called ``name``."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        text, source = self._find_source(name)
        module = parse_module(text, source)
        if module.name != name:
            raise CompositionError(
                f"module file for {name!r} declares itself as {module.name!r} ({source})"
            )
        self._cache[name] = module
        return module

    def source_text(self, name: str) -> str:
        """The current raw ``.mg`` text of module ``name``.

        Always re-resolves (registered sources, search paths, built-ins) so
        callers — notably the compilation cache — observe on-disk edits made
        after the parsed module was cached.  Raises
        :class:`~repro.errors.CompositionError` when the module cannot be
        found.
        """
        return self._find_source(name)[0]

    def _find_source(self, name: str) -> tuple[str, str]:
        if name in self._sources:
            return self._sources[name], f"<registered:{name}>"
        relative = Path(*name.split(".")).with_suffix(".mg")
        for base in self._paths:
            candidate = base / relative
            if candidate.is_file():
                return candidate.read_text(), str(candidate)
        if self._include_builtin:
            builtin = importlib.resources.files("repro.grammars") / str(relative)
            try:
                return builtin.read_text(), f"<builtin:{name}>"
            except (FileNotFoundError, ModuleNotFoundError, NotADirectoryError):
                pass
        raise CompositionError(f"cannot find grammar module {name!r} (searched {len(self._paths)} paths)")
