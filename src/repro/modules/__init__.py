"""Grammar-module composition (the paper's extensibility mechanism)."""

from repro.modules.compose import Composer, compose, compose_with_manifest

__all__ = ["Composer", "compose", "compose_with_manifest"]
