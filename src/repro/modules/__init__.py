"""Grammar-module composition (the paper's extensibility mechanism)."""

from repro.modules.compose import Composer, compose

__all__ = ["Composer", "compose"]
