"""Module dependency graphs.

Builds the instance-level dependency graph of a composition (import and
modify edges) and renders it as GraphViz DOT — handy for documenting how a
language is assembled, and used by ``repro-stats --dot``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.meta.loader import ModuleLoader
from repro.modules.compose import Composer


@dataclass(frozen=True)
class ModuleGraph:
    """Nodes are instance names; edges carry their dependency kind."""

    root: str
    nodes: tuple[str, ...]
    imports: tuple[tuple[str, str], ...]  # (importer, imported)
    modifies: tuple[tuple[str, str], ...]  # (modifier, modified)

    def edge_count(self) -> int:
        return len(self.imports) + len(self.modifies)

    def to_dot(self) -> str:
        """Render as a GraphViz digraph (modify edges dashed)."""
        lines = [
            f'digraph "{self.root}" {{',
            "  rankdir=BT;",
            '  node [shape=box, fontname="monospace"];',
        ]
        for node in self.nodes:
            if node == self.root:
                lines.append(f'  "{node}" [style=bold];')
            else:
                lines.append(f'  "{node}";')
        for source, target in self.imports:
            lines.append(f'  "{source}" -> "{target}";')
        for source, target in self.modifies:
            lines.append(f'  "{source}" -> "{target}" [style=dashed, label="modify"];')
        lines.append("}")
        return "\n".join(lines)


def module_graph(root: str, loader: ModuleLoader | None = None) -> ModuleGraph:
    """Compose ``root`` and return its instance dependency graph."""
    composer = Composer(loader or ModuleLoader())
    composer.compose(root)
    instances = composer._instances  # noqa: SLF001 - graph is a composer view
    imports: list[tuple[str, str]] = []
    modifies: list[tuple[str, str]] = []
    for name, instance in instances.items():
        for target in dict.fromkeys(instance.imports):
            imports.append((name, target))
        for target in dict.fromkeys(instance.modifies):
            modifies.append((name, target))
    return ModuleGraph(
        root=root,
        nodes=tuple(instances),
        imports=tuple(imports),
        modifies=tuple(modifies),
    )
