"""Module composition: turning a graph of grammar modules into one grammar.

This is the paper's central mechanism.  Starting from a *root* module, the
composer

1. **resolves** the instance graph — ``import`` and ``modify`` clauses pull
   in other modules; ``instantiate M(Args) as N`` creates a named instance of
   a *parameterized* module template with its parameters bound to concrete
   module names (parameters may be forwarded through several levels);
2. **orders** the instances topologically (a module is processed after
   everything it imports or modifies; circular dependencies are rejected
   with the cycle in the error message);
3. **collects** all production definitions into a single flat namespace
   (duplicate names across modules are a composition error — modules that
   want to change an existing production must say ``modify`` and use
   ``+= / := / -=``);
4. **applies** each module's modifications, in instance order:
   ``+=`` splices new alternatives around the existing body (the ``...``
   placeholder), ``:=`` replaces the body, ``-=`` deletes labeled
   alternatives;
5. picks the **start symbol** — the root module's first ``public``
   production (or its first production when none is marked public).

The result is a validated :class:`repro.peg.grammar.Grammar`, ready for
analysis, transformation, interpretation or code generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompositionError
from repro.meta.ast import Addition, Dependency, ModuleAst, Override, ProductionDef, Removal
from repro.meta.loader import ModuleLoader
from repro.peg.grammar import Grammar
from repro.peg.production import Alternative, Production


@dataclass
class _Instance:
    """One instantiated module: a template plus parameter bindings."""

    name: str
    template: ModuleAst
    bindings: dict[str, str] = field(default_factory=dict)
    imports: list[str] = field(default_factory=list)  # instance names
    modifies: list[str] = field(default_factory=list)

    def resolve(self, target: str) -> str:
        """Substitute module parameters in a dependency target."""
        return self.bindings.get(target, target)


class Composer:
    """Compose a root module (and everything it reaches) into a grammar."""

    def __init__(self, loader: ModuleLoader):
        self._loader = loader
        self._instances: dict[str, _Instance] = {}

    # -- public entry -------------------------------------------------------------

    def compose(self, root: str, start: str | None = None) -> Grammar:
        """Compose starting from module ``root``; returns a flat grammar."""
        self._instances = {}
        root_instance = self._instantiate(root, chain=())
        order = self._topological_order()
        grammar = self._collect_and_modify(order, root_instance, start)
        grammar.validate()
        return grammar

    def instance_names(self) -> list[str]:
        """Instance names from the most recent composition."""
        return list(self._instances)

    def instance_modules(self) -> list[tuple[str, ModuleAst]]:
        """(instance name, module template) pairs from the last composition."""
        return [(name, inst.template) for name, inst in self._instances.items()]

    # -- instance graph ----------------------------------------------------------------

    def _instantiate(self, name: str, chain: tuple[str, ...]) -> _Instance:
        """Create the plain (argument-free) instance of module ``name``."""
        if name in chain:
            cycle = " -> ".join(chain + (name,))
            raise CompositionError(f"circular module instantiation: {cycle}")
        existing = self._instances.get(name)
        if existing is not None:
            if existing.bindings:
                raise CompositionError(
                    f"module instance {name!r} created twice with different arguments"
                )
            return existing
        template = self._loader.load(name)
        return self._build_instance(name, template, {}, chain)

    def _build_instance(
        self, name: str, template: ModuleAst, bindings: dict[str, str], chain: tuple[str, ...]
    ) -> _Instance:
        params = dict(bindings)
        params.pop("", None)
        if set(params) != set(template.parameters):
            if template.parameters and not params:
                raise CompositionError(
                    f"module {template.name!r} is parameterized "
                    f"({', '.join(template.parameters)}); use 'instantiate ... as ...'"
                )
            raise CompositionError(
                f"module {template.name!r} expects parameters ({', '.join(template.parameters)}), "
                f"got ({', '.join(params)})"
            )
        instance = _Instance(name=name, template=template, bindings=params)
        self._instances[name] = instance
        for dep in template.dependencies:
            self._resolve_dependency(instance, dep, chain + (name,))
        return instance

    def _resolve_dependency(self, instance: _Instance, dep: Dependency, chain: tuple[str, ...]) -> None:
        target = instance.resolve(dep.module)
        if dep.kind == "instantiate":
            args = tuple(instance.resolve(a) for a in dep.arguments)
            alias = dep.alias or target
            template = self._loader.load(target)
            if len(args) != len(template.parameters):
                raise CompositionError(
                    f"{instance.name}: instantiate {target} expects "
                    f"{len(template.parameters)} argument(s), got {len(args)}"
                )
            bindings = dict(zip(template.parameters, args))
            child = self._instances.get(alias)
            if child is not None:
                if child.template.name != target or child.bindings != bindings:
                    raise CompositionError(f"conflicting definitions of module instance {alias!r}")
            else:
                # Arguments must exist as instances before the child can import them.
                for arg in args:
                    self._require_instance(arg, chain)
                child = self._build_instance(alias, template, bindings, chain)
            instance.imports.append(alias)
            return
        self._require_instance(target, chain)
        if dep.kind == "import":
            instance.imports.append(target)
        else:  # modify
            instance.modifies.append(target)

    def _require_instance(self, name: str, chain: tuple[str, ...]) -> _Instance:
        existing = self._instances.get(name)
        if existing is not None:
            return existing
        return self._instantiate(name, chain=chain)

    # -- ordering -----------------------------------------------------------------------

    def _topological_order(self) -> list[_Instance]:
        state: dict[str, int] = {}  # 0 visiting, 1 done
        order: list[_Instance] = []

        def visit(name: str, chain: tuple[str, ...]) -> None:
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                cycle_start = chain.index(name)
                cycle = " -> ".join(chain[cycle_start:] + (name,))
                raise CompositionError(f"circular module dependency: {cycle}")
            state[name] = 0
            instance = self._instances[name]
            for dep in instance.imports + instance.modifies:
                visit(dep, chain + (name,))
            state[name] = 1
            order.append(instance)

        for name in list(self._instances):
            visit(name, ())
        return order

    # -- collection and modification ----------------------------------------------------------

    def _collect_and_modify(
        self, order: list[_Instance], root: _Instance, start: str | None
    ) -> Grammar:
        namespace: dict[str, Production] = {}
        sequence: list[str] = []  # insertion order of production names
        defined_by: dict[str, str] = {}
        options: set[str] = set()

        for instance in order:
            options |= instance.template.options
            for definition in instance.template.productions:
                if definition.name in namespace:
                    raise CompositionError(
                        f"production {definition.name!r} defined in both "
                        f"{defined_by[definition.name]!r} and {instance.name!r}; "
                        f"use 'modify' and ':=' to override"
                    )
                namespace[definition.name] = Production(
                    name=definition.name,
                    kind=definition.kind,
                    alternatives=definition.alternatives,
                    attributes=definition.attributes,
                    location=definition.location,
                )
                defined_by[definition.name] = instance.name
                sequence.append(definition.name)
            for modification in instance.template.modifications:
                if not instance.modifies:
                    raise CompositionError(
                        f"module {instance.name!r} contains modifications but no 'modify' clause"
                    )
                self._apply_modification(namespace, instance, modification)

        start_name = start or self._pick_start(root, namespace)
        productions = tuple(namespace[name] for name in sequence)
        return Grammar(
            productions=productions,
            start=start_name,
            name=root.name,
            options=frozenset(options),
        )

    @staticmethod
    def _pick_start(root: _Instance, namespace: dict[str, Production]) -> str:
        own = [p.name for p in root.template.productions]
        for name in own:
            if namespace[name].is_public:
                return name
        if own:
            return own[0]
        # A pure modifier/aggregator module: fall back to the first public
        # production anywhere, then the first production.
        for name, production in namespace.items():
            if production.is_public:
                return name
        if namespace:
            return next(iter(namespace))
        raise CompositionError(f"composition from {root.name!r} produced no productions")

    def _apply_modification(
        self, namespace: dict[str, Production], instance: _Instance, modification
    ) -> None:
        target = namespace.get(modification.name)
        if target is None:
            raise CompositionError(
                f"{instance.name}: modification of undefined production {modification.name!r}"
            )
        if isinstance(modification, Addition):
            namespace[modification.name] = self._apply_addition(target, modification, instance)
        elif isinstance(modification, Override):
            attributes = modification.attributes if modification.attributes is not None else target.attributes
            kind = modification.kind if modification.kind is not None else target.kind
            namespace[modification.name] = Production(
                name=target.name,
                kind=kind,
                alternatives=modification.alternatives,
                attributes=attributes,
                location=modification.location,
            )
        elif isinstance(modification, Removal):
            namespace[modification.name] = self._apply_removal(target, modification, instance)
        else:  # pragma: no cover - parser only produces the three kinds
            raise CompositionError(f"unknown modification {modification!r}")

    @staticmethod
    def _apply_addition(target: Production, addition: Addition, instance: _Instance) -> Production:
        existing_labels = {a.label for a in target.alternatives if a.label}
        for alt in addition.before + addition.after:
            if alt.label and alt.label in existing_labels:
                raise CompositionError(
                    f"{instance.name}: production {target.name!r} already has an "
                    f"alternative labeled <{alt.label}>"
                )
        alternatives = addition.before + target.alternatives + addition.after
        return target.with_alternatives(alternatives)

    @staticmethod
    def _apply_removal(target: Production, removal: Removal, instance: _Instance) -> Production:
        labels = {a.label for a in target.alternatives if a.label}
        missing = [lbl for lbl in removal.labels if lbl not in labels]
        if missing:
            raise CompositionError(
                f"{instance.name}: production {target.name!r} has no alternative(s) "
                f"labeled {', '.join(missing)}"
            )
        kept = tuple(a for a in target.alternatives if a.label not in removal.labels)
        if not kept:
            raise CompositionError(
                f"{instance.name}: removal leaves production {target.name!r} without alternatives"
            )
        return target.with_alternatives(kept)


def compose(
    root: str,
    loader: ModuleLoader | None = None,
    paths: list[str] | None = None,
    start: str | None = None,
) -> Grammar:
    """Convenience wrapper: compose ``root`` with a fresh loader."""
    if loader is None:
        loader = ModuleLoader(paths=paths)
    return Composer(loader).compose(root, start=start)


def compose_with_manifest(
    root: str,
    loader: ModuleLoader,
    start: str | None = None,
) -> tuple[Grammar, tuple[str, ...]]:
    """Compose ``root`` and also report the participating module templates.

    Returns ``(grammar, template_names)`` where ``template_names`` is the
    sorted, deduplicated set of loadable module names whose source text the
    composition depended on — exactly the set a compilation cache must
    fingerprint to know when the grammar is stale.  (Instance aliases of
    parameterized templates map back to their template module.)
    """
    composer = Composer(loader)
    grammar = composer.compose(root, start=start)
    templates = sorted({template.name for _, template in composer.instance_modules()})
    return grammar, tuple(templates)
