"""Profile runners: parse a corpus under instrumentation, per backend.

Two entry points share one grammar-preparation convention:

- :func:`profile_corpus` — the engine behind ``repro-prof``: parse a list
  of inputs with one instrumented backend (``interp``, ``closures``, or
  ``generated``) and return a :class:`~repro.profile.report.ProfileReport`.
- :class:`CoverageSession` — the lightweight feed the differential-fuzz
  runner uses so fuzz runs double as coverage measurements: inputs go
  through one profiled reference interpreter and only the
  :class:`~repro.profile.collector.CoverageMatrix` is kept.

Both profile the **leftrec-only** pipeline output (``Options.none()``):
the direct left-recursion transformation is required for correctness, but
none of the alternative-rewriting optimizations (folding, prefix
factoring, inlining) run, so the alternative set — the denominator of
every coverage ratio — is stable and recognizably the author's grammar.
Pass ``options=`` to :func:`profile_corpus` to profile an optimized
pipeline instead (coverage then describes the *rewritten* grammar).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.codegen import generate_parser_source, load_parser
from repro.errors import ParseError
from repro.grammars import ROOTS
from repro.interp.closures import ClosureParser
from repro.interp.evaluator import GrammarInterpreter
from repro.meta import ModuleLoader
from repro.modules import compose
from repro.optim import Options, PreparedGrammar, prepare
from repro.peg.grammar import Grammar
from repro.profile.collector import CoverageMatrix, ParseProfile
from repro.profile.report import ProfileReport, build_report

#: The instrumented backends ``profile_corpus`` can run.
BACKENDS = ("interp", "closures", "generated")


def resolve_root(root: str) -> str:
    """Expand a grammar shorthand (``calc``) to its module root
    (``calc.Calculator``); full names pass through."""
    return ROOTS.get(root, root)


def prepare_for_profiling(
    grammar: Grammar | str,
    *,
    options: Options | None = None,
    paths: list[str] | None = None,
    start: str | None = None,
) -> PreparedGrammar:
    """Compose (if ``grammar`` names a module root) and run the profiling
    pipeline — leftrec-only unless ``options`` is given."""
    if isinstance(grammar, str):
        loader = ModuleLoader(paths=paths)
        grammar = compose(resolve_root(grammar), loader, start=start)
    elif start is not None:
        grammar = grammar.with_start(start)
    return prepare(grammar, options if options is not None else Options.none(), check=False)


def profiled_parse_fn(
    prepared: PreparedGrammar, backend: str, profile: ParseProfile
) -> Callable[[str], Any]:
    """A ``parse(text)`` callable for one instrumented backend."""
    if backend == "interp":
        interp = GrammarInterpreter(
            prepared.grammar, memoize=True, chunked=prepared.chunked_memo, profile=profile
        )
        return interp.parse
    if backend == "closures":
        closures = ClosureParser(prepared.grammar, chunked=prepared.chunked_memo, profile=profile)
        return closures.parse
    if backend == "generated":
        source = generate_parser_source(prepared, profiled=True)
        parser_class = load_parser(source)
        return lambda text: parser_class(text, profile=profile).parse()
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")


def profile_corpus(
    grammar: Grammar | str,
    texts: Iterable[str],
    backend: str = "interp",
    *,
    options: Options | None = None,
    profile: ParseProfile | None = None,
    paths: list[str] | None = None,
    start: str | None = None,
    grammar_name: str | None = None,
) -> ProfileReport:
    """Parse every input in ``texts`` with one instrumented backend.

    Rejected inputs are counted (``report.rejected``), not raised — a
    profiling corpus may legitimately mix accepted and rejected inputs
    (e.g. a fuzz corpus).  Pass an existing ``profile`` to aggregate
    multiple corpora or backends into one collector.
    """
    if grammar_name is None:
        grammar_name = grammar if isinstance(grammar, str) else "<grammar>"
    prepared = prepare_for_profiling(grammar, options=options, paths=paths, start=start)
    if profile is None:
        profile = ParseProfile()
    profile.register_grammar(prepared.grammar)
    parse = profiled_parse_fn(prepared, backend, profile)
    warnings: list[str] = []
    for text in texts:
        try:
            parse(text)
        except ParseError:
            profile.count_parse(text, accepted=False)
        except RecursionError:
            profile.count_parse(text, accepted=False)
            if not warnings:
                warnings.append("some inputs exhausted the recursion limit")
        else:
            profile.count_parse(text, accepted=True)
    return build_report(profile, grammar=grammar_name, backend=backend, warnings=tuple(warnings))


#: Backends :func:`profile_edits` can drive (the incremental session's).
EDIT_BACKENDS = ("vm", "closures")


def _random_edit(rng, text: str) -> tuple[int, int, str]:
    """One seeded random edit ``(offset, removed, inserted)`` over ``text``.

    Insertions sample characters from the text itself (plus a space), so
    edits stay in-vocabulary often enough to exercise both accepting and
    rejecting reparses."""
    alphabet = text if text else " "
    op = rng.choice(("insert", "delete", "replace"))
    offset = rng.randint(0, len(text))
    if op == "insert" or offset >= len(text):
        return offset, 0, "".join(
            rng.choice(alphabet) for _ in range(rng.randint(1, 3))
        )
    removed = rng.randint(1, min(3, len(text) - offset))
    if op == "delete":
        return offset, removed, ""
    inserted = "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 3)))
    return offset, removed, inserted


def profile_edits(
    grammar: Grammar | str,
    texts: Iterable[str],
    backend: str = "vm",
    *,
    edits: int = 20,
    seed: int = 0,
    options: Options | None = None,
    profile: ParseProfile | None = None,
    paths: list[str] | None = None,
    start: str | None = None,
    grammar_name: str | None = None,
) -> ProfileReport:
    """Profile incremental reparsing: seeded random edits per input.

    Each input seeds an :class:`repro.incremental.IncrementalSession`
    (``backend`` is ``"vm"`` or ``"closures"``) which then applies ``edits``
    random edits, reparsing after each.  The session reports per-edit memo
    accounting into the profile (:meth:`ParseProfile.record_edit`), so the
    report's ``incremental`` block — entries reused vs invalidated vs
    shifted — measures how effective memo reuse was on this corpus.
    Rejected reparses are counted, not raised.
    """
    import random

    from repro.api import compile_grammar

    if backend not in EDIT_BACKENDS:
        raise ValueError(
            f"unknown incremental backend {backend!r}; expected one of {EDIT_BACKENDS}"
        )
    if grammar_name is None:
        grammar_name = grammar if isinstance(grammar, str) else "<grammar>"
    if isinstance(grammar, str):
        loader = ModuleLoader(paths=paths)
        grammar = compose(resolve_root(grammar), loader, start=start)
    language = compile_grammar(grammar, options=options, start=start, cache=False)
    if profile is None:
        profile = ParseProfile()
    # No register_grammar: incremental parsers carry no per-production
    # hooks, so zero-filled hotspot/coverage rows would only be noise —
    # the report's payload is the corpus totals and the incremental block.
    rng = random.Random(seed)
    warnings: list[str] = []
    session = language.incremental(backend=backend, profile=profile)
    def safe_parse() -> None:
        try:
            session.parse()
        except ParseError:
            pass  # counted by the session
        except RecursionError:
            if not warnings:
                warnings.append("some inputs exhausted the recursion limit")

    for text in texts:
        session.set_text(text)
        safe_parse()
        for _ in range(edits):
            offset, removed, inserted = _random_edit(rng, session.text)
            session.apply_edit(offset, removed, inserted)
            safe_parse()
    return build_report(
        profile,
        grammar=grammar_name,
        backend=f"incremental-{backend}",
        warnings=tuple(warnings),
    )


class CoverageSession:
    """Feed inputs through one profiled reference interpreter.

    Built once per fuzz run (or corpus sweep); :meth:`feed` parses one
    input and records which alternatives it exercised into the shared
    :class:`CoverageMatrix`.  The full :class:`ParseProfile` is available
    as ``.profile`` for callers that want the rest of the telemetry.
    """

    def __init__(
        self,
        grammar: Grammar | str,
        *,
        coverage: CoverageMatrix | None = None,
        paths: list[str] | None = None,
        start: str | None = None,
    ):
        prepared = prepare_for_profiling(grammar, paths=paths, start=start)
        self.coverage = coverage if coverage is not None else CoverageMatrix()
        self.profile = ParseProfile(coverage=self.coverage)
        self.profile.register_grammar(prepared.grammar)
        # Dict memo organization: coverage feeds parse many small inputs,
        # where column allocation would dominate chunked lookups.
        self._interpreter = GrammarInterpreter(
            prepared.grammar, memoize=True, chunked=False, profile=self.profile
        )

    def feed(self, text: str) -> bool:
        """Parse one input for coverage; returns whether it was accepted."""
        try:
            self._interpreter.parse(text)
        except (ParseError, RecursionError):
            self.profile.count_parse(text, accepted=False)
            return False
        self.profile.count_parse(text, accepted=True)
        return True
