"""Parse-time observability: profiling, memo telemetry, grammar coverage.

The subsystem has three layers (see ``docs/profiling.md``):

- :mod:`repro.profile.collector` — the :class:`ParseProfile` collector the
  instrumented backends report into, plus the :class:`CoverageMatrix` of
  per-alternative coverage and the :class:`MemoEvents` memo-table sink;
- :mod:`repro.profile.report` — frozen, JSON-round-trippable
  :class:`ProfileReport` snapshots and their human-readable rendering;
- :mod:`repro.profile.runner` — corpus runners: :func:`profile_corpus`
  behind the ``repro-prof`` CLI, and :class:`CoverageSession` feeding
  coverage from differential-fuzz runs.

Instrumentation is strictly opt-in: without a profile attached, every
backend keeps its uninstrumented shape (enforced by benchmark E9).
"""

from repro.profile.collector import CoverageMatrix, MemoEvents, ParseProfile
from repro.profile.report import (
    AlternativeCoverage,
    ProductionProfile,
    ProfileReport,
    build_report,
    format_report,
)
from repro.profile.runner import (
    BACKENDS,
    EDIT_BACKENDS,
    CoverageSession,
    profile_corpus,
    profile_edits,
    profiled_parse_fn,
    prepare_for_profiling,
    resolve_root,
)

__all__ = [
    "ParseProfile", "CoverageMatrix", "MemoEvents",
    "ProfileReport", "ProductionProfile", "AlternativeCoverage",
    "build_report", "format_report",
    "BACKENDS", "EDIT_BACKENDS", "CoverageSession", "profile_corpus",
    "profile_edits", "profiled_parse_fn", "prepare_for_profiling",
    "resolve_root",
]
