"""The parse-time telemetry collector.

A :class:`ParseProfile` accumulates, over any number of parses on any
backend, the quantities the paper's optimization story is argued from:

- per-production **invocation counts** (memo-served applications included),
- **memo hits/misses** (fed by the memo tables through an events sink, or
  by the generated parsers' inlined memo code),
- **backtrack counts** — failed alternative attempts — together with a
  **wasted-character estimate** (characters consumed by an alternative's
  successfully matched prefix before the attempt was abandoned),
- **farthest-failure contributions** — how often each production pushed
  the farthest-failure frontier forward, i.e. which productions drive the
  error diagnosis, and
- per-alternative **grammar coverage** (a :class:`CoverageMatrix` of which
  alternatives were ever entered and which ever succeeded).

The collector is backend-agnostic: every hook is keyed by fully qualified
production *name*, so one profile can aggregate runs from the interpreter,
the closure compiler, and generated parsers (their post-optimization
grammars permitting).  All hooks are cheap dictionary updates; parsers pay
for them only when a profile is attached (see ``docs/profiling.md``).
"""

from __future__ import annotations

from typing import Any

from repro.peg.grammar import Grammar


class CoverageMatrix:
    """Which alternatives of which productions a corpus exercised.

    ``entered[(production, index)]`` counts attempts; ``succeeded`` counts
    attempts that matched.  :meth:`register` records a grammar's full
    alternative set so never-entered alternatives appear (with zero counts)
    in coverage reports — without registration only touched alternatives
    are known.
    """

    def __init__(self) -> None:
        self.entered: dict[tuple[str, int], int] = {}
        self.succeeded: dict[tuple[str, int], int] = {}
        #: (production, index) -> alternative label (None when unlabeled),
        #: for every registered alternative.
        self.alternatives: dict[tuple[str, int], str | None] = {}

    # -- recording -----------------------------------------------------------

    def enter(self, production: str, index: int) -> None:
        key = (production, index)
        self.entered[key] = self.entered.get(key, 0) + 1

    def succeed(self, production: str, index: int) -> None:
        key = (production, index)
        self.succeeded[key] = self.succeeded.get(key, 0) + 1

    def register(self, grammar: Grammar) -> None:
        """Record every alternative of ``grammar`` as a coverage target."""
        for production in grammar:
            for index, alternative in enumerate(production.alternatives):
                self.alternatives.setdefault((production.name, index), alternative.label)

    def merge(self, other: "CoverageMatrix") -> None:
        """Fold another matrix (e.g. from a parallel fuzz run) into this one."""
        for key, count in other.entered.items():
            self.entered[key] = self.entered.get(key, 0) + count
        for key, count in other.succeeded.items():
            self.succeeded[key] = self.succeeded.get(key, 0) + count
        for key, label in other.alternatives.items():
            self.alternatives.setdefault(key, label)

    # -- reporting -----------------------------------------------------------

    def keys(self) -> list[tuple[str, int]]:
        """All known alternatives: registered ones plus any recorded ones."""
        known = set(self.alternatives)
        known.update(self.entered)
        known.update(self.succeeded)
        return sorted(known)

    def total(self) -> int:
        return len(self.keys())

    def entered_count(self) -> int:
        return sum(1 for key in self.keys() if self.entered.get(key, 0) > 0)

    def succeeded_count(self) -> int:
        return sum(1 for key in self.keys() if self.succeeded.get(key, 0) > 0)

    def ratio(self, *, succeeded: bool = True) -> float:
        """Covered fraction; ``succeeded=False`` counts merely-entered
        alternatives as covered."""
        total = self.total()
        if not total:
            return 1.0
        covered = self.succeeded_count() if succeeded else self.entered_count()
        return covered / total

    def uncovered(self, *, succeeded: bool = True) -> list[tuple[str, int]]:
        """Alternatives never covered, sorted by production then index."""
        counts = self.succeeded if succeeded else self.entered
        return [key for key in self.keys() if counts.get(key, 0) == 0]

    def label(self, key: tuple[str, int]) -> str | None:
        return self.alternatives.get(key)

    def describe(self, key: tuple[str, int]) -> str:
        production, index = key
        label = self.alternatives.get(key)
        suffix = f" <{label}>" if label else ""
        return f"{production}/{index + 1}{suffix}"


class ParseProfile:
    """Accumulates parse-time telemetry across parses and backends.

    Construct one, attach it to a parser (``profile=`` on the interpreter,
    closure compiler, :class:`repro.Language` APIs, or a profiled generated
    parser), parse a corpus, then read the counters directly or build a
    :class:`repro.profile.report.ProfileReport`.
    """

    def __init__(self, coverage: CoverageMatrix | None = None):
        self.invocations: dict[str, int] = {}
        self.memo_hits: dict[str, int] = {}
        self.memo_misses: dict[str, int] = {}
        self.successes: dict[str, int] = {}
        self.failures: dict[str, int] = {}
        self.backtracks: dict[str, int] = {}
        self.wasted_chars: dict[str, int] = {}
        self.farthest: dict[str, int] = {}
        #: Fused single-scan ``Regex`` evaluations, keyed by the enclosing
        #: production's name (see the ``fuse`` optimization).
        self.fused_scans: dict[str, int] = {}
        self.coverage = coverage if coverage is not None else CoverageMatrix()
        #: Completed ``parse()`` calls (successful or not) observed via
        #: :meth:`count_parse`.
        self.parses = 0
        self.chars = 0
        self.rejected = 0
        #: Incremental-session edit accounting (:meth:`record_edit`):
        #: memo entries reused (retained), invalidated, and relocated, summed
        #: over every :meth:`repro.incremental.IncrementalSession.apply_edit`.
        self.edits = 0
        self.memo_reused = 0
        self.memo_dropped = 0
        self.memo_shifted = 0

    # -- corpus accounting (called by runners, not parsers) -------------------

    def count_parse(self, text: str, accepted: bool) -> None:
        self.parses += 1
        self.chars += len(text)
        if not accepted:
            self.rejected += 1

    def register_grammar(self, grammar: Grammar) -> None:
        """Register coverage targets and zero-fill production counters so
        untouched productions show up in reports."""
        self.coverage.register(grammar)
        for production in grammar:
            self.invocations.setdefault(production.name, 0)

    def record_edit(self, reused: int, dropped: int, shifted: int) -> None:
        """One incremental edit: ``reused`` memo entries survived it,
        ``dropped`` overlapped the damage and were invalidated, ``shifted``
        were relocated by the length delta."""
        self.edits += 1
        self.memo_reused += reused
        self.memo_dropped += dropped
        self.memo_shifted += shifted

    # -- parser hooks ----------------------------------------------------------

    def invoke(self, production: str) -> None:
        self.invocations[production] = self.invocations.get(production, 0) + 1

    def memo_hit(self, production: str) -> None:
        self.memo_hits[production] = self.memo_hits.get(production, 0) + 1

    def memo_miss(self, production: str) -> None:
        self.memo_misses[production] = self.memo_misses.get(production, 0) + 1

    def success(self, production: str) -> None:
        self.successes[production] = self.successes.get(production, 0) + 1

    def failure(self, production: str) -> None:
        self.failures[production] = self.failures.get(production, 0) + 1

    def alt_enter(self, production: str, index: int) -> None:
        self.coverage.enter(production, index)

    def alt_success(self, production: str, index: int) -> None:
        self.coverage.succeed(production, index)

    def alt_fail(self, production: str, index: int, wasted: int) -> None:
        """A failed alternative attempt: one backtrack, ``wasted`` characters
        consumed and rewound."""
        self.backtracks[production] = self.backtracks.get(production, 0) + 1
        if wasted > 0:
            self.wasted_chars[production] = self.wasted_chars.get(production, 0) + wasted

    def record_farthest(self, production: str) -> None:
        """``production`` advanced the farthest-failure frontier."""
        self.farthest[production] = self.farthest.get(production, 0) + 1

    def fused_scan(self, production: str) -> None:
        """One fused ``Regex`` region was scanned inside ``production``."""
        self.fused_scans[production] = self.fused_scans.get(production, 0) + 1

    # -- derived totals --------------------------------------------------------

    def production_names(self) -> list[str]:
        names = set(self.invocations)
        for counter in (self.memo_hits, self.memo_misses, self.successes,
                        self.failures, self.backtracks, self.wasted_chars,
                        self.farthest, self.fused_scans):
            names.update(counter)
        return sorted(names)

    def total_invocations(self) -> int:
        return sum(self.invocations.values())

    def total_memo_hits(self) -> int:
        return sum(self.memo_hits.values())

    def total_memo_misses(self) -> int:
        return sum(self.memo_misses.values())

    def total_backtracks(self) -> int:
        return sum(self.backtracks.values())

    def total_wasted_chars(self) -> int:
        return sum(self.wasted_chars.values())

    def total_fused_scans(self) -> int:
        return sum(self.fused_scans.values())

    def memo_hit_rate(self) -> float:
        looked_up = self.total_memo_hits() + self.total_memo_misses()
        return self.total_memo_hits() / looked_up if looked_up else 0.0


class MemoEvents:
    """Adapter from memo-table events (dense rule indices) to a profile.

    Memo tables address productions by dense integer index; the adapter
    translates back to names via the table's own ``rule_names`` list so the
    :class:`ParseProfile` stays name-keyed and backend-agnostic.
    """

    __slots__ = ("_profile", "_names")

    def __init__(self, profile: ParseProfile, rule_names: list[str]):
        self._profile = profile
        self._names = list(rule_names)

    def hit(self, rule: int, pos: int, entry: tuple[int, Any]) -> None:
        self._profile.memo_hit(self._names[rule])

    def miss(self, rule: int, pos: int) -> None:
        self._profile.memo_miss(self._names[rule])

    def store(self, rule: int, pos: int, entry: tuple[int, Any]) -> None:
        """Stores are implied by misses; counted only by custom sinks."""
