"""Profile reports: frozen snapshots of a collector, rendered or serialized.

A :class:`ProfileReport` is the exchange format of the profiling subsystem:
``repro-prof`` prints it as a hotspot table, ``--json`` emits it as a
dictionary, and the coverage tests assert on it.  Reports round-trip
through JSON losslessly (``to_json`` / ``from_json`` are inverses; the
tests check equality), so profiles can be archived as CI artifacts and
compared across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.profile.collector import ParseProfile

#: Bump when the report's JSON layout changes.
#: 3: added the "incremental" block (edit counts and memo reuse/invalidation
#: totals from incremental sessions, see docs/incremental.md).
REPORT_FORMAT = 3


@dataclass(frozen=True)
class ProductionProfile:
    """Telemetry totals for one production."""

    name: str
    invocations: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    successes: int = 0
    failures: int = 0
    backtracks: int = 0
    wasted_chars: int = 0
    farthest: int = 0
    fused_scans: int = 0

    @property
    def memo_hit_rate(self) -> float:
        looked_up = self.memo_hits + self.memo_misses
        return self.memo_hits / looked_up if looked_up else 0.0


@dataclass(frozen=True)
class AlternativeCoverage:
    """Coverage counts for one alternative of one production."""

    production: str
    index: int
    label: str | None = None
    entered: int = 0
    succeeded: int = 0


@dataclass(frozen=True)
class ProfileReport:
    """One backend's telemetry over one corpus."""

    grammar: str
    backend: str
    parses: int = 0
    chars: int = 0
    rejected: int = 0
    #: Incremental-session edit accounting (all zero outside incremental runs).
    edits: int = 0
    memo_reused: int = 0
    memo_dropped: int = 0
    memo_shifted: int = 0
    productions: tuple[ProductionProfile, ...] = ()
    coverage: tuple[AlternativeCoverage, ...] = ()
    warnings: tuple[str, ...] = field(default=())

    # -- derived totals --------------------------------------------------------

    @property
    def invocations(self) -> int:
        return sum(p.invocations for p in self.productions)

    @property
    def memo_hits(self) -> int:
        return sum(p.memo_hits for p in self.productions)

    @property
    def memo_misses(self) -> int:
        return sum(p.memo_misses for p in self.productions)

    @property
    def memo_hit_rate(self) -> float:
        looked_up = self.memo_hits + self.memo_misses
        return self.memo_hits / looked_up if looked_up else 0.0

    @property
    def backtracks(self) -> int:
        return sum(p.backtracks for p in self.productions)

    @property
    def wasted_chars(self) -> int:
        return sum(p.wasted_chars for p in self.productions)

    @property
    def fused_scans(self) -> int:
        return sum(p.fused_scans for p in self.productions)

    def hotspots(self, top: int = 20) -> list[ProductionProfile]:
        """Productions ranked by invocation count."""
        ranked = sorted(self.productions, key=lambda p: (-p.invocations, p.name))
        return ranked[:top]

    def coverage_ratio(self, *, succeeded: bool = True) -> float:
        if not self.coverage:
            return 1.0
        covered = sum(
            1 for alt in self.coverage
            if (alt.succeeded if succeeded else alt.entered) > 0
        )
        return covered / len(self.coverage)

    def uncovered_alternatives(self, *, succeeded: bool = True) -> list[AlternativeCoverage]:
        return [
            alt for alt in self.coverage
            if (alt.succeeded if succeeded else alt.entered) == 0
        ]

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "grammar": self.grammar,
            "backend": self.backend,
            "parses": self.parses,
            "chars": self.chars,
            "rejected": self.rejected,
            "totals": {
                "invocations": self.invocations,
                "memo_hits": self.memo_hits,
                "memo_misses": self.memo_misses,
                "memo_hit_rate": round(self.memo_hit_rate, 6),
                "backtracks": self.backtracks,
                "wasted_chars": self.wasted_chars,
                "fused_scans": self.fused_scans,
            },
            "incremental": {
                "edits": self.edits,
                "memo_reused": self.memo_reused,
                "memo_dropped": self.memo_dropped,
                "memo_shifted": self.memo_shifted,
            },
            "productions": [
                {
                    "name": p.name,
                    "invocations": p.invocations,
                    "memo_hits": p.memo_hits,
                    "memo_misses": p.memo_misses,
                    "successes": p.successes,
                    "failures": p.failures,
                    "backtracks": p.backtracks,
                    "wasted_chars": p.wasted_chars,
                    "farthest": p.farthest,
                    "fused_scans": p.fused_scans,
                }
                for p in self.productions
            ],
            "coverage": {
                "total": len(self.coverage),
                "entered": sum(1 for a in self.coverage if a.entered > 0),
                "succeeded": sum(1 for a in self.coverage if a.succeeded > 0),
                "ratio": round(self.coverage_ratio(), 6),
                "uncovered": [
                    {"production": a.production, "index": a.index, "label": a.label}
                    for a in self.uncovered_alternatives()
                ],
                "alternatives": [
                    {
                        "production": a.production,
                        "index": a.index,
                        "label": a.label,
                        "entered": a.entered,
                        "succeeded": a.succeeded,
                    }
                    for a in self.coverage
                ],
            },
            "warnings": list(self.warnings),
        }

    @classmethod
    def from_json(cls, data: dict) -> "ProfileReport":
        return cls(
            grammar=data["grammar"],
            backend=data["backend"],
            parses=data.get("parses", 0),
            chars=data.get("chars", 0),
            rejected=data.get("rejected", 0),
            edits=data.get("incremental", {}).get("edits", 0),
            memo_reused=data.get("incremental", {}).get("memo_reused", 0),
            memo_dropped=data.get("incremental", {}).get("memo_dropped", 0),
            memo_shifted=data.get("incremental", {}).get("memo_shifted", 0),
            productions=tuple(
                ProductionProfile(
                    name=p["name"],
                    invocations=p.get("invocations", 0),
                    memo_hits=p.get("memo_hits", 0),
                    memo_misses=p.get("memo_misses", 0),
                    successes=p.get("successes", 0),
                    failures=p.get("failures", 0),
                    backtracks=p.get("backtracks", 0),
                    wasted_chars=p.get("wasted_chars", 0),
                    farthest=p.get("farthest", 0),
                    fused_scans=p.get("fused_scans", 0),
                )
                for p in data.get("productions", ())
            ),
            coverage=tuple(
                AlternativeCoverage(
                    production=a["production"],
                    index=a["index"],
                    label=a.get("label"),
                    entered=a.get("entered", 0),
                    succeeded=a.get("succeeded", 0),
                )
                for a in data.get("coverage", {}).get("alternatives", ())
            ),
            warnings=tuple(data.get("warnings", ())),
        )


def build_report(
    profile: ParseProfile,
    grammar: str = "<grammar>",
    backend: str = "?",
    warnings: tuple[str, ...] = (),
) -> ProfileReport:
    """Snapshot a collector into a frozen, serializable report."""
    productions = tuple(
        ProductionProfile(
            name=name,
            invocations=profile.invocations.get(name, 0),
            memo_hits=profile.memo_hits.get(name, 0),
            memo_misses=profile.memo_misses.get(name, 0),
            successes=profile.successes.get(name, 0),
            failures=profile.failures.get(name, 0),
            backtracks=profile.backtracks.get(name, 0),
            wasted_chars=profile.wasted_chars.get(name, 0),
            farthest=profile.farthest.get(name, 0),
            fused_scans=profile.fused_scans.get(name, 0),
        )
        for name in profile.production_names()
    )
    matrix = profile.coverage
    coverage = tuple(
        AlternativeCoverage(
            production=key[0],
            index=key[1],
            label=matrix.label(key),
            entered=matrix.entered.get(key, 0),
            succeeded=matrix.succeeded.get(key, 0),
        )
        for key in matrix.keys()
    )
    return ProfileReport(
        grammar=grammar,
        backend=backend,
        parses=profile.parses,
        chars=profile.chars,
        rejected=profile.rejected,
        edits=profile.edits,
        memo_reused=profile.memo_reused,
        memo_dropped=profile.memo_dropped,
        memo_shifted=profile.memo_shifted,
        productions=productions,
        coverage=coverage,
        warnings=warnings,
    )


def format_report(report: ProfileReport, top: int = 20) -> str:
    """Human-readable rendering: summary, hotspot table, coverage gaps."""
    lines = [
        f"{report.grammar} [{report.backend}]: {report.parses} parses, "
        f"{report.chars} chars, {report.rejected} rejected",
        f"  invocations {report.invocations}  memo hit rate "
        f"{report.memo_hit_rate:.1%} ({report.memo_hits}/{report.memo_hits + report.memo_misses})  "
        f"backtracks {report.backtracks}  wasted chars {report.wasted_chars}  "
        f"fused scans {report.fused_scans}",
    ]
    if report.edits:
        lines.append(
            f"  incremental: {report.edits} edits  memo entries reused "
            f"{report.memo_reused}  invalidated {report.memo_dropped}  "
            f"shifted {report.memo_shifted}"
        )
    hotspots = report.hotspots(top)
    if hotspots:
        rows = [
            {
                "production": p.name,
                "invocations": p.invocations,
                "memo hits": p.memo_hits,
                "hit rate": f"{p.memo_hit_rate:.0%}",
                "backtracks": p.backtracks,
                "wasted": p.wasted_chars,
                "farthest": p.farthest,
                "fused": p.fused_scans,
            }
            for p in hotspots
        ]
        lines.append("")
        lines.append(_table(rows, ["production", "invocations", "memo hits",
                                   "hit rate", "backtracks", "wasted", "farthest",
                                   "fused"]))
    if report.coverage:
        uncovered = report.uncovered_alternatives()
        lines.append("")
        lines.append(
            f"  alternative coverage: {report.coverage_ratio():.1%} "
            f"({len(report.coverage) - len(uncovered)}/{len(report.coverage)} succeeded)"
        )
        for alt in uncovered[:40]:
            label = f" <{alt.label}>" if alt.label else ""
            entered = "entered, never succeeded" if alt.entered else "never entered"
            lines.append(f"    uncovered: {alt.production}/{alt.index + 1}{label} ({entered})")
        if len(uncovered) > 40:
            lines.append(f"    ... {len(uncovered) - 40} more")
    for warning in report.warnings:
        lines.append(f"  warning: {warning}")
    return "\n".join(lines)


def _table(rows: list[dict], columns: list[str]) -> str:
    widths = {c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    out = ["  " + "  ".join(c.ljust(widths[c]) for c in columns)]
    out.append("  " + "  ".join("-" * widths[c] for c in columns))
    for row in rows:
        out.append("  " + "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(out)
