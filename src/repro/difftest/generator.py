"""Grammar-aware sentence generation.

:class:`SentenceGenerator` walks a composed grammar's parsing expressions
and emits text by random derivation: literals print themselves, character
classes pick a member, choices pick an alternative, repetitions pick a
small count.  A derivation is steered toward termination by a precomputed
*minimum derivation cost* per production (the length of the shortest
sentence it can emit): once the recursion budget is spent, every choice
takes its cheapest alternative and every loop its minimum count, so
generation always terminates — including on (transformed or untransformed)
left-recursive grammars.

Derived sentences are *candidate* members of the language, not guaranteed
members: PEG ordered choice and syntactic predicates (``!e``/``&e``) can
make a context-free derivation unparseable (the classic example is an
identifier derivation that happens to spell a reserved word).  That is
fine for differential testing — every backend must agree on rejects too —
but the harness tracks the accepted ratio so a generator regression that
makes fuzzing vacuous is visible (``repro-fuzz --strict`` enforces a
floor).
"""

from __future__ import annotations

import random

from repro.analysis.first import FirstAnalysis
from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Sequence,
    Text,
    Voided,
)
from repro.peg.grammar import Grammar
from repro.peg.production import ValueKind

#: Alphabet used for ``_`` (any char) and for negated character classes.
_ANY_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    " _+-*/(){}[]<>=!\"';:,.\n\t"
)

#: Characters a whitespace/comment production may start with.  Used to spot
#: spacing-style productions (see ``SentenceGenerator._spacing_pad``).
#: ``(`` and ``-`` cover ML ``(*...*)`` and SQL ``--`` comment openers.
_SPACING_STARTERS = frozenset(" \t\r\n/#%;(-")

_INFINITY = float("inf")


def min_costs(grammar: Grammar) -> dict[str, float]:
    """Shortest-sentence length per production, by fixpoint iteration.

    ``inf`` means the production cannot derive any finite sentence (a
    well-formed grammar has none, but the generator stays total anyway).
    """
    costs: dict[str, float] = {p.name: _INFINITY for p in grammar.productions}
    changed = True
    while changed:
        changed = False
        for prod in grammar.productions:
            best = min(
                (_expr_cost(alt.expr, costs) for alt in prod.alternatives),
                default=_INFINITY,
            )
            if best < costs[prod.name]:
                costs[prod.name] = best
                changed = True
    return costs


def _expr_cost(expr: Expression, costs: dict[str, float]) -> float:
    if isinstance(expr, Literal):
        return len(expr.text)
    if isinstance(expr, (CharClass, AnyChar)):
        return 1
    if isinstance(expr, Nonterminal):
        return costs.get(expr.name, _INFINITY)
    if isinstance(expr, Sequence):
        return sum(_expr_cost(item, costs) for item in expr.items)
    if isinstance(expr, Choice):
        return min((_expr_cost(alt, costs) for alt in expr.alternatives), default=_INFINITY)
    if isinstance(expr, Repetition):
        inner = _expr_cost(expr.expr, costs)
        return inner * expr.min if expr.min else 0
    if isinstance(expr, (Option, And, Not, Action, Epsilon)):
        return 0
    if isinstance(expr, (Binding, Voided, Text)):
        return _expr_cost(expr.expr, costs)
    if isinstance(expr, CharSwitch):
        branches = [_expr_cost(e, costs) for _, e in expr.cases]
        branches.append(_expr_cost(expr.default, costs))
        return min(branches)
    if isinstance(expr, Fail):
        return _INFINITY
    raise TypeError(f"cannot cost {type(expr).__name__}")


class _Out(list):
    """Output buffer that tracks emitted length for the size budget."""

    __slots__ = ("length",)

    def __init__(self):
        super().__init__()
        self.length = 0

    def append(self, piece: str) -> None:
        super().append(piece)
        self.length += len(piece)


class SentenceGenerator:
    """Generate candidate sentences of a grammar by random derivation.

    ``max_depth`` bounds the number of *nested nonterminal applications*
    allowed to make free choices and ``max_length`` bounds the emitted text;
    past either, derivation collapses to the cheapest path.  (Depth alone is
    not enough: repetitions multiply breadth at every level, so a deep
    expression grammar can derive megabytes inside a modest depth budget.)
    The generator never raises on well-formed grammars and is deterministic
    for a given ``rng`` state.
    """

    def __init__(self, grammar: Grammar, rng: random.Random, max_depth: int = 24,
                 max_length: int = 400):
        grammar.validate()
        self.grammar = grammar
        self.rng = rng
        self.max_depth = max_depth
        self.max_length = max_length
        self._costs = min_costs(grammar)
        self._productions = grammar.as_dict()
        self._first = FirstAnalysis(grammar)
        self._spacing_pad = self._find_spacing_pads()

    def _find_spacing_pads(self) -> dict[str, str]:
        """Whitespace pad character for each spacing-style production.

        A production is spacing-style when it is void, nullable, and every
        sentence it derives starts with a whitespace or comment character.
        Such productions separate tokens; deriving them as epsilon glues the
        neighbouring tokens together (``classFoo``), which the *parser*
        — which re-tokenizes greedily — usually rejects.  Padding them with
        real whitespace most of the time keeps generated sentences valid
        without giving up epsilon-spacing coverage entirely.
        """
        pads: dict[str, str] = {}
        for production in self.grammar.productions:
            if production.kind is not ValueKind.VOID:
                continue
            if self._costs.get(production.name) != 0:
                continue
            fs = self._first.production_first(production.name)
            if fs.chars is None or not fs.chars:
                continue
            if not set(fs.chars) <= _SPACING_STARTERS:
                continue
            whitespace = [ch for ch in " \t\n" if ch in fs.chars]
            if whitespace:
                pads[production.name] = whitespace[0]
        return pads

    def generate(self, start: str | None = None) -> str:
        """One derived sentence from ``start`` (default: the grammar start)."""
        out = _Out()
        self._derive_production(start or self.grammar.start, 0, out)
        return "".join(out)

    def _budgeted(self, depth: int, out: "_Out") -> bool:
        return depth < self.max_depth and out.length < self.max_length

    # -- derivation -----------------------------------------------------------

    def _derive_production(self, name: str, depth: int, out: list[str],
                           forbidden: frozenset[str] = frozenset()) -> None:
        prod = self._productions[name]
        alternatives = prod.alternatives
        if not alternatives:
            return
        budgeted = self._budgeted(depth, out)
        pad = self._spacing_pad.get(name)
        if pad is not None and (forbidden or self.rng.random() < 0.75):
            # Forced when a pending ``!e`` guard is active: only real
            # whitespace can separate a guarded keyword from an identifier.
            out.append(pad)
            forbidden = frozenset()
        if budgeted:
            alt = self._pick([a.expr for a in alternatives], [a for a in alternatives])
        else:
            alt = min(alternatives, key=lambda a: _expr_cost(a.expr, self._costs))
        self._derive(alt.expr, depth + 1, out, forbidden)

    def _pick(self, exprs: list[Expression], carriers: list):
        """Weighted choice among alternatives that can terminate at all.

        Zero-cost alternatives (bare predicates, epsilon arms) are
        down-weighted: picking ``!_``-style end-of-input arms mid-sentence
        almost always derails the parse.
        """
        viable = [
            (carrier, cost)
            for carrier, expr in zip(carriers, exprs)
            if (cost := _expr_cost(expr, self._costs)) != _INFINITY
        ]
        if not viable:
            return self.rng.choice(carriers)
        weights = [0.3 if cost == 0 else 1.0 for _, cost in viable]
        return self.rng.choices([carrier for carrier, _ in viable], weights=weights)[0]

    def _derive(self, expr: Expression, depth: int, out: list[str],
                forbidden: frozenset[str] = frozenset()) -> None:
        budgeted = self._budgeted(depth, out)
        if isinstance(expr, Literal):
            self._emit_literal(expr.text, out)
        elif isinstance(expr, CharClass):
            out.append(self._class_char(expr, forbidden))
        elif isinstance(expr, AnyChar):
            out.append(self._any_char(forbidden))
        elif isinstance(expr, Nonterminal):
            self._derive_production(expr.name, depth, out, forbidden)
        elif isinstance(expr, Sequence):
            self._derive_items(expr.items, depth, out, forbidden)
        elif isinstance(expr, Choice):
            if budgeted:
                branch = self._pick(list(expr.alternatives), list(expr.alternatives))
            else:
                branch = min(expr.alternatives, key=lambda a: _expr_cost(a, self._costs))
            self._derive(branch, depth, out, forbidden)
        elif isinstance(expr, Repetition):
            if budgeted:
                count = expr.min + self._repeat_count()
            else:
                count = expr.min
            for _ in range(count):
                self._derive(expr.expr, depth, out, forbidden)
        elif isinstance(expr, Option):
            if budgeted and self.rng.random() < 0.5:
                self._derive(expr.expr, depth, out, forbidden)
        elif isinstance(expr, (Binding, Voided, Text)):
            self._derive(expr.expr, depth, out, forbidden)
        elif isinstance(expr, (And, Not, Action, Epsilon, Fail)):
            pass  # predicates and actions consume no input; emit nothing
        elif isinstance(expr, CharSwitch):
            branches = [e for _, e in expr.cases] + [expr.default]
            self._derive(self._pick(branches, branches), depth, out, forbidden)
        else:
            raise TypeError(f"cannot derive {type(expr).__name__}")

    def _derive_items(self, items, depth: int, out: list[str],
                      inherited: frozenset[str] = frozenset()) -> None:
        """Derive a sequence, steering around its syntactic predicates.

        ``!e`` guards constrain what the *next* terminal may start with
        (``( !"*/" _ )*`` must not emit ``*``); the guard's FIRST set is
        collected and the following terminal avoids it.  A trailing greedy
        repetition over a negated class (``"//" [^\n]*``) is terminated with
        one of its stop characters so the parser's greedy scan ends where
        the derivation did instead of swallowing the tokens that follow.
        """
        forbidden: set[str] = set(inherited)
        last = len(items) - 1
        for index, item in enumerate(items):
            if isinstance(item, Not):
                fs = self._first.first(item.expr)
                if fs.chars:
                    forbidden |= set(fs.chars)
                continue
            before = len(out)
            self._derive(item, depth, out, frozenset(forbidden))
            if len(out) > before:
                # A guard constrains only the first character emitted after
                # it; once something has been emitted, it no longer applies.
                forbidden.clear()
            if index == last:
                stop = _greedy_stop_char(item)
                if stop is not None:
                    out.append(stop)

    def _emit_literal(self, text: str, out: list[str]) -> None:
        # A keyword-like literal gets a separating space when it would glue
        # onto a preceding word (``voidx`` → ``void x``): the parser's
        # longest-match identifier scan cannot honour the derivation's
        # zero-width token boundary.
        if len(text) >= 2 and (text[0].isalpha() or text[0] == "_") and _is_word(text):
            for previous in reversed(out):
                if previous:
                    if _is_word_char(previous[-1]):
                        out.append(" ")
                    break
        out.append(text)

    def _repeat_count(self) -> int:
        """Small geometric-flavored extra repetition count (0 is common)."""
        roll = self.rng.random()
        if roll < 0.45:
            return 0
        if roll < 0.75:
            return 1
        if roll < 0.92:
            return 2
        return 3

    def _class_char(self, expr: CharClass, forbidden: frozenset[str] = frozenset()) -> str:
        if not expr.negated and not forbidden:
            lo, hi = self.rng.choice(expr.ranges)
            return chr(self.rng.randint(ord(lo), ord(hi)))
        # ``matches`` accounts for negation: pick any accepted char,
        # preferring one outside the enclosing ``!e`` guard's FIRST set.
        accepted = [ch for ch in _ANY_ALPHABET if expr.matches(ch)]
        if not expr.negated:
            accepted.extend(
                chr(code)
                for lo, hi in expr.ranges
                for code in range(ord(lo), ord(hi) + 1)
                if chr(code) not in accepted
            )
        preferred = [ch for ch in accepted if ch not in forbidden]
        if preferred:
            return self.rng.choice(preferred)
        if accepted:
            return self.rng.choice(accepted)
        # Degenerate class rejecting the whole alphabet: emit something
        # anyway (the sentence will simply be rejected by every backend).
        return self.rng.choice(_ANY_ALPHABET)

    def _any_char(self, forbidden: frozenset[str]) -> str:
        preferred = [ch for ch in _ANY_ALPHABET if ch not in forbidden]
        return self.rng.choice(preferred or _ANY_ALPHABET)


def _is_word_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def _is_word(text: str) -> bool:
    return all(_is_word_char(ch) for ch in text)


def _greedy_stop_char(expr: Expression) -> str | None:
    """Whitespace terminator for a trailing ``[^...]*``-style scan, if any.

    Only whitespace stop characters are used: they end line comments
    (``[^\n]*`` stops at the newline, which surrounding spacing then
    consumes) without risking a stray printable character the grammar
    cannot absorb.
    """
    while isinstance(expr, (Binding, Voided, Text)):
        expr = expr.expr
    if not isinstance(expr, Repetition):
        return None
    item = expr.expr
    while isinstance(item, (Binding, Voided, Text)):
        item = item.expr
    if isinstance(item, CharClass) and item.negated:
        for ch in "\n\t ":
            if not item.matches(ch):
                return ch
    return None
