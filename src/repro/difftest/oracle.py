"""The cross-backend differential oracle.

One :class:`DifferentialOracle` holds every parser the library can derive
from a single grammar:

- the packrat interpreter over the fully optimized grammar, under *both*
  memo-table organizations (:class:`~repro.runtime.memo.ChunkedMemoTable`
  and :class:`~repro.runtime.memo.DictMemoTable`);
- a packrat interpreter over the *unoptimized* pipeline output — the
  closest thing to textbook PEG semantics, and the reference backend;
- the closure-compiled parser (:class:`repro.interp.closures.ClosureParser`)
  over the fully optimized grammar;
- the generated parser with all optimizations on, and one generated parser
  per single-optimization-off :meth:`~repro.optim.Options.single_off`
  variant (the paper's ``-Ono-…`` configurations);
- the hand-written recursive-descent baseline, where one is registered in
  :data:`repro.baselines.BASELINES`;
- optionally the naive backtracking interpreter (off by default: it is
  worst-case exponential, which is a property of the backend, not a bug).

:meth:`check` parses one input with every backend and reports
*disagreements*: mismatched accept/reject verdicts, structurally unequal
ASTs on accepts, mismatched farthest-failure offsets on rejects (for
backends with farthest-failure semantics — hand-written baselines report
their own positions and are excluded from offset comparison), and any
non-:class:`~repro.errors.ParseError` crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines import BASELINES
from repro.codegen import generate_parser_source, load_parser
from repro.errors import ParseDepthError, ParseError
from repro.interp import BacktrackInterpreter, PackratInterpreter
from repro.interp.closures import ClosureParser
from repro.modules import compose
from repro.meta import ModuleLoader
from repro.optim import Options, prepare
from repro.peg.grammar import Grammar
from repro.runtime.node import structural_diff


@dataclass(frozen=True)
class Outcome:
    """What one backend did with one input."""

    accepted: bool
    value: Any = None
    offset: int = -1
    expected: tuple[str, ...] = ()
    crash: str | None = None

    @property
    def verdict(self) -> str:
        if self.crash is not None:
            return f"crash({self.crash})"
        return "accept" if self.accepted else f"reject@{self.offset}"


@dataclass(frozen=True)
class Backend:
    """A named parse function plus its comparison contract."""

    name: str
    parse: Callable[[str], Any]
    #: Failure offsets follow farthest-failure semantics and must match.
    exact_errors: bool = True

    def run(self, text: str) -> Outcome:
        try:
            value = self.parse(text)
        except ParseDepthError:
            # Deep nesting exhausts each backend's stack at a *different*
            # input depth (stack spend per nesting level is a backend
            # property), so the structured depth diagnostic is a resource
            # limit for comparison purposes, not a semantic verdict.
            return Outcome(accepted=False, crash="RecursionError")
        except ParseError as error:
            return Outcome(accepted=False, offset=error.offset, expected=error.expected)
        except RecursionError:
            # Backstop for recursion escaping outside a parse entry point
            # (e.g. a hand-written baseline): same resource-limit treatment.
            return Outcome(accepted=False, crash="RecursionError")
        except Exception as error:  # noqa: BLE001 - crashes are findings
            return Outcome(accepted=False, crash=f"{type(error).__name__}: {error}")
        return Outcome(accepted=True, value=value)


@dataclass(frozen=True)
class Disagreement:
    """Two backends disagreed on one input."""

    text: str
    reference: str
    backend: str
    reference_outcome: Outcome
    backend_outcome: Outcome
    detail: str

    def describe(self) -> str:
        return (
            f"input {self.text!r}: {self.reference} -> "
            f"{self.reference_outcome.verdict}, {self.backend} -> "
            f"{self.backend_outcome.verdict} ({self.detail})"
        )


class DifferentialOracle:
    """All backends derivable from one grammar, plus the comparison logic."""

    def __init__(
        self,
        grammar: Grammar,
        *,
        start: str | None = None,
        baseline: type | None = None,
        backtracking: bool = False,
        variants: list[tuple[str, Options]] | None = None,
    ):
        if start is not None:
            grammar = grammar.with_start(start)
        self.grammar = grammar
        plain = prepare(grammar, Options.none(), check=False)
        full = prepare(grammar, Options.all(), check=False)
        self.backends: list[Backend] = []

        # Reference first: packrat interpretation of the unoptimized grammar.
        self._add_interpreter("interp-plain", plain.grammar, chunked=False)
        self._add_interpreter("interp-chunked", full.grammar, chunked=True)
        self._add_interpreter("interp-dict", full.grammar, chunked=False)
        self._add_closures("closures", full.grammar)
        if backtracking:
            naive = BacktrackInterpreter(plain.grammar)
            self.backends.append(Backend("interp-backtrack", naive.parse))

        self._add_generated("codegen-all", full)
        for label, options in variants if variants is not None else Options.single_off():
            self._add_generated(f"codegen-{label}", prepare(grammar, options, check=False))

        if baseline is not None:
            self.backends.append(
                Backend("baseline", lambda text: baseline(text).parse(), exact_errors=False)
            )

    # -- construction ---------------------------------------------------------

    @classmethod
    def for_root(
        cls,
        root: str,
        *,
        paths: list[str] | None = None,
        loader: ModuleLoader | None = None,
        start: str | None = None,
        **kwargs: Any,
    ) -> "DifferentialOracle":
        """Build the oracle for a named grammar module (e.g. ``jay.Jay``),
        attaching the hand-written baseline automatically when one exists."""
        if loader is None:
            loader = ModuleLoader(paths=paths)
        grammar = compose(root, loader, start=start)
        kwargs.setdefault("baseline", BASELINES.get(root))
        return cls(grammar, **kwargs)

    def _add_interpreter(self, name: str, grammar: Grammar, chunked: bool) -> None:
        interp = PackratInterpreter(grammar, chunked=chunked)
        self.backends.append(Backend(name, interp.parse))

    def _add_closures(self, name: str, grammar: Grammar) -> None:
        closures = ClosureParser(grammar, chunked=True)
        self.backends.append(Backend(name, closures.parse))

    def _add_generated(self, name: str, prepared) -> None:
        parser_class = load_parser(generate_parser_source(prepared))
        self.backends.append(Backend(name, lambda text: parser_class(text).parse()))

    def add_backend(self, backend: Backend) -> None:
        """Attach an extra backend (used by tests to inject broken passes)."""
        self.backends.append(backend)

    @property
    def reference(self) -> Backend:
        return self.backends[0]

    # -- checking -------------------------------------------------------------

    def run_all(self, text: str) -> dict[str, Outcome]:
        """Every backend's outcome on one input."""
        return {backend.name: backend.run(text) for backend in self.backends}

    def check(self, text: str) -> list[Disagreement]:
        """All pairwise disagreements of any backend with the reference."""
        reference = self.reference
        ref_outcome = reference.run(text)
        disagreements: list[Disagreement] = []
        for backend in self.backends[1:]:
            outcome = backend.run(text)
            detail = self._compare(ref_outcome, outcome, backend)
            if detail is not None:
                disagreements.append(
                    Disagreement(text, reference.name, backend.name, ref_outcome, outcome, detail)
                )
        return disagreements

    def explain(self, text: str) -> str | None:
        """The first disagreement on ``text``, described — or None.

        This is the single-call form used by generated regression tests.
        """
        disagreements = self.check(text)
        return disagreements[0].describe() if disagreements else None

    def _compare(self, ref: Outcome, other: Outcome, backend: Backend) -> str | None:
        if ref.crash is not None:
            return None  # the reference itself hit a resource limit; skip
        if other.crash is not None:
            if other.crash == "RecursionError":
                return None  # backend-specific stack limit, not semantics
            return f"backend crashed: {other.crash}"
        if ref.accepted != other.accepted:
            return "accept/reject verdicts differ"
        if ref.accepted:
            diff = structural_diff(ref.value, other.value)
            if diff is not None:
                return f"ASTs differ at {diff}"
            return None
        if backend.exact_errors and ref.offset != other.offset:
            return f"farthest-failure offsets differ: {ref.offset} != {other.offset}"
        return None
