"""The cross-backend differential oracle.

One :class:`DifferentialOracle` holds every parser the library can derive
from a single grammar:

The core set is declared once, in :data:`BACKEND_TABLE` — one row per
backend naming how it is built from the oracle's prepared grammars — so a
new backend is one table row, not a constructor edit per call site:

- the packrat interpreter over the fully optimized grammar, under *both*
  memo-table organizations (:class:`~repro.runtime.memo.ChunkedMemoTable`
  and :class:`~repro.runtime.memo.DictMemoTable`);
- a packrat interpreter over the *unoptimized* pipeline output — the
  closest thing to textbook PEG semantics, and the reference backend;
- the closure-compiled parser (:class:`repro.interp.closures.ClosureParser`)
  over the fully optimized grammar;
- the generated parser with all optimizations on;
- the parsing machine (:mod:`repro.vm`) over the same fully optimized,
  chunked-memo configuration.

On top of the table the constructor adds the parameterized members: one
generated parser per single-optimization-off
:meth:`~repro.optim.Options.single_off` variant (the paper's ``-Ono-…``
configurations), the hand-written recursive-descent baseline where one is
registered in :data:`repro.baselines.BASELINES`, and optionally the naive
backtracking interpreter (off by default: it is worst-case exponential,
which is a property of the backend, not a bug).

:meth:`check` parses one input with every backend and reports
*disagreements*: mismatched accept/reject verdicts, structurally unequal
ASTs on accepts, mismatched farthest-failure offsets or expected sets on
rejects (for backends with farthest-failure semantics — hand-written
baselines report their own positions and are excluded from error
comparison), and any non-:class:`~repro.errors.ParseError` crash.

:class:`EditOracle` is the incremental twin: it replays an *edit script*
through warm :class:`~repro.incremental.IncrementalSession` instances
(memo surgery + reuse) and demands that after every edit the warm result
is bit-identical — verdict, AST, farthest-failure offset, expected set —
to a cold parse of the same buffer by the same incremental program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines import BASELINES
from repro.codegen import generate_parser_source, load_parser
from repro.errors import ParseDepthError, ParseError
from repro.interp import BacktrackInterpreter, PackratInterpreter
from repro.interp.closures import ClosureParser
from repro.modules import compose
from repro.meta import ModuleLoader
from repro.optim import Options, PreparedGrammar, prepare
from repro.peg.grammar import Grammar
from repro.runtime.node import structural_diff


@dataclass(frozen=True)
class Outcome:
    """What one backend did with one input."""

    accepted: bool
    value: Any = None
    offset: int = -1
    expected: tuple[str, ...] = ()
    crash: str | None = None

    @property
    def verdict(self) -> str:
        if self.crash is not None:
            return f"crash({self.crash})"
        return "accept" if self.accepted else f"reject@{self.offset}"


@dataclass(frozen=True)
class Backend:
    """A named parse function plus its comparison contract."""

    name: str
    parse: Callable[[str], Any]
    #: Failure offsets follow farthest-failure semantics and must match.
    exact_errors: bool = True
    #: Backends sharing a group label run the *same* prepared grammar and
    #: must report identical expected sets on rejects.  (Across different
    #: preparations the sets legitimately differ — fusion rewrites the
    #: expected-message vocabulary — so only offsets are compared there.)
    expected_group: str | None = None

    def run(self, text: str) -> Outcome:
        try:
            value = self.parse(text)
        except ParseDepthError:
            # Deep nesting exhausts each backend's stack at a *different*
            # input depth (stack spend per nesting level is a backend
            # property), so the structured depth diagnostic is a resource
            # limit for comparison purposes, not a semantic verdict.
            return Outcome(accepted=False, crash="RecursionError")
        except ParseError as error:
            return Outcome(accepted=False, offset=error.offset, expected=error.expected)
        except RecursionError:
            # Backstop for recursion escaping outside a parse entry point
            # (e.g. a hand-written baseline): same resource-limit treatment.
            return Outcome(accepted=False, crash="RecursionError")
        except Exception as error:  # noqa: BLE001 - crashes are findings
            return Outcome(accepted=False, crash=f"{type(error).__name__}: {error}")
        return Outcome(accepted=True, value=value)


@dataclass(frozen=True)
class Disagreement:
    """Two backends disagreed on one input."""

    text: str
    reference: str
    backend: str
    reference_outcome: Outcome
    backend_outcome: Outcome
    detail: str

    def describe(self) -> str:
        return (
            f"input {self.text!r}: {self.reference} -> "
            f"{self.reference_outcome.verdict}, {self.backend} -> "
            f"{self.backend_outcome.verdict} ({self.detail})"
        )


@dataclass(frozen=True)
class OracleGrammars:
    """The grammar forms every backend row is built from."""

    grammar: Grammar
    #: ``Options.none()`` pipeline output — textbook PEG semantics.
    plain: PreparedGrammar
    #: ``Options.all()`` pipeline output — what production backends run.
    full: PreparedGrammar


@dataclass(frozen=True)
class BackendDef:
    """One row of the declarative backend table."""

    name: str
    build: Callable[[OracleGrammars], Callable[[str], Any]]
    exact_errors: bool = True
    expected_group: str | None = None

    def instantiate(self, grammars: OracleGrammars) -> Backend:
        return Backend(
            self.name,
            self.build(grammars),
            exact_errors=self.exact_errors,
            expected_group=self.expected_group,
        )


def _build_codegen(prepared: PreparedGrammar) -> Callable[[str], Any]:
    parser_class = load_parser(generate_parser_source(prepared))
    return lambda text: parser_class(text).parse()


def _build_vm(grammars: OracleGrammars) -> Callable[[str], Any]:
    from repro.vm import VMParser, compile_program

    program = compile_program(grammars.full)
    return lambda text: VMParser(program, text).parse()


#: The core backends, declaratively.  Order matters: the first row is the
#: comparison reference.  Adding a backend here registers it with every
#: oracle construction site (``repro-fuzz``, the fuzz matrix, regression
#: tests) at once.
BACKEND_TABLE: tuple[BackendDef, ...] = (
    # Reference first: packrat interpretation of the unoptimized grammar.
    BackendDef("interp-plain", lambda g: PackratInterpreter(g.plain.grammar, chunked=False).parse),
    # Two expected-set vocabularies exist over the optimized grammar: the
    # interpreter family reports raw leaf messages; codegen and the VM
    # report precomputed guard/first-set messages ("one of …").  Expected
    # sets are compared within each vocabulary, offsets across all.
    BackendDef(
        "interp-chunked",
        lambda g: PackratInterpreter(g.full.grammar, chunked=True).parse,
        expected_group="full-interp",
    ),
    BackendDef(
        "interp-dict",
        lambda g: PackratInterpreter(g.full.grammar, chunked=False).parse,
        expected_group="full-interp",
    ),
    BackendDef(
        "closures",
        lambda g: ClosureParser(g.full.grammar, chunked=True).parse,
        expected_group="full-interp",
    ),
    BackendDef("codegen-all", lambda g: _build_codegen(g.full), expected_group="full-codegen"),
    BackendDef("vm", _build_vm, expected_group="full-codegen"),
)


def _wanted(name: str, requested: tuple[str, ...] | None) -> bool:
    """Does a ``backends=`` subset select this backend name?

    A token selects exact matches and prefix families: ``codegen`` keeps
    ``codegen-all`` and every ``codegen-no-…`` variant; ``interp`` keeps all
    interpreters.
    """
    if requested is None:
        return True
    return any(name == token or name.startswith(token + "-") for token in requested)


def _wanted_any(token: str, known: set[str]) -> bool:
    """Does a selector token match at least one known backend name?"""
    return any(name == token or name.startswith(token + "-") for name in known)


class DifferentialOracle:
    """All backends derivable from one grammar, plus the comparison logic."""

    def __init__(
        self,
        grammar: Grammar,
        *,
        start: str | None = None,
        baseline: type | None = None,
        backtracking: bool = False,
        variants: list[tuple[str, Options]] | None = None,
        backends: list[str] | tuple[str, ...] | None = None,
    ):
        if start is not None:
            grammar = grammar.with_start(start)
        self.grammar = grammar
        plain = prepare(grammar, Options.none(), check=False)
        full = prepare(grammar, Options.all(), check=False)
        self.grammars = OracleGrammars(grammar=grammar, plain=plain, full=full)
        requested = tuple(backends) if backends is not None else None
        if requested is not None:
            known = {d.name for d in BACKEND_TABLE} | {"interp-backtrack", "codegen", "baseline"}
            known |= {f"codegen-{label}" for label, _ in Options.single_off()}
            unknown = [t for t in requested if not _wanted_any(t, known)]
            if unknown:
                raise ValueError(
                    f"unknown backend selector(s) {unknown!r}; known: {sorted(known)}"
                )
        self.backends: list[Backend] = []

        for index, definition in enumerate(BACKEND_TABLE):
            # The reference row is always present: every other backend is
            # compared against it, so a subset without it is meaningless.
            if index == 0 or _wanted(definition.name, requested):
                self.backends.append(definition.instantiate(self.grammars))

        if backtracking and _wanted("interp-backtrack", requested):
            naive = BacktrackInterpreter(plain.grammar)
            self.backends.append(Backend("interp-backtrack", naive.parse))

        for label, options in variants if variants is not None else Options.single_off():
            name = f"codegen-{label}"
            if _wanted(name, requested):
                self.backends.append(
                    Backend(name, _build_codegen(prepare(grammar, options, check=False)))
                )

        if baseline is not None and _wanted("baseline", requested):
            self.backends.append(
                Backend("baseline", lambda text: baseline(text).parse(), exact_errors=False)
            )

    # -- construction ---------------------------------------------------------

    @classmethod
    def for_root(
        cls,
        root: str,
        *,
        paths: list[str] | None = None,
        loader: ModuleLoader | None = None,
        start: str | None = None,
        **kwargs: Any,
    ) -> "DifferentialOracle":
        """Build the oracle for a named grammar module (e.g. ``jay.Jay``),
        attaching the hand-written baseline automatically when one exists."""
        if loader is None:
            loader = ModuleLoader(paths=paths)
        grammar = compose(root, loader, start=start)
        kwargs.setdefault("baseline", BASELINES.get(root))
        return cls(grammar, **kwargs)

    def add_backend(self, backend: Backend) -> None:
        """Attach an extra backend (used by tests to inject broken passes)."""
        self.backends.append(backend)

    @property
    def reference(self) -> Backend:
        return self.backends[0]

    # -- checking -------------------------------------------------------------

    def run_all(self, text: str) -> dict[str, Outcome]:
        """Every backend's outcome on one input."""
        return {backend.name: backend.run(text) for backend in self.backends}

    def check(self, text: str) -> list[Disagreement]:
        """All pairwise disagreements of any backend with the reference,
        plus expected-set disagreements within each same-grammar group."""
        reference = self.reference
        ref_outcome = reference.run(text)
        disagreements: list[Disagreement] = []
        group_leads: dict[str, tuple[Backend, Outcome]] = {}
        for backend in self.backends:
            outcome = ref_outcome if backend is reference else backend.run(text)
            if backend is not reference:
                detail = self._compare(ref_outcome, outcome, backend)
                if detail is not None:
                    disagreements.append(
                        Disagreement(
                            text, reference.name, backend.name, ref_outcome, outcome, detail
                        )
                    )
            group = backend.expected_group
            if group is None or not backend.exact_errors or outcome.crash is not None:
                continue
            lead = group_leads.get(group)
            if lead is None:
                group_leads[group] = (backend, outcome)
                continue
            lead_backend, lead_outcome = lead
            if (
                not lead_outcome.accepted
                and not outcome.accepted
                and set(lead_outcome.expected) != set(outcome.expected)
            ):
                disagreements.append(
                    Disagreement(
                        text,
                        lead_backend.name,
                        backend.name,
                        lead_outcome,
                        outcome,
                        "expected sets differ: "
                        f"{sorted(set(lead_outcome.expected))} != "
                        f"{sorted(set(outcome.expected))}",
                    )
                )
        return disagreements

    def explain(self, text: str) -> str | None:
        """The first disagreement on ``text``, described — or None.

        This is the single-call form used by generated regression tests.
        """
        disagreements = self.check(text)
        return disagreements[0].describe() if disagreements else None

    def _compare(self, ref: Outcome, other: Outcome, backend: Backend) -> str | None:
        if ref.crash is not None:
            return None  # the reference itself hit a resource limit; skip
        if other.crash is not None:
            if other.crash == "RecursionError":
                return None  # backend-specific stack limit, not semantics
            return f"backend crashed: {other.crash}"
        if ref.accepted != other.accepted:
            return "accept/reject verdicts differ"
        if ref.accepted:
            diff = structural_diff(ref.value, other.value)
            if diff is not None:
                return f"ASTs differ at {diff}"
            return None
        if backend.exact_errors and ref.offset != other.offset:
            return f"farthest-failure offsets differ: {ref.offset} != {other.offset}"
        return None


#: The incremental backends :class:`EditOracle` cross-checks.
INCREMENTAL_BACKENDS = ("vm", "closures")


def _as_edit(edit: Any) -> tuple[int, int, str]:
    """Normalize an edit to ``(offset, removed, inserted)`` — accepts plain
    tuples and :class:`repro.workloads.pyedits.Edit` objects alike."""
    if isinstance(edit, (tuple, list)):
        offset, removed, inserted = edit
        return int(offset), int(removed), str(inserted)
    return int(edit.offset), int(edit.removed), str(edit.inserted)


class EditOracle:
    """The differential oracle for incremental reparsing.

    For each incremental backend (:data:`INCREMENTAL_BACKENDS`) the oracle
    keeps a *warm* :class:`~repro.incremental.IncrementalSession` that
    applies the script's edits one at a time (memo surgery + reuse) and a
    *cold* session of the same flavor that is re-seeded from scratch with
    :meth:`~repro.incremental.IncrementalSession.set_text` at every step.

    Comparison semantics follow the preparation boundary documented on
    :data:`BACKEND_TABLE`: warm vs cold of the **same** incremental program
    must agree *bit-identically* — verdict, structural AST, farthest-failure
    offset, and expected **set** (the incremental program is its own
    preparation: unfused regexes and memoize-everything give it its own
    expected-set vocabulary, so it is only error-comparable to itself).
    Across the two incremental backends only verdict, AST, and offset are
    compared.  A warm reject that the failure-fidelity cold rerun turns
    into an accept (``last_parse_recovered``) is reported as a disagreement
    in its own right: it means a memo entry survived an edit it depended on.
    """

    def __init__(
        self,
        grammar: Grammar,
        *,
        start: str | None = None,
        backends: tuple[str, ...] | list[str] | None = None,
    ):
        from repro.api import compile_grammar

        if start is not None:
            grammar = grammar.with_start(start)
        self.grammar = grammar
        self.language = compile_grammar(grammar, cache=False)
        self.backends = tuple(backends) if backends else INCREMENTAL_BACKENDS
        self._warm = {b: self.language.incremental(backend=b) for b in self.backends}
        self._cold = {b: self.language.incremental(backend=b) for b in self.backends}

    @classmethod
    def for_root(
        cls,
        root: str,
        *,
        paths: list[str] | None = None,
        loader: ModuleLoader | None = None,
        start: str | None = None,
        **kwargs: Any,
    ) -> "EditOracle":
        """Build the oracle for a named grammar module (e.g. ``jay.Jay``)."""
        if loader is None:
            loader = ModuleLoader(paths=paths)
        return cls(compose(root, loader, start=start), **kwargs)

    @staticmethod
    def _outcome(session: Any) -> Outcome:
        try:
            value = session.parse()
        except ParseDepthError:
            return Outcome(accepted=False, crash="RecursionError")
        except ParseError as error:
            return Outcome(accepted=False, offset=error.offset, expected=error.expected)
        except RecursionError:
            return Outcome(accepted=False, crash="RecursionError")
        except Exception as error:  # noqa: BLE001 - crashes are findings
            return Outcome(accepted=False, crash=f"{type(error).__name__}: {error}")
        return Outcome(accepted=True, value=value)

    def check_script(self, text: str, edits: list[Any]) -> list[Disagreement]:
        """All disagreements over one edit script applied to ``text``.

        Edits are ``(offset, removed, inserted)`` with offsets relative to
        the buffer *after* all previous edits (the
        :func:`repro.workloads.pyedits.edit_script` convention).  An edit
        whose offsets fall outside the evolving buffer raises ``ValueError``
        — shrinkers treat such mangled scripts as uninteresting.
        """
        steps = [_as_edit(edit) for edit in edits]
        # Validate the whole script up front so a malformed candidate (from
        # shrinking) fails before any session state is touched.
        current = text
        for offset, removed, inserted in steps:
            if not 0 <= offset <= len(current) or removed < 0 or offset + removed > len(current):
                raise ValueError(
                    f"edit ({offset}, {removed}, {inserted!r}) outside buffer "
                    f"of length {len(current)}"
                )
            current = current[:offset] + inserted + current[offset + removed:]

        disagreements: list[Disagreement] = []
        for name in self.backends:
            self._warm[name].set_text(text)
            self._outcome(self._warm[name])  # step 0: populate the memo
        current = text
        for step, (offset, removed, inserted) in enumerate(steps, start=1):
            current = current[:offset] + inserted + current[offset + removed:]
            warm_outcomes: dict[str, Outcome] = {}
            for name in self.backends:
                warm = self._warm[name]
                warm.apply_edit(offset, removed, inserted)
                outcome = self._outcome(warm)
                warm_outcomes[name] = outcome
                if warm.last_parse_recovered:
                    disagreements.append(
                        Disagreement(
                            current, f"cold-{name}", f"warm-{name}",
                            outcome, outcome,
                            f"step {step}: warm reject recovered by cold rerun "
                            "(a memo entry survived an edit it depended on)",
                        )
                    )
                cold = self._cold[name]
                cold.set_text(current)
                cold_outcome = self._outcome(cold)
                detail = self._compare_step(cold_outcome, outcome, same_program=True)
                if detail is not None:
                    disagreements.append(
                        Disagreement(
                            current, f"cold-{name}", f"warm-{name}",
                            cold_outcome, outcome, f"step {step}: {detail}",
                        )
                    )
            if len(self.backends) >= 2:
                lead, *rest = self.backends
                for name in rest:
                    detail = self._compare_step(
                        warm_outcomes[lead], warm_outcomes[name], same_program=False
                    )
                    if detail is not None:
                        disagreements.append(
                            Disagreement(
                                current, f"warm-{lead}", f"warm-{name}",
                                warm_outcomes[lead], warm_outcomes[name],
                                f"step {step}: {detail}",
                            )
                        )
        return disagreements

    def explain_script(self, text: str, edits: list[Any]) -> str | None:
        """The first disagreement on one script, described — or None.

        This is the single-call form used by generated regression tests."""
        disagreements = self.check_script(text, edits)
        return disagreements[0].describe() if disagreements else None

    @staticmethod
    def _compare_step(ref: Outcome, other: Outcome, *, same_program: bool) -> str | None:
        if ref.crash is not None or other.crash is not None:
            # Warm memo hits flatten recursion a cold parse performs, so
            # depth limits can legitimately fire on one side only.
            if ref.crash == "RecursionError" or other.crash == "RecursionError":
                return None
            if ref.crash != other.crash:
                return f"crashes differ: {ref.crash} != {other.crash}"
            return None
        if ref.accepted != other.accepted:
            return "accept/reject verdicts differ"
        if ref.accepted:
            diff = structural_diff(ref.value, other.value)
            if diff is not None:
                return f"ASTs differ at {diff}"
            return None
        if ref.offset != other.offset:
            return f"farthest-failure offsets differ: {ref.offset} != {other.offset}"
        if same_program and set(ref.expected) != set(other.expected):
            return (
                "expected sets differ: "
                f"{sorted(set(ref.expected))} != {sorted(set(other.expected))}"
            )
        return None
