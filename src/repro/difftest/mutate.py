"""Input mutation for error-path differential testing.

Valid sentences exercise the accept path; *corrupted* sentences exercise
failure tracking — exactly where the paper's ``errors`` optimization (and
every backend's farthest-failure bookkeeping) must agree.  :func:`mutate`
applies small random edits: deleting a span, inserting or replacing a
character, transposing neighbors, duplicating a span, or truncating the
tail.  Inserted characters are drawn from the input's own alphabet plus a
small universal set, so mutants stay near the language boundary instead of
degenerating into line noise.
"""

from __future__ import annotations

import random

_UNIVERSAL = "abz09 ()[]{}\"';,+*"


def mutate(text: str, rng: random.Random, edits: int = 1) -> str:
    """Apply ``edits`` random edits to ``text`` (never returns ``text`` itself
    unless every edit happens to be an identity, which is vanishingly rare
    for non-empty inputs)."""
    result = text
    for _ in range(max(1, edits)):
        result = _one_edit(result, rng)
    return result


def _one_edit(text: str, rng: random.Random) -> str:
    if not text:
        return rng.choice(_UNIVERSAL)
    alphabet = _UNIVERSAL + text
    op = rng.randrange(6)
    pos = rng.randrange(len(text))
    if op == 0:  # delete a short span
        end = min(len(text), pos + rng.randint(1, 3))
        return text[:pos] + text[end:]
    if op == 1:  # insert a character
        return text[:pos] + rng.choice(alphabet) + text[pos:]
    if op == 2:  # replace a character
        return text[:pos] + rng.choice(alphabet) + text[pos + 1 :]
    if op == 3:  # transpose neighbors
        if pos + 1 >= len(text):
            return text[:-1]
        return text[:pos] + text[pos + 1] + text[pos] + text[pos + 2 :]
    if op == 4:  # duplicate a short span
        end = min(len(text), pos + rng.randint(1, 3))
        return text[:pos] + text[pos:end] + text[pos:]
    # truncate the tail (always leaves a proper prefix)
    return text[:pos]
