"""``repro-fuzz`` — seeded differential fuzzing across parser backends.

Usage::

    repro-fuzz                      # calc, json, jay; 200+200 inputs each
    repro-fuzz calc json jay -n 500 --mutated 500 --seed 42 --strict
    repro-fuzz ml.ML --start Program --path grammars/
    repro-fuzz jay --backtracking   # include the exponential naive backend
    repro-fuzz jay --backends vm,codegen-all   # fuzz a backend subset
    repro-fuzz jay --edits 6        # incremental edit scripts, warm vs cold

Grammars may be short keys (``calc``, ``json``, ``jay``, …, resolved via
:data:`repro.grammars.ROOTS`) or qualified module names.  Every run is
fully determined by ``--seed``; a reported counterexample is printed both
raw and shrunk, together with a ready-to-paste regression test.

Exit status: 0 when every backend agreed on every input; 1 on any
disagreement; 2 under ``--strict`` when the sentence generator's accepted
ratio fell below ``--min-valid`` (a vacuity guard: fuzzing that never
reaches the accept path proves nothing about AST agreement).
"""

from __future__ import annotations

import argparse
import sys

from repro.difftest.runner import fuzz_edits, fuzz_grammar
from repro.errors import ReproError
from repro.grammars import ROOTS

_DEFAULT_GRAMMARS = ["calc", "json", "jay"]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential fuzzing: all parser backends must agree on every input.",
    )
    parser.add_argument(
        "grammars",
        nargs="*",
        default=_DEFAULT_GRAMMARS,
        help="grammar keys (calc, json, jay, xc, ml, sql) or qualified roots "
        "(default: calc json jay)",
    )
    parser.add_argument(
        "--path", action="append", dest="paths", metavar="DIR",
        help="additional directory to search for .mg modules (repeatable)",
    )
    parser.add_argument("--seed", type=int, default=0, help="rng seed (default 0)")
    parser.add_argument(
        "-n", "--generated", type=int, default=200, metavar="N",
        help="grammar-derived sentences per grammar (default 200)",
    )
    parser.add_argument(
        "--mutated", type=int, default=200, metavar="N",
        help="corrupted sentences per grammar (default 200)",
    )
    parser.add_argument(
        "--max-depth", type=int, default=24,
        help="derivation depth budget for the sentence generator",
    )
    parser.add_argument("--start", help="override the start production")
    parser.add_argument(
        "--backtracking", action="store_true",
        help="also run the naive backtracking interpreter (can be exponential)",
    )
    parser.add_argument(
        "--backends", metavar="NAME[,NAME…]",
        help="restrict to a backend subset, comma-separated (e.g. vm,closures,"
        "codegen-all; 'codegen' selects every codegen variant; the reference "
        "interpreter is always kept)",
    )
    parser.add_argument(
        "--edits", type=int, default=None, metavar="N",
        help="edit-script mode: replay N-edit seeded scripts per generated "
        "sentence through incremental sessions; after every edit the warm "
        "reparse must be bit-identical to a cold parse (-n counts scripts; "
        "see docs/incremental.md)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="additionally fail when the generator's accepted ratio is below --min-valid",
    )
    parser.add_argument(
        "--min-valid", type=float, default=0.6, metavar="RATIO",
        help="minimum accepted ratio of generated sentences under --strict (default 0.6)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    backends = None
    if args.backends:
        backends = [token.strip() for token in args.backends.split(",") if token.strip()]
    failures = 0
    vacuous = 0
    for name in args.grammars:
        root = ROOTS.get(name, name)
        if args.edits is not None:
            try:
                report = fuzz_edits(
                    root,
                    seed=args.seed,
                    scripts=args.generated,
                    edits_per_script=args.edits,
                    max_depth=args.max_depth,
                    start=args.start,
                    paths=args.paths,
                )
            except (ReproError, ValueError) as exc:
                print(f"error: {root}: {exc}", file=sys.stderr)
                return 1
            print(report.summary())
            for example in report.counterexamples:
                failures += 1
                print(f"\n--- edit counterexample ({root}) ---")
                print(f"text: {example.text!r}")
                print(f"original script ({len(example.original)} edits): {example.original!r}")
                print(f"shrunk script   ({len(example.shrunk)} edits): {example.shrunk!r}")
                print(example.disagreement.describe())
                print("regression test:\n")
                print(example.regression_test)
            print(
                f"reproduce with: repro-fuzz {name} --seed {args.seed} "
                f"-n {args.generated} --edits {args.edits}"
            )
            continue
        try:
            report = fuzz_grammar(
                root,
                seed=args.seed,
                generated=args.generated,
                mutated=args.mutated,
                max_depth=args.max_depth,
                start=args.start,
                backtracking=args.backtracking,
                paths=args.paths,
                backends=backends,
            )
        except (ReproError, ValueError) as exc:
            print(f"error: {root}: {exc}", file=sys.stderr)
            return 1
        print(report.summary())
        for example in report.counterexamples:
            failures += 1
            print(f"\n--- counterexample ({root}) ---")
            print(f"original ({len(example.original)} chars): {example.original!r}")
            print(f"shrunk   ({len(example.shrunk)} chars): {example.shrunk!r}")
            print(example.disagreement.describe())
            print("regression test:\n")
            print(example.regression_test)
        if args.strict and report.valid_ratio < args.min_valid:
            vacuous += 1
            print(
                f"strict: {root} accepted ratio {report.valid_ratio:.0%} "
                f"< {args.min_valid:.0%}",
                file=sys.stderr,
            )
        print(f"reproduce with: repro-fuzz {name} --seed {args.seed} -n {args.generated} --mutated {args.mutated}")
    if failures:
        return 1
    if vacuous:
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
