"""Counterexample reduction.

When the oracle finds a disagreeing input the raw sentence is usually
hundreds of characters of generated program text.  :func:`shrink` reduces
it with a delta-debugging-style loop — delete progressively smaller chunks,
then canonicalize the surviving characters — re-checking the *interesting*
predicate (``still disagrees``) after every candidate edit.
:func:`regression_test_source` renders the result as a ready-to-paste
pytest test, so a fuzz finding becomes a permanent regression test in one
copy-paste (see ``docs/testing.md``).
"""

from __future__ import annotations

import hashlib
from typing import Callable

#: Replacement candidates for character canonicalization, tried in order.
_CANONICAL = "a0 "


def shrink(
    text: str,
    is_interesting: Callable[[str], bool],
    max_checks: int = 2000,
) -> str:
    """Smallest input found (by greedy reduction) that stays interesting.

    ``is_interesting(text)`` must be True on entry; the returned string is
    interesting too.  ``max_checks`` bounds the number of predicate
    evaluations, so shrinking a pathological case degrades gracefully
    instead of hanging.
    """
    if not is_interesting(text):
        raise ValueError("shrink() requires an input that is already interesting")
    budget = [max_checks]

    def check(candidate: str) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return is_interesting(candidate)

    current = text
    progress = True
    while progress and budget[0] > 0:
        progress = False
        # Pass 1: delete chunks, largest first.
        chunk = max(1, len(current) // 2)
        while chunk >= 1:
            start = 0
            while start < len(current):
                candidate = current[:start] + current[start + chunk :]
                if candidate != current and check(candidate):
                    current = candidate
                    progress = True
                else:
                    start += chunk
            chunk //= 2
        # Pass 2: canonicalize characters so the counterexample reads
        # cleanly.  A character may only move to an earlier entry of
        # _CANONICAL than its own, so this cannot cycle.
        for index, ch in enumerate(current):
            for replacement in _CANONICAL:
                if replacement == ch:
                    break
                candidate = current[:index] + replacement + current[index + 1 :]
                if check(candidate):
                    current = candidate
                    progress = True
                    break
    return current


def shrink_edit_script(
    edits: list,
    is_interesting: Callable[[list], bool],
    max_checks: int = 400,
) -> list:
    """Smallest edit script (by greedy reduction) that stays interesting.

    Delta-debugs the edit *list* (drop chunks of edits, largest first),
    then simplifies surviving edits' inserted text.  Dropping an edit can
    leave later edits' offsets pointing outside the evolving buffer; the
    predicate (:meth:`~repro.difftest.oracle.EditOracle.check_script`)
    raises ``ValueError`` on such mangled scripts, which counts as
    *uninteresting* here — the reduction simply keeps looking.
    """
    edits = [tuple(e) if isinstance(e, (tuple, list)) else (e.offset, e.removed, e.inserted)
             for e in edits]
    if not is_interesting(edits):
        raise ValueError("shrink_edit_script() requires an already-interesting script")
    budget = [max_checks]

    def check(candidate: list) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            return is_interesting(candidate)
        except ValueError:
            return False

    current = list(edits)
    progress = True
    while progress and budget[0] > 0:
        progress = False
        # Pass 1: drop chunks of edits, largest first.
        chunk = max(1, len(current) // 2)
        while chunk >= 1:
            start = 0
            while start < len(current):
                candidate = current[:start] + current[start + chunk:]
                if candidate != current and check(candidate):
                    current = candidate
                    progress = True
                else:
                    start += chunk
            chunk //= 2
        # Pass 2: simplify inserted text (empty, then halved) per edit.
        for index, (offset, removed, inserted) in enumerate(current):
            for simpler in ("", inserted[: len(inserted) // 2]):
                if simpler == inserted:
                    continue
                candidate = list(current)
                candidate[index] = (offset, removed, simpler)
                if check(candidate):
                    current = candidate
                    progress = True
                    break
    return current


def edit_regression_test_source(root: str, text: str, edits: list, detail: str) -> str:
    """A self-contained pytest test replaying a shrunk edit-script finding."""
    script = [tuple(e) for e in edits]
    digest = hashlib.sha256(f"{root}:{text}:{script}".encode()).hexdigest()[:10]
    return (
        f"def test_edit_regression_{digest}():\n"
        f"    # Shrunk incremental-edit counterexample for {root}.\n"
        f"    # Original disagreement: {detail}\n"
        f"    from repro.difftest import EditOracle\n"
        f"\n"
        f"    oracle = EditOracle.for_root({root!r})\n"
        f"    assert oracle.explain_script({text!r}, {script!r}) is None\n"
    )


def regression_test_source(root: str, text: str, detail: str) -> str:
    """A self-contained pytest test asserting the disagreement stays fixed."""
    digest = hashlib.sha256(f"{root}:{text}".encode()).hexdigest()[:10]
    return (
        f"def test_difftest_regression_{digest}():\n"
        f"    # Shrunk fuzz counterexample for {root}.\n"
        f"    # Original disagreement: {detail}\n"
        f"    from repro.difftest import DifferentialOracle\n"
        f"\n"
        f"    oracle = DifferentialOracle.for_root({root!r})\n"
        f"    assert oracle.explain({text!r}) is None\n"
    )
