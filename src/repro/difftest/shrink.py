"""Counterexample reduction.

When the oracle finds a disagreeing input the raw sentence is usually
hundreds of characters of generated program text.  :func:`shrink` reduces
it with a delta-debugging-style loop — delete progressively smaller chunks,
then canonicalize the surviving characters — re-checking the *interesting*
predicate (``still disagrees``) after every candidate edit.
:func:`regression_test_source` renders the result as a ready-to-paste
pytest test, so a fuzz finding becomes a permanent regression test in one
copy-paste (see ``docs/testing.md``).
"""

from __future__ import annotations

import hashlib
from typing import Callable

#: Replacement candidates for character canonicalization, tried in order.
_CANONICAL = "a0 "


def shrink(
    text: str,
    is_interesting: Callable[[str], bool],
    max_checks: int = 2000,
) -> str:
    """Smallest input found (by greedy reduction) that stays interesting.

    ``is_interesting(text)`` must be True on entry; the returned string is
    interesting too.  ``max_checks`` bounds the number of predicate
    evaluations, so shrinking a pathological case degrades gracefully
    instead of hanging.
    """
    if not is_interesting(text):
        raise ValueError("shrink() requires an input that is already interesting")
    budget = [max_checks]

    def check(candidate: str) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return is_interesting(candidate)

    current = text
    progress = True
    while progress and budget[0] > 0:
        progress = False
        # Pass 1: delete chunks, largest first.
        chunk = max(1, len(current) // 2)
        while chunk >= 1:
            start = 0
            while start < len(current):
                candidate = current[:start] + current[start + chunk :]
                if candidate != current and check(candidate):
                    current = candidate
                    progress = True
                else:
                    start += chunk
            chunk //= 2
        # Pass 2: canonicalize characters so the counterexample reads
        # cleanly.  A character may only move to an earlier entry of
        # _CANONICAL than its own, so this cannot cycle.
        for index, ch in enumerate(current):
            for replacement in _CANONICAL:
                if replacement == ch:
                    break
                candidate = current[:index] + replacement + current[index + 1 :]
                if check(candidate):
                    current = candidate
                    progress = True
                    break
    return current


def regression_test_source(root: str, text: str, detail: str) -> str:
    """A self-contained pytest test asserting the disagreement stays fixed."""
    digest = hashlib.sha256(f"{root}:{text}".encode()).hexdigest()[:10]
    return (
        f"def test_difftest_regression_{digest}():\n"
        f"    # Shrunk fuzz counterexample for {root}.\n"
        f"    # Original disagreement: {detail}\n"
        f"    from repro.difftest import DifferentialOracle\n"
        f"\n"
        f"    oracle = DifferentialOracle.for_root({root!r})\n"
        f"    assert oracle.explain({text!r}) is None\n"
    )
