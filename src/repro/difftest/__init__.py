"""Differential fuzzing: the correctness safety net for every optimization.

The paper's central invariant is that all of its optimizations are
*semantics-preserving*: any ``-Ono-…`` configuration, either memo-table
organization, the interpreter, the generated parser, and the hand-written
baselines must accept the same language, build structurally identical
ASTs, and report the same farthest-failure position on rejects.  This
package checks that invariant continuously instead of on hand-picked
inputs:

- :mod:`~repro.difftest.generator` derives candidate sentences from the
  grammar itself (cost-bounded random derivation);
- :mod:`~repro.difftest.mutate` corrupts them to exercise the error path;
- :mod:`~repro.difftest.oracle` runs every backend and compares verdicts,
  ASTs, and failure offsets; its :class:`EditOracle` does the same for
  incremental reparsing, warm edit-by-edit sessions against cold parses;
- :mod:`~repro.difftest.shrink` reduces a disagreeing input to a minimal
  counterexample and emits a ready-to-paste regression test;
- :mod:`~repro.difftest.runner` / :mod:`~repro.difftest.cli` package the
  loop as :func:`fuzz_grammar` and the seeded ``repro-fuzz`` command.

See ``docs/testing.md`` for the workflow, including how to reproduce a CI
finding from its seed.
"""

from repro.difftest.generator import SentenceGenerator, min_costs
from repro.difftest.mutate import mutate
from repro.difftest.oracle import (
    Backend,
    DifferentialOracle,
    Disagreement,
    EditOracle,
    Outcome,
)
from repro.difftest.runner import (
    Counterexample,
    EditCounterexample,
    EditFuzzReport,
    FuzzReport,
    fuzz_edits,
    fuzz_grammar,
)
from repro.difftest.shrink import (
    edit_regression_test_source,
    regression_test_source,
    shrink,
    shrink_edit_script,
)

__all__ = [
    "SentenceGenerator", "min_costs",
    "mutate",
    "Backend", "DifferentialOracle", "Disagreement", "EditOracle", "Outcome",
    "Counterexample", "FuzzReport", "fuzz_grammar",
    "EditCounterexample", "EditFuzzReport", "fuzz_edits",
    "regression_test_source", "shrink",
    "edit_regression_test_source", "shrink_edit_script",
]
