"""The fuzz loop: generate, mutate, cross-check, shrink, report.

:func:`fuzz_grammar` is the engine behind both the ``repro-fuzz`` CLI and
the in-tree smoke test: seed an rng, derive ``generated`` candidate
sentences from the grammar, corrupt ``mutated`` of them, run every input
through the :class:`~repro.difftest.oracle.DifferentialOracle`, and shrink
any disagreement to a minimal counterexample with a ready-to-paste
regression test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.difftest.generator import SentenceGenerator
from repro.difftest.mutate import mutate
from repro.difftest.oracle import DifferentialOracle, Disagreement, EditOracle
from repro.difftest.shrink import (
    edit_regression_test_source,
    regression_test_source,
    shrink,
    shrink_edit_script,
)
from repro.profile.collector import CoverageMatrix
from repro.profile.runner import CoverageSession


@dataclass
class Counterexample:
    """One disagreement, shrunk and packaged for a human."""

    original: str
    shrunk: str
    disagreement: Disagreement
    regression_test: str


@dataclass
class FuzzReport:
    """Summary of one seeded fuzz run over one grammar."""

    root: str
    seed: int
    generated: int = 0
    mutated: int = 0
    accepted: int = 0
    checked: int = 0
    backend_count: int = 0
    counterexamples: list[Counterexample] = field(default_factory=list)
    #: Alternative-coverage matrix of the fuzz corpus (when requested via
    #: ``fuzz_grammar(..., coverage=...)``); None otherwise.
    coverage: CoverageMatrix | None = None

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    @property
    def valid_ratio(self) -> float:
        """Fraction of *generated* (unmutated) sentences the reference
        accepted — the health metric for the sentence generator."""
        return self.accepted / self.generated if self.generated else 0.0

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.counterexamples)} DISAGREEMENTS"
        line = (
            f"{self.root}: {self.checked} inputs "
            f"({self.generated} generated, {self.mutated} mutated; "
            f"{self.valid_ratio:.0%} of generated accepted) "
            f"across {self.backend_count} backends — {status}"
        )
        if self.coverage is not None:
            line += (
                f"; alternative coverage {self.coverage.ratio():.0%} "
                f"({self.coverage.succeeded_count()}/{self.coverage.total()})"
            )
        return line


def fuzz_grammar(
    root: str,
    *,
    seed: int = 0,
    generated: int = 200,
    mutated: int = 200,
    max_depth: int = 24,
    max_shrink_checks: int = 2000,
    max_counterexamples: int = 5,
    oracle: DifferentialOracle | None = None,
    start: str | None = None,
    backtracking: bool = False,
    paths: list[str] | None = None,
    coverage: CoverageMatrix | bool = False,
    backends: list[str] | None = None,
) -> FuzzReport:
    """One seeded differential fuzz run over the grammar module ``root``.

    Stops collecting (but keeps counting inputs) after
    ``max_counterexamples`` distinct shrunk counterexamples: one real
    optimizer bug tends to disagree on hundreds of inputs, and shrinking
    each is wasted work.

    With ``coverage`` set (``True`` for a fresh matrix, or an existing
    :class:`~repro.profile.collector.CoverageMatrix` to accumulate into —
    e.g. across seeds), every checked input is also fed through a profiled
    reference interpreter, so the fuzz run doubles as a grammar-coverage
    measurement; the matrix lands on ``report.coverage``.

    ``backends`` restricts the oracle to a subset of backend names (the
    reference is always kept); see
    :class:`~repro.difftest.oracle.DifferentialOracle`.
    """
    if oracle is None:
        oracle = DifferentialOracle.for_root(
            root, paths=paths, start=start, backtracking=backtracking, backends=backends
        )
    coverage_session = None
    if coverage:
        matrix = coverage if isinstance(coverage, CoverageMatrix) else None
        coverage_session = CoverageSession(oracle.grammar, coverage=matrix)
    rng = random.Random(seed)
    generator = SentenceGenerator(oracle.grammar, rng, max_depth=max_depth)
    report = FuzzReport(
        root=root,
        seed=seed,
        backend_count=len(oracle.backends),
        coverage=coverage_session.coverage if coverage_session else None,
    )

    corpus: list[str] = []
    for _ in range(generated):
        sentence = generator.generate()
        corpus.append(sentence)
        report.generated += 1
        if oracle.reference.run(sentence).accepted:
            report.accepted += 1
        if coverage_session is not None:
            coverage_session.feed(sentence)
        _check_one(oracle, root, sentence, report, max_shrink_checks, max_counterexamples)

    for index in range(mutated):
        base = corpus[index % len(corpus)] if corpus else ""
        mutant = mutate(base, rng, edits=rng.randint(1, 3))
        report.mutated += 1
        if coverage_session is not None:
            coverage_session.feed(mutant)
        _check_one(oracle, root, mutant, report, max_shrink_checks, max_counterexamples)

    return report


def _check_one(
    oracle: DifferentialOracle,
    root: str,
    text: str,
    report: FuzzReport,
    max_shrink_checks: int,
    max_counterexamples: int,
) -> None:
    report.checked += 1
    if len(report.counterexamples) >= max_counterexamples:
        return
    disagreements = oracle.check(text)
    if not disagreements:
        return
    first = disagreements[0]
    shrunk = shrink(
        text,
        lambda candidate: bool(oracle.check(candidate)),
        max_checks=max_shrink_checks,
    )
    detail = oracle.explain(shrunk) or first.describe()
    report.counterexamples.append(
        Counterexample(
            original=text,
            shrunk=shrunk,
            disagreement=first,
            regression_test=regression_test_source(root, shrunk, detail),
        )
    )


# -- incremental edit scripts --------------------------------------------------


@dataclass
class EditCounterexample:
    """One edit-script disagreement, shrunk and packaged for a human."""

    text: str
    original: list
    shrunk: list
    disagreement: Disagreement
    regression_test: str


@dataclass
class EditFuzzReport:
    """Summary of one seeded edit-script fuzz run over one grammar."""

    root: str
    seed: int
    scripts: int = 0
    edits_checked: int = 0
    backend_count: int = 0
    counterexamples: list[EditCounterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.counterexamples)} DISAGREEMENTS"
        return (
            f"{self.root} [edits]: {self.scripts} scripts "
            f"({self.edits_checked} edits, warm vs cold) across "
            f"{self.backend_count} incremental backends — {status}"
        )


def fuzz_edits(
    root: str,
    *,
    seed: int = 0,
    scripts: int = 200,
    edits_per_script: int = 6,
    max_depth: int = 24,
    max_shrink_checks: int = 400,
    max_counterexamples: int = 5,
    oracle: EditOracle | None = None,
    start: str | None = None,
    paths: list[str] | None = None,
) -> EditFuzzReport:
    """One seeded differential fuzz run over incremental edit scripts.

    Derives ``scripts`` sentences from the grammar, builds a seeded
    ``edits_per_script``-edit script over each
    (:func:`repro.workloads.pyedits.edit_script` — token-boundary and
    mid-token inserts/deletes/replacements), and replays every script
    through the :class:`~repro.difftest.oracle.EditOracle`: after each
    edit the warm incremental reparse must match a cold parse of the same
    buffer bit-identically.  Disagreeing scripts are shrunk
    (:func:`~repro.difftest.shrink.shrink_edit_script`) and packaged with
    a ready-to-paste regression test.
    """
    from repro.workloads.pyedits import edit_script

    if oracle is None:
        oracle = EditOracle.for_root(root, paths=paths, start=start)
    rng = random.Random(seed)
    generator = SentenceGenerator(oracle.grammar, rng, max_depth=max_depth)
    report = EditFuzzReport(root=root, seed=seed, backend_count=len(oracle.backends))
    for _ in range(scripts):
        sentence = generator.generate()
        edits = [
            (e.offset, e.removed, e.inserted)
            for e in edit_script(sentence, rng, edits_per_script)
        ]
        report.scripts += 1
        report.edits_checked += len(edits)
        if len(report.counterexamples) >= max_counterexamples:
            continue
        disagreements = oracle.check_script(sentence, edits)
        if not disagreements:
            continue
        first = disagreements[0]
        shrunk = shrink_edit_script(
            edits,
            lambda candidate: bool(oracle.check_script(sentence, candidate)),
            max_checks=max_shrink_checks,
        )
        detail = oracle.explain_script(sentence, shrunk) or first.describe()
        report.counterexamples.append(
            EditCounterexample(
                text=sentence,
                original=edits,
                shrunk=shrunk,
                disagreement=first,
                regression_test=edit_regression_test_source(root, sentence, shrunk, detail),
            )
        )
    return report
