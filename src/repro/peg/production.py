"""Productions: named parsing expressions with value kinds and attributes.

A production associates a name with an ordered list of *alternatives* (each
optionally labeled, as in the surface syntax ``<Label> e1 e2 …``), a *value
kind* describing how its semantic value is built, and a set of attributes
that steer composition and optimization.

Value kinds
-----------

``void``
    the production has no semantic value (``None``); void results are
    dropped from enclosing generic nodes.
``text``
    the value is the exact text matched (the surface keyword is ``String``).
``generic``
    the value is a :class:`repro.runtime.node.GNode` built automatically from
    the alternative's non-void component values; a labeled alternative
    ``<Label>`` names its node after the label, an unlabeled one after the
    production.  An *unlabeled* alternative with exactly one contributing
    component is a pass-through: its value is used directly, unwrapped
    (so ``Sum = <Add> Sum "+" Prod / Prod`` does not wrap plain products).
``object``
    the default: the value is computed by an explicit ``{ action }``, or, in
    its absence, by the *pass-through rule* — the single component value if
    there is exactly one, ``None`` if there are none, and a tuple otherwise.

Attributes
----------

``public``      exported entry point of the grammar
``transient``   never memoized (result is used from only one context)
``memo``        force memoization even where the optimizer would drop it
``inline``      always inline into callers (cost model override)
``noinline``    never inline
``withLocation`` attach source locations to the production's generic nodes
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.locations import Location, UNKNOWN
from repro.peg.expr import Expression, referenced_names


class ValueKind(enum.Enum):
    """How a production's semantic value is computed."""

    VOID = "void"
    TEXT = "text"
    GENERIC = "generic"
    OBJECT = "object"


#: Attributes accepted on productions in ``.mg`` files.
KNOWN_ATTRIBUTES = frozenset(
    {"public", "transient", "memo", "inline", "noinline", "nofuse", "withLocation"}
)


@dataclass(frozen=True, slots=True)
class Alternative:
    """One top-level alternative of a production, optionally labeled.

    Locations are provenance, not structure: equality ignores them (as it
    does for :class:`repro.runtime.node.GNode`).
    """

    expr: Expression
    label: str | None = None
    location: Location = field(default=UNKNOWN, compare=False)

    def with_expr(self, expr: Expression) -> "Alternative":
        return replace(self, expr=expr)


@dataclass(frozen=True, slots=True)
class Production:
    """A named production.

    ``name`` is the fully qualified name once a grammar has been composed
    (module-local names are qualified by the composition engine).
    """

    name: str
    kind: ValueKind = ValueKind.OBJECT
    alternatives: tuple[Alternative, ...] = ()
    attributes: frozenset[str] = frozenset()
    location: Location = field(default=UNKNOWN, compare=False)

    def __post_init__(self) -> None:
        unknown = self.attributes - KNOWN_ATTRIBUTES
        if unknown:
            raise ValueError(f"unknown production attributes: {sorted(unknown)}")
        if "inline" in self.attributes and "noinline" in self.attributes:
            raise ValueError(f"production {self.name}: both inline and noinline")
        if "transient" in self.attributes and "memo" in self.attributes:
            raise ValueError(f"production {self.name}: both transient and memo")

    # -- convenience -------------------------------------------------------

    def has(self, attribute: str) -> bool:
        return attribute in self.attributes

    @property
    def is_public(self) -> bool:
        return "public" in self.attributes

    @property
    def is_transient(self) -> bool:
        return "transient" in self.attributes

    def referenced_names(self) -> set[str]:
        """All nonterminals referenced by any alternative."""
        names: set[str] = set()
        for alt in self.alternatives:
            names |= referenced_names(alt.expr)
        return names

    def with_alternatives(self, alternatives: tuple[Alternative, ...]) -> "Production":
        return replace(self, alternatives=alternatives)

    def with_attributes(self, attributes: frozenset[str]) -> "Production":
        return replace(self, attributes=attributes)

    def label_names(self) -> list[str]:
        return [alt.label for alt in self.alternatives if alt.label is not None]
