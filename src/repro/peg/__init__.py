"""Parsing-expression-grammar intermediate representation.

Public surface:

- :mod:`repro.peg.expr` — expression forms and traversal helpers
- :mod:`repro.peg.production` — productions, value kinds, attributes
- :mod:`repro.peg.grammar` — flat grammars
- :mod:`repro.peg.builder` — programmatic construction combinators
- :mod:`repro.peg.pretty` — rendering back to ``.mg`` surface syntax
"""

from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Repetition,
    Sequence,
    Text,
    Voided,
    char_class,
    children,
    choice,
    literal,
    rebuild,
    referenced_names,
    seq,
    transform,
    walk,
)
from repro.peg.grammar import Grammar
from repro.peg.production import Alternative, Production, ValueKind
from repro.peg.pretty import format_expression, format_grammar, format_production

__all__ = [
    "Action", "And", "AnyChar", "Binding", "CharClass", "CharSwitch", "Choice",
    "Epsilon", "Expression", "Fail", "Literal", "Nonterminal", "Not", "Option",
    "Repetition", "Sequence", "Text", "Voided",
    "char_class", "children", "choice", "literal", "rebuild",
    "referenced_names", "seq", "transform", "walk",
    "Grammar", "Alternative", "Production", "ValueKind",
    "format_expression", "format_grammar", "format_production",
]
