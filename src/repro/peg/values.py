"""Static value semantics shared by interpreters and the code generator.

Semantic values must come out *identically* from the packrat interpreter,
the backtracking interpreter, and generated parsers (the property tests
enforce this).  To make that possible, the rules for which expressions
*contribute* a value to their context are decided statically, here, from the
expression shape and the value kinds of referenced productions:

- ``Literal`` / ``CharClass`` / ``AnyChar`` match text but do **not**
  contribute (constants carry no information the node name doesn't already);
  they can still be bound or captured with ``text:``.
- ``Nonterminal`` contributes unless the referenced production is ``void``.
- ``Voided``, ``And``, ``Not``, ``Epsilon``, ``Fail`` never contribute.
- ``Text`` and ``Action`` always contribute.
- ``Binding`` contributes iff its body does.
- ``Sequence`` contributes iff any item does; its own value follows the
  *pass-through rule* (0 contributions → None, 1 → that value, n → tuple).
- ``Choice`` contributes iff any alternative does.
- ``Repetition`` contributes iff its item does (value: list of item values).
- ``Option`` contributes iff its item does (value: item value or None).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.peg.expr import (
    Action,
    And,
    AnyChar,
    Binding,
    CharClass,
    CharSwitch,
    Choice,
    Epsilon,
    Expression,
    Fail,
    Literal,
    Nonterminal,
    Not,
    Option,
    Regex,
    Repetition,
    Sequence,
    Text,
    Voided,
    walk,
)
from repro.peg.grammar import Grammar
from repro.peg.production import ValueKind


def contributes(expr: Expression, kind_of: Callable[[str], ValueKind]) -> bool:
    """Does ``expr`` contribute a semantic value to its enclosing context?

    ``kind_of`` maps a production name to its :class:`ValueKind`.
    """
    if isinstance(expr, (Literal, CharClass, AnyChar, Voided, And, Not, Epsilon, Fail)):
        return False
    if isinstance(expr, (Text, Action)):
        return True
    if isinstance(expr, Regex):
        return expr.capture
    if isinstance(expr, Nonterminal):
        return kind_of(expr.name) is not ValueKind.VOID
    if isinstance(expr, Binding):
        return contributes(expr.expr, kind_of)
    if isinstance(expr, (Repetition, Option)):
        return contributes(expr.expr, kind_of)
    if isinstance(expr, Sequence):
        return any(contributes(item, kind_of) for item in expr.items)
    if isinstance(expr, Choice):
        return any(contributes(alt, kind_of) for alt in expr.alternatives)
    if isinstance(expr, CharSwitch):
        branches = [e for _, e in expr.cases] + [expr.default]
        return any(contributes(b, kind_of) for b in branches)
    raise TypeError(f"contributes: unhandled {type(expr).__name__}")


def kind_lookup(grammar: Grammar) -> Callable[[str], ValueKind]:
    """A ``kind_of`` function over a grammar (unknown names → OBJECT)."""
    kinds = {p.name: p.kind for p in grammar.productions}

    def kind_of(name: str) -> ValueKind:
        return kinds.get(name, ValueKind.OBJECT)

    return kind_of


def pass_through(contributions: list[Any]) -> Any:
    """The pass-through rule for sequence values."""
    if not contributions:
        return None
    if len(contributions) == 1:
        return contributions[0]
    return tuple(contributions)


def binding_names(expr: Expression) -> list[str]:
    """All binding names occurring anywhere in ``expr``, in source order,
    without duplicates.  These become the alternative's action namespace."""
    names: list[str] = []
    seen: set[str] = set()
    for node in walk(expr):
        if isinstance(node, Binding) and node.name not in seen:
            seen.add(node.name)
            names.append(node.name)
    return names


def node_name(production_name: str, label: str | None) -> str:
    """The GNode name for an alternative of a generic production."""
    if label:
        return label
    return production_name.rsplit(".", 1)[-1]
